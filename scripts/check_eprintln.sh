#!/usr/bin/env sh
# Logging-discipline guard: library crates must not write raw stderr.
#
# Every diagnostic in library code goes through the telemetry layer
# (`netlog!` pairs a structured event with the human-readable line; see
# docs/observability.md), so a bare `eprintln!` in `crates/*/src` is a
# regression. Binaries (`src/bin/`) may use it for operator-facing
# progress/error output, and `crates/net/src/log.rs` holds the single
# sanctioned raw-stderr site the `netlog!` macro funnels through.
#
# Exits non-zero, listing the offending sites, when the rule is broken.
set -eu

cd "$(dirname "$0")/.."

offenders=$(
    grep -rn 'eprintln!' crates/*/src --include='*.rs' |
        # Allowed: binary targets and the sanctioned netlog funnel.
        grep -v '/src/bin/' |
        grep -v '^crates/net/src/log\.rs:' |
        # Ignore mentions in comments (the guard's own documentation).
        grep -v ':[0-9]*: *//' || true
)

if [ -n "$offenders" ]; then
    echo "error: bare eprintln! in library code — route it through the" >&2
    echo "telemetry layer instead (see docs/observability.md):" >&2
    echo "$offenders" >&2
    exit 1
fi
echo "check_eprintln: ok"
