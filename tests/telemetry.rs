//! End-to-end determinism contract of the telemetry layer over real
//! engine runs.
//!
//! Two pins:
//!
//! 1. **Same-seed JSONL byte-identity.** Every record in the JSONL event
//!    stream is stamped from the simnet virtual clock and flushed from
//!    the federator thread at round boundaries, so two runs of the same
//!    seed — even in one process, where the second run reuses the warm
//!    GEMM autotune cache and workspace pools the first one built — must
//!    produce byte-for-byte identical streams.
//! 2. **Observer effect is zero.** Enabling telemetry may not perturb
//!    training: an instrumented run's final weights must be bit-identical
//!    to a disabled run of the same seed.
//!
//! The registry and event log are process-global, so the tests serialize
//! on one lock and `reset()` between runs (which zeroes values but keeps
//! registered cells alive — exactly the warm-process case the byte
//! identity must survive).

use std::sync::{Mutex, MutexGuard};

use aergia::config::ExperimentConfig;
use aergia::engine::Engine;
use aergia::strategy::Strategy;
use aergia_bench::{base_config, Scale};
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;
use aergia_telemetry as tel;

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests on the process-global telemetry state.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Real workers even on a single-core runner (see `determinism.rs`).
fn force_pool_workers() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| std::env::set_var("AERGIA_THREADS", "4"));
}

fn fig6_smoke(seed: u64) -> ExperimentConfig {
    base_config(Scale::Smoke, DatasetSpec::MnistLike, ModelArch::MnistCnn, seed)
}

/// One instrumented run: fresh telemetry state, engine run on the
/// work-stealing pool (worker threads must not reorder the stream),
/// returns the drained JSONL plus the final weights.
fn instrumented_run(seed: u64) -> (String, Vec<aergia_tensor::Tensor>) {
    tel::reset();
    tel::enable();
    let mut config = fig6_smoke(seed);
    config.parallelism = 0;
    let mut engine = Engine::new(config, Strategy::aergia_default()).expect("valid config");
    engine.run().expect("run succeeds");
    let jsonl = tel::drain_jsonl();
    tel::disable();
    tel::reset();
    (jsonl, engine.global_weights().to_vec())
}

fn disabled_run(seed: u64) -> Vec<aergia_tensor::Tensor> {
    assert!(!tel::enabled());
    let mut config = fig6_smoke(seed);
    config.parallelism = 0;
    let mut engine = Engine::new(config, Strategy::aergia_default()).expect("valid config");
    engine.run().expect("run succeeds");
    engine.global_weights().to_vec()
}

#[test]
fn same_seed_runs_emit_byte_identical_jsonl() {
    force_pool_workers();
    let _g = telemetry_lock();
    let (first, _) = instrumented_run(33);
    let (second, _) = instrumented_run(33);

    assert!(!first.is_empty(), "an instrumented run must emit events");
    for marker in [
        r#""kind":"enter","name":"round""#,
        r#""kind":"exit","name":"round.fold""#,
        r#""name":"round.train""#,
        r#""name":"aergia_engine_rounds_total""#,
        r#""name":"aergia_gemm_calls_total"#,
    ] {
        assert!(first.contains(marker), "stream must contain {marker}:\n{first}");
    }
    // Every record carries the virtual-time stamp field first; no record
    // may leak wall-clock (which would differ between the runs anyway —
    // the byte comparison below is the real guard).
    assert!(first.lines().all(|l| l.starts_with(r#"{"t":"#)), "records start with virtual time");

    if first != second {
        // Pinpoint the first diverging line for the failure message.
        let (mut a, mut b) = (first.lines(), second.lines());
        let mut n = 0usize;
        loop {
            let (x, y) = (a.next(), b.next());
            n += 1;
            if x != y {
                panic!("JSONL diverged at line {n}:\n  run1: {x:?}\n  run2: {y:?}");
            }
            if x.is_none() {
                break;
            }
        }
        panic!("JSONL streams differ in length only");
    }
}

#[test]
fn enabling_telemetry_does_not_perturb_training() {
    force_pool_workers();
    let _g = telemetry_lock();
    let baseline = disabled_run(34);
    let (jsonl, observed) = instrumented_run(34);
    assert!(!jsonl.is_empty());
    assert_eq!(baseline.len(), observed.len(), "weight tensor count");
    for (i, (a, b)) in baseline.iter().zip(&observed).enumerate() {
        assert_eq!(a.dims(), b.dims(), "tensor {i} shape");
        let identical = a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(identical, "tensor {i}: instrumented run diverged from disabled run");
    }
}
