//! Transport-level drop semantics: the `Transport` contract says an
//! omitted reply means "this participant is gone this round" and the
//! engine must complete the round with the remaining participants.
//!
//! These tests pin that behaviour with a wrapper transport that runs
//! everything in-process but censors one client's replies from a given
//! round onward — the same observable behaviour `aergia-net`'s
//! coordinator produces when a worker's connection dies (the e2e suite
//! crosses that bridge with real processes; this suite keeps the
//! contract testable in `cargo test` time).

use aergia::prelude::*;
use aergia::transport::{
    InProcess, OffloadOrder, OffloadReply, RoundContext, TrainOrder, TrainReply, Transport,
    TransportError,
};
use aergia_codec::CodecConfig;
use aergia_net::presets::smoke_config;
use aergia_tensor::Tensor;

/// Runs orders through [`InProcess`] and then omits every reply by (or
/// offloaded to) `client` from round `from_round` onward — the
/// coordinator-eye view of a worker that crashed mid-round and never
/// came back.
struct DropFrom {
    client: usize,
    from_round: u32,
}

impl Transport for DropFrom {
    fn train_participants(
        &mut self,
        ctx: &RoundContext<'_>,
        orders: Vec<TrainOrder<'_>>,
    ) -> Result<Vec<TrainReply>, TransportError> {
        let mut replies = InProcess.train_participants(ctx, orders)?;
        if ctx.round >= self.from_round {
            replies.retain(|r| r.client != self.client);
        }
        Ok(replies)
    }

    fn train_offloads(
        &mut self,
        ctx: &RoundContext<'_>,
        orders: Vec<OffloadOrder<'_>>,
    ) -> Result<Vec<OffloadReply>, TransportError> {
        let mut replies = InProcess.train_offloads(ctx, orders)?;
        if ctx.round >= self.from_round {
            replies.retain(|r| r.receiver != self.client);
        }
        Ok(replies)
    }
}

fn run_with(transport: &mut dyn Transport, strategy: Strategy) -> (RunResult, Vec<Tensor>) {
    let config = smoke_config(33, CodecConfig::DenseF32);
    let mut engine = Engine::new(config, strategy).expect("smoke config is valid");
    let mut progress = engine.start_progress();
    while engine.step_round_with(&mut progress, transport).expect("round") {}
    let result = engine.finish_run(progress);
    let weights = engine.global_weights().to_vec();
    (result, weights)
}

#[test]
fn round_completes_when_a_client_stops_replying() {
    let (result, weights) = run_with(&mut DropFrom { client: 2, from_round: 1 }, Strategy::FedAvg);

    assert_eq!(result.rounds.len(), 3, "the run must finish all rounds");
    assert!(result.rounds[0].dropped.is_empty(), "round 0 is intact");
    for record in &result.rounds[1..] {
        assert!(
            record.dropped.contains(&2),
            "round {}: the silent client must be recorded as dropped",
            record.round
        );
        assert!(record.participants.contains(&2), "selection itself is unaffected");
        assert!(
            record.train_loss.is_finite(),
            "round {}: the remaining participants' losses still aggregate",
            record.round
        );
    }
    assert!(result.final_accuracy.is_finite());
    assert!(!weights.is_empty());

    // The dropped client's update really is excluded: the global model
    // diverges from the intact run's.
    let (intact, intact_weights) = run_with(&mut InProcess, Strategy::FedAvg);
    assert!(intact.rounds.iter().all(|r| r.dropped.is_empty()));
    assert_ne!(
        weights.iter().map(Tensor::data).collect::<Vec<_>>(),
        intact_weights.iter().map(Tensor::data).collect::<Vec<_>>(),
        "censoring a client must change aggregation"
    );
}

#[test]
fn offload_receiver_loss_degrades_gracefully() {
    // Client 3 is the smoke preset's fastest client, so under the Aergia
    // strategy it is the natural offload receiver. Losing it mid-run
    // must cost its contributions, not the run.
    let (result, _) =
        run_with(&mut DropFrom { client: 3, from_round: 1 }, Strategy::aergia_default());
    assert_eq!(result.rounds.len(), 3);
    for record in &result.rounds[1..] {
        assert!(record.dropped.contains(&3));
    }
    assert!(result.final_accuracy.is_finite());
}
