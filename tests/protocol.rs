//! Protocol-level integration tests: message authenticity, replay
//! protection, network fault tolerance and the privacy boundary.

use aergia::messages::SignedAssignment;
use aergia::prelude::*;
use aergia::scheduler::Assignment;
use aergia_data::partition::{Partition, Scheme};
use aergia_data::{DataConfig, DatasetSpec};
use aergia_enclave::{establish_session, EnclaveError, SimilarityEnclave};
use aergia_nn::models::ModelArch;
use aergia_simnet::SimDuration;

fn timing_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        dataset: DataConfig { spec: DatasetSpec::MnistLike, train_size: 160, test_size: 40, seed },
        arch: ModelArch::MnistCnn,
        partition: Scheme::Iid,
        num_clients: 6,
        clients_per_round: 6,
        rounds: 4,
        local_updates: 16,
        batch_size: 8,
        speeds: vec![0.1, 0.3, 0.5, 0.7, 0.9, 1.0],
        mode: Mode::Timing,
        seed,
        ..ExperimentConfig::default()
    }
}

#[test]
fn schedule_signatures_reject_forgery_and_replay() {
    let assignment = Assignment { sender: 0, receiver: 5, offload_batches: 7, estimated_ct: 3.0 };
    let signed = SignedAssignment::sign(0xfeed, 3, assignment);
    assert!(signed.verify(0xfeed, 3));
    assert!(!signed.verify(0xbeef, 3), "wrong federator secret accepted");
    assert!(!signed.verify(0xfeed, 4), "replayed into a later round");

    let mut tampered = signed;
    tampered.assignment.offload_batches = 9999;
    assert!(!tampered.verify(0xfeed, 3), "tampered payload accepted");
}

#[test]
fn network_jitter_preserves_liveness_and_results_complete() {
    let topology = TopologyBuilder::new().network_faults(0.0, SimDuration::from_secs_f64(0.5), 9);
    let mut engine =
        Engine::with_topology(timing_config(1), Strategy::aergia_default(), topology).unwrap();
    let result = engine.run().unwrap();
    assert_eq!(result.rounds.len(), 4);
    // Every participant still delivered every round (jitter only delays).
    assert!(result.rounds.iter().all(|r| r.dropped.is_empty()));
}

#[test]
fn message_drops_surface_as_dropped_participants_not_hangs() {
    let topology = TopologyBuilder::new().network_faults(0.25, SimDuration::ZERO, 7);
    let mut engine = Engine::with_topology(timing_config(2), Strategy::FedAvg, topology).unwrap();
    let result = engine.run().unwrap();
    assert_eq!(result.rounds.len(), 4, "run must terminate despite drops");
    let dropped = result.total_dropped();
    assert!(dropped > 0, "25% drop rate lost no participant in 4 rounds");
}

#[test]
fn slow_scheduling_path_degrades_gracefully_to_no_offload() {
    // If the federator→straggler link is so slow that the schedule arrives
    // after local training finished, the round must complete without an
    // offload (late messages are ignored, §4.1).
    let mut config = timing_config(3);
    config.local_updates = 4; // training ends quickly
    let crawl = aergia_simnet::LinkModel {
        latency: SimDuration::from_secs_f64(10_000.0),
        bandwidth_bps: 1e9,
    };
    let topology =
        (0..6).fold(TopologyBuilder::new(), |topology, c| topology.federator_link(c, crawl));
    let mut engine = Engine::with_topology(config, Strategy::aergia_default(), topology).unwrap();
    let result = engine.run().unwrap();
    assert_eq!(result.rounds.len(), 4);
    assert_eq!(result.total_offloads(), 0, "offload must not happen on a dead path");
}

#[test]
fn enclave_rejects_histograms_from_unattested_clients() {
    let (train, _) =
        DataConfig { spec: DatasetSpec::MnistLike, train_size: 100, test_size: 10, seed: 4 }
            .generate_pair();
    let partition = Partition::split(&train, 3, Scheme::paper_non_iid(), 8);

    let mut enclave = SimilarityEnclave::new(train.num_classes(), 42);
    // Client 0 attests properly.
    let mut session = establish_session(&mut enclave, 0, 77).unwrap();
    let hist = partition.class_histogram(&train, 0);
    enclave.submit(0, session.seal_histogram(&hist)).unwrap();
    // Client 1 never attested: its blob must be rejected.
    let rogue = SimilarityEnclave::new(train.num_classes(), 43);
    let mut rogue_session = establish_session(&mut { rogue }, 1, 78).unwrap();
    let err = enclave.submit(1, rogue_session.seal_histogram(&hist)).unwrap_err();
    assert!(matches!(err, EnclaveError::UnknownClient { client: 1 }));
}

#[test]
fn engine_similarity_matrix_matches_direct_emd_on_histograms() {
    let config = ExperimentConfig {
        partition: Scheme::NonIid { classes_per_client: 2 },
        mode: Mode::Timing,
        ..timing_config(5)
    };
    let engine = Engine::new(config, Strategy::aergia_default()).unwrap();
    let matrix = engine.similarity_matrix();
    // Recompute from the public partition histograms.
    let hists: Vec<Vec<u64>> =
        (0..6).map(|c| engine.partition().class_histogram(train_of(&engine), c)).collect();
    let expected = aergia_data::emd::similarity_matrix(&hists);
    assert_eq!(matrix, expected.as_slice());
}

// Accessing the training set through the public API for the check above.
fn train_of(engine: &Engine) -> &aergia_data::Dataset {
    engine.train_dataset()
}
