//! Workspace-level property tests: scheduler invariants under arbitrary
//! performance profiles and engine invariants in timing mode.

use aergia::config::{ExperimentConfig, Mode};
use aergia::engine::Engine;
use aergia::scheduler::{calc_op, schedule, ClientPerf, OpVariant};
use aergia::strategy::Strategy as FlStrategy;
use aergia_data::{partition::Scheme, DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;
use proptest::prelude::*;

fn perf_strategy(n: usize) -> impl Strategy<Value = Vec<ClientPerf>> {
    proptest::collection::vec((0.01f64..2.0, 1u32..64), n..=n).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(id, (full, remaining))| ClientPerf {
                id,
                t123: 0.4 * full,
                t4: 0.6 * full,
                feature_only: 0.8 * full,
                remaining,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 invariants for arbitrary clusters: receivers are used at
    /// most once, senders are exactly the above-mct clients, and every
    /// offload point respects the remaining-update bounds.
    #[test]
    fn scheduler_invariants(perfs in perf_strategy(9), f in 0.0f64..2.0) {
        let n = perfs.len();
        let sim: Vec<Vec<f64>> =
            (0..n).map(|i| (0..n).map(|j| ((i * 7 + j * 13) % 5) as f64 / 2.0).collect()).collect();
        let sched = schedule(&perfs, &sim, f, OpVariant::Unimodal);

        // mct really is the mean.
        let mean = perfs.iter().map(|p| p.estimated_completion()).sum::<f64>() / n as f64;
        prop_assert!((sched.mct - mean).abs() < 1e-9 * (1.0 + mean));

        // Each receiver serves at most one straggler; nobody sends to self.
        let mut receivers: Vec<usize> = sched.assignments.iter().map(|a| a.receiver).collect();
        receivers.sort_unstable();
        let before = receivers.len();
        receivers.dedup();
        prop_assert_eq!(receivers.len(), before, "receiver reused");
        for a in &sched.assignments {
            prop_assert_ne!(a.sender, a.receiver);
            let sender = &perfs[a.sender];
            let receiver = &perfs[a.receiver];
            prop_assert!(sender.estimated_completion() > sched.mct, "sender below mct");
            prop_assert!(receiver.estimated_completion() <= sched.mct, "receiver above mct");
            prop_assert!(a.offload_batches >= 1);
            prop_assert!(a.offload_batches <= sender.remaining.min(receiver.remaining));
        }

        // Senders ∪ unmatched = the above-mct set, exactly once each.
        let mut touched: Vec<usize> = sched
            .assignments
            .iter()
            .map(|a| a.sender)
            .chain(sched.unmatched_senders.iter().copied())
            .collect();
        touched.sort_unstable();
        let mut expected: Vec<usize> = perfs
            .iter()
            .filter(|p| p.estimated_completion() > sched.mct)
            .map(|p| p.id)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(touched, expected);
    }

    /// The unimodal calc_op truly minimises its objective over all d.
    #[test]
    fn calc_op_is_optimal(
        ta in 0.01f64..2.0, tb in 0.01f64..2.0, xb_frac in 0.1f64..1.0,
        ra in 1u32..200, rb in 1u32..200,
    ) {
        let xb = tb * xb_frac;
        let (ct, d) = calc_op(ta, tb, xb, ra, rb);
        prop_assert!(d >= 1 && d <= ra.min(rb));
        let objective = |d: u32| {
            (f64::from(ra - d) * ta).max(f64::from(rb) * tb + f64::from(d) * xb)
        };
        prop_assert!((ct - objective(d)).abs() < 1e-9 * (1.0 + ct));
        for cand in 1..=ra.min(rb) {
            prop_assert!(ct <= objective(cand) + 1e-9, "d={cand} beats reported optimum");
        }
    }

    /// Timing-mode engine: round durations never increase when every
    /// client gets uniformly faster.
    #[test]
    fn faster_cluster_is_never_slower(seed in 0u64..50, boost in 1.05f64..3.0) {
        let base_speeds = vec![0.2, 0.3, 0.4, 0.5];
        let config = |speeds: Vec<f64>| ExperimentConfig {
            dataset: DataConfig {
                spec: DatasetSpec::MnistLike,
                train_size: 96,
                test_size: 16,
                seed,
            },
            arch: ModelArch::MnistCnn,
            partition: Scheme::Iid,
            num_clients: 4,
            clients_per_round: 4,
            rounds: 2,
            local_updates: 8,
            batch_size: 8,
            speeds,
            mode: Mode::Timing,
            seed,
            ..ExperimentConfig::default()
        };
        let slow =
            Engine::new(config(base_speeds.clone()), FlStrategy::FedAvg).unwrap().run().unwrap();
        let fast_speeds: Vec<f64> =
            base_speeds.iter().map(|s| (s * boost).min(1.0)).collect();
        let fast = Engine::new(config(fast_speeds), FlStrategy::FedAvg).unwrap().run().unwrap();
        prop_assert!(fast.total_time() <= slow.total_time());
    }

    /// Aergia in timing mode never takes longer than FedAvg on the same
    /// cluster (offloading can only shorten the critical path; when it
    /// cannot help, nothing is offloaded).
    #[test]
    fn aergia_is_never_slower_than_fedavg(seed in 0u64..30) {
        let speeds = aergia_simnet::cluster::uniform_speeds(6, 0.1, 1.0, seed);
        let config = ExperimentConfig {
            dataset: DataConfig {
                spec: DatasetSpec::MnistLike,
                train_size: 96,
                test_size: 16,
                seed,
            },
            arch: ModelArch::MnistCnn,
            partition: Scheme::Iid,
            num_clients: 6,
            clients_per_round: 6,
            rounds: 3,
            local_updates: 32,
            batch_size: 8,
            speeds,
            mode: Mode::Timing,
            seed,
            ..ExperimentConfig::default()
        };
        let fedavg =
            Engine::new(config.clone(), FlStrategy::FedAvg).unwrap().run().unwrap();
        let aergia =
            Engine::new(config, FlStrategy::aergia_default()).unwrap().run().unwrap();
        // Allow a tiny tolerance for the extra control messages.
        let tolerance = 1.02;
        prop_assert!(
            aergia.total_time().as_secs_f64() <= fedavg.total_time().as_secs_f64() * tolerance,
            "Aergia {} vs FedAvg {}",
            aergia.total_time(),
            fedavg.total_time()
        );
    }
}
