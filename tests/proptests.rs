//! Workspace-level property tests: scheduler invariants under arbitrary
//! performance profiles and engine invariants in timing mode.

use aergia::config::{ExperimentConfig, Mode};
use aergia::engine::Engine;
use aergia::fold;
use aergia::scheduler::{calc_op, schedule, ClientPerf, OpVariant};
use aergia::strategy::Strategy as FlStrategy;
use aergia_data::{partition::Scheme, DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;
use aergia_tensor::Tensor;
use proptest::prelude::*;

/// Random hierarchical-fold cases: per-client weights (fractional, as
/// async staleness discounting produces), a couple of small tensors
/// each, τ update counts, and a random cohort assignment over a random
/// edge count. Empty cohorts arise naturally from the random
/// assignment, and dropped/censored clients are modelled by the varying
/// contribution count — a censored client simply never contributes, on
/// either side of the comparison.
#[allow(clippy::type_complexity)]
fn fold_case() -> impl Strategy<Value = (Vec<(f32, Vec<f32>, u32)>, Vec<usize>, usize)> {
    (1usize..=4, 1usize..=9).prop_flat_map(|(num_edges, n)| {
        (
            proptest::collection::vec(
                (0.05f32..4.0, proptest::collection::vec(-2.0f32..2.0, 6), 1u32..16),
                n..=n,
            ),
            proptest::collection::vec(0usize..num_edges, n..=n),
            Just(num_edges),
        )
    })
}

/// Splits six raw values into the two tensors every fold contribution
/// carries (one matrix, one vector — shapes must survive the partial
/// frames too).
fn tensors_of(vals: &[f32]) -> Vec<Tensor> {
    vec![
        Tensor::from_vec(vals[..4].to_vec(), &[2, 2]).unwrap(),
        Tensor::from_vec(vals[4..].to_vec(), &[2]).unwrap(),
    ]
}

fn bits(tensors: &[Tensor]) -> Vec<Vec<u32>> {
    tensors.iter().map(|t| t.data().iter().map(|v| v.to_bits()).collect()).collect()
}

fn perf_strategy(n: usize) -> impl Strategy<Value = Vec<ClientPerf>> {
    proptest::collection::vec((0.01f64..2.0, 1u32..64), n..=n).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(id, (full, remaining))| ClientPerf {
                id,
                t123: 0.4 * full,
                t4: 0.6 * full,
                feature_only: 0.8 * full,
                remaining,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 invariants for arbitrary clusters: receivers are used at
    /// most once, senders are exactly the above-mct clients, and every
    /// offload point respects the remaining-update bounds.
    #[test]
    fn scheduler_invariants(perfs in perf_strategy(9), f in 0.0f64..2.0) {
        let n = perfs.len();
        let sim: Vec<Vec<f64>> =
            (0..n).map(|i| (0..n).map(|j| ((i * 7 + j * 13) % 5) as f64 / 2.0).collect()).collect();
        let sched = schedule(&perfs, &sim, f, OpVariant::Unimodal);

        // mct really is the mean.
        let mean = perfs.iter().map(|p| p.estimated_completion()).sum::<f64>() / n as f64;
        prop_assert!((sched.mct - mean).abs() < 1e-9 * (1.0 + mean));

        // Each receiver serves at most one straggler; nobody sends to self.
        let mut receivers: Vec<usize> = sched.assignments.iter().map(|a| a.receiver).collect();
        receivers.sort_unstable();
        let before = receivers.len();
        receivers.dedup();
        prop_assert_eq!(receivers.len(), before, "receiver reused");
        for a in &sched.assignments {
            prop_assert_ne!(a.sender, a.receiver);
            let sender = &perfs[a.sender];
            let receiver = &perfs[a.receiver];
            prop_assert!(sender.estimated_completion() > sched.mct, "sender below mct");
            prop_assert!(receiver.estimated_completion() <= sched.mct, "receiver above mct");
            prop_assert!(a.offload_batches >= 1);
            prop_assert!(a.offload_batches <= sender.remaining.min(receiver.remaining));
        }

        // Senders ∪ unmatched = the above-mct set, exactly once each.
        let mut touched: Vec<usize> = sched
            .assignments
            .iter()
            .map(|a| a.sender)
            .chain(sched.unmatched_senders.iter().copied())
            .collect();
        touched.sort_unstable();
        let mut expected: Vec<usize> = perfs
            .iter()
            .filter(|p| p.estimated_completion() > sched.mct)
            .map(|p| p.id)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(touched, expected);
    }

    /// The unimodal calc_op truly minimises its objective over all d.
    #[test]
    fn calc_op_is_optimal(
        ta in 0.01f64..2.0, tb in 0.01f64..2.0, xb_frac in 0.1f64..1.0,
        ra in 1u32..200, rb in 1u32..200,
    ) {
        let xb = tb * xb_frac;
        let (ct, d) = calc_op(ta, tb, xb, ra, rb);
        prop_assert!(d >= 1 && d <= ra.min(rb));
        let objective = |d: u32| {
            (f64::from(ra - d) * ta).max(f64::from(rb) * tb + f64::from(d) * xb)
        };
        prop_assert!((ct - objective(d)).abs() < 1e-9 * (1.0 + ct));
        for cand in 1..=ra.min(rb) {
            prop_assert!(ct <= objective(cand) + 1e-9, "d={cand} beats reported optimum");
        }
    }

    /// Timing-mode engine: round durations never increase when every
    /// client gets uniformly faster.
    #[test]
    fn faster_cluster_is_never_slower(seed in 0u64..50, boost in 1.05f64..3.0) {
        let base_speeds = vec![0.2, 0.3, 0.4, 0.5];
        let config = |speeds: Vec<f64>| ExperimentConfig {
            dataset: DataConfig {
                spec: DatasetSpec::MnistLike,
                train_size: 96,
                test_size: 16,
                seed,
            },
            arch: ModelArch::MnistCnn,
            partition: Scheme::Iid,
            num_clients: 4,
            clients_per_round: 4,
            rounds: 2,
            local_updates: 8,
            batch_size: 8,
            speeds,
            mode: Mode::Timing,
            seed,
            ..ExperimentConfig::default()
        };
        let slow =
            Engine::new(config(base_speeds.clone()), FlStrategy::FedAvg).unwrap().run().unwrap();
        let fast_speeds: Vec<f64> =
            base_speeds.iter().map(|s| (s * boost).min(1.0)).collect();
        let fast = Engine::new(config(fast_speeds), FlStrategy::FedAvg).unwrap().run().unwrap();
        prop_assert!(fast.total_time() <= slow.total_time());
    }

    /// The hierarchical weighted-mean contract: for any cohort split,
    /// any censored subset and any (staleness-discounted) weights, the
    /// per-edge partial fold — serial, on the work-stealing pool, and
    /// routed through the codec's partial-aggregate wire frames — is
    /// bit-identical to the serial single-site reference evaluation of
    /// the same tree. With a single edge the tree *is* the legacy flat
    /// chain, so the historical single-federator bits are pinned too.
    #[test]
    fn hierarchical_weighted_fold_matches_reference((raw, edges, num_edges) in fold_case()) {
        let contributions: Vec<(f32, Vec<Tensor>)> =
            raw.iter().map(|(w, vals, _)| (*w, tensors_of(vals))).collect();
        let expected = fold::weighted_reference(&contributions, &edges, num_edges);

        let serial = fold::weighted_hierarchical(&contributions, &edges, num_edges, false);
        prop_assert_eq!(bits(&serial), bits(&expected), "serial hierarchical != reference");

        let parallel = fold::weighted_hierarchical(&contributions, &edges, num_edges, true);
        prop_assert_eq!(bits(&parallel), bits(&expected), "parallel hierarchical != reference");

        let wired = fold::merge_weighted_partials(fold::through_wire(
            fold::weighted_edge_partials(&contributions, &edges, num_edges, false),
        ));
        prop_assert_eq!(bits(&wired), bits(&expected), "codec-framed hierarchical != reference");

        if num_edges == 1 {
            let flat = fold::weighted_flat(&contributions);
            prop_assert_eq!(bits(&flat), bits(&expected), "single-edge tree != legacy flat chain");
        }
    }

    /// The same contract for FedNova: normalized deltas and τ-effective
    /// partials fold per edge and merge at the root bit-identically to
    /// the single-site reference, across serial/parallel/wire-framed
    /// evaluation, with the single-edge tree matching the legacy flat
    /// FedNova chain.
    #[test]
    fn hierarchical_fednova_fold_matches_reference(
        (raw, edges, num_edges) in fold_case(),
        global_vals in proptest::collection::vec(-2.0f32..2.0, 6..=6),
    ) {
        let global = tensors_of(&global_vals);
        let contributions: Vec<(f32, Vec<Tensor>, u32)> =
            raw.iter().map(|(n, vals, tau)| (*n, tensors_of(vals), *tau)).collect();
        let expected = fold::fednova_reference(&global, &contributions, &edges, num_edges);

        let serial = fold::fednova_hierarchical(&global, &contributions, &edges, num_edges, false);
        prop_assert_eq!(bits(&serial), bits(&expected), "serial fednova != reference");

        let parallel = fold::fednova_hierarchical(&global, &contributions, &edges, num_edges, true);
        prop_assert_eq!(bits(&parallel), bits(&expected), "parallel fednova != reference");

        let wired = fold::merge_fednova_partials(
            &global,
            fold::through_wire(fold::fednova_edge_partials(
                &global, &contributions, &edges, num_edges, false,
            )),
        );
        prop_assert_eq!(bits(&wired), bits(&expected), "codec-framed fednova != reference");

        if num_edges == 1 {
            let flat = fold::fednova_flat(&global, &contributions);
            prop_assert_eq!(bits(&flat), bits(&expected), "single-edge tree != legacy flat chain");
        }
    }

    /// Aergia in timing mode never takes longer than FedAvg on the same
    /// cluster (offloading can only shorten the critical path; when it
    /// cannot help, nothing is offloaded).
    #[test]
    fn aergia_is_never_slower_than_fedavg(seed in 0u64..30) {
        let speeds = aergia_simnet::cluster::uniform_speeds(6, 0.1, 1.0, seed);
        let config = ExperimentConfig {
            dataset: DataConfig {
                spec: DatasetSpec::MnistLike,
                train_size: 96,
                test_size: 16,
                seed,
            },
            arch: ModelArch::MnistCnn,
            partition: Scheme::Iid,
            num_clients: 6,
            clients_per_round: 6,
            rounds: 3,
            local_updates: 32,
            batch_size: 8,
            speeds,
            mode: Mode::Timing,
            seed,
            ..ExperimentConfig::default()
        };
        let fedavg =
            Engine::new(config.clone(), FlStrategy::FedAvg).unwrap().run().unwrap();
        let aergia =
            Engine::new(config, FlStrategy::aergia_default()).unwrap().run().unwrap();
        // Allow a tiny tolerance for the extra control messages.
        let tolerance = 1.02;
        prop_assert!(
            aergia.total_time().as_secs_f64() <= fedavg.total_time().as_secs_f64() * tolerance,
            "Aergia {} vs FedAvg {}",
            aergia.total_time(),
            fedavg.total_time()
        );
    }
}
