//! Serial vs parallel engine equivalence: the parallel execution runtime
//! must change wall-clock only, never results.
//!
//! The engine executes each round as a virtual-time event plan followed by
//! a numeric execution stage; the `parallelism` knob only decides how many
//! clients' plans execute concurrently. These tests pin the contract: a
//! fully parallel run (`parallelism = 0`, work-stealing pool) is
//! **bit-identical** — losses, accuracies, durations, offload pairs and
//! final weights — to a fully serial run (`parallelism = 1`) of the same
//! configuration.
//!
//! The tests live in their own integration binary so they can size the
//! global pool via `AERGIA_THREADS` before its first use, guaranteeing
//! real worker threads even on single-core CI runners.

use aergia::config::ExperimentConfig;
use aergia::engine::Engine;
use aergia::metrics::RunResult;
use aergia::strategy::Strategy;
use aergia_bench::{base_config, Scale};
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;

/// Forces the lazily-built global pool to have real workers, even on a
/// single-core runner where `available_parallelism` would report 1.
///
/// Every test calls this first, and the `Once` makes the single
/// `set_var` a synchronization point: libtest's worker threads block
/// here until the environment mutation is complete, so no thread ever
/// reads `AERGIA_THREADS` while another mutates it (glibc's `environ`
/// is not safe to read during a concurrent `setenv`).
fn force_pool_workers() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| std::env::set_var("AERGIA_THREADS", "4"));
}

/// The fig6 smoke configuration: heterogeneous speeds, real training.
fn fig6_smoke(seed: u64) -> ExperimentConfig {
    base_config(Scale::Smoke, DatasetSpec::MnistLike, ModelArch::MnistCnn, seed)
}

fn run_with_parallelism(
    mut config: ExperimentConfig,
    strategy: Strategy,
    p: usize,
) -> (RunResult, Vec<aergia_tensor::Tensor>) {
    config.parallelism = p;
    let mut engine = Engine::new(config, strategy).expect("valid config");
    let result = engine.run().expect("run succeeds");
    (result, engine.global_weights().to_vec())
}

fn assert_bit_identical(
    serial: &(RunResult, Vec<aergia_tensor::Tensor>),
    parallel: &(RunResult, Vec<aergia_tensor::Tensor>),
    label: &str,
) {
    let (rs, ws) = serial;
    let (rp, wp) = parallel;
    assert_eq!(rs.rounds.len(), rp.rounds.len(), "{label}: round count");
    for (a, b) in rs.rounds.iter().zip(&rp.rounds) {
        assert_eq!(a.duration, b.duration, "{label}: round {} duration", a.round);
        assert_eq!(a.participants, b.participants, "{label}: round {} participants", a.round);
        assert_eq!(a.offloads, b.offloads, "{label}: round {} offload pairs", a.round);
        assert_eq!(a.dropped, b.dropped, "{label}: round {} dropped set", a.round);
        assert_eq!(
            a.train_loss.to_bits(),
            b.train_loss.to_bits(),
            "{label}: round {} loss ({} vs {})",
            a.round,
            a.train_loss,
            b.train_loss
        );
        assert_eq!(
            a.test_accuracy.to_bits(),
            b.test_accuracy.to_bits(),
            "{label}: round {} accuracy ({} vs {})",
            a.round,
            a.test_accuracy,
            b.test_accuracy
        );
    }
    assert_eq!(rs.final_accuracy.to_bits(), rp.final_accuracy.to_bits(), "{label}: final accuracy");
    assert_eq!(ws.len(), wp.len(), "{label}: weight tensor count");
    for (i, (a, b)) in ws.iter().zip(wp).enumerate() {
        assert_eq!(a.dims(), b.dims(), "{label}: tensor {i} shape");
        let identical = a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(identical, "{label}: tensor {i} diverged between serial and parallel");
    }
}

#[test]
fn aergia_parallel_round_is_bit_identical_to_serial() {
    force_pool_workers();
    // Aergia on heterogeneous smoke fig6: exercises freezing, the frozen
    // snapshot handoff and receiver-side offload training (stage 2).
    let strategy = Strategy::aergia_default();
    let serial = run_with_parallelism(fig6_smoke(33), strategy, 1);
    let parallel = run_with_parallelism(fig6_smoke(33), strategy, 0);
    assert_bit_identical(&serial, &parallel, "aergia");
    let total: usize = serial.0.rounds.iter().map(|r| r.offloads.len()).sum();
    assert!(total > 0, "fig6 smoke must exercise the offload path for this test to mean much");
}

#[test]
fn workspace_reuse_is_bit_identical_across_serial_parallel_and_reruns() {
    force_pool_workers();
    // Per-client workspaces persist across rounds (models reset via
    // `set_weights`, tensor buffers recycled). This must be invisible to
    // results along every axis: a fresh engine re-run of the same seed
    // (cold workspaces) must match bit-for-bit, and so must the parallel
    // execution of the same plans over warm workspaces.
    let strategy = Strategy::aergia_default();
    let serial = run_with_parallelism(fig6_smoke(35), strategy, 1);
    let rerun = run_with_parallelism(fig6_smoke(35), strategy, 1);
    assert_bit_identical(&serial, &rerun, "workspace rerun");
    let parallel = run_with_parallelism(fig6_smoke(35), strategy, 0);
    assert_bit_identical(&serial, &parallel, "workspace parallel");
    let total: usize = serial.0.rounds.iter().map(|r| r.offloads.len()).sum();
    assert!(total > 0, "seed 35 must exercise offloads so stage-2 workspace reuse is covered");
}

#[test]
fn compressed_runs_are_bit_identical_across_parallelism() {
    force_pool_workers();
    // The lossy codecs thread extra state through a round (quantized
    // reconstructions; top-k bases and per-client error-feedback
    // residuals). All codec work happens at round start, between the two
    // execution stages and in the fixed-order fold — never inside the
    // parallel tasks — so a compressed fig6-smoke must stay bit-identical
    // between serial and work-stealing execution too.
    let strategy = Strategy::aergia_default();
    for codec in [
        aergia_codec::CodecConfig::QuantI8,
        aergia_codec::CodecConfig::TopKDelta { keep_permille: 100 },
    ] {
        let mut config = fig6_smoke(33);
        config.codec = codec;
        let serial = run_with_parallelism(config.clone(), strategy, 1);
        let parallel = run_with_parallelism(config, strategy, 0);
        assert_bit_identical(&serial, &parallel, codec.name());
        let total: usize = serial.0.rounds.iter().map(|r| r.offloads.len()).sum();
        assert!(total > 0, "{codec}: offload path must be exercised");
    }
}

#[test]
fn scenario_async_churn_byzantine_is_bit_identical_across_parallelism() {
    force_pool_workers();
    // The scenario engine's whole design rests on keeping every stochastic
    // decision in the value-free event stage: availability and crash draws
    // come from a dedicated churn stream before the round starts, the
    // async fold follows virtual-clock arrival order, and Byzantine
    // perturbations are seeded by (seed, round, client). Composing all
    // three axes must therefore stay bit-identical between serial
    // execution and the AERGIA_THREADS=4 work-stealing pool.
    use aergia::prelude::*;
    use aergia_simnet::SimDuration;
    let scenario = ScenarioConfig {
        aggregation: AggregationMode::BufferedAsync {
            max_staleness: SimDuration::from_secs_f64(1e6),
            mixing: 0.5,
        },
        churn: Some(ChurnConfig {
            leave_prob: 0.15,
            rejoin_prob: 0.7,
            crash_prob: 0.45,
            offload_policy: OffloadPolicy::Reschedule,
        }),
        byzantine: vec![ByzantineSpec { client: 0, attack: Attack::SignFlip }],
        ..ScenarioConfig::default()
    };
    let strategy = Strategy::aergia_default();
    let mut config = fig6_smoke(36);
    config.scenario = scenario;
    let serial = run_with_parallelism(config.clone(), strategy, 1);
    let parallel = run_with_parallelism(config, strategy, 0);
    assert_bit_identical(&serial, &parallel, "scenario async+churn+byzantine");
    let crashed: usize = serial.0.rounds.iter().map(|r| r.dropped.len()).sum();
    assert!(crashed > 0, "seed 36 must fire at least one mid-round crash to cover churn");
}

/// FNV-1a over every observable bit of a run: per-round metrics (losses
/// and accuracies as raw float bits), schedule outcomes, and the final
/// global weights. Two runs fingerprint equal iff they are byte-identical
/// in everything the determinism suite pins.
fn fingerprint(result: &RunResult, weights: &[aergia_tensor::Tensor]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in &result.rounds {
        eat(&r.round.to_le_bytes());
        eat(&r.duration.as_micros().to_le_bytes());
        eat(&r.train_loss.to_bits().to_le_bytes());
        eat(&r.test_accuracy.to_bits().to_le_bytes());
        eat(&r.bytes_on_wire.to_le_bytes());
        for &p in &r.participants {
            eat(&(p as u64).to_le_bytes());
        }
        for &(src, dst) in &r.offloads {
            eat(&(src as u64).to_le_bytes());
            eat(&(dst as u64).to_le_bytes());
        }
        for &d in &r.dropped {
            eat(&(d as u64).to_le_bytes());
        }
    }
    eat(&result.final_accuracy.to_bits().to_le_bytes());
    for t in weights {
        for &d in t.dims() {
            eat(&(d as u64).to_le_bytes());
        }
        for &v in t.data() {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    h
}

/// Cross-dispatch determinism: a run forced onto the scalar GEMM tier
/// (`AERGIA_FORCE_SCALAR=1`) and a run with the cross-client fused
/// forward disabled (`AERGIA_NO_FUSE=1`) must both be byte-identical to
/// the default SIMD run — same losses, same schedules, same final weight
/// bits. The ISA choice is latched per process (`OnceLock`), so the
/// alternate configurations run in child processes of this same test
/// binary that print their fingerprint for the parent to compare.
#[test]
fn forced_scalar_and_unfused_runs_match_simd_bit_for_bit() {
    force_pool_workers();
    let strategy = Strategy::aergia_default();
    if std::env::var_os("AERGIA_DET_FINGERPRINT").is_some() {
        // Child mode: the dispatch-altering variables are already set in
        // the environment; just run and report.
        let (result, weights) = run_with_parallelism(fig6_smoke(33), strategy, 1);
        println!("AERGIA_FINGERPRINT={:016x}", fingerprint(&result, &weights));
        return;
    }
    let (result, weights) = run_with_parallelism(fig6_smoke(33), strategy, 1);
    let expected = fingerprint(&result, &weights);
    for (label, var) in
        [("forced-scalar", "AERGIA_FORCE_SCALAR"), ("fusion-disabled", "AERGIA_NO_FUSE")]
    {
        let exe = std::env::current_exe().expect("test binary path");
        let out = std::process::Command::new(exe)
            .args([
                "--exact",
                "forced_scalar_and_unfused_runs_match_simd_bit_for_bit",
                "--nocapture",
                "--test-threads",
                "1",
            ])
            .env("AERGIA_DET_FINGERPRINT", "1")
            .env(var, "1")
            .output()
            .expect("spawn fingerprint child");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "{label} child failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // libtest may glue its own "test <name> ... " prefix onto the
        // child's line, so find the marker anywhere.
        let got = stdout
            .lines()
            .find_map(|l| l.split("AERGIA_FINGERPRINT=").nth(1))
            .and_then(|hex| u64::from_str_radix(hex.trim(), 16).ok())
            .unwrap_or_else(|| panic!("{label} child printed no fingerprint:\n{stdout}"));
        assert_eq!(
            got, expected,
            "{label} run diverged from the default SIMD run (fingerprint {got:016x} vs {expected:016x})"
        );
    }
}

fn run_with_topology(
    mut config: ExperimentConfig,
    strategy: Strategy,
    p: usize,
    topology: aergia::topology::TopologyBuilder,
) -> (RunResult, Vec<aergia_tensor::Tensor>) {
    config.parallelism = p;
    let mut engine = Engine::with_topology(config, strategy, topology).expect("valid config");
    let result = engine.run().expect("run succeeds");
    (result, engine.global_weights().to_vec())
}

#[test]
fn two_tier_aggregation_is_bit_identical_across_parallelism_and_reruns() {
    force_pool_workers();
    // Hierarchical aggregation: the cohort layout *defines* the fold
    // tree, so the contract is self-consistency — the per-edge partial
    // folds running concurrently on the work-stealing pool, a serial
    // run, and a fresh rerun of the same seed must all produce the same
    // bits. (Hierarchical == single-site reference evaluation of the
    // same tree is property-tested in `proptests.rs`; the TCP leg lives
    // in the net crate's scenario-parity suite.)
    let cohorts = || aergia::topology::TopologyBuilder::new().edge_cohorts(3, 33);
    let strategy = Strategy::FedAvg;
    let serial = run_with_topology(fig6_smoke(33), strategy, 1, cohorts());
    let rerun = run_with_topology(fig6_smoke(33), strategy, 1, cohorts());
    assert_bit_identical(&serial, &rerun, "two-tier rerun");
    let parallel = run_with_topology(fig6_smoke(33), strategy, 0, cohorts());
    assert_bit_identical(&serial, &parallel, "two-tier parallel");
}

#[test]
fn root_only_folds_ignore_the_cohort_layout() {
    force_pool_workers();
    // Robust rules (coordinate median / trimmed mean) and the buffered
    // asynchronous fold are order statistics / arrival-ordered merges —
    // they cannot be pre-folded per edge, so they run at the root and a
    // cohort layout must change *nothing*: two-tier == flat bit-for-bit.
    use aergia::prelude::*;
    use aergia_simnet::SimDuration;
    let scenarios = [
        ScenarioConfig {
            robust: RobustAggregation::TrimmedMean { trim_ratio: 0.3 },
            byzantine: vec![ByzantineSpec { client: 0, attack: Attack::SignFlip }],
            ..ScenarioConfig::default()
        },
        ScenarioConfig {
            aggregation: AggregationMode::BufferedAsync {
                max_staleness: SimDuration::from_secs_f64(1e6),
                mixing: 0.5,
            },
            ..ScenarioConfig::default()
        },
    ];
    for (i, scenario) in scenarios.into_iter().enumerate() {
        let mut config = fig6_smoke(36);
        config.scenario = scenario;
        let flat = run_with_parallelism(config.clone(), Strategy::FedAvg, 0);
        let cohorts = aergia::topology::TopologyBuilder::new().edge_cohorts(3, 36);
        let two_tier = run_with_topology(config, Strategy::FedAvg, 0, cohorts);
        assert_bit_identical(&flat, &two_tier, &format!("root-only scenario {i}"));
    }
}

/// A cohort-sampled configuration big enough that the pool actually
/// churns: 512 simulated clients, 16 trained per round, pool capped at
/// `max_resident`.
fn cohort_sampled_timing(seed: u64, max_resident: usize) -> ExperimentConfig {
    use aergia::config::ClientStateMode;
    ExperimentConfig {
        dataset: aergia_data::DataConfig {
            // At least one sample per client: the resident IID split and
            // the strided shards then have identical shard sizes, which
            // is what makes the two schedules comparable bit-for-bit.
            spec: DatasetSpec::MnistLike,
            train_size: 512,
            test_size: 16,
            seed,
        },
        arch: ModelArch::MnistCnn,
        num_clients: 512,
        clients_per_round: 16,
        rounds: 4,
        local_updates: 8,
        batch_size: 8,
        speeds: aergia_simnet::cluster::uniform_speeds(512, 0.1, 1.0, seed),
        mode: aergia::config::Mode::Timing,
        client_state: ClientStateMode::CohortSampled { max_resident },
        seed,
        ..ExperimentConfig::default()
    }
}

#[test]
fn cohort_sampled_timing_matches_resident_and_survives_eviction() {
    force_pool_workers();
    use aergia::config::ClientStateMode;
    // Under an IID split in timing mode the strided shards have exactly
    // the shard sizes of the materialised split, so the compact
    // cohort-sampled population must replay the resident schedule
    // bit-for-bit — while holding only the participation cap resident.
    let resident = {
        let mut config = cohort_sampled_timing(44, usize::MAX);
        config.client_state = ClientStateMode::Resident;
        run_with_parallelism(config, Strategy::FedAvg, 1)
    };
    let sampled = run_with_parallelism(cohort_sampled_timing(44, 64), Strategy::FedAvg, 1);
    assert_bit_identical(&resident, &sampled, "cohort-sampled vs resident (timing)");
    let peak = sampled.0.rounds.iter().map(|r| r.pool.resident_clients).max().unwrap();
    assert!(peak <= 64, "pool must stay within its cap, saw {peak} resident");
    assert!(
        sampled.0.rounds.iter().all(|r| r.pool.resident_bytes < 1 << 20),
        "timing-mode resident bytes must stay tiny"
    );
    // A tiny cap forces eviction and rebuild every round; timing-mode
    // results must not care (draw streams are never consumed), and the
    // parallel run over the churning pool must match too.
    let tiny = run_with_parallelism(cohort_sampled_timing(44, 16), Strategy::FedAvg, 1);
    assert_bit_identical(&resident, &tiny, "tiny-cap eviction (timing)");
    let tiny_parallel = run_with_parallelism(cohort_sampled_timing(44, 16), Strategy::FedAvg, 0);
    assert_bit_identical(&tiny, &tiny_parallel, "tiny-cap parallel");
    let misses: u32 = tiny.0.rounds.iter().map(|r| r.pool.misses).sum();
    let rebuilds: u32 = tiny.0.rounds.iter().map(|r| r.pool.rebuilds).sum();
    assert!(misses > 0, "a 512-client population must miss the 16-entry pool");
    assert!(rebuilds > 0, "evicted clients must be rebuilt on reselection");
}

#[test]
fn cohort_sampled_real_mode_is_bit_identical_across_parallelism_and_reruns() {
    force_pool_workers();
    use aergia::config::ClientStateMode;
    // Real training over a churning pool: evicted clients hand their
    // workspace buffers to the next admission (dirty tensors, stale
    // fused slabs), and rebuilt batchers restart their draw streams.
    // None of that may leak into results: serial, work-stealing and a
    // cold rerun must agree bit-for-bit.
    let config = || ExperimentConfig {
        dataset: aergia_data::DataConfig {
            spec: DatasetSpec::MnistLike,
            train_size: 96,
            test_size: 16,
            seed: 45,
        },
        arch: ModelArch::MnistCnn,
        num_clients: 12,
        clients_per_round: 4,
        rounds: 3,
        local_updates: 6,
        batch_size: 8,
        speeds: aergia_simnet::cluster::uniform_speeds(12, 0.2, 1.0, 45),
        client_state: ClientStateMode::CohortSampled { max_resident: 4 },
        seed: 45,
        ..ExperimentConfig::default()
    };
    let serial = run_with_parallelism(config(), Strategy::FedAvg, 1);
    let rerun = run_with_parallelism(config(), Strategy::FedAvg, 1);
    assert_bit_identical(&serial, &rerun, "cohort-sampled real rerun");
    let parallel = run_with_parallelism(config(), Strategy::FedAvg, 0);
    assert_bit_identical(&serial, &parallel, "cohort-sampled real parallel");
    let rebuilds: u32 = serial.0.rounds.iter().map(|r| r.pool.rebuilds).sum();
    assert!(rebuilds > 0, "the 4-entry pool over 12 clients must rebuild evictees");
}

#[test]
fn fedavg_parallel_round_is_bit_identical_to_serial_and_capped() {
    force_pool_workers();
    let strategy = Strategy::FedAvg;
    let serial = run_with_parallelism(fig6_smoke(34), strategy, 1);
    let parallel = run_with_parallelism(fig6_smoke(34), strategy, 0);
    assert_bit_identical(&serial, &parallel, "fedavg");
    // A capped fan-out (2 concurrent clients) must also be identical.
    let capped = run_with_parallelism(fig6_smoke(34), strategy, 2);
    assert_bit_identical(&serial, &capped, "fedavg capped");
}
