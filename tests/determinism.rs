//! Serial vs parallel engine equivalence: the parallel execution runtime
//! must change wall-clock only, never results.
//!
//! The engine executes each round as a virtual-time event plan followed by
//! a numeric execution stage; the `parallelism` knob only decides how many
//! clients' plans execute concurrently. These tests pin the contract: a
//! fully parallel run (`parallelism = 0`, work-stealing pool) is
//! **bit-identical** — losses, accuracies, durations, offload pairs and
//! final weights — to a fully serial run (`parallelism = 1`) of the same
//! configuration.
//!
//! The tests live in their own integration binary so they can size the
//! global pool via `AERGIA_THREADS` before its first use, guaranteeing
//! real worker threads even on single-core CI runners.

use aergia::config::ExperimentConfig;
use aergia::engine::Engine;
use aergia::metrics::RunResult;
use aergia::strategy::Strategy;
use aergia_bench::{base_config, Scale};
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;

/// Forces the lazily-built global pool to have real workers, even on a
/// single-core runner where `available_parallelism` would report 1.
///
/// Every test calls this first, and the `Once` makes the single
/// `set_var` a synchronization point: libtest's worker threads block
/// here until the environment mutation is complete, so no thread ever
/// reads `AERGIA_THREADS` while another mutates it (glibc's `environ`
/// is not safe to read during a concurrent `setenv`).
fn force_pool_workers() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| std::env::set_var("AERGIA_THREADS", "4"));
}

/// The fig6 smoke configuration: heterogeneous speeds, real training.
fn fig6_smoke(seed: u64) -> ExperimentConfig {
    base_config(Scale::Smoke, DatasetSpec::MnistLike, ModelArch::MnistCnn, seed)
}

fn run_with_parallelism(
    mut config: ExperimentConfig,
    strategy: Strategy,
    p: usize,
) -> (RunResult, Vec<aergia_tensor::Tensor>) {
    config.parallelism = p;
    let mut engine = Engine::new(config, strategy).expect("valid config");
    let result = engine.run().expect("run succeeds");
    (result, engine.global_weights().to_vec())
}

fn assert_bit_identical(
    serial: &(RunResult, Vec<aergia_tensor::Tensor>),
    parallel: &(RunResult, Vec<aergia_tensor::Tensor>),
    label: &str,
) {
    let (rs, ws) = serial;
    let (rp, wp) = parallel;
    assert_eq!(rs.rounds.len(), rp.rounds.len(), "{label}: round count");
    for (a, b) in rs.rounds.iter().zip(&rp.rounds) {
        assert_eq!(a.duration, b.duration, "{label}: round {} duration", a.round);
        assert_eq!(a.participants, b.participants, "{label}: round {} participants", a.round);
        assert_eq!(a.offloads, b.offloads, "{label}: round {} offload pairs", a.round);
        assert_eq!(a.dropped, b.dropped, "{label}: round {} dropped set", a.round);
        assert_eq!(
            a.train_loss.to_bits(),
            b.train_loss.to_bits(),
            "{label}: round {} loss ({} vs {})",
            a.round,
            a.train_loss,
            b.train_loss
        );
        assert_eq!(
            a.test_accuracy.to_bits(),
            b.test_accuracy.to_bits(),
            "{label}: round {} accuracy ({} vs {})",
            a.round,
            a.test_accuracy,
            b.test_accuracy
        );
    }
    assert_eq!(rs.final_accuracy.to_bits(), rp.final_accuracy.to_bits(), "{label}: final accuracy");
    assert_eq!(ws.len(), wp.len(), "{label}: weight tensor count");
    for (i, (a, b)) in ws.iter().zip(wp).enumerate() {
        assert_eq!(a.dims(), b.dims(), "{label}: tensor {i} shape");
        let identical = a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(identical, "{label}: tensor {i} diverged between serial and parallel");
    }
}

#[test]
fn aergia_parallel_round_is_bit_identical_to_serial() {
    force_pool_workers();
    // Aergia on heterogeneous smoke fig6: exercises freezing, the frozen
    // snapshot handoff and receiver-side offload training (stage 2).
    let strategy = Strategy::aergia_default();
    let serial = run_with_parallelism(fig6_smoke(33), strategy, 1);
    let parallel = run_with_parallelism(fig6_smoke(33), strategy, 0);
    assert_bit_identical(&serial, &parallel, "aergia");
    let total: usize = serial.0.rounds.iter().map(|r| r.offloads.len()).sum();
    assert!(total > 0, "fig6 smoke must exercise the offload path for this test to mean much");
}

#[test]
fn workspace_reuse_is_bit_identical_across_serial_parallel_and_reruns() {
    force_pool_workers();
    // Per-client workspaces persist across rounds (models reset via
    // `set_weights`, tensor buffers recycled). This must be invisible to
    // results along every axis: a fresh engine re-run of the same seed
    // (cold workspaces) must match bit-for-bit, and so must the parallel
    // execution of the same plans over warm workspaces.
    let strategy = Strategy::aergia_default();
    let serial = run_with_parallelism(fig6_smoke(35), strategy, 1);
    let rerun = run_with_parallelism(fig6_smoke(35), strategy, 1);
    assert_bit_identical(&serial, &rerun, "workspace rerun");
    let parallel = run_with_parallelism(fig6_smoke(35), strategy, 0);
    assert_bit_identical(&serial, &parallel, "workspace parallel");
    let total: usize = serial.0.rounds.iter().map(|r| r.offloads.len()).sum();
    assert!(total > 0, "seed 35 must exercise offloads so stage-2 workspace reuse is covered");
}

#[test]
fn compressed_runs_are_bit_identical_across_parallelism() {
    force_pool_workers();
    // The lossy codecs thread extra state through a round (quantized
    // reconstructions; top-k bases and per-client error-feedback
    // residuals). All codec work happens at round start, between the two
    // execution stages and in the fixed-order fold — never inside the
    // parallel tasks — so a compressed fig6-smoke must stay bit-identical
    // between serial and work-stealing execution too.
    let strategy = Strategy::aergia_default();
    for codec in [
        aergia_codec::CodecConfig::QuantI8,
        aergia_codec::CodecConfig::TopKDelta { keep_permille: 100 },
    ] {
        let mut config = fig6_smoke(33);
        config.codec = codec;
        let serial = run_with_parallelism(config.clone(), strategy, 1);
        let parallel = run_with_parallelism(config, strategy, 0);
        assert_bit_identical(&serial, &parallel, codec.name());
        let total: usize = serial.0.rounds.iter().map(|r| r.offloads.len()).sum();
        assert!(total > 0, "{codec}: offload path must be exercised");
    }
}

#[test]
fn scenario_async_churn_byzantine_is_bit_identical_across_parallelism() {
    force_pool_workers();
    // The scenario engine's whole design rests on keeping every stochastic
    // decision in the value-free event stage: availability and crash draws
    // come from a dedicated churn stream before the round starts, the
    // async fold follows virtual-clock arrival order, and Byzantine
    // perturbations are seeded by (seed, round, client). Composing all
    // three axes must therefore stay bit-identical between serial
    // execution and the AERGIA_THREADS=4 work-stealing pool.
    use aergia::prelude::*;
    use aergia_simnet::SimDuration;
    let scenario = ScenarioConfig {
        aggregation: AggregationMode::BufferedAsync {
            max_staleness: SimDuration::from_secs_f64(1e6),
            mixing: 0.5,
        },
        churn: Some(ChurnConfig {
            leave_prob: 0.15,
            rejoin_prob: 0.7,
            crash_prob: 0.45,
            offload_policy: OffloadPolicy::Reschedule,
        }),
        byzantine: vec![ByzantineSpec { client: 0, attack: Attack::SignFlip }],
        ..ScenarioConfig::default()
    };
    let strategy = Strategy::aergia_default();
    let mut config = fig6_smoke(36);
    config.scenario = scenario;
    let serial = run_with_parallelism(config.clone(), strategy, 1);
    let parallel = run_with_parallelism(config, strategy, 0);
    assert_bit_identical(&serial, &parallel, "scenario async+churn+byzantine");
    let crashed: usize = serial.0.rounds.iter().map(|r| r.dropped.len()).sum();
    assert!(crashed > 0, "seed 36 must fire at least one mid-round crash to cover churn");
}

#[test]
fn fedavg_parallel_round_is_bit_identical_to_serial_and_capped() {
    force_pool_workers();
    let strategy = Strategy::FedAvg;
    let serial = run_with_parallelism(fig6_smoke(34), strategy, 1);
    let parallel = run_with_parallelism(fig6_smoke(34), strategy, 0);
    assert_bit_identical(&serial, &parallel, "fedavg");
    // A capped fan-out (2 concurrent clients) must also be identical.
    let capped = run_with_parallelism(fig6_smoke(34), strategy, 2);
    assert_bit_identical(&serial, &capped, "fedavg capped");
}
