//! Kill-and-resume bit-identity: a checkpointed run, interrupted at any
//! round boundary and restored into a *fresh* engine, must finish with
//! exactly the rounds, accuracies and global weights of an uninterrupted
//! run — under every wire codec, for the stateful strategies, and through
//! an actual file on disk.

use aergia::config::ExperimentConfig;
use aergia::engine::{CheckpointError, Engine};
use aergia::metrics::RunResult;
use aergia::strategy::Strategy;
use aergia_bench::{base_config, Scale};
use aergia_codec::CodecConfig;
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;

fn fig6_smoke(seed: u64) -> ExperimentConfig {
    let mut config = base_config(Scale::Smoke, DatasetSpec::MnistLike, ModelArch::MnistCnn, seed);
    // Serial execution keeps this suite independent of the pool size.
    config.parallelism = 1;
    config
}

fn assert_same_run(
    a: &RunResult,
    b: &RunResult,
    wa: &[aergia_tensor::Tensor],
    wb: &[aergia_tensor::Tensor],
    label: &str,
) {
    assert_eq!(a.rounds.len(), b.rounds.len(), "{label}: round count");
    for (x, y) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(x.duration, y.duration, "{label}: round {} duration", x.round);
        assert_eq!(x.participants, y.participants, "{label}: round {} participants", x.round);
        assert_eq!(x.offloads, y.offloads, "{label}: round {} offloads", x.round);
        assert_eq!(x.dropped, y.dropped, "{label}: round {} dropped", x.round);
        assert_eq!(x.bytes_on_wire, y.bytes_on_wire, "{label}: round {} bytes", x.round);
        assert_eq!(
            x.train_loss.to_bits(),
            y.train_loss.to_bits(),
            "{label}: round {} loss",
            x.round
        );
        assert_eq!(
            x.test_accuracy.to_bits(),
            y.test_accuracy.to_bits(),
            "{label}: round {} accuracy",
            x.round
        );
    }
    assert_eq!(a.pretraining, b.pretraining, "{label}: pretraining");
    assert_eq!(a.finished_at, b.finished_at, "{label}: finish time");
    assert_eq!(a.final_accuracy.to_bits(), b.final_accuracy.to_bits(), "{label}: final accuracy");
    assert_eq!(wa.len(), wb.len(), "{label}: weight tensor count");
    for (i, (x, y)) in wa.iter().zip(wb).enumerate() {
        let same = x.data().iter().zip(y.data()).all(|(p, q)| p.to_bits() == q.to_bits());
        assert!(same, "{label}: global tensor {i} diverged after resume");
    }
}

/// Runs uninterrupted; then replays the same experiment with a kill after
/// `kill_after` rounds, a checkpoint hand-off into a fresh engine, and a
/// resume to completion. Both must match bit for bit.
fn kill_and_resume(config: ExperimentConfig, strategy: Strategy, kill_after: u32, label: &str) {
    let mut straight = Engine::new(config.clone(), strategy).expect("valid config");
    let straight_result = straight.run().expect("uninterrupted run");

    let mut first = Engine::new(config.clone(), strategy).expect("valid config");
    let mut progress = first.start_progress();
    for _ in 0..kill_after {
        first.step_round(&mut progress).expect("pre-kill round");
    }
    let checkpoint = first.save_checkpoint(&progress);
    drop(first); // the kill

    let mut resumed = Engine::new(config, strategy).expect("valid config");
    let restored = resumed.restore_checkpoint(&checkpoint).expect("restore");
    assert_eq!(restored.next_round, kill_after, "{label}: restored round position");
    let resumed_result = resumed.resume_run(restored).expect("resumed run");

    assert_same_run(
        &straight_result,
        &resumed_result,
        straight.global_weights(),
        resumed.global_weights(),
        label,
    );
}

#[test]
fn dense_aergia_run_resumes_bit_identically() {
    kill_and_resume(fig6_smoke(41), Strategy::aergia_default(), 1, "dense/aergia");
}

#[test]
fn topk_delta_stream_state_survives_the_checkpoint() {
    // TopKDelta is the hardest case: the downlink base and the per-client
    // uplink residuals must cross the checkpoint exactly, or every round
    // after the resume diverges.
    let mut config = fig6_smoke(42);
    config.codec = CodecConfig::TopKDelta { keep_permille: 100 };
    kill_and_resume(config, Strategy::aergia_default(), 2, "topk/aergia");
}

#[test]
fn quant_and_tifl_state_survive_the_checkpoint() {
    let mut config = fig6_smoke(43);
    config.codec = CodecConfig::QuantI8;
    // TiFL adds adaptive selection state (credits, per-tier accuracy, its
    // own RNG) on top of the batcher/selection streams.
    kill_and_resume(config, Strategy::tifl_default(), 1, "quant/tifl");
}

#[test]
fn cohort_sampled_pool_state_survives_the_checkpoint() {
    use aergia::config::ClientStateMode;
    // The compact client-state pool crosses the checkpoint as one chunk
    // per *resident* entry (not per simulated client) plus the eviction
    // clock. A churning pool — 12 clients through 4 slots, so evictions
    // and rebuilds happen on both sides of the kill — must resume
    // bit-for-bit: the same clients resident, the same stamps, the same
    // batcher draw positions.
    let mut config = fig6_smoke(48);
    config.num_clients = 12;
    config.clients_per_round = 4;
    config.speeds = aergia_simnet::cluster::uniform_speeds(12, 0.2, 1.0, 48);
    config.client_state = ClientStateMode::CohortSampled { max_resident: 4 };
    kill_and_resume(config, Strategy::FedAvg, 2, "cohort-sampled pool");
}

#[test]
fn two_tier_cohort_layout_survives_the_checkpoint() {
    // Hierarchical aggregation: the cohort layout defines the fold tree,
    // so the checkpoint pins its fingerprint and a resumed run must keep
    // folding on exactly the same tree.
    let config = fig6_smoke(49);
    let strategy = Strategy::FedAvg;
    let cohorts = || aergia::topology::TopologyBuilder::new().edge_cohorts(3, 49);

    let mut straight =
        Engine::with_topology(config.clone(), strategy, cohorts()).expect("valid config");
    let straight_result = straight.run().expect("uninterrupted run");

    let mut first =
        Engine::with_topology(config.clone(), strategy, cohorts()).expect("valid config");
    let mut progress = first.start_progress();
    first.step_round(&mut progress).expect("round 0");
    let checkpoint = first.save_checkpoint(&progress);
    drop(first);

    // A flat engine must refuse the two-tier checkpoint outright…
    let mut flat = Engine::new(config.clone(), strategy).expect("valid config");
    assert!(matches!(
        flat.restore_checkpoint(&checkpoint),
        Err(CheckpointError::Mismatch("cohort layout"))
    ));

    // …and the matching layout resumes bit-for-bit.
    let mut resumed = Engine::with_topology(config, strategy, cohorts()).expect("valid config");
    let restored = resumed.restore_checkpoint(&checkpoint).expect("restore");
    let resumed_result = resumed.resume_run(restored).expect("resumed run");
    assert_same_run(
        &straight_result,
        &resumed_result,
        straight.global_weights(),
        resumed.global_weights(),
        "two-tier",
    );
}

#[test]
fn checkpoint_file_on_disk_resumes_the_run() {
    let config = fig6_smoke(44);
    let strategy = Strategy::aergia_default();
    let path = std::env::temp_dir().join(format!("aergia_ckpt_{}.bin", std::process::id()));

    let mut straight = Engine::new(config.clone(), strategy).expect("valid config");
    let straight_result = straight.run().expect("uninterrupted run");

    let mut first = Engine::new(config.clone(), strategy).expect("valid config");
    let mut progress = first.start_progress();
    first.step_round(&mut progress).expect("round 0");
    first.save_checkpoint_to(&path, &progress).expect("write checkpoint");
    drop(first);

    let mut resumed = Engine::new(config, strategy).expect("valid config");
    let restored = resumed.restore_checkpoint_from(&path).expect("read checkpoint");
    let resumed_result = resumed.resume_run(restored).expect("resumed run");
    std::fs::remove_file(&path).ok();

    assert_same_run(
        &straight_result,
        &resumed_result,
        straight.global_weights(),
        resumed.global_weights(),
        "disk",
    );
}

#[test]
fn run_checkpointed_leaves_a_resumable_file_after_every_round() {
    let config = fig6_smoke(45);
    let strategy = Strategy::aergia_default();
    let path = std::env::temp_dir().join(format!("aergia_ckpt_auto_{}.bin", std::process::id()));

    let mut engine = Engine::new(config.clone(), strategy).expect("valid config");
    let result = engine.run_checkpointed(&path).expect("checkpointed run");

    // The file left behind is the *final* checkpoint: restoring it yields
    // a completed progress whose records match the returned result.
    let mut reader = Engine::new(config, strategy).expect("valid config");
    let restored = reader.restore_checkpoint_from(&path).expect("read final checkpoint");
    std::fs::remove_file(&path).ok();
    assert_eq!(restored.next_round as usize, result.rounds.len());
    assert_eq!(restored.rounds.len(), result.rounds.len());
    for (a, b) in restored.rounds.iter().zip(&result.rounds) {
        assert_eq!(a, b, "restored record differs from the live record");
    }
}

#[test]
fn foreign_checkpoints_are_rejected() {
    let strategy = Strategy::aergia_default();
    let mut engine = Engine::new(fig6_smoke(46), strategy).expect("valid config");
    let mut progress = engine.start_progress();
    engine.step_round(&mut progress).expect("round 0");
    let checkpoint = engine.save_checkpoint(&progress);

    // Different seed → different fingerprint.
    let mut other = Engine::new(fig6_smoke(47), strategy).expect("valid config");
    assert!(matches!(
        other.restore_checkpoint(&checkpoint),
        Err(CheckpointError::Mismatch("config/strategy fingerprint"))
    ));

    // Different strategy, same config.
    let mut other = Engine::new(fig6_smoke(46), Strategy::FedAvg).expect("valid config");
    assert!(matches!(other.restore_checkpoint(&checkpoint), Err(CheckpointError::Mismatch(_))));

    // Garbage bytes.
    let mut same = Engine::new(fig6_smoke(46), strategy).expect("valid config");
    assert!(matches!(
        same.restore_checkpoint(b"definitely not a checkpoint"),
        Err(CheckpointError::Codec(_))
    ));
}
