//! Counting-allocator proof of the zero-allocation training hot path.
//!
//! The workspace-backed batch loop (`Cnn::train_batch_with` +
//! `Batcher::next_batch_into`) claims that, once its `Workspace` and batch
//! buffers are warm, a steady-state training step never touches the heap.
//! This binary installs a counting global allocator and asserts exactly
//! that: after a warm-up pass, whole batches — data loading, all four
//! training phases across every layer type, the fused SGD update — run at
//! **zero** allocations.
//!
//! Everything lives in one `#[test]` because the counter is process-global:
//! concurrent tests would pollute each other's deltas.
//!
//! The assertions diff the *per-thread* counter, not the global one: the
//! libtest harness thread blocks on a channel while this test runs, and
//! `std::sync::mpmc`'s first blocking `recv` lazily allocates its parking
//! context — at a point that races with the measured windows below. The
//! training loop itself is single-threaded here (all shapes sit under the
//! matmul parallel threshold), so the calling thread's counter is exactly
//! the hot path's allocation count.

use aergia_data::batcher::Batcher;
use aergia_data::{DataConfig, DatasetSpec};
use aergia_nn::layer::{Conv2d, Flatten, Layer, Linear, MaxPool2d, Relu, ResidualBlock};
use aergia_nn::optim::{Sgd, SgdConfig};
use aergia_nn::Cnn;
use aergia_runtime::alloc_count::CountingAllocator;
use aergia_tensor::{Tensor, Workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// A model covering all six layer types (ResidualBlock with projection,
/// so its 1×1 skip convolution runs too). Sizes stay under the matmul
/// parallel threshold so everything runs inline on this thread.
fn full_model(seed: u64) -> Cnn {
    let mut rng = StdRng::seed_from_u64(seed);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(1, 4, 3, 1, 1, 8, 8, &mut rng)),
        Box::new(Relu::new()),
        Box::new(ResidualBlock::new(4, 6, 8, 8, &mut rng)),
        Box::new(MaxPool2d::new(2, 2, 8, 8)),
        Box::new(Flatten::new()),
        Box::new(Linear::new(6 * 4 * 4, 3, &mut rng)),
    ];
    Cnn::new(layers, 4, 3).expect("valid split")
}

#[allow(clippy::too_many_arguments)]
fn run_batches(
    model: &mut Cnn,
    batcher: &mut Batcher,
    train: &aergia_data::synth::Dataset,
    opt: &mut Sgd,
    ws: &mut Workspace,
    x: &mut Tensor,
    y: &mut Vec<usize>,
    n: usize,
) {
    for _ in 0..n {
        batcher.next_batch_into(train, x, y);
        model.train_batch_with(x, y, opt, ws).expect("train batch");
    }
}

#[test]
fn steady_state_training_loop_is_allocation_free() {
    let (train, _) =
        DataConfig { spec: DatasetSpec::MnistLike, train_size: 24, test_size: 4, seed: 5 }
            .generate_pair();
    // MnistLike images are 1x28x28; the model above expects 8x8, so use a
    // model matching the dataset for the end-to-end loop instead.
    let mut rng = StdRng::seed_from_u64(11);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(1, 4, 3, 1, 1, 28, 28, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2, 28, 28)),
        Box::new(Flatten::new()),
        Box::new(Linear::new(4 * 14 * 14, train.num_classes(), &mut rng)),
    ];
    let mut model = Cnn::new(layers, 3, train.num_classes()).expect("valid split");
    let mut opt = Sgd::new(SgdConfig::default());
    let mut ws = Workspace::new();
    let mut batcher = Batcher::new((0..train.len()).collect(), 4, 9);
    let mut x = Tensor::default();
    let mut y = Vec::new();

    // Warm-up: populates the workspace pools, the batch buffers and the
    // layer caches.
    run_batches(&mut model, &mut batcher, &train, &mut opt, &mut ws, &mut x, &mut y, 2);

    let before = ALLOC.thread_allocations();
    run_batches(&mut model, &mut batcher, &train, &mut opt, &mut ws, &mut x, &mut y, 4);
    assert_eq!(
        ALLOC.thread_allocations() - before,
        0,
        "steady-state batch loop (data loading + 4 phases + SGD) must not allocate"
    );

    // Freezing the feature section changes the control flow (bf skipped);
    // the workspace must absorb that without fresh allocations too.
    model.freeze_features();
    let before = ALLOC.thread_allocations();
    run_batches(&mut model, &mut batcher, &train, &mut opt, &mut ws, &mut x, &mut y, 2);
    assert_eq!(ALLOC.thread_allocations() - before, 0, "frozen-feature batches must not allocate");
    model.unfreeze_features();
    let before = ALLOC.thread_allocations();
    run_batches(&mut model, &mut batcher, &train, &mut opt, &mut ws, &mut x, &mut y, 2);
    assert_eq!(ALLOC.thread_allocations() - before, 0, "unfrozen batches after a freeze cycle");

    // All six layer types (incl. ResidualBlock with projection) on a fixed
    // batch, with the heavier optimizer paths: momentum velocities and a
    // FedProx proximal anchor are part of the steady state once warm.
    let mut model = full_model(21);
    let mut opt = Sgd::new(SgdConfig { lr: 0.01, momentum: 0.9, weight_decay: 1e-4 });
    opt.set_prox(0.05, model.weights());
    let mut ws = Workspace::new();
    let mut bx = Tensor::zeros(&[2, 1, 8, 8]);
    aergia_tensor::init::normal(&mut bx, &mut StdRng::seed_from_u64(3), 0.0, 1.0);
    let by = vec![0usize, 2];
    for _ in 0..2 {
        model.train_batch_with(&bx, &by, &mut opt, &mut ws).expect("warm-up");
    }
    let before = ALLOC.thread_allocations();
    for _ in 0..4 {
        model.train_batch_with(&bx, &by, &mut opt, &mut ws).expect("steady state");
    }
    assert_eq!(
        ALLOC.thread_allocations() - before,
        0,
        "all-layer model with momentum + weight decay + FedProx must not allocate"
    );
}
