//! Scenario-engine semantics: buffered-async staleness handling, client
//! churn (including checkpoint resume), Byzantine robustness degeneracies
//! and the configuration validation surface.
//!
//! Bit-level serial-vs-parallel equivalence for scenarios lives in the
//! `determinism` suite; TCP parity lives in `crates/net/tests/`. This
//! suite pins the *semantics*: what each knob does to a run, and that
//! every scenario run is a pure function of its configuration.

use aergia::config::{ConfigError, ExperimentConfig};
use aergia::engine::Engine;
use aergia::engine::EngineError;
use aergia::metrics::RunResult;
use aergia::prelude::{
    AggregationMode, Attack, ByzantineSpec, ChurnConfig, OffloadPolicy, RobustAggregation,
    ScenarioConfig,
};
use aergia::strategy::Strategy;
use aergia_bench::{base_config, Scale};
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;
use aergia_simnet::SimDuration;
use aergia_tensor::Tensor;

fn fig6_smoke(seed: u64) -> ExperimentConfig {
    let mut config = base_config(Scale::Smoke, DatasetSpec::MnistLike, ModelArch::MnistCnn, seed);
    // Serial execution keeps this suite independent of the pool size; the
    // determinism suite owns the parallel-equivalence claims.
    config.parallelism = 1;
    config
}

fn run(config: ExperimentConfig, strategy: Strategy) -> (RunResult, Vec<Tensor>) {
    let mut engine = Engine::new(config, strategy).expect("valid config");
    let result = engine.run().expect("run succeeds");
    (result, engine.global_weights().to_vec())
}

fn weights_identical(a: &[Tensor], b: &[Tensor]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.dims() == y.dims()
                && x.data().iter().zip(y.data()).all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

fn assert_same_rounds(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.rounds.len(), b.rounds.len(), "{label}: round count");
    for (x, y) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(x.duration, y.duration, "{label}: round {} duration", x.round);
        assert_eq!(x.participants, y.participants, "{label}: round {} participants", x.round);
        assert_eq!(x.offloads, y.offloads, "{label}: round {} offloads", x.round);
        assert_eq!(x.dropped, y.dropped, "{label}: round {} dropped", x.round);
        assert_eq!(
            x.train_loss.to_bits(),
            y.train_loss.to_bits(),
            "{label}: round {} loss",
            x.round
        );
        assert_eq!(
            x.test_accuracy.to_bits(),
            y.test_accuracy.to_bits(),
            "{label}: round {} accuracy",
            x.round
        );
    }
    assert_eq!(a.final_accuracy.to_bits(), b.final_accuracy.to_bits(), "{label}: final accuracy");
}

// ---------------------------------------------------------------------------
// Buffered-async aggregation
// ---------------------------------------------------------------------------

#[test]
fn all_stale_async_round_leaves_the_global_model_bitwise_unchanged() {
    // With a 1 µs staleness horizon every update in a real round arrives
    // past it, its FedLGA weight is exactly 0, and the fold must skip it
    // entirely — not multiply by a tiny factor. The global model after
    // three such rounds is the *bitwise* initial model (the documented
    // "stalled round" contract for `staleness_weight`'s hard zero).
    let mut config = fig6_smoke(51);
    config.scenario.aggregation =
        AggregationMode::BufferedAsync { max_staleness: SimDuration::from_micros(1), mixing: 1.0 };
    let initial = Engine::new(config.clone(), Strategy::FedAvg)
        .expect("valid config")
        .global_weights()
        .to_vec();
    let (result, finals) = run(config, Strategy::FedAvg);
    assert_eq!(result.rounds.len(), 3, "rounds still complete (and are measured)");
    assert!(
        weights_identical(&initial, &finals),
        "a fully stale round must stall, not nudge, the global model"
    );
}

#[test]
fn async_runs_are_reproducible_and_differ_from_synchronous() {
    let strategy = Strategy::FedAvg;
    let mut config = fig6_smoke(52);
    config.scenario.aggregation = AggregationMode::BufferedAsync {
        max_staleness: SimDuration::from_secs_f64(1e6),
        mixing: 0.5,
    };
    let (ra, wa) = run(config.clone(), strategy);
    let (rb, wb) = run(config, strategy);
    assert_same_rounds(&ra, &rb, "async rerun");
    assert!(weights_identical(&wa, &wb), "async rerun must be bit-identical");

    let (_, sync_weights) = run(fig6_smoke(52), strategy);
    assert!(
        !weights_identical(&wa, &sync_weights),
        "staleness-weighted folding must actually change the aggregate"
    );
}

// ---------------------------------------------------------------------------
// Churn
// ---------------------------------------------------------------------------

fn churn_config(seed: u64, policy: OffloadPolicy) -> ExperimentConfig {
    let mut config = fig6_smoke(seed);
    config.scenario.churn = Some(ChurnConfig {
        leave_prob: 0.15,
        rejoin_prob: 0.7,
        crash_prob: 0.45,
        offload_policy: policy,
    });
    config
}

#[test]
fn churn_traces_replay_bit_identically_and_crashes_censor_clients() {
    for policy in [OffloadPolicy::Drop, OffloadPolicy::Reschedule] {
        let config = churn_config(53, policy);
        let (ra, wa) = run(config.clone(), Strategy::aergia_default());
        let (rb, wb) = run(config, Strategy::aergia_default());
        assert_same_rounds(&ra, &rb, "churn rerun");
        assert!(weights_identical(&wa, &wb), "churn rerun must be bit-identical ({policy:?})");
        let crashed: usize = ra.rounds.iter().map(|r| r.dropped.len()).sum();
        assert!(crashed > 0, "seed 53 must fire at least one crash under {policy:?}");
    }
}

#[test]
fn offload_policies_produce_different_but_each_deterministic_schedules() {
    // Drop abandons a crashed straggler's remaining offload; Reschedule
    // re-signs it to the fastest idle peer. Under a seed where a serving
    // receiver crashes, the two policies must visibly diverge (extra
    // offload pair or different durations) while each stays a pure
    // function of its configuration.
    let mut diverged = false;
    for seed in [53, 54, 55, 56, 57] {
        let (rd, wd) = run(churn_config(seed, OffloadPolicy::Drop), Strategy::aergia_default());
        let (rr, wr) =
            run(churn_config(seed, OffloadPolicy::Reschedule), Strategy::aergia_default());
        let pairs = |r: &RunResult| -> Vec<_> {
            r.rounds.iter().flat_map(|x| x.offloads.iter().copied()).collect()
        };
        if pairs(&rd) != pairs(&rr) || !weights_identical(&wd, &wr) {
            diverged = true;
            break;
        }
    }
    assert!(diverged, "no seed in the sweep made Drop and Reschedule observable — dead knob?");
}

#[test]
fn churn_checkpoint_resume_is_bit_identical() {
    // The CHRN chunk must restore both the availability vector and the
    // churn RNG position, otherwise the resumed half of the run samples a
    // different trace. Kill after round 1, resume in a fresh engine, and
    // require the full-run results bit for bit.
    let config = churn_config(53, OffloadPolicy::Reschedule);
    let strategy = Strategy::aergia_default();
    let mut straight = Engine::new(config.clone(), strategy).expect("valid config");
    let straight_result = straight.run().expect("uninterrupted run");

    let mut first = Engine::new(config.clone(), strategy).expect("valid config");
    let mut progress = first.start_progress();
    first.step_round(&mut progress).expect("pre-kill round");
    let checkpoint = first.save_checkpoint(&progress);
    drop(first);

    let mut resumed = Engine::new(config, strategy).expect("valid config");
    let restored = resumed.restore_checkpoint(&checkpoint).expect("restore");
    assert_eq!(restored.next_round, 1, "restored round position");
    let resumed_result = resumed.resume_run(restored).expect("resumed run");

    assert_same_rounds(&straight_result, &resumed_result, "churn resume");
    assert!(
        weights_identical(straight.global_weights(), resumed.global_weights()),
        "resumed churn run must land on the same global model"
    );
}

// ---------------------------------------------------------------------------
// Byzantine clients and robust aggregation
// ---------------------------------------------------------------------------

#[test]
fn sign_flip_attacks_move_the_aggregate_and_median_resists_them() {
    let strategy = Strategy::FedAvg;
    let (_, clean) = run(fig6_smoke(58), strategy);

    let mut attacked = fig6_smoke(58);
    attacked.scenario.byzantine = vec![ByzantineSpec { client: 0, attack: Attack::SignFlip }];
    let (_, poisoned_mean) = run(attacked.clone(), strategy);
    assert!(
        !weights_identical(&clean, &poisoned_mean),
        "a sign-flipped update must perturb the plain mean"
    );

    // Coordinate-median discards the single outlier per coordinate, so the
    // robust aggregate must land closer to the clean model than the
    // poisoned mean does.
    attacked.scenario.robust = RobustAggregation::CoordinateMedian;
    let (_, robust) = run(attacked, strategy);
    let dist = |a: &[Tensor], b: &[Tensor]| -> f64 {
        a.iter().zip(b).map(|(x, y)| f64::from(x.sub(y).sq_norm())).sum::<f64>()
    };
    assert!(
        dist(&robust, &clean) < dist(&poisoned_mean, &clean),
        "coordinate-median must blunt a single sign-flipper better than the mean"
    );
}

#[test]
fn scaled_noise_attack_is_seeded_and_reproducible() {
    let mut config = fig6_smoke(59);
    config.scenario.byzantine =
        vec![ByzantineSpec { client: 1, attack: Attack::ScaledNoise { scale: 4.0 } }];
    let (ra, wa) = run(config.clone(), Strategy::FedAvg);
    let (rb, wb) = run(config, Strategy::FedAvg);
    assert_same_rounds(&ra, &rb, "scaled-noise rerun");
    assert!(weights_identical(&wa, &wb), "noise must come from the (seed, round, client) stream");

    let (_, clean) = run(fig6_smoke(59), Strategy::FedAvg);
    assert!(!weights_identical(&wa, &clean), "scaled noise must actually perturb the run");
}

#[test]
fn saturated_trimmed_mean_degenerates_to_the_coordinate_median() {
    // Smoke scale has 4 clients, so `trim_ratio = 0.49` trims one per side
    // — exactly the saturation point `(k − 1) / 2` the median uses. Even
    // with a Byzantine near-majority (2 of 4), the two robust modes must
    // therefore produce bit-identical runs: the documented degeneracy.
    let byzantine = vec![
        ByzantineSpec { client: 0, attack: Attack::SignFlip },
        ByzantineSpec { client: 2, attack: Attack::ScaledNoise { scale: 8.0 } },
    ];
    let mut trimmed = fig6_smoke(60);
    trimmed.scenario.robust = RobustAggregation::TrimmedMean { trim_ratio: 0.49 };
    trimmed.scenario.byzantine = byzantine.clone();
    let mut median = fig6_smoke(60);
    median.scenario.robust = RobustAggregation::CoordinateMedian;
    median.scenario.byzantine = byzantine;

    let (rt, wt) = run(trimmed, Strategy::FedAvg);
    let (rm, wm) = run(median, Strategy::FedAvg);
    assert_same_rounds(&rt, &rm, "trimmed-mean saturation");
    assert!(
        weights_identical(&wt, &wm),
        "trim_ratio 0.49 over 4 clients must be bit-equal to the coordinate median"
    );
}

// ---------------------------------------------------------------------------
// Validation surface
// ---------------------------------------------------------------------------

#[test]
fn invalid_scenarios_are_rejected_at_engine_construction() {
    let strategy = Strategy::FedAvg;
    let bad = |mutate: fn(&mut ScenarioConfig), what: &str| {
        let mut config = fig6_smoke(61);
        mutate(&mut config.scenario);
        match Engine::new(config, strategy) {
            Err(EngineError::Config(ConfigError::BadScenario(_))) => {}
            other => panic!("{what}: expected BadScenario, got {other:?}"),
        }
    };
    bad(
        |s| {
            s.aggregation = AggregationMode::BufferedAsync {
                max_staleness: SimDuration::from_micros(0),
                mixing: 0.5,
            }
        },
        "zero staleness horizon",
    );
    bad(
        |s| {
            s.aggregation = AggregationMode::BufferedAsync {
                max_staleness: SimDuration::from_secs_f64(10.0),
                mixing: 1.5,
            }
        },
        "mixing above 1",
    );
    bad(
        |s| {
            s.aggregation = AggregationMode::BufferedAsync {
                max_staleness: SimDuration::from_secs_f64(10.0),
                mixing: 0.5,
            };
            s.robust = RobustAggregation::CoordinateMedian;
        },
        "async plus robust",
    );
    bad(|s| s.robust = RobustAggregation::TrimmedMean { trim_ratio: 0.5 }, "trim ratio at 0.5");
    bad(
        |s| {
            s.churn = Some(ChurnConfig {
                leave_prob: 1.2,
                rejoin_prob: 0.5,
                crash_prob: 0.0,
                offload_policy: OffloadPolicy::Drop,
            })
        },
        "leave_prob above 1",
    );
    bad(
        |s| s.byzantine = vec![ByzantineSpec { client: 99, attack: Attack::SignFlip }],
        "byzantine id out of range",
    );
    bad(
        |s| {
            s.byzantine = vec![
                ByzantineSpec { client: 1, attack: Attack::SignFlip },
                ByzantineSpec { client: 1, attack: Attack::ScaledNoise { scale: 1.0 } },
            ]
        },
        "duplicate byzantine id",
    );
    bad(
        |s| {
            s.byzantine =
                vec![ByzantineSpec { client: 1, attack: Attack::ScaledNoise { scale: 0.0 } }]
        },
        "non-positive noise scale",
    );
}

#[test]
fn strategy_scenario_conflicts_are_rejected() {
    let mut config = fig6_smoke(62);
    config.scenario.aggregation = AggregationMode::BufferedAsync {
        max_staleness: SimDuration::from_secs_f64(10.0),
        mixing: 0.5,
    };
    assert!(
        matches!(
            Engine::new(config, Strategy::FedNova),
            Err(EngineError::Config(ConfigError::BadScenario(_)))
        ),
        "FedNova's normalized fold cannot run under buffered-async"
    );

    let mut config = fig6_smoke(62);
    config.scenario.churn = Some(ChurnConfig {
        leave_prob: 0.1,
        rejoin_prob: 0.5,
        crash_prob: 0.1,
        offload_policy: OffloadPolicy::Drop,
    });
    assert!(
        matches!(
            Engine::new(config, Strategy::Tifl { tiers: 2 }),
            Err(EngineError::Config(ConfigError::BadScenario(_)))
        ),
        "TiFL's tier bookkeeping assumes a stable client population"
    );
}
