//! End-to-end integration tests: full FL runs across every crate in the
//! workspace (data generation → partitioning → enclave → engine →
//! aggregation → evaluation).

use aergia::prelude::*;
use aergia_data::partition::Scheme;
use aergia_data::{DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;
use aergia_simnet::SimDuration;

fn small_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        dataset: DataConfig { spec: DatasetSpec::MnistLike, train_size: 240, test_size: 120, seed },
        arch: ModelArch::MnistCnn,
        partition: Scheme::Iid,
        num_clients: 4,
        clients_per_round: 4,
        rounds: 4,
        local_updates: 10,
        batch_size: 8,
        speeds: vec![0.15, 0.4, 0.7, 1.0],
        mode: Mode::Real,
        seed,
        ..ExperimentConfig::default()
    }
}

#[test]
fn every_strategy_learns_above_chance() {
    for strategy in [
        Strategy::FedAvg,
        Strategy::FedProx { mu: 0.05 },
        Strategy::FedNova,
        Strategy::tifl_default(),
        Strategy::aergia_default(),
    ] {
        let result = Engine::new(small_config(31), strategy)
            .unwrap_or_else(|e| panic!("{} failed to build: {e}", strategy.name()))
            .run()
            .unwrap_or_else(|e| panic!("{} failed to run: {e}", strategy.name()));
        assert_eq!(result.rounds.len(), 4, "{} lost rounds", strategy.name());
        assert!(
            result.final_accuracy > 0.2,
            "{} reached only {:.3} accuracy (chance = 0.1)",
            strategy.name(),
            result.final_accuracy
        );
        assert!(result.rounds.iter().all(|r| r.duration > SimDuration::ZERO));
    }
}

#[test]
fn runs_are_deterministic_given_a_seed() {
    let a = Engine::new(small_config(55), Strategy::aergia_default()).unwrap().run().unwrap();
    let b = Engine::new(small_config(55), Strategy::aergia_default()).unwrap().run().unwrap();
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.total_time(), b.total_time());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.duration, rb.duration);
        assert_eq!(ra.offloads, rb.offloads);
        assert_eq!(ra.test_accuracy, rb.test_accuracy);
    }
    // Different seeds change data and init, hence the accuracy trajectory
    // (round *durations* may coincide: they depend only on speeds). Late
    // rounds can saturate at 1.0 on the small synthetic set, so compare
    // the whole trajectory, not just the final value.
    let c = Engine::new(small_config(56), Strategy::aergia_default()).unwrap().run().unwrap();
    let trajectory =
        |r: &[aergia::RoundRecord]| -> Vec<f64> { r.iter().map(|x| x.test_accuracy).collect() };
    assert_ne!(
        trajectory(&a.rounds),
        trajectory(&c.rounds),
        "different seeds should differ somewhere in the trajectory"
    );
}

#[test]
fn aergia_beats_fedavg_on_heterogeneous_clusters() {
    // Timing mode: pure protocol comparison on a straggler-heavy cluster.
    let mut config = small_config(77);
    config.mode = Mode::Timing;
    config.num_clients = 8;
    config.clients_per_round = 8;
    config.rounds = 6;
    config.local_updates = 32;
    config.speeds = vec![0.1, 0.15, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

    let fedavg = Engine::new(config.clone(), Strategy::FedAvg).unwrap().run().unwrap();
    let aergia = Engine::new(config, Strategy::aergia_default()).unwrap().run().unwrap();

    assert!(aergia.total_offloads() > 0, "no offloads happened");
    assert!(
        aergia.total_time() < fedavg.total_time(),
        "Aergia ({}) not faster than FedAvg ({})",
        aergia.total_time(),
        fedavg.total_time()
    );
}

#[test]
fn homogeneous_clusters_trigger_no_offloading() {
    let mut config = small_config(88);
    config.mode = Mode::Timing;
    config.speeds = vec![0.5; 4];
    let result = Engine::new(config, Strategy::aergia_default()).unwrap().run().unwrap();
    assert_eq!(result.total_offloads(), 0, "equal clients must not offload");
}

#[test]
fn tight_deadlines_drop_updates_and_cost_accuracy() {
    let mut no_deadline = small_config(99);
    no_deadline.partition = Scheme::NonIid { classes_per_client: 2 };
    let mut tight = no_deadline.clone();

    let baseline = Engine::new(no_deadline, Strategy::FedAvg).unwrap().run().unwrap();
    assert_eq!(baseline.total_dropped(), 0);

    // A deadline at ~30% of the observed round time must drop stragglers.
    let cutoff = baseline.mean_round_secs() * 0.3;
    tight.rounds = 4;
    let clipped = Engine::new(
        tight,
        Strategy::DeadlineFedAvg { deadline: SimDuration::from_secs_f64(cutoff) },
    )
    .unwrap()
    .run()
    .unwrap();

    assert!(clipped.total_dropped() > 0, "tight deadline dropped nobody");
    assert!(clipped.total_time() < baseline.total_time());
    assert!(
        clipped.final_accuracy <= baseline.final_accuracy + 0.05,
        "dropping non-IID stragglers should not help accuracy ({} vs {})",
        clipped.final_accuracy,
        baseline.final_accuracy
    );
}

#[test]
fn offloaded_rounds_record_sender_receiver_pairs() {
    let mut config = small_config(123);
    config.speeds = vec![0.1, 0.9, 0.95, 1.0];
    config.local_updates = 12;
    let result = Engine::new(config, Strategy::aergia_default()).unwrap().run().unwrap();
    assert!(result.total_offloads() > 0);
    for round in &result.rounds {
        for &(sender, receiver) in &round.offloads {
            assert_ne!(sender, receiver);
            assert!(sender < 4 && receiver < 4);
            // Client 0 is by far the slowest: it must be the sender.
            assert_eq!(sender, 0, "only the straggler should offload");
        }
    }
}

#[test]
fn fednova_and_fedprox_change_the_trajectory_but_stay_sound() {
    let fedavg = Engine::new(small_config(7), Strategy::FedAvg).unwrap().run().unwrap();
    let prox = Engine::new(small_config(7), Strategy::FedProx { mu: 0.5 }).unwrap().run().unwrap();
    // A strong proximal term restrains local drift, so the trajectories
    // must actually differ while both remain sound. Both can saturate at
    // 1.0 by the last round, so compare round by round.
    let accuracies =
        |r: &aergia::RunResult| -> Vec<f64> { r.rounds.iter().map(|x| x.test_accuracy).collect() };
    assert_ne!(accuracies(&fedavg), accuracies(&prox));
    assert!(prox.final_accuracy > 0.15);
}

#[test]
fn timing_mode_reports_nan_accuracy_but_full_timings() {
    let mut config = small_config(5);
    config.mode = Mode::Timing;
    let result = Engine::new(config, Strategy::FedAvg).unwrap().run().unwrap();
    assert!(result.final_accuracy.is_nan());
    assert!(result.rounds.iter().all(|r| r.test_accuracy.is_nan()));
    assert!(result.total_time() > SimDuration::ZERO);
}

#[test]
fn slower_clusters_take_proportionally_longer() {
    let run_with_speed = |speed: f64| {
        let mut config = small_config(66);
        config.mode = Mode::Timing;
        config.speeds = vec![speed; 4];
        Engine::new(config, Strategy::FedAvg).unwrap().run().unwrap().total_time().as_secs_f64()
    };
    let fast = run_with_speed(1.0);
    let slow = run_with_speed(0.25);
    let ratio = slow / fast;
    assert!((3.0..5.0).contains(&ratio), "expected ≈4× slowdown at quarter speed, got {ratio:.2}×");
}

#[test]
fn mid_run_slowdown_turns_a_client_into_a_straggler() {
    // The paper's transient-load scenario (§3.1): a client that slows down
    // mid-training starts offloading in later rounds.
    let mut config = small_config(44);
    config.mode = Mode::Timing;
    config.speeds = vec![0.9, 0.9, 0.9, 0.9];
    config.local_updates = 24;
    let mut engine = Engine::new(config, Strategy::aergia_default()).unwrap();

    let mut progress = engine.start_progress();
    engine.step_round(&mut progress).unwrap();
    let before = &progress.rounds[0];
    assert!(before.offloads.is_empty(), "balanced cluster should not offload");

    // Mid-run transient load has no declarative equivalent — the
    // deprecated shim is the supported path for this scenario.
    #[allow(deprecated)]
    engine.set_client_speed(2, 0.1);
    engine.step_round(&mut progress).unwrap();
    let (before, after) = (&progress.rounds[0], &progress.rounds[1]);
    assert!(
        after.offloads.iter().any(|&(sender, _)| sender == 2),
        "slowed client 2 should offload, got {:?}",
        after.offloads
    );
    assert!(after.duration > before.duration);
}
