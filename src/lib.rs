//! Workspace umbrella crate: hosts the runnable `examples/` and the
//! cross-crate integration tests in `tests/`. See the individual crates
//! (`aergia`, `aergia-nn`, ...) for the library APIs.
