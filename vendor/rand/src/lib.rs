//! Vendored, offline subset of the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace ships
//! this minimal API-compatible shim instead of the real dependency. Only
//! the surface the Aergia crates use is provided: [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), the [`Rng`]/[`RngExt`] traits
//! with `random`, `random_range` and `random_bool`, [`SeedableRng`] with
//! `seed_from_u64`, and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is part of the contract: every generator is seeded
//! explicitly and the stream for a given seed never changes.

/// Low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker trait mirroring `rand::Rng`; blanket-implemented for every
/// [`RngCore`], so generators and `&mut` borrows of them both qualify.
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from their full domain
/// (`rng.random::<T>()`). Floats sample from `[0, 1)`.
pub trait Random {
    /// Draws one value from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (`rng.random_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64/i64 inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Random::random(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Random::random(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// High-level sampling methods, mirroring `rand`'s extension trait.
pub trait RngExt: Rng {
    /// Samples a value uniformly from `T`'s full domain (floats: `[0, 1)`).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p = {p} out of [0, 1]");
        f64::random(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 exactly like `rand`'s `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state — a shim-only extension used by the
        /// workspace's resumable checkpoints (the real `rand` crate has no
        /// equivalent; swap-in code must serialize a seed instead).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`], continuing the
        /// stream exactly where the snapshot left it.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling (shuffling).

    use super::{Rng, RngExt};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn state_snapshot_resumes_the_stream_exactly() {
        let mut a = StdRng::seed_from_u64(123);
        for _ in 0..10 {
            let _: u64 = a.random();
        }
        let snap = a.state();
        let tail: Vec<u64> = (0..20).map(|_| a.random()).collect();
        let mut b = StdRng::from_state(snap);
        let replay: Vec<u64> = (0..20).map(|_| b.random()).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.random::<u64>()).collect::<Vec<_>>(),
            (0..4).map(|_| b.random::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
