//! Vendored, offline subset of the `criterion` crate.
//!
//! Implements the measurement surface the `aergia-bench` micro-benchmarks
//! use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], `Bencher::iter` and the [`criterion_group!`] /
//! [`criterion_main!`] macros — on top of a simple warmup + timed-batch
//! loop. No statistical analysis or HTML reports: each benchmark prints
//! its mean time per iteration and the iteration count.
//!
//! CLI compatibility with `cargo bench` and `cargo test`:
//!
//! * `--test` (and `--quick`) runs every benchmark body once, untimed —
//!   the mode CI smoke jobs use;
//! * a positional `FILTER` restricts benchmarks by substring;
//! * `--bench`, `--list`, and unknown flags are accepted and ignored so
//!   the harness never fails on cargo-injected arguments.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(400);
/// Target wall-clock time spent warming up each benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(100);

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Criterion {
    /// Builds a manager from the process arguments (see module docs).
    #[must_use]
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--quick" => c.test_mode = true,
                s if s.starts_with("--") => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Runs (or, in test mode, exercises) one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.bench_with_throughput(id, None, &mut f);
        self
    }

    fn bench_with_throughput(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if self.matches(id) {
            let mut b = Bencher { test_mode: self.test_mode, report: None, throughput };
            f(&mut b);
            b.print(id);
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// Work performed per iteration; lets the report derive a rate alongside
/// the mean time (elements/s or bytes/s) like upstream criterion.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration (e.g. FLOPs for a GEMM
    /// benchmark, making the printed `Gelem/s` read as GFLOP/s).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work of the *following* benchmarks in
    /// this group; their reports gain a derived rate column.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.bench_with_throughput(&full, self.throughput, &mut |b| f(b));
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_with_throughput(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}

    /// Accepted and ignored: the shim sizes runs by wall-clock targets.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored: the shim sizes runs by wall-clock targets.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }
}

/// A benchmark identifier, optionally carrying a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }

    /// Identifier that is just the parameter (used inside groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the measuring.
pub struct Bencher {
    test_mode: bool,
    report: Option<(Duration, u64)>,
    throughput: Option<Throughput>,
}

impl Bencher {
    /// Measures `routine`, or runs it once in test mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warmup: discover a batch size that makes timer overhead
        // negligible while estimating the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_TARGET {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().checked_div(warmup_iters as u32).unwrap_or_default();
        let iters =
            (MEASURE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 32) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.report = Some((start.elapsed(), iters));
    }

    fn print(&self, id: &str) {
        match self.report {
            Some((elapsed, iters)) => {
                let mean = elapsed.as_secs_f64() / iters as f64;
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) => {
                        format!("  {}", format_rate(n as f64 / mean, "elem/s"))
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!("  {}", format_rate(n as f64 / mean, "B/s"))
                    }
                    None => String::new(),
                };
                println!("{id:<48} {:>14} {iters:>10} iters{rate}", format_time(mean));
            }
            None => println!("{id:<48} {:>14}", "ok (test)"),
        }
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Generates `main` running the listed groups with CLI-derived settings.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion { filter: None, test_mode: true };
        let mut runs = 0;
        c.bench_function("a", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { filter: Some("match_me".into()), test_mode: true };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("do_match_me_now", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn group_ids_get_prefixed_and_measured() {
        let mut c = Criterion { filter: Some("grp/7".into()), test_mode: true };
        let mut ran = false;
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &_n| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
