//! Vendored, offline subset of the `proptest` crate.
//!
//! Provides the strategy combinators and the [`proptest!`] macro the
//! workspace's property tests use. Unlike the real crate there is no
//! shrinking and no failure persistence: each test deterministically
//! samples `ProptestConfig::cases` inputs from a seed derived from the
//! test name, so failures reproduce exactly on re-run. That trade-off
//! keeps the shim small while preserving the tests' semantics (random
//! exploration of the input space with a reported failing case).

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and samples
        /// the resulting strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes the strategy (API-compatibility helper).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical "any value" strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }

    impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values spanning many magnitudes, like proptest's default.
            let mantissa: f64 = rng.random_range(-1.0..1.0);
            let exp: i32 = rng.random_range(-64..64);
            mantissa * (exp as f64).exp2()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy for any value of `T` (see [`any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the unconstrained strategy for `T`: `any::<u64>()`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: core::marker::PhantomData }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Sizes accepted by [`vec()`]: a fixed `usize` or a (half-open or
    /// inclusive) range of lengths.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values from `element` with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The generator driving all strategies; seeded per test from the
    /// test's name so runs are reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Builds the generator for the test named `name`.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { inner: StdRng::seed_from_u64(h) }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod prelude {
    //! The glob-imported surface: `use proptest::prelude::*`.

    pub use crate::collection;
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// The shim counts a skipped case as passed (no resampling), which keeps
/// the macro expansion a plain early return.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: munches one test at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let ($($pat,)*) = ( $(
                    $crate::strategy::Strategy::sample(&($strat), &mut __rng),
                )* );
                // One zero-argument closure call per case, so
                // `prop_assume!` can skip the case by returning.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
        }

        /// Doc comments and tuple patterns both parse.
        #[test]
        fn tuples_destructure((a, b) in (0u32..5, 0u32..5), flag in any::<bool>()) {
            prop_assume!(a != b || flag);
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn vec_strategy_sizes(v in collection::vec(0u64..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn map_and_flat_map_compose(
            v in (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
                collection::vec(0i32..10, r * c).prop_map(move |v| (r, c, v))
            }),
        ) {
            let (r, c, data) = v;
            prop_assert_eq!(data.len(), r * c);
        }
    }

    #[test]
    fn same_test_name_same_stream() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let s = 0u64..u64::MAX;
        assert_eq!(
            (0..8).map(|_| s.clone().sample(&mut a)).collect::<Vec<_>>(),
            (0..8).map(|_| s.clone().sample(&mut b)).collect::<Vec<_>>()
        );
    }
}
