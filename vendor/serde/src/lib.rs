//! Vendored, offline subset of `serde`.
//!
//! The Aergia workspace derives `Serialize`/`Deserialize` on its config
//! and message types to document the wire-facing surface, but nothing in
//! the tree performs actual serialization yet (the simulation encodes
//! weights with its own little-endian format in `aergia-nn::weights`).
//! Since the build container cannot reach crates.io, this shim provides
//! the two traits as markers plus derive macros, so the annotations keep
//! compiling and can be swapped for the real `serde` without source
//! changes once a registry is available.

// Lets the derive-emitted `::serde::...` paths resolve inside this
// crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized (see module docs).
pub trait Serialize {}

/// Marker for types that can be deserialized (see module docs).
pub trait Deserialize {}

#[cfg(test)]
mod tests {
    //! Compile-time regression checks for the derive macros: each shape
    //! below must expand to a well-formed marker impl.

    use crate::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Plain {
        _x: u32,
    }

    #[derive(Serialize, Deserialize)]
    enum Message {
        _A,
        _B(u8),
    }

    #[derive(Serialize, Deserialize)]
    struct Generic<T> {
        _value: T,
    }

    #[derive(Serialize, Deserialize)]
    struct Bounded<T: Clone + Default> {
        _value: T,
    }

    // The `->` arrow inside a bound must not be mistaken for the closing
    // angle bracket of the generics list.
    #[derive(Serialize, Deserialize)]
    struct FnBound<F: Fn() -> u32> {
        _f: F,
    }

    #[derive(Serialize, Deserialize)]
    struct WithLifetime<'a, T> {
        _value: &'a T,
    }

    fn assert_impls<T: Serialize + Deserialize>() {}

    #[test]
    fn derived_types_implement_the_markers() {
        assert_impls::<Plain>();
        assert_impls::<Message>();
        assert_impls::<Generic<u8>>();
        assert_impls::<Bounded<String>>();
        assert_impls::<FnBound<fn() -> u32>>();
        assert_impls::<WithLifetime<'static, u8>>();
    }
}
