//! Vendored, offline subset of the `bytes` crate.
//!
//! Backs the weight wire-format in `aergia-nn::weights`. Only the
//! little-endian cursor surface that module uses is provided: [`Buf`] on
//! byte slices, [`BufMut`] on [`BytesMut`], and a freeze into the
//! immutable [`Bytes`]. Both buffer types are plain `Vec<u8>` wrappers —
//! no refcounted zero-copy splitting, which the simulation never needs.

use std::ops::Deref;

/// An immutable byte buffer (here: a frozen `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes preallocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source; getters consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads the next `N` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `N` bytes remain.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow: {} < {N}", self.len());
        let (head, tail) = self.split_at(N);
        *self = tail;
        head.try_into().expect("split_at returns exactly N bytes")
    }
}

/// Write cursor; putters append to the back.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut buf = BytesMut::with_capacity(12);
        buf.put_u32_le(7);
        buf.put_f32_le(-1.5);
        buf.put_u64_le(u64::MAX - 3);
        let bytes = buf.freeze();
        assert_eq!(bytes.len(), 16);
        let mut cursor: &[u8] = &bytes;
        assert_eq!(cursor.get_u32_le(), 7);
        assert_eq!(cursor.get_f32_le(), -1.5);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 3);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
