//! Derive macros for the vendored `serde` shim.
//!
//! The shim's `Serialize`/`Deserialize` are marker traits, so deriving
//! them only requires naming the type: the macros parse the item header
//! out of the raw token stream (no `syn`/`quote` in the offline
//! container) and emit an empty trait impl. Generic parameters are
//! carried over by splicing the original tokens — never re-stringified,
//! which would break `'a` lifetimes and `->` arrows apart.

use proc_macro::{Delimiter, Group, Punct, Spacing, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Deserialize")
}

fn derive_marker(input: TokenStream, trait_name: &str) -> TokenStream {
    let (name, generics) = parse_item_header(input)
        .unwrap_or_else(|| panic!("#[derive({trait_name})]: unsupported item shape"));
    // impl <generics> ::serde::Trait for Name <params> {}
    let mut out: Vec<TokenTree> = str_tokens("impl");
    if !generics.is_empty() {
        out.push(punct('<'));
        out.extend(generics.iter().cloned());
        out.push(punct('>'));
    }
    out.extend(str_tokens(&format!("::serde::{trait_name} for {name}")));
    let params = param_names(&generics);
    if !params.is_empty() {
        out.push(punct('<'));
        for param in params {
            out.extend(param);
            out.push(punct(','));
        }
        out.push(punct('>'));
    }
    out.push(TokenTree::Group(Group::new(Delimiter::Brace, TokenStream::new())));
    out.into_iter().collect()
}

fn punct(c: char) -> TokenTree {
    TokenTree::Punct(Punct::new(c, Spacing::Alone))
}

fn str_tokens(src: &str) -> Vec<TokenTree> {
    src.parse::<TokenStream>().expect("static token text must parse").into_iter().collect()
}

/// Extracts the type name and raw generic parameter tokens from a
/// `struct`/`enum`/`union` definition.
fn parse_item_header(input: TokenStream) -> Option<(String, Vec<TokenTree>)> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`# [...]`) and visibility (`pub`, `pub (...)`).
    let name = loop {
        match tokens.next()? {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the bracketed attribute body
            }
            TokenTree::Ident(kw)
                if kw.to_string() == "struct"
                    || kw.to_string() == "enum"
                    || kw.to_string() == "union" =>
            {
                match tokens.next()? {
                    TokenTree::Ident(name) => break name.to_string(),
                    _ => return None,
                }
            }
            _ => {}
        }
    };
    // Collect `<...>` generics if present (depth-tracked so nested angle
    // brackets in bounds/defaults stay inside; the `>` of an `->` arrow
    // in an `Fn() -> T` bound is not a closing bracket).
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut after_minus = false;
            for tt in tokens.by_ref() {
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' if !after_minus => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    after_minus = p.as_char() == '-';
                } else {
                    after_minus = false;
                }
                generics.push(tt);
            }
        }
    }
    Some((name, generics))
}

/// Extracts each generic parameter's name tokens (`'a`, `T`, `N`) from
/// the raw parameter list, dropping bounds, defaults and the `const`
/// keyword — exactly what belongs in the `Type<...>` position.
fn param_names(generics: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut params = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut depth = 0usize;
    let mut in_bound = false;
    let mut after_minus = false;
    for tt in generics {
        let was_after_minus = after_minus;
        after_minus = matches!(tt, TokenTree::Punct(p) if p.as_char() == '-');
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' if !was_after_minus => depth -= 1,
                ',' if depth == 0 => {
                    if !current.is_empty() {
                        params.push(std::mem::take(&mut current));
                    }
                    in_bound = false;
                    continue;
                }
                ':' | '=' if depth == 0 => {
                    in_bound = true;
                    continue;
                }
                _ => {}
            }
        }
        if in_bound {
            continue;
        }
        match tt {
            TokenTree::Ident(id) if id.to_string() == "const" => {}
            _ => current.push(tt.clone()),
        }
    }
    if !current.is_empty() {
        params.push(current);
    }
    params
}
