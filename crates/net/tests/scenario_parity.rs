//! TCP parity for the scenario engine: churn, buffered-async and
//! Byzantine runs served by a real `aergia-coordinator` process over
//! loopback must be bit-identical to the in-process simulator on the
//! same configuration.
//!
//! This works *by construction* — availability and crash draws, the
//! staleness-weighted fold and the adversarial perturbations all live in
//! the engine's value-free event stage and fixed-order fold, never in
//! the transport — and this suite is the proof. The broader transport
//! matrix (codecs, kill/resume, mid-upload process crashes) lives in
//! `e2e.rs`; here every run uses the dense codec so a failure points at
//! the scenario plumbing, not the wire format.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use aergia::prelude::*;
use aergia_codec::CodecConfig;
use aergia_net::presets::{scenario_by_name, smoke_config, strategy_by_name, topology_by_name};
use aergia_net::proto::RunOutcome;
use aergia_tensor::Tensor;

const SEED: u64 = 36;
const DEADLINE: Duration = Duration::from_secs(180);

fn run_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create run dir");
    dir
}

/// Kills the child on drop so a failing test can't leak processes.
struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn(name: &str, exe: &str, dir: &Path, args: &[String]) -> Guard {
    let log = std::fs::File::create(dir.join(format!("{name}.stderr"))).expect("log file");
    let child = Command::new(exe)
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::from(log))
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
    Guard(child)
}

fn wait_outcome(dir: &Path, deadline: Instant) -> RunOutcome {
    let path = dir.join("run.outcome");
    loop {
        if let Ok(bytes) = std::fs::read(&path) {
            return RunOutcome::decode(&bytes).expect("outcome decodes");
        }
        assert!(
            Instant::now() < deadline,
            "no run outcome appeared in {dir:?} before the deadline \
             (see the *.stderr files there)"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Serves the smoke preset with the named scenario and topology over
/// real TCP and returns the coordinator's published outcome.
fn tcp_run_with_topology(name: &str, scenario: &str, strategy: &str, topology: &str) -> RunOutcome {
    let dir = run_dir(name);
    let deadline = Instant::now() + DEADLINE;
    let args = [
        "--dir",
        &dir.display().to_string(),
        "--seed",
        &SEED.to_string(),
        "--codec",
        "dense",
        "--strategy",
        strategy,
        "--scenario",
        scenario,
        "--topology",
        topology,
    ]
    .map(str::to_string);
    let _coordinator = spawn("coordinator", env!("CARGO_BIN_EXE_aergia-coordinator"), &dir, &args);
    let _clients: Vec<Guard> = (0..4)
        .map(|id| {
            let args =
                ["--dir", &dir.display().to_string(), "--id", &id.to_string()].map(str::to_string);
            spawn(&format!("client-{id}"), env!("CARGO_BIN_EXE_aergia-client"), &dir, &args)
        })
        .collect();
    wait_outcome(&dir, deadline)
}

fn tcp_run(name: &str, scenario: &str, strategy: &str) -> RunOutcome {
    tcp_run_with_topology(name, scenario, strategy, "flat")
}

/// The in-process reference on the identical configuration.
fn reference(scenario: &str, strategy: &str) -> (RunResult, Vec<Tensor>) {
    reference_with_topology(scenario, strategy, "flat")
}

fn reference_with_topology(
    scenario: &str,
    strategy: &str,
    topology: &str,
) -> (RunResult, Vec<Tensor>) {
    let mut config = smoke_config(SEED, CodecConfig::DenseF32);
    config.scenario = scenario_by_name(scenario).expect("known scenario");
    let strategy = strategy_by_name(strategy).expect("known strategy");
    let topology = topology_by_name(topology, SEED).expect("known topology");
    let mut engine = Engine::with_topology(config, strategy, topology).expect("valid config");
    let result = engine.run().expect("run succeeds");
    let weights = engine.global_weights().to_vec();
    (result, weights)
}

fn assert_bit_identical(actual: &[Tensor], expected: &[Tensor]) {
    assert_eq!(actual.len(), expected.len(), "tensor count");
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert_eq!(a.shape(), e.shape(), "tensor {i} shape");
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a), bits(e), "tensor {i} bits diverge");
    }
}

#[test]
fn churn_over_tcp_is_bit_identical_to_in_process() {
    let outcome = tcp_run("scenario-churn", "churn", "aergia");
    let (expected, expected_weights) = reference("churn", "aergia");
    // The acceptance bar: a mid-round crash injected by the churn model
    // censors the TCP client exactly like the in-process one.
    let crashed: usize = expected.rounds.iter().map(|r| r.dropped.len()).sum();
    assert!(crashed > 0, "seed {SEED} must fire at least one crash for this test to bite");
    assert_eq!(outcome.result, expected, "churn metrics must match the simulator exactly");
    assert_bit_identical(&outcome.weights, &expected_weights);
}

#[test]
fn two_tier_topology_over_tcp_is_bit_identical_to_in_process() {
    // The transport leg of the hierarchical-aggregation contract: a
    // two-tier run — per-edge partial folds routed through the codec's
    // partial-aggregate frames and merged at the federator — produces
    // exactly the same bits over real TCP as in process. (The cohort
    // layout *defines* the fold tree; hierarchical == same-tree
    // reference is pinned serially in the core determinism suite.)
    let outcome = tcp_run_with_topology("scenario-two-tier", "none", "fedavg", "two-tier");
    let (expected, expected_weights) = reference_with_topology("none", "fedavg", "two-tier");
    assert_eq!(outcome.result, expected, "two-tier metrics must match the simulator");
    assert_bit_identical(&outcome.weights, &expected_weights);
}

#[test]
fn async_byzantine_over_tcp_is_bit_identical_to_in_process() {
    for (scenario, strategy) in [("async", "fedavg"), ("byzantine", "fedavg")] {
        let outcome = tcp_run(&format!("scenario-{scenario}"), scenario, strategy);
        let (expected, expected_weights) = reference(scenario, strategy);
        assert_eq!(outcome.result, expected, "{scenario}: metrics must match the simulator");
        assert_bit_identical(&outcome.weights, &expected_weights);
    }
}
