//! Multi-process end-to-end suite: real `aergia-coordinator` and
//! `aergia-client` processes over loopback TCP, asserted bit-identical
//! to the in-process simulator on the same configuration.
//!
//! Each test gets its own run directory under `target/e2e/` (process
//! stderr is captured there too, so CI can upload the directory as an
//! artifact when a test fails). Child processes are killed on drop, so
//! a panicking test never leaks a training process.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use aergia::prelude::*;
use aergia::transport::{
    InProcess, OffloadOrder, OffloadReply, RoundContext, TrainOrder, TrainReply, Transport,
    TransportError,
};
use aergia_codec::CodecConfig;
use aergia_net::presets::{smoke_config, strategy_by_name};
use aergia_net::proto::RunOutcome;
use aergia_tensor::Tensor;

const SEED: u64 = 33;

/// Hard per-test deadline. Generous: a full smoke run takes seconds;
/// the margin absorbs loaded CI machines, not algorithmic slowness.
const DEADLINE: Duration = Duration::from_secs(180);

fn run_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/e2e").join(name);
    // A previous run's leftovers (port file, checkpoint) must not leak
    // into this one.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create run dir");
    dir
}

/// Kills the child on drop so a failing test can't leak processes.
struct Guard {
    name: String,
    child: Child,
}

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Guard {
    /// Waits (bounded) for the process to exit and returns its code.
    fn wait_exit(&mut self, deadline: Instant) -> i32 {
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status.code().unwrap_or(-1);
            }
            assert!(Instant::now() < deadline, "{} did not exit before the deadline", self.name);
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

fn spawn(name: &str, exe: &str, dir: &Path, args: &[String]) -> Guard {
    let log = std::fs::File::create(dir.join(format!("{name}.stderr"))).expect("log file");
    let child = Command::new(exe)
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::from(log))
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
    Guard { name: name.to_string(), child }
}

fn spawn_coordinator(dir: &Path, codec: &str, strategy: &str, extra: &[&str]) -> Guard {
    let mut args = vec![
        "--dir".to_string(),
        dir.display().to_string(),
        "--seed".to_string(),
        SEED.to_string(),
        "--codec".to_string(),
        codec.to_string(),
        "--strategy".to_string(),
        strategy.to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    spawn("coordinator", env!("CARGO_BIN_EXE_aergia-coordinator"), dir, &args)
}

fn spawn_client(dir: &Path, id: usize, crash_at_round: Option<u32>) -> Guard {
    let mut args =
        vec!["--dir".to_string(), dir.display().to_string(), "--id".to_string(), id.to_string()];
    if let Some(round) = crash_at_round {
        args.push("--crash-at-round".to_string());
        args.push(round.to_string());
    }
    spawn(&format!("client-{id}"), env!("CARGO_BIN_EXE_aergia-client"), dir, &args)
}

/// Polls for the coordinator's result file and decodes it.
fn wait_outcome(dir: &Path, deadline: Instant) -> RunOutcome {
    let path = dir.join("run.outcome");
    loop {
        if let Ok(bytes) = std::fs::read(&path) {
            return RunOutcome::decode(&bytes).expect("outcome decodes");
        }
        assert!(
            Instant::now() < deadline,
            "no run outcome appeared in {dir:?} before the deadline \
             (see the *.stderr files there)"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The reference run: the in-process simulator on the identical
/// configuration, driven through an arbitrary transport.
fn reference(
    codec: CodecConfig,
    strategy: &str,
    transport: &mut dyn Transport,
) -> (RunResult, Vec<Tensor>) {
    let strategy = strategy_by_name(strategy).expect("known strategy");
    let mut engine = Engine::new(smoke_config(SEED, codec), strategy).expect("valid config");
    let mut progress = engine.start_progress();
    while engine.step_round_with(&mut progress, transport).expect("round") {}
    let result = engine.finish_run(progress);
    let weights = engine.global_weights().to_vec();
    (result, weights)
}

/// Asserts two weight sets are identical to the last bit.
fn assert_bit_identical(actual: &[Tensor], expected: &[Tensor]) {
    assert_eq!(actual.len(), expected.len(), "tensor count");
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert_eq!(a.shape(), e.shape(), "tensor {i} shape");
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a), bits(e), "tensor {i} bits diverge");
    }
}

fn roundtrip_matches_in_process(name: &str, codec_name: &str, codec: CodecConfig) {
    let dir = run_dir(name);
    let deadline = Instant::now() + DEADLINE;
    let _coordinator = spawn_coordinator(&dir, codec_name, "aergia", &[]);
    let _clients: Vec<Guard> = (0..4).map(|id| spawn_client(&dir, id, None)).collect();
    let outcome = wait_outcome(&dir, deadline);

    let (expected, expected_weights) = reference(codec, "aergia", &mut InProcess);
    assert_eq!(outcome.result, expected, "metrics must match the simulator exactly");
    assert_bit_identical(&outcome.weights, &expected_weights);
}

#[test]
fn tcp_run_is_bit_identical_to_simulator_dense() {
    roundtrip_matches_in_process("dense", "dense", CodecConfig::DenseF32);
}

#[test]
fn tcp_run_is_bit_identical_to_simulator_topk() {
    roundtrip_matches_in_process("topk", "topk:100", CodecConfig::TopKDelta { keep_permille: 100 });
}

#[test]
fn coordinator_kill_and_resume_is_invisible_in_the_result() {
    let dir = run_dir("resume");
    let deadline = Instant::now() + DEADLINE;

    // First incarnation halts right after round 1's checkpoint hits disk
    // — a deterministic stand-in for yanking the coordinator mid-run.
    // Both incarnations dump telemetry so the snapshot survives the kill.
    let telemetry = dir.join("telemetry.prom");
    let telemetry_flag = telemetry.display().to_string();
    let mut first = spawn_coordinator(
        &dir,
        "dense",
        "aergia",
        &["--halt-after-round", "1", "--telemetry", &telemetry_flag],
    );
    let _clients: Vec<Guard> = (0..4).map(|id| spawn_client(&dir, id, None)).collect();
    assert_eq!(first.wait_exit(deadline), 0, "halted coordinator exits cleanly");
    assert!(dir.join("run.ckpt").exists(), "the halt happens after the checkpoint");
    assert!(!dir.join("run.outcome").exists(), "no result yet");
    drop(first);

    // Second incarnation restores the checkpoint; the clients reconnect
    // to the new port on their own.
    let _second = spawn_coordinator(&dir, "dense", "aergia", &["--telemetry", &telemetry_flag]);
    let outcome = wait_outcome(&dir, deadline);

    let (expected, expected_weights) = reference(CodecConfig::DenseF32, "aergia", &mut InProcess);
    assert_eq!(outcome.result, expected, "kill/resume must not perturb the run");
    assert_bit_identical(&outcome.weights, &expected_weights);

    // The surviving snapshot (written atomically by the resumed process)
    // must parse and must record the resume and the admitted clients.
    let text = std::fs::read_to_string(&telemetry).expect("telemetry snapshot exists");
    let metrics = aergia_telemetry::parse_snapshot(&text).expect("snapshot parses");
    assert!(
        metrics.get("aergia_net_checkpoint_resumes_total").copied().unwrap_or(0.0) >= 1.0,
        "resumed coordinator must count its checkpoint restore:\n{text}"
    );
    assert!(
        metrics.get("aergia_net_connects_total").copied().unwrap_or(0.0) >= 4.0,
        "all four clients reconnect to the resumed coordinator:\n{text}"
    );
    assert!(
        metrics.get("aergia_engine_rounds_total").copied().unwrap_or(0.0) >= 1.0,
        "post-resume rounds land in the engine counters:\n{text}"
    );
    let jsonl = std::fs::read_to_string(dir.join("telemetry.prom.jsonl"))
        .expect("JSONL event stream exists");
    assert!(
        jsonl.lines().all(|l| l.starts_with(r#"{"t":"#)),
        "every event record is virtual-time stamped:\n{jsonl}"
    );
    assert!(jsonl.contains(r#""name":"net.coordinator.resume""#), "resume event logged:\n{jsonl}");
}

/// Censors one client's replies from `from_round` onward — the
/// in-process mirror of a worker process that crashes mid-upload and
/// never comes back.
struct DropFrom {
    client: usize,
    from_round: u32,
}

impl Transport for DropFrom {
    fn train_participants(
        &mut self,
        ctx: &RoundContext<'_>,
        orders: Vec<TrainOrder<'_>>,
    ) -> Result<Vec<TrainReply>, TransportError> {
        let mut replies = InProcess.train_participants(ctx, orders)?;
        if ctx.round >= self.from_round {
            replies.retain(|r| r.client != self.client);
        }
        Ok(replies)
    }

    fn train_offloads(
        &mut self,
        ctx: &RoundContext<'_>,
        orders: Vec<OffloadOrder<'_>>,
    ) -> Result<Vec<OffloadReply>, TransportError> {
        let mut replies = InProcess.train_offloads(ctx, orders)?;
        if ctx.round >= self.from_round {
            replies.retain(|r| r.receiver != self.client);
        }
        Ok(replies)
    }
}

#[test]
fn client_crash_mid_upload_drops_it_and_the_rest_finish() {
    let dir = run_dir("drop");
    let deadline = Instant::now() + DEADLINE;
    let _coordinator = spawn_coordinator(&dir, "dense", "fedavg", &[]);
    let mut clients: Vec<Guard> = (0..3).map(|id| spawn_client(&dir, id, None)).collect();
    clients.push(spawn_client(&dir, 3, Some(1)));
    let outcome = wait_outcome(&dir, deadline);
    assert_eq!(clients[3].wait_exit(deadline), 2, "the crash hook fired");

    for record in &outcome.result.rounds[1..] {
        assert!(
            record.dropped.contains(&3),
            "round {}: the crashed client must be dropped",
            record.round
        );
    }
    assert!(outcome.result.rounds[0].dropped.is_empty());

    // Bit-identical to the simulator censoring the same client from the
    // same round.
    let (expected, expected_weights) =
        reference(CodecConfig::DenseF32, "fedavg", &mut DropFrom { client: 3, from_round: 1 });
    assert_eq!(outcome.result, expected);
    assert_bit_identical(&outcome.weights, &expected_weights);
}
