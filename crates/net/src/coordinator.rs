//! The coordinator: the engine's federator half served over TCP.
//!
//! [`serve`] owns the whole run: it binds a loopback listener, admits
//! every client (Hello → Welcome), then drives
//! [`Engine::step_round_with`] using [`TcpTransport`] — the remote
//! implementation of the round's participant boundary — writing a
//! checkpoint file after every round. A coordinator that crashes (or is
//! killed) between rounds resumes from that file bit-identically: the
//! engine, not the network, is the source of truth for all state.
//!
//! [`TcpTransport`] keeps the in-process execution semantics exactly:
//! orders fan out to per-connection workers on the
//! [`aergia_runtime`] pool (each worker writes its order and blocks on
//! the reply with a read timeout), and replies fold back in order-index
//! order. A client that fails mid-round — connection lost, timeout,
//! malformed or mismatched reply — is logged, disconnected and simply
//! *omitted* from the replies, which the engine turns into a dropped
//! participant; the round completes with everyone else.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use aergia::prelude::*;
use aergia::transport::{
    OffloadOrder, OffloadReply, RoundContext, TrainOrder, TrainReply, Transport, TransportError,
};
use aergia_codec::envelope::{self, MsgKind};
use aergia_data::batcher::{Batcher, BatcherState};

use crate::log::{netlog, CONNECTS, DROPS, ENVELOPE_BYTES, ORDER_RTT_SECS, REJECTS, RESUMES};
use crate::proto::{
    Hello, OffloadOrderMsg, OffloadReplyMsg, RunOutcome, TrainOrderMsg, TrainReplyMsg, WorkerSetup,
};
use crate::NetError;

/// Where a coordinator run keeps its files and how patient it is.
#[derive(Debug, Clone)]
pub struct CoordinatorOpts {
    /// File the bound port is published to (written atomically; clients
    /// poll it, including across a coordinator restart).
    pub port_file: PathBuf,
    /// Checkpoint file written after every round; if it exists at
    /// startup the run resumes from it.
    pub checkpoint: PathBuf,
    /// Result file written once the run completes (a
    /// [`RunOutcome`] encoding).
    pub result: PathBuf,
    /// When set, enables the telemetry layer for this process and dumps
    /// a Prometheus-style snapshot to this path (atomically, so pollers
    /// never see a torn file) at every round boundary and on shutdown;
    /// the JSONL event stream appends to the same path with `.jsonl`
    /// appended.
    pub telemetry: Option<PathBuf>,
    /// Test hook: exit right after the checkpoint for this (0-based)
    /// round hits the disk — before any Finish or result file — to
    /// simulate a coordinator crash at a deterministic point.
    pub halt_after_round: Option<u32>,
    /// Per-order timeout covering the remote client's training time plus
    /// both transfers.
    pub reply_timeout: Duration,
    /// Timeout for a connecting client's Hello/Welcome exchange.
    pub hello_timeout: Duration,
}

impl CoordinatorOpts {
    /// Conventional file layout inside one run directory.
    pub fn in_dir(dir: &Path) -> Self {
        CoordinatorOpts {
            port_file: dir.join("coordinator.port"),
            checkpoint: dir.join("run.ckpt"),
            result: dir.join("run.outcome"),
            telemetry: None,
            halt_after_round: None,
            reply_timeout: Duration::from_secs(120),
            hello_timeout: Duration::from_secs(30),
        }
    }
}

/// Writes `bytes` to `path` atomically (temp file + rename), so readers
/// polling the path never observe a half-written file.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Writes one envelope and blocks for the expected reply kind.
fn exchange(
    stream: &mut TcpStream,
    wire: &[u8],
    expect: MsgKind,
    timeout: Duration,
) -> Result<Vec<u8>, NetError> {
    ENVELOPE_BYTES.observe(wire.len() as f64);
    let sent_at = std::time::Instant::now();
    stream.set_write_timeout(Some(timeout))?;
    stream.set_read_timeout(Some(timeout))?;
    stream.write_all(wire)?;
    let (kind, body) = envelope::read_from(stream)?;
    ORDER_RTT_SECS.observe(sent_at.elapsed().as_secs_f64());
    if kind != expect {
        return Err(NetError::Protocol(format!("expected {expect:?} reply, got {kind:?}")));
    }
    Ok(body)
}

/// A wire batcher state is only restorable if it matches the engine-side
/// shard (restore panics otherwise — a remote peer must not be able to
/// panic the coordinator).
fn restorable(engine_side: &Batcher, state: &BatcherState) -> bool {
    state.indices.len() == engine_side.state().indices.len() && state.cursor <= state.indices.len()
}

/// The remote [`Transport`]: ships each order to its client's TCP
/// connection and folds the replies back, omitting clients that fail.
pub struct TcpTransport<'a> {
    conns: &'a mut [Option<TcpStream>],
    reply_timeout: Duration,
}

impl<'a> TcpTransport<'a> {
    /// Wraps the admitted connections (index = client id) for one round.
    pub fn new(conns: &'a mut [Option<TcpStream>], reply_timeout: Duration) -> Self {
        TcpTransport { conns, reply_timeout }
    }
}

impl Transport for TcpTransport<'_> {
    fn train_participants(
        &mut self,
        ctx: &RoundContext<'_>,
        orders: Vec<TrainOrder<'_>>,
    ) -> Result<Vec<TrainReply>, TransportError> {
        struct Slot<'o> {
            order: TrainOrder<'o>,
            wire: Vec<u8>,
            stream: Option<TcpStream>,
            reply: Option<TrainReplyMsg>,
        }
        let round = ctx.round;
        let mut slots: Vec<Slot<'_>> = orders
            .into_iter()
            .map(|order| {
                let msg = TrainOrderMsg {
                    round,
                    client: order.client,
                    own_batches: order.own_batches,
                    freeze_after: order.freeze_after,
                    snapshot_wanted: order.snapshot_wanted,
                    batcher: order.batcher.state(),
                    round_base: ctx.round_base.to_vec(),
                };
                let wire = envelope::encode(MsgKind::TrainOrder, &msg.encode());
                let stream = self.conns[order.client].take();
                Slot { order, wire, stream, reply: None }
            })
            .collect();
        let timeout = self.reply_timeout;
        aergia_runtime::par_for_each_mut(&mut slots, 0, |slot| {
            let Some(stream) = slot.stream.as_mut() else { return };
            match exchange(stream, &slot.wire, MsgKind::TrainReply, timeout)
                .and_then(|body| Ok(TrainReplyMsg::decode(&body)?))
            {
                Ok(msg) => slot.reply = Some(msg),
                Err(e) => {
                    DROPS.add(1);
                    netlog!("net.client.drop", round = round, client = slot.order.client;
                        "coordinator: client {} lost during round {round}: {e}",
                        slot.order.client);
                    slot.stream = None;
                }
            }
        });
        let mut replies = Vec::with_capacity(slots.len());
        for slot in slots {
            let Slot { order, stream, reply, .. } = slot;
            let client = order.client;
            let mut keep = stream;
            if let Some(msg) = reply {
                let consistent = msg.round == round
                    && msg.client == client
                    && msg.weights.len() == ctx.round_base.len()
                    && restorable(order.batcher, &msg.batcher);
                if consistent {
                    order.batcher.restore_state(msg.batcher);
                    replies.push(TrainReply {
                        client,
                        weights: msg.weights,
                        snapshot: msg.snapshot,
                        losses: msg.losses,
                        opt: None,
                    });
                } else {
                    DROPS.add(1);
                    netlog!("net.client.inconsistent", round = round, client = client;
                        "coordinator: client {client} answered round {round} inconsistently; \
                         dropping it");
                    keep = None;
                }
            }
            self.conns[client] = keep;
        }
        Ok(replies)
    }

    fn train_offloads(
        &mut self,
        ctx: &RoundContext<'_>,
        orders: Vec<OffloadOrder<'_>>,
    ) -> Result<Vec<OffloadReply>, TransportError> {
        struct Slot<'o> {
            order: OffloadOrder<'o>,
            wire: Vec<u8>,
            stream: Option<TcpStream>,
            reply: Option<OffloadReplyMsg>,
        }
        let round = ctx.round;
        let mut slots: Vec<Slot<'_>> = orders
            .into_iter()
            .map(|order| {
                let msg = OffloadOrderMsg {
                    round,
                    receiver: order.receiver,
                    weak: order.weak,
                    batches: order.batches,
                    snapshot: order.snapshot.clone(),
                    batcher: order.batcher.state(),
                };
                let wire = envelope::encode(MsgKind::OffloadOrder, &msg.encode());
                let stream = self.conns[order.receiver].take();
                Slot { order, wire, stream, reply: None }
            })
            .collect();
        let timeout = self.reply_timeout;
        aergia_runtime::par_for_each_mut(&mut slots, 0, |slot| {
            let Some(stream) = slot.stream.as_mut() else { return };
            match exchange(stream, &slot.wire, MsgKind::OffloadReply, timeout)
                .and_then(|body| Ok(OffloadReplyMsg::decode(&body)?))
            {
                Ok(msg) => slot.reply = Some(msg),
                Err(e) => {
                    DROPS.add(1);
                    netlog!("net.client.drop", round = round, client = slot.order.receiver;
                        "coordinator: receiver {} lost during round {round} offload: {e}",
                        slot.order.receiver);
                    slot.stream = None;
                }
            }
        });
        let mut replies = Vec::with_capacity(slots.len());
        for slot in slots {
            let Slot { order, stream, reply, .. } = slot;
            let receiver = order.receiver;
            let mut keep = stream;
            if let Some(msg) = reply {
                let consistent = msg.round == round
                    && msg.receiver == receiver
                    && msg.weak == order.weak
                    && restorable(order.batcher, &msg.batcher);
                if consistent {
                    order.batcher.restore_state(msg.batcher);
                    replies.push(OffloadReply {
                        receiver,
                        weak: order.weak,
                        features: msg.features,
                    });
                } else {
                    DROPS.add(1);
                    netlog!("net.client.inconsistent", round = round, client = receiver;
                        "coordinator: receiver {receiver} answered round {round} offload \
                         inconsistently; dropping it");
                    keep = None;
                }
            }
            self.conns[receiver] = keep;
        }
        Ok(replies)
    }
}

/// Runs one experiment as the networked coordinator (see the module
/// docs). Returns `Ok(None)` when the `halt_after_round` test hook cut
/// the run short, `Ok(Some(outcome))` when the run completed and the
/// result file was written.
///
/// # Errors
///
/// [`NetError`] on engine, checkpoint, socket or file failures. Losing
/// individual clients is *not* an error — they are dropped from their
/// rounds.
pub fn serve(
    config: ExperimentConfig,
    strategy: Strategy,
    topology: TopologyBuilder,
    opts: &CoordinatorOpts,
) -> Result<Option<RunOutcome>, NetError> {
    if opts.telemetry.is_some() {
        aergia_telemetry::enable();
    }
    let num_clients = config.num_clients;
    let setup = WorkerSetup::from_experiment(&config, &strategy);
    let mut engine = Engine::with_topology(config, strategy, topology)?;

    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let port = listener.local_addr()?.port();
    write_atomic(&opts.port_file, format!("{port}\n").as_bytes())?;
    netlog!("net.coordinator.listen", port = port, clients = num_clients;
        "coordinator: listening on 127.0.0.1:{port}, waiting for {num_clients} clients");

    let welcome = envelope::encode(MsgKind::Welcome, &setup.encode());
    let mut conns: Vec<Option<TcpStream>> = (0..num_clients).map(|_| None).collect();
    while conns.iter().any(Option::is_none) {
        let (mut stream, peer) = listener.accept()?;
        let admit = (|| -> Result<usize, NetError> {
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(opts.hello_timeout))?;
            stream.set_write_timeout(Some(opts.hello_timeout))?;
            let (kind, body) = envelope::read_from(&mut stream)?;
            if kind != MsgKind::Hello {
                return Err(NetError::Protocol(format!("expected Hello, got {kind:?}")));
            }
            let hello = Hello::decode(&body)?;
            if hello.client >= num_clients {
                return Err(NetError::Protocol(format!(
                    "client id {} out of range 0..{num_clients}",
                    hello.client
                )));
            }
            stream.write_all(&welcome)?;
            Ok(hello.client)
        })();
        match admit {
            // The newest connection for an id wins (a client that timed
            // out waiting for Welcome may have retried).
            Ok(id) => {
                CONNECTS.add(1);
                aergia_telemetry::event!("net.coordinator.admit", client = id);
                conns[id] = Some(stream);
            }
            Err(e) => {
                REJECTS.add(1);
                netlog!("net.coordinator.reject";
                    "coordinator: rejected connection from {peer}: {e}");
            }
        }
    }
    netlog!("net.coordinator.ready", clients = num_clients;
        "coordinator: all {num_clients} clients admitted");

    let mut progress = if opts.checkpoint.exists() {
        let progress = engine.restore_checkpoint_from(&opts.checkpoint)?;
        RESUMES.add(1);
        netlog!("net.coordinator.resume", round = progress.next_round;
            "coordinator: resumed from checkpoint at round {}", progress.next_round);
        progress
    } else {
        engine.start_progress()
    };

    loop {
        let more = {
            let mut transport = TcpTransport::new(&mut conns, opts.reply_timeout);
            engine.step_round_with(&mut progress, &mut transport)?
        };
        write_atomic(&opts.checkpoint, &engine.save_checkpoint(&progress))?;
        dump_telemetry(opts)?;
        if let Some(halt) = opts.halt_after_round {
            if progress.next_round > halt {
                netlog!("net.coordinator.halt", round = halt;
                    "coordinator: halting after round {halt} (simulated crash)");
                dump_telemetry(opts)?;
                return Ok(None);
            }
        }
        if !more {
            break;
        }
    }

    let result = engine.finish_run(progress);
    let outcome = RunOutcome { result, weights: engine.global_weights().to_vec() };
    write_atomic(&opts.result, &outcome.encode())?;
    let finish = envelope::encode(MsgKind::Finish, &[]);
    for conn in conns.iter_mut().flatten() {
        // A client that died earlier simply misses the goodbye.
        let _ = conn.write_all(&finish);
    }
    netlog!("net.coordinator.finish";
        "coordinator: run complete, result written");
    dump_telemetry(opts)?;
    Ok(Some(outcome))
}

/// Dumps the telemetry sinks when [`CoordinatorOpts::telemetry`] is set:
/// the Prometheus-style snapshot replaces the file atomically, and the
/// JSONL event stream drained since the last dump appends to
/// `<path>.jsonl`.
fn dump_telemetry(opts: &CoordinatorOpts) -> Result<(), NetError> {
    let Some(path) = &opts.telemetry else { return Ok(()) };
    write_atomic(path, aergia_telemetry::snapshot().as_bytes())?;
    let events = aergia_telemetry::drain_jsonl();
    if !events.is_empty() {
        let mut jsonl = path.as_os_str().to_owned();
        jsonl.push(".jsonl");
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(jsonl)?;
        file.write_all(events.as_bytes())?;
    }
    Ok(())
}
