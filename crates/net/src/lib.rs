//! The networked Aergia runtime: one coordinator process drives the
//! engine's rounds over real TCP against remote client workers.
//!
//! # Design: one state machine, two transports
//!
//! The simulator and this runtime are *the same program*. The engine owns
//! everything deterministic — selection, the virtual-clock event trace,
//! wire-codec encoding, aggregation, checkpoints — and delegates only the
//! participant-side numeric work through the
//! [`aergia::transport::Transport`] seam. The in-process implementation
//! runs orders on the local pool; [`coordinator::TcpTransport`] ships the
//! *same orders* to remote worker processes as length-prefixed
//! [`aergia_codec::envelope`] frames and folds the replies back in the
//! same fixed order. Because every source of randomness and every codec
//! operation stays coordinator-side, a networked run is **bit-identical**
//! to the in-process simulator on the same configuration — the e2e suite
//! asserts this down to the last weight bit, across a coordinator
//! kill/resume.
//!
//! ```text
//!   coordinator process                     client process (×N)
//!   ┌─────────────────────────┐   TCP    ┌──────────────────────────┐
//!   │ Engine (event trace,    │ ───────▶ │ enum-of-states machine:  │
//!   │  codecs, aggregation,   │  orders  │  Connecting → Awaiting → │
//!   │  checkpoints)           │ ◀─────── │  Selected → Uploading    │
//!   │  └ TcpTransport         │  replies │  └ ClientWorkspace       │
//!   └─────────────────────────┘          └──────────────────────────┘
//! ```
//!
//! Fault model: a client that disappears mid-round is *dropped* — the
//! engine completes the round with the remaining replies — while a
//! coordinator crash is survived through the per-round checkpoint file
//! (clients reconnect with backoff and the resumed coordinator replays
//! from the last completed round).
//!
//! # Examples
//!
//! The [`presets`] module is the single source of experiment
//! configurations for both the coordinator binary and the parity test
//! suites — a TCP run and its in-process reference must be built from
//! the same definition for bit-identity to be checkable:
//!
//! ```
//! use aergia_net::presets::{codec_by_name, scenario_by_name, smoke_config, strategy_by_name};
//!
//! let mut config = smoke_config(33, codec_by_name("dense").unwrap());
//! config.scenario = scenario_by_name("churn").unwrap();
//! let strategy = strategy_by_name("aergia").unwrap();
//! // The same `Engine` the coordinator serves over TCP, runnable
//! // in-process; `aergia-coordinator --scenario churn` matches it
//! // bit for bit.
//! let engine = aergia::Engine::new(config, strategy).expect("presets validate");
//! assert!(!engine.global_weights().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub(crate) mod log;
pub mod presets;
pub mod proto;

use std::error::Error;
use std::fmt;

use aergia::prelude::{CheckpointError, EngineError};
use aergia_codec::envelope::EnvelopeError;
use aergia_codec::CodecError;

/// The one error type of the networked runtime: every layer the
/// coordinator and client touch — engine, checkpoints, envelopes, codec
/// payloads, sockets and files — funnels into it.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The engine rejected a configuration or failed a round.
    Engine(EngineError),
    /// A checkpoint failed to save or restore.
    Checkpoint(CheckpointError),
    /// An envelope failed to read or decode.
    Envelope(EnvelopeError),
    /// A message body failed to decode.
    Codec(CodecError),
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// The remote end violated the protocol.
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Engine(e) => write!(f, "engine error: {e}"),
            NetError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            NetError::Envelope(e) => write!(f, "envelope error: {e}"),
            NetError::Codec(e) => write!(f, "message decode error: {e}"),
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Engine(e) => Some(e),
            NetError::Checkpoint(e) => Some(e),
            NetError::Envelope(e) => Some(e),
            NetError::Codec(e) => Some(e),
            NetError::Io(e) => Some(e),
            NetError::Protocol(_) => None,
        }
    }
}

impl From<EngineError> for NetError {
    fn from(e: EngineError) -> Self {
        NetError::Engine(e)
    }
}

impl From<CheckpointError> for NetError {
    fn from(e: CheckpointError) -> Self {
        NetError::Checkpoint(e)
    }
}

impl From<EnvelopeError> for NetError {
    fn from(e: EnvelopeError) -> Self {
        NetError::Envelope(e)
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_converts_into_net_error() {
        let io: NetError = std::io::Error::other("boom").into();
        assert!(matches!(io, NetError::Io(_)));
        let codec: NetError = CodecError::Truncated.into();
        assert!(matches!(codec, NetError::Codec(_)));
        let envelope: NetError = EnvelopeError::Codec(CodecError::BadMagic).into();
        assert!(matches!(envelope, NetError::Envelope(_)));
        // Sources chain for error reporting.
        assert!(Error::source(&envelope).is_some());
        let protocol = NetError::Protocol("client 3 answered round 1 with round 2".into());
        assert!(Error::source(&protocol).is_none());
        assert!(protocol.to_string().contains("client 3"));
    }
}
