//! Shared experiment presets for the networked harnesses.
//!
//! The e2e suite's core assertion is that a TCP run is bit-identical to
//! the in-process simulator *on the same configuration* — so the
//! configuration must be constructed in exactly one place. The
//! coordinator binary and the test harness both call [`smoke_config`].

use aergia::prelude::*;
use aergia_codec::CodecConfig;
use aergia_data::partition::Scheme;
use aergia_data::{DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;

/// A four-client, three-round MNIST-like experiment sized for CI: small
/// enough that a full multi-process run takes seconds, heterogeneous
/// enough that Aergia's scheduler actually freezes and offloads.
pub fn smoke_config(seed: u64, codec: CodecConfig) -> ExperimentConfig {
    ExperimentConfig {
        dataset: DataConfig { spec: DatasetSpec::MnistLike, train_size: 240, test_size: 120, seed },
        arch: ModelArch::MnistCnn,
        partition: Scheme::Iid,
        num_clients: 4,
        clients_per_round: 4,
        rounds: 3,
        local_updates: 10,
        batch_size: 8,
        speeds: vec![0.15, 0.4, 0.7, 1.0],
        mode: Mode::Real,
        parallelism: 1,
        codec,
        seed,
        ..ExperimentConfig::default()
    }
}

/// Parses the coordinator CLI's strategy name.
pub fn strategy_by_name(name: &str) -> Option<Strategy> {
    match name {
        "aergia" => Some(Strategy::aergia_default()),
        "fedavg" => Some(Strategy::FedAvg),
        "fedprox" => Some(Strategy::FedProx { mu: 0.05 }),
        _ => None,
    }
}

/// Parses the coordinator CLI's scenario name.
///
/// These are fixed presets rather than free-form knobs on purpose: the
/// e2e suite asserts a TCP run is bit-identical to the in-process
/// simulator *on the same configuration*, so both sides must construct
/// the scenario from the same single definition.
///
/// * `none` — the inert default: synchronous rounds, plain mean, no
///   churn, no adversaries.
/// * `async` — buffered-asynchronous aggregation with a generous
///   staleness horizon and mixing rate ½.
/// * `churn` — seeded join/leave/crash churn with crashed stragglers'
///   offloads rescheduled to the fastest idle peer.
/// * `byzantine` — a sign-flipping client 0 under trimmed-mean
///   aggregation (one trimmed per side at smoke scale).
pub fn scenario_by_name(name: &str) -> Option<ScenarioConfig> {
    match name {
        "none" => Some(ScenarioConfig::default()),
        "async" => Some(ScenarioConfig {
            aggregation: AggregationMode::BufferedAsync {
                max_staleness: aergia_simnet::SimDuration::from_secs_f64(1e6),
                mixing: 0.5,
            },
            ..ScenarioConfig::default()
        }),
        "churn" => Some(ScenarioConfig {
            churn: Some(ChurnConfig {
                leave_prob: 0.15,
                rejoin_prob: 0.7,
                crash_prob: 0.45,
                offload_policy: OffloadPolicy::Reschedule,
            }),
            ..ScenarioConfig::default()
        }),
        "byzantine" => Some(ScenarioConfig {
            robust: RobustAggregation::TrimmedMean { trim_ratio: 0.3 },
            byzantine: vec![ByzantineSpec { client: 0, attack: Attack::SignFlip }],
            ..ScenarioConfig::default()
        }),
        _ => None,
    }
}

/// Parses the coordinator CLI's topology name.
///
/// * `flat` — no overrides: every update folds at the single federator
///   (the historical layout).
/// * `two-tier` — three seeded edge cohorts; each edge pre-folds its
///   cohort and the federator merges the per-edge partials in fixed
///   edge order. The e2e suite pins this bit-identical to `flat`.
pub fn topology_by_name(name: &str, seed: u64) -> Option<TopologyBuilder> {
    match name {
        "flat" => Some(TopologyBuilder::new()),
        "two-tier" => Some(TopologyBuilder::new().edge_cohorts(3, seed)),
        _ => None,
    }
}

/// Parses the coordinator CLI's codec name (`dense`, `quant`, or
/// `topk:<keep_permille>`).
pub fn codec_by_name(name: &str) -> Option<CodecConfig> {
    match name {
        "dense" => Some(CodecConfig::DenseF32),
        "quant" => Some(CodecConfig::QuantI8),
        _ => {
            let permille = name.strip_prefix("topk:")?.parse().ok()?;
            (1..=1000)
                .contains(&permille)
                .then_some(CodecConfig::TopKDelta { keep_permille: permille })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_to_the_expected_presets() {
        assert!(matches!(strategy_by_name("aergia"), Some(Strategy::Aergia { .. })));
        assert!(matches!(strategy_by_name("fedavg"), Some(Strategy::FedAvg)));
        assert!(strategy_by_name("sgd").is_none());
        assert_eq!(codec_by_name("dense"), Some(CodecConfig::DenseF32));
        assert_eq!(codec_by_name("topk:100"), Some(CodecConfig::TopKDelta { keep_permille: 100 }));
        assert!(codec_by_name("topk:0").is_none());
        assert!(codec_by_name("gzip").is_none());
        assert!(scenario_by_name("none").is_some_and(|s| s.is_inert()));
        assert!(matches!(
            scenario_by_name("async").map(|s| s.aggregation),
            Some(AggregationMode::BufferedAsync { .. })
        ));
        assert!(scenario_by_name("churn").is_some_and(|s| s.churn.is_some()));
        assert!(scenario_by_name("byzantine").is_some_and(|s| !s.byzantine.is_empty()));
        assert!(scenario_by_name("chaos").is_none());
        // Every named scenario must be servable on the smoke preset.
        for name in ["none", "async", "churn", "byzantine"] {
            let mut config = smoke_config(33, CodecConfig::DenseF32);
            config.scenario = scenario_by_name(name).unwrap();
            assert!(
                aergia::Engine::new(config, Strategy::FedAvg).is_ok(),
                "scenario preset {name} must validate on the smoke config"
            );
        }
        // The smoke preset must be valid — the whole e2e suite builds on it.
        let config = smoke_config(33, CodecConfig::DenseF32);
        assert!(aergia::Engine::new(config, Strategy::aergia_default()).is_ok());
        // Topology presets: flat is empty, two-tier carries cohorts and
        // must build on the smoke preset.
        assert!(topology_by_name("flat", 33).is_some_and(|t| t.is_empty()));
        let two_tier = topology_by_name("two-tier", 33).expect("known topology");
        assert!(!two_tier.is_empty());
        assert!(topology_by_name("ring", 33).is_none());
        let config = smoke_config(33, CodecConfig::DenseF32);
        let engine = aergia::Engine::with_topology(config, Strategy::FedAvg, two_tier).unwrap();
        assert_eq!(engine.cohort_layout().num_edges(), 3);
    }
}
