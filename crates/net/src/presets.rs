//! Shared experiment presets for the networked harnesses.
//!
//! The e2e suite's core assertion is that a TCP run is bit-identical to
//! the in-process simulator *on the same configuration* — so the
//! configuration must be constructed in exactly one place. The
//! coordinator binary and the test harness both call [`smoke_config`].

use aergia::prelude::*;
use aergia_codec::CodecConfig;
use aergia_data::partition::Scheme;
use aergia_data::{DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;

/// A four-client, three-round MNIST-like experiment sized for CI: small
/// enough that a full multi-process run takes seconds, heterogeneous
/// enough that Aergia's scheduler actually freezes and offloads.
pub fn smoke_config(seed: u64, codec: CodecConfig) -> ExperimentConfig {
    ExperimentConfig {
        dataset: DataConfig { spec: DatasetSpec::MnistLike, train_size: 240, test_size: 120, seed },
        arch: ModelArch::MnistCnn,
        partition: Scheme::Iid,
        num_clients: 4,
        clients_per_round: 4,
        rounds: 3,
        local_updates: 10,
        batch_size: 8,
        speeds: vec![0.15, 0.4, 0.7, 1.0],
        mode: Mode::Real,
        parallelism: 1,
        codec,
        seed,
        ..ExperimentConfig::default()
    }
}

/// Parses the coordinator CLI's strategy name.
pub fn strategy_by_name(name: &str) -> Option<Strategy> {
    match name {
        "aergia" => Some(Strategy::aergia_default()),
        "fedavg" => Some(Strategy::FedAvg),
        "fedprox" => Some(Strategy::FedProx { mu: 0.05 }),
        _ => None,
    }
}

/// Parses the coordinator CLI's codec name (`dense`, `quant`, or
/// `topk:<keep_permille>`).
pub fn codec_by_name(name: &str) -> Option<CodecConfig> {
    match name {
        "dense" => Some(CodecConfig::DenseF32),
        "quant" => Some(CodecConfig::QuantI8),
        _ => {
            let permille = name.strip_prefix("topk:")?.parse().ok()?;
            (1..=1000)
                .contains(&permille)
                .then_some(CodecConfig::TopKDelta { keep_permille: permille })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_to_the_expected_presets() {
        assert!(matches!(strategy_by_name("aergia"), Some(Strategy::Aergia { .. })));
        assert!(matches!(strategy_by_name("fedavg"), Some(Strategy::FedAvg)));
        assert!(strategy_by_name("sgd").is_none());
        assert_eq!(codec_by_name("dense"), Some(CodecConfig::DenseF32));
        assert_eq!(codec_by_name("topk:100"), Some(CodecConfig::TopKDelta { keep_permille: 100 }));
        assert!(codec_by_name("topk:0").is_none());
        assert!(codec_by_name("gzip").is_none());
        // The smoke preset must be valid — the whole e2e suite builds on it.
        let config = smoke_config(33, CodecConfig::DenseF32);
        assert!(aergia::Engine::new(config, Strategy::aergia_default()).is_ok());
    }
}
