//! The client worker: an explicit enum-of-states machine around the
//! engine's training loops.
//!
//! Every transition is a value-to-value move through [`ClientState`]
//! (the xaynet style: the connection and any in-flight work ride inside
//! the state, so an impossible combination — uploading without a
//! connection, training without an order — cannot be represented):
//!
//! ```text
//! Connecting ──Hello/Welcome──▶ Awaiting ──order──▶ Selected
//!     ▲                            │ ▲                  │ train
//!     │ any i/o failure            │ └───reply sent──── Uploading
//!     └────────────────────────────┴──Finish──▶ Done
//! ```
//!
//! The worker is numerically *identical* to the in-process simulator by
//! construction: it calls the same
//! [`ClientWorkspace::run_own_batches`] /
//! [`ClientWorkspace::run_offload_batches`] loops on a batcher restored
//! from the order's snapshot, with the optimizer built by the same
//! [`round_optimizer`] derivation. The only state retained between
//! messages is the round's stage-1 optimizer, whose momentum an offload
//! order in the same round continues — exactly the momentum-threading
//! the engine performs for the in-process transport.
//!
//! Losing the coordinator (EOF, reset, timeout) is not an error: the
//! machine falls back to `Connecting` and retries with capped
//! exponential backoff, re-reading the port file each attempt so it
//! finds a *restarted* coordinator too. That retry loop is what carries
//! a run across the coordinator kill/resume in the e2e suite.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use aergia::prelude::*;
use aergia::transport::{build_template, round_optimizer, ClientWorkspace};
use aergia_codec::envelope::{self, MsgKind};
use aergia_data::batcher::Batcher;
use aergia_data::Dataset;
use aergia_nn::optim::Sgd;

use crate::log::{netlog, BACKOFFS};
use crate::proto::{
    Hello, OffloadOrderMsg, OffloadReplyMsg, TrainOrderMsg, TrainReplyMsg, WorkerSetup,
};
use crate::NetError;

/// How a client process finds and identifies itself to the coordinator.
#[derive(Debug, Clone)]
pub struct ClientOpts {
    /// This worker's client id (`0..num_clients`).
    pub id: usize,
    /// The coordinator's port file (re-read on every connection attempt,
    /// so a restarted coordinator on a new port is found).
    pub port_file: PathBuf,
    /// Test hook: crash the process (half-written reply, exit code 2)
    /// while uploading the train reply of this round — the e2e suite's
    /// client-drops-mid-upload scenario.
    pub crash_at_round: Option<u32>,
}

/// An order the coordinator selected this client for.
#[derive(Debug)]
pub enum Order {
    /// Stage 1: the client's own local training.
    Train(TrainOrderMsg),
    /// Stage 2: receiver-side offloaded training.
    Offload(OffloadOrderMsg),
}

/// The client protocol as a typed state machine; see the module docs
/// for the transition diagram.
#[derive(Debug)]
pub enum ClientState {
    /// Not connected; retrying with capped exponential backoff.
    Connecting {
        /// Consecutive failed attempts (drives the backoff).
        attempt: u32,
    },
    /// Admitted; blocked on the coordinator's next envelope.
    Awaiting {
        /// The admitted connection.
        conn: TcpStream,
    },
    /// An order arrived; the numeric work has not run yet.
    Selected {
        /// The admitted connection.
        conn: TcpStream,
        /// The decoded order.
        order: Order,
    },
    /// Work done; the encoded reply envelope is ready to send.
    Uploading {
        /// The admitted connection.
        conn: TcpStream,
        /// The round the reply answers.
        round: u32,
        /// Whether this is a stage-1 train reply (the crash hook only
        /// fires on those).
        train_reply: bool,
        /// The encoded reply envelope.
        wire: Vec<u8>,
    },
    /// The coordinator said Finish; the run is over.
    Done,
}

/// Session-scoped caches built from the Welcome: everything derivable
/// from the experiment description, constructed once and reused across
/// rounds (and across reconnects to the same experiment).
struct Worker {
    setup_body: Vec<u8>,
    config: ExperimentConfig,
    strategy: Strategy,
    train: Dataset,
    workspace: ClientWorkspace,
    batcher: Option<Batcher>,
    /// The stage-1 optimizer retained for this round's offload order.
    round_opt: Option<(u32, Sgd)>,
}

impl Worker {
    fn new(setup: WorkerSetup, setup_body: Vec<u8>) -> Self {
        let config = setup.worker_config();
        let strategy = setup.worker_strategy();
        let template = build_template(&config);
        let (train, _test) = config.dataset.generate_pair();
        Worker {
            setup_body,
            config,
            strategy,
            train,
            workspace: ClientWorkspace::new(&template),
            batcher: None,
            round_opt: None,
        }
    }
}

/// Restores an order's batcher snapshot into the worker's slot (rebuilt
/// if the shard ever changes shape) and returns it ready to draw from.
/// Takes the slot rather than the whole worker so the caller can borrow
/// the workspace and dataset alongside it.
fn restore_batcher(
    slot: &mut Option<Batcher>,
    batch_size: usize,
    state: aergia_data::batcher::BatcherState,
) -> &mut Batcher {
    let shard = state.indices.len();
    let fits = slot.as_ref().is_some_and(|b| b.state().indices.len() == shard);
    if !fits {
        // The constructor's seed is irrelevant: restore_state overwrites
        // the order, cursor and rng wholesale.
        *slot = Some(Batcher::new(state.indices.clone(), batch_size, 0));
    }
    let batcher = slot.as_mut().expect("just materialised");
    batcher.restore_state(state);
    batcher
}

fn nn_err(e: aergia_nn::NnError) -> NetError {
    NetError::Engine(EngineError::Nn(e))
}

/// Runs the client to completion: connect, serve orders, until the
/// coordinator sends Finish.
///
/// # Errors
///
/// [`NetError::Protocol`] if the coordinator violates the protocol
/// (e.g. an offload order without a same-round train order), and model
/// errors as [`NetError::Engine`]. Connection failures are *not* errors
/// — the machine reconnects with backoff indefinitely.
pub fn run(opts: &ClientOpts) -> Result<(), NetError> {
    let mut worker: Option<Worker> = None;
    let mut state = ClientState::Connecting { attempt: 0 };
    loop {
        state = match state {
            ClientState::Connecting { attempt } => step_connect(opts, &mut worker, attempt),
            ClientState::Awaiting { conn } => step_await(opts, conn),
            ClientState::Selected { conn, order } => {
                let worker = worker.as_mut().expect("welcomed before selected");
                step_work(opts, worker, conn, order)?
            }
            ClientState::Uploading { conn, round, train_reply, wire } => {
                step_upload(opts, conn, round, train_reply, wire)
            }
            ClientState::Done => return Ok(()),
        };
    }
}

/// Backoff for the n-th consecutive failed attempt: `100ms · 2ⁿ`,
/// capped at 2 s.
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis((100u64 << attempt.min(5)).min(2000))
}

fn step_connect(opts: &ClientOpts, worker: &mut Option<Worker>, attempt: u32) -> ClientState {
    if attempt > 0 {
        std::thread::sleep(backoff(attempt - 1));
    }
    match try_connect(opts, worker) {
        Ok(conn) => ClientState::Awaiting { conn },
        Err(e) => {
            BACKOFFS.add(1);
            if attempt == 0 {
                netlog!("net.client.unreachable", client = opts.id;
                    "client {}: coordinator not reachable yet: {e}", opts.id);
            }
            ClientState::Connecting { attempt: attempt.saturating_add(1) }
        }
    }
}

fn try_connect(opts: &ClientOpts, worker: &mut Option<Worker>) -> Result<TcpStream, NetError> {
    let text = std::fs::read_to_string(&opts.port_file)?;
    let port: u16 = text
        .trim()
        .parse()
        .map_err(|_| NetError::Protocol(format!("malformed port file {:?}", opts.port_file)))?;
    let mut conn = TcpStream::connect(("127.0.0.1", port))?;
    conn.set_nodelay(true)?;
    conn.set_read_timeout(Some(Duration::from_secs(30)))?;
    conn.set_write_timeout(Some(Duration::from_secs(60)))?;
    conn.write_all(&envelope::encode(MsgKind::Hello, &Hello { client: opts.id }.encode()))?;
    let (kind, body) = envelope::read_from(&mut conn)?;
    if kind != MsgKind::Welcome {
        return Err(NetError::Protocol(format!("expected Welcome, got {kind:?}")));
    }
    match worker {
        // Reconnecting to the same experiment (coordinator restart):
        // keep every cache, including a retained round optimizer — the
        // resumed round's train order rebuilds it anyway.
        Some(w) if w.setup_body == body => {}
        _ => *worker = Some(Worker::new(WorkerSetup::decode(&body)?, body)),
    }
    // Orders can be arbitrarily far apart (other clients train between
    // them); only connection loss should wake us.
    conn.set_read_timeout(None)?;
    Ok(conn)
}

fn step_await(opts: &ClientOpts, mut conn: TcpStream) -> ClientState {
    let reconnect = |why: &dyn std::fmt::Display| {
        netlog!("net.client.reconnect", client = opts.id;
            "client {}: lost coordinator ({why}); reconnecting", opts.id);
        ClientState::Connecting { attempt: 0 }
    };
    match envelope::read_from(&mut conn) {
        Ok((MsgKind::TrainOrder, body)) => match TrainOrderMsg::decode(&body) {
            Ok(order) => ClientState::Selected { conn, order: Order::Train(order) },
            Err(e) => reconnect(&e),
        },
        Ok((MsgKind::OffloadOrder, body)) => match OffloadOrderMsg::decode(&body) {
            Ok(order) => ClientState::Selected { conn, order: Order::Offload(order) },
            Err(e) => reconnect(&e),
        },
        Ok((MsgKind::Finish, _)) => ClientState::Done,
        Ok((kind, _)) => reconnect(&format!("unexpected {kind:?}")),
        Err(e) => reconnect(&e),
    }
}

fn step_work(
    opts: &ClientOpts,
    worker: &mut Worker,
    conn: TcpStream,
    order: Order,
) -> Result<ClientState, NetError> {
    match order {
        Order::Train(msg) => {
            if msg.client != opts.id {
                return Err(NetError::Protocol(format!(
                    "train order for client {} arrived at client {}",
                    msg.client, opts.id
                )));
            }
            let TrainOrderMsg {
                round,
                client,
                own_batches,
                freeze_after,
                snapshot_wanted,
                batcher: batcher_state,
                round_base,
            } = msg;
            let mut opt = round_optimizer(&worker.config, &worker.strategy, &round_base);
            let batcher =
                restore_batcher(&mut worker.batcher, worker.config.batch_size, batcher_state);
            let own = worker
                .workspace
                .run_own_batches(
                    &round_base,
                    own_batches,
                    freeze_after,
                    snapshot_wanted,
                    batcher,
                    &worker.train,
                    &mut opt,
                )
                .map_err(nn_err)?;
            let reply = TrainReplyMsg {
                round,
                client,
                losses: own.losses,
                weights: own.weights,
                snapshot: own.snapshot,
                batcher: batcher.state(),
            };
            worker.round_opt = Some((round, opt));
            let wire = envelope::encode(MsgKind::TrainReply, &reply.encode());
            Ok(ClientState::Uploading { conn, round, train_reply: true, wire })
        }
        Order::Offload(msg) => {
            if msg.receiver != opts.id {
                return Err(NetError::Protocol(format!(
                    "offload order for receiver {} arrived at client {}",
                    msg.receiver, opts.id
                )));
            }
            // The receiver's stage-2 training continues its stage-1
            // momentum — the engine guarantees an offload order only ever
            // follows the same round's train order.
            let Some((opt_round, mut opt)) = worker.round_opt.take() else {
                return Err(NetError::Protocol(format!(
                    "offload order for round {} without a preceding train order",
                    msg.round
                )));
            };
            if opt_round != msg.round {
                return Err(NetError::Protocol(format!(
                    "offload order for round {} but retained optimizer is from round {opt_round}",
                    msg.round
                )));
            }
            let OffloadOrderMsg { round, receiver, weak, batches, snapshot, batcher: state } = msg;
            let batcher = restore_batcher(&mut worker.batcher, worker.config.batch_size, state);
            let features = worker
                .workspace
                .run_offload_batches(&snapshot, batches, batcher, &worker.train, &mut opt)
                .map_err(nn_err)?;
            let reply =
                OffloadReplyMsg { round, receiver, weak, features, batcher: batcher.state() };
            let wire = envelope::encode(MsgKind::OffloadReply, &reply.encode());
            Ok(ClientState::Uploading { conn, round, train_reply: false, wire })
        }
    }
}

fn step_upload(
    opts: &ClientOpts,
    mut conn: TcpStream,
    round: u32,
    train_reply: bool,
    wire: Vec<u8>,
) -> ClientState {
    if train_reply && opts.crash_at_round == Some(round) {
        // Simulated mid-upload crash: half the envelope, then die. The
        // coordinator must complete the round with everyone else.
        let _ = conn.write_all(&wire[..wire.len() / 2]);
        let _ = conn.flush();
        netlog!("net.client.crash", client = opts.id, round = round;
            "client {}: simulated crash mid-upload of round {round}", opts.id);
        std::process::exit(2);
    }
    match conn.write_all(&wire) {
        Ok(()) => ClientState::Awaiting { conn },
        Err(e) => {
            netlog!("net.client.upload_failed", client = opts.id, round = round;
                "client {}: upload of round {round} failed ({e}); reconnecting", opts.id);
            ClientState::Connecting { attempt: 0 }
        }
    }
}
