//! Client worker binary: joins a coordinator's run and serves training
//! orders until told to finish.
//!
//! ```text
//! aergia-client --dir RUNDIR --id N [--crash-at-round R]
//! ```
//!
//! `RUNDIR` must be the coordinator's run directory (the port file is
//! read from it — repeatedly, so the worker also finds a coordinator
//! that restarts on a new port). `--crash-at-round` is the e2e suite's
//! fault-injection hook: the process dies mid-upload of that round's
//! train reply with exit code 2.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use aergia_net::client::{run, ClientOpts};

fn usage() -> ! {
    println!("usage: aergia-client --dir RUNDIR --id N [--crash-at-round R]");
    std::process::exit(64);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<PathBuf> = None;
    let mut id: Option<usize> = None;
    let mut crash_at_round = None;
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--dir" => dir = Some(PathBuf::from(value())),
            "--id" => id = Some(value().parse().unwrap_or_else(|_| usage())),
            "--crash-at-round" => {
                crash_at_round = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    let (Some(dir), Some(id)) = (dir, id) else { usage() };

    let opts = ClientOpts { id, port_file: dir.join("coordinator.port"), crash_at_round };
    if let Err(e) = run(&opts) {
        println!("aergia-client {id}: {e}");
        std::process::exit(1);
    }
}
