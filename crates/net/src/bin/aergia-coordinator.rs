//! Coordinator binary: serves one smoke-preset experiment over TCP.
//!
//! ```text
//! aergia-coordinator --dir RUNDIR [--seed N] [--codec dense|quant|topk:P]
//!                    [--strategy aergia|fedavg|fedprox]
//!                    [--scenario none|async|churn|byzantine]
//!                    [--topology flat|two-tier]
//!                    [--halt-after-round N] [--reply-timeout-secs N]
//!                    [--telemetry PATH]
//! ```
//!
//! `RUNDIR` holds the port file, the per-round checkpoint and the final
//! result; restarting the binary with the same directory resumes from
//! the checkpoint. `--telemetry PATH` enables the telemetry layer and
//! dumps a Prometheus-style snapshot to `PATH` at every round boundary
//! and on shutdown (the JSONL event stream appends to `PATH.jsonl`).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Duration;

use aergia_net::coordinator::{serve, CoordinatorOpts};
use aergia_net::presets::{
    codec_by_name, scenario_by_name, smoke_config, strategy_by_name, topology_by_name,
};

fn usage() -> ! {
    println!(
        "usage: aergia-coordinator --dir RUNDIR [--seed N] [--codec dense|quant|topk:P] \
         [--strategy aergia|fedavg|fedprox] [--scenario none|async|churn|byzantine] \
         [--topology flat|two-tier] [--halt-after-round N] [--reply-timeout-secs N] \
         [--telemetry PATH]"
    );
    std::process::exit(64);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<PathBuf> = None;
    let mut seed = 33u64;
    let mut codec = "dense".to_string();
    let mut strategy = "aergia".to_string();
    let mut scenario = "none".to_string();
    let mut topology = "flat".to_string();
    let mut halt_after_round = None;
    let mut reply_timeout = Duration::from_secs(120);
    let mut telemetry: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--dir" => dir = Some(PathBuf::from(value())),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--codec" => codec = value(),
            "--strategy" => strategy = value(),
            "--scenario" => scenario = value(),
            "--topology" => topology = value(),
            "--halt-after-round" => {
                halt_after_round = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--reply-timeout-secs" => {
                reply_timeout = Duration::from_secs(value().parse().unwrap_or_else(|_| usage()));
            }
            "--telemetry" => telemetry = Some(PathBuf::from(value())),
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    let Some(codec) = codec_by_name(&codec) else { usage() };
    let Some(strategy) = strategy_by_name(&strategy) else { usage() };
    let Some(scenario) = scenario_by_name(&scenario) else { usage() };
    let Some(topology) = topology_by_name(&topology, seed) else { usage() };

    if let Err(e) = std::fs::create_dir_all(&dir) {
        println!("aergia-coordinator: cannot create {dir:?}: {e}");
        std::process::exit(1);
    }
    let mut opts = CoordinatorOpts::in_dir(&dir);
    opts.halt_after_round = halt_after_round;
    opts.reply_timeout = reply_timeout;
    opts.telemetry = telemetry;

    let mut config = smoke_config(seed, codec);
    config.scenario = scenario;
    match serve(config, strategy, topology, &opts) {
        Ok(Some(outcome)) => {
            println!(
                "aergia-coordinator: finished {} rounds, final accuracy {:.3}",
                outcome.result.rounds.len(),
                outcome.result.final_accuracy
            );
        }
        Ok(None) => println!("aergia-coordinator: halted early as requested"),
        Err(e) => {
            println!("aergia-coordinator: {e}");
            std::process::exit(1);
        }
    }
}
