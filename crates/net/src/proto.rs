//! Protocol message bodies for the coordinator⇄client TCP runtime.
//!
//! Every message travels as an [`aergia_codec::envelope`] whose kind byte
//! names one of the types here and whose body is the type's hand-rolled
//! little-endian encoding (the vendored serde shim has no byte format).
//! Tensor lists ride as [`aergia_codec::dense`] payloads — the same
//! bit-exact encoding the simulator's wire codec and checkpoints use —
//! and batcher snapshots mirror the layout of the engine checkpoint's
//! `BTCH` chunk, so a state that round-trips the network is byte-for-byte
//! the state a checkpoint would have persisted.
//!
//! The protocol keeps remote clients *stateless between orders*: a
//! [`TrainOrderMsg`] carries everything the numeric work needs (round
//! base, batcher snapshot) and the [`TrainReplyMsg`] returns the advanced
//! batcher state for the engine to restore, because the engine — and its
//! checkpoints — remain the single source of truth for resumption. The
//! only state a worker retains across messages within a round is its
//! stage-1 optimizer, which [`OffloadOrderMsg`] implicitly reuses (the
//! same momentum-threading the in-process transport performs explicitly).
//!
//! Decoders validate counts against [`Reader`] bounds before allocating
//! and reject trailing garbage, matching the rigor of the envelope layer.

use aergia::metrics::{RoundRecord, RunResult};
use aergia::prelude::*;
use aergia::profiler::WorkspacePoolStats;
use aergia_codec::dense;
use aergia_codec::io::{put_f32, put_f64, put_u32, put_u64, Reader};
use aergia_codec::CodecError;
use aergia_data::batcher::BatcherState;
use aergia_data::{DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;
use aergia_nn::optim::SgdConfig;
use aergia_simnet::{SimDuration, SimTime};
use aergia_tensor::Tensor;

fn put_tensors(out: &mut Vec<u8>, tensors: &[Tensor]) {
    put_u32(out, tensors.len() as u32);
    put_u32(out, dense::payload_len(tensors) as u32);
    dense::encode_payload_into(tensors, out);
}

fn read_tensors(r: &mut Reader<'_>) -> Result<Vec<Tensor>, CodecError> {
    let count = r.u32()? as usize;
    let len = r.u32()? as usize;
    let payload = r.take(len)?;
    dense::decode_payload(payload, count)
}

/// Mirrors the engine checkpoint's `BTCH` chunk layout exactly.
fn put_batcher(out: &mut Vec<u8>, state: &BatcherState) {
    put_u64(out, state.cursor as u64);
    for s in state.rng {
        put_u64(out, s);
    }
    put_u32(out, state.indices.len() as u32);
    for &i in &state.indices {
        put_u32(out, i as u32);
    }
}

fn read_batcher(r: &mut Reader<'_>) -> Result<BatcherState, CodecError> {
    let cursor = r.u64()? as usize;
    let rng = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
    let n = r.u32()? as usize;
    if cursor > n {
        return Err(CodecError::Corrupt("batcher cursor out of range"));
    }
    let mut indices = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        indices.push(r.u32()? as usize);
    }
    Ok(BatcherState { indices, cursor, rng })
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u32(out, v);
        }
        None => {
            out.push(0);
            put_u32(out, 0);
        }
    }
}

fn read_opt_u32(r: &mut Reader<'_>) -> Result<Option<u32>, CodecError> {
    let flag = r.u8()?;
    let v = r.u32()?;
    match flag {
        0 => Ok(None),
        1 => Ok(Some(v)),
        _ => Err(CodecError::Corrupt("option flag")),
    }
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn read_bool(r: &mut Reader<'_>) -> Result<bool, CodecError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CodecError::Corrupt("bool flag")),
    }
}

/// Rejects messages with bytes past their declared content.
fn finish(r: &Reader<'_>) -> Result<(), CodecError> {
    if r.remaining() != 0 {
        return Err(CodecError::Corrupt("trailing bytes after message"));
    }
    Ok(())
}

fn spec_to_wire(spec: DatasetSpec) -> u8 {
    match spec {
        DatasetSpec::MnistLike => 0,
        DatasetSpec::FmnistLike => 1,
        DatasetSpec::Cifar10Like => 2,
        DatasetSpec::Cifar100Like => 3,
        // `DatasetSpec` is #[non_exhaustive]; a future variant must get a
        // wire code (and a version bump) before it can cross the network.
        _ => unimplemented!("dataset spec has no wire encoding yet"),
    }
}

fn spec_from_wire(byte: u8) -> Result<DatasetSpec, CodecError> {
    match byte {
        0 => Ok(DatasetSpec::MnistLike),
        1 => Ok(DatasetSpec::FmnistLike),
        2 => Ok(DatasetSpec::Cifar10Like),
        3 => Ok(DatasetSpec::Cifar100Like),
        _ => Err(CodecError::Corrupt("dataset spec")),
    }
}

fn arch_to_wire(arch: ModelArch) -> u8 {
    match arch {
        ModelArch::MnistCnn => 0,
        ModelArch::FmnistCnn => 1,
        ModelArch::Cifar10Cnn => 2,
        ModelArch::Cifar10ResNet => 3,
        ModelArch::Cifar100Vgg => 4,
        ModelArch::Cifar100ResNet => 5,
        // `ModelArch` is #[non_exhaustive]; same rule as `spec_to_wire`.
        _ => unimplemented!("model arch has no wire encoding yet"),
    }
}

fn arch_from_wire(byte: u8) -> Result<ModelArch, CodecError> {
    match byte {
        0 => Ok(ModelArch::MnistCnn),
        1 => Ok(ModelArch::FmnistCnn),
        2 => Ok(ModelArch::Cifar10Cnn),
        3 => Ok(ModelArch::Cifar10ResNet),
        4 => Ok(ModelArch::Cifar100Vgg),
        5 => Ok(ModelArch::Cifar100ResNet),
        _ => Err(CodecError::Corrupt("model arch")),
    }
}

/// Client → coordinator: introduce a client id and request admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The sender's client id (`0..num_clients`).
    pub client: usize,
}

impl Hello {
    /// Encodes the message body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4);
        put_u32(&mut out, self.client as u32);
        out
    }

    /// Decodes a message body.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on malformed bodies.
    pub fn decode(body: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(body);
        let client = r.u32()? as usize;
        finish(&r)?;
        Ok(Hello { client })
    }
}

/// Coordinator → client: the slice of the experiment description a
/// stateless numeric worker needs.
///
/// This is deliberately *not* the whole [`ExperimentConfig`] — link
/// models, speeds, selection policy and the wire codec are federator
/// concerns the event trace already resolved. A worker only has to
/// regenerate the dataset, rebuild the model template and construct the
/// round optimizer bit-identically, which takes exactly these fields.
#[derive(Debug, Clone, Copy)]
pub struct WorkerSetup {
    /// The synthetic dataset description (workers regenerate the full
    /// training set; shards arrive as batcher index lists).
    pub dataset: DataConfig,
    /// The model architecture.
    pub arch: ModelArch,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Local optimizer hyper-parameters.
    pub sgd: SgdConfig,
    /// The experiment master seed (model init derives from it).
    pub seed: u64,
    /// FedProx proximal coefficient, if that strategy is active (the only
    /// strategy knob that changes client-side arithmetic).
    pub prox_mu: Option<f32>,
}

impl WorkerSetup {
    /// Extracts the worker-relevant slice of an experiment.
    pub fn from_experiment(config: &ExperimentConfig, strategy: &Strategy) -> Self {
        WorkerSetup {
            dataset: config.dataset,
            arch: config.arch,
            batch_size: config.batch_size,
            sgd: config.sgd,
            seed: config.seed,
            prox_mu: match strategy {
                Strategy::FedProx { mu } => Some(*mu),
                _ => None,
            },
        }
    }

    /// Reconstitutes an [`ExperimentConfig`] carrying this setup, with
    /// every federator-only field left at its default. Only valid as
    /// input to the worker-side helpers
    /// ([`aergia::transport::build_template`],
    /// [`aergia::transport::round_optimizer`]), which read exactly the
    /// fields this setup carries.
    pub fn worker_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            dataset: self.dataset,
            arch: self.arch,
            batch_size: self.batch_size,
            sgd: self.sgd,
            seed: self.seed,
            ..ExperimentConfig::default()
        }
    }

    /// The strategy as far as a worker's arithmetic is concerned: FedProx
    /// with the carried `μ`, or plain FedAvg otherwise (every other
    /// strategy differs only in federator-side scheduling/aggregation).
    pub fn worker_strategy(&self) -> Strategy {
        match self.prox_mu {
            Some(mu) => Strategy::FedProx { mu },
            None => Strategy::FedAvg,
        }
    }

    /// Encodes the message body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(spec_to_wire(self.dataset.spec));
        put_u64(&mut out, self.dataset.train_size as u64);
        put_u64(&mut out, self.dataset.test_size as u64);
        put_u64(&mut out, self.dataset.seed);
        out.push(arch_to_wire(self.arch));
        put_u32(&mut out, self.batch_size as u32);
        put_f32(&mut out, self.sgd.lr);
        put_f32(&mut out, self.sgd.momentum);
        put_f32(&mut out, self.sgd.weight_decay);
        put_u64(&mut out, self.seed);
        match self.prox_mu {
            Some(mu) => {
                out.push(1);
                put_f32(&mut out, mu);
            }
            None => {
                out.push(0);
                put_f32(&mut out, 0.0);
            }
        }
        out
    }

    /// Decodes a message body.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on malformed bodies.
    pub fn decode(body: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(body);
        let spec = spec_from_wire(r.u8()?)?;
        let train_size = r.u64()? as usize;
        let test_size = r.u64()? as usize;
        let data_seed = r.u64()?;
        let arch = arch_from_wire(r.u8()?)?;
        let batch_size = r.u32()? as usize;
        let sgd = SgdConfig { lr: r.f32()?, momentum: r.f32()?, weight_decay: r.f32()? };
        let seed = r.u64()?;
        let prox_flag = r.u8()?;
        let mu = r.f32()?;
        let prox_mu = match prox_flag {
            0 => None,
            1 => Some(mu),
            _ => return Err(CodecError::Corrupt("prox flag")),
        };
        finish(&r)?;
        Ok(WorkerSetup {
            dataset: DataConfig { spec, train_size, test_size, seed: data_seed },
            arch,
            batch_size,
            sgd,
            seed,
            prox_mu,
        })
    }
}

/// Coordinator → client: train your own batches for one round.
#[derive(Debug, Clone)]
pub struct TrainOrderMsg {
    /// The round index (0-based).
    pub round: u32,
    /// The addressed client.
    pub client: usize,
    /// Local batches to run.
    pub own_batches: u32,
    /// Freeze the feature section before this batch index.
    pub freeze_after: Option<u32>,
    /// Capture and return the frozen snapshot.
    pub snapshot_wanted: bool,
    /// The engine's batcher state for this client (restored worker-side,
    /// advanced, and shipped back — the engine stays authoritative).
    pub batcher: BatcherState,
    /// The round's decoded broadcast weights.
    pub round_base: Vec<Tensor>,
}

impl TrainOrderMsg {
    /// Encodes the message body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.round);
        put_u32(&mut out, self.client as u32);
        put_u32(&mut out, self.own_batches);
        put_opt_u32(&mut out, self.freeze_after);
        put_bool(&mut out, self.snapshot_wanted);
        put_batcher(&mut out, &self.batcher);
        put_tensors(&mut out, &self.round_base);
        out
    }

    /// Decodes a message body.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on malformed bodies.
    pub fn decode(body: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(body);
        let round = r.u32()?;
        let client = r.u32()? as usize;
        let own_batches = r.u32()?;
        let freeze_after = read_opt_u32(&mut r)?;
        let snapshot_wanted = read_bool(&mut r)?;
        let batcher = read_batcher(&mut r)?;
        let round_base = read_tensors(&mut r)?;
        finish(&r)?;
        Ok(TrainOrderMsg {
            round,
            client,
            own_batches,
            freeze_after,
            snapshot_wanted,
            batcher,
            round_base,
        })
    }
}

/// Client → coordinator: what one round of own training produced.
#[derive(Debug, Clone)]
pub struct TrainReplyMsg {
    /// The round this reply answers.
    pub round: u32,
    /// The replying client.
    pub client: usize,
    /// Per-batch training losses, in batch order.
    pub losses: Vec<f32>,
    /// The full trained snapshot.
    pub weights: Vec<Tensor>,
    /// The frozen snapshot, if the order asked for one.
    pub snapshot: Option<Vec<Tensor>>,
    /// The advanced batcher state for the engine to restore.
    pub batcher: BatcherState,
}

impl TrainReplyMsg {
    /// Encodes the message body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.round);
        put_u32(&mut out, self.client as u32);
        put_u32(&mut out, self.losses.len() as u32);
        for &l in &self.losses {
            put_f32(&mut out, l);
        }
        put_tensors(&mut out, &self.weights);
        match &self.snapshot {
            Some(snapshot) => {
                out.push(1);
                put_tensors(&mut out, snapshot);
            }
            None => out.push(0),
        }
        put_batcher(&mut out, &self.batcher);
        out
    }

    /// Decodes a message body.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on malformed bodies.
    pub fn decode(body: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(body);
        let round = r.u32()?;
        let client = r.u32()? as usize;
        let n = r.u32()? as usize;
        let mut losses = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            losses.push(r.f32()?);
        }
        let weights = read_tensors(&mut r)?;
        let snapshot = match r.u8()? {
            0 => None,
            1 => Some(read_tensors(&mut r)?),
            _ => return Err(CodecError::Corrupt("snapshot flag")),
        };
        let batcher = read_batcher(&mut r)?;
        finish(&r)?;
        Ok(TrainReplyMsg { round, client, losses, weights, snapshot, batcher })
    }
}

/// Coordinator → client: train a straggler's frozen snapshot.
#[derive(Debug, Clone)]
pub struct OffloadOrderMsg {
    /// The round index.
    pub round: u32,
    /// The strong client doing the training.
    pub receiver: usize,
    /// The straggler whose snapshot is being trained.
    pub weak: usize,
    /// Feature-only batches to run.
    pub batches: u32,
    /// The straggler's snapshot as the wire codec delivered it.
    pub snapshot: Vec<Tensor>,
    /// The receiver's batcher state (continues after its own batches).
    pub batcher: BatcherState,
}

impl OffloadOrderMsg {
    /// Encodes the message body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.round);
        put_u32(&mut out, self.receiver as u32);
        put_u32(&mut out, self.weak as u32);
        put_u32(&mut out, self.batches);
        put_tensors(&mut out, &self.snapshot);
        put_batcher(&mut out, &self.batcher);
        out
    }

    /// Decodes a message body.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on malformed bodies.
    pub fn decode(body: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(body);
        let round = r.u32()?;
        let receiver = r.u32()? as usize;
        let weak = r.u32()? as usize;
        let batches = r.u32()?;
        let snapshot = read_tensors(&mut r)?;
        let batcher = read_batcher(&mut r)?;
        finish(&r)?;
        Ok(OffloadOrderMsg { round, receiver, weak, batches, snapshot, batcher })
    }
}

/// Client → coordinator: the trained feature section of an offload.
#[derive(Debug, Clone)]
pub struct OffloadReplyMsg {
    /// The round this reply answers.
    pub round: u32,
    /// The strong client that trained.
    pub receiver: usize,
    /// The straggler whose snapshot was trained.
    pub weak: usize,
    /// The trained feature section.
    pub features: Vec<Tensor>,
    /// The advanced batcher state for the engine to restore.
    pub batcher: BatcherState,
}

impl OffloadReplyMsg {
    /// Encodes the message body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.round);
        put_u32(&mut out, self.receiver as u32);
        put_u32(&mut out, self.weak as u32);
        put_tensors(&mut out, &self.features);
        put_batcher(&mut out, &self.batcher);
        out
    }

    /// Decodes a message body.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on malformed bodies.
    pub fn decode(body: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(body);
        let round = r.u32()?;
        let receiver = r.u32()? as usize;
        let weak = r.u32()? as usize;
        let features = read_tensors(&mut r)?;
        let batcher = read_batcher(&mut r)?;
        finish(&r)?;
        Ok(OffloadReplyMsg { round, receiver, weak, features, batcher })
    }
}

/// Magic bytes of a serialized [`RunOutcome`] file.
pub const OUTCOME_MAGIC: [u8; 4] = *b"ARES";
/// Version of the [`RunOutcome`] file layout. v2 appended the
/// client-state pool statistics to each round record.
pub const OUTCOME_VERSION: u16 = 2;

/// What a completed coordinator run leaves on disk: the metrics *and*
/// the final global weights, so harnesses can assert bit-identity
/// against an in-process simulation of the same experiment.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The run's metrics, as [`aergia::Engine::finish_run`] returned them.
    pub result: RunResult,
    /// The final global model weights.
    pub weights: Vec<Tensor>,
}

fn put_record(out: &mut Vec<u8>, record: &RoundRecord) {
    put_u32(out, record.round);
    put_u64(out, record.duration.as_micros());
    put_f64(out, record.test_accuracy);
    put_f64(out, record.train_loss);
    put_u64(out, record.bytes_on_wire);
    let put_ids = |out: &mut Vec<u8>, ids: &[usize]| {
        put_u32(out, ids.len() as u32);
        for &i in ids {
            put_u32(out, i as u32);
        }
    };
    put_ids(out, &record.participants);
    put_u32(out, record.offloads.len() as u32);
    for &(s, r) in &record.offloads {
        put_u32(out, s as u32);
        put_u32(out, r as u32);
    }
    put_ids(out, &record.dropped);
    put_u32(out, record.pool.hits);
    put_u32(out, record.pool.misses);
    put_u32(out, record.pool.rebuilds);
    put_u32(out, record.pool.evictions);
    put_u32(out, record.pool.resident_clients);
    put_u64(out, record.pool.resident_bytes);
}

fn read_record(r: &mut Reader<'_>) -> Result<RoundRecord, CodecError> {
    let round = r.u32()?;
    let duration = SimDuration::from_micros(r.u64()?);
    let test_accuracy = r.f64()?;
    let train_loss = r.f64()?;
    let bytes_on_wire = r.u64()?;
    let read_ids = |r: &mut Reader<'_>| -> Result<Vec<usize>, CodecError> {
        let n = r.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(r.u32()? as usize);
        }
        Ok(out)
    };
    let participants = read_ids(r)?;
    let n = r.u32()? as usize;
    let mut offloads = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let s = r.u32()? as usize;
        let rr = r.u32()? as usize;
        offloads.push((s, rr));
    }
    let dropped = read_ids(r)?;
    let pool = WorkspacePoolStats {
        hits: r.u32()?,
        misses: r.u32()?,
        rebuilds: r.u32()?,
        evictions: r.u32()?,
        resident_clients: r.u32()?,
        resident_bytes: r.u64()?,
    };
    Ok(RoundRecord {
        round,
        duration,
        test_accuracy,
        train_loss,
        participants,
        offloads,
        dropped,
        bytes_on_wire,
        pool,
    })
}

impl RunOutcome {
    /// Encodes the outcome file.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&OUTCOME_MAGIC);
        aergia_codec::io::put_u16(&mut out, OUTCOME_VERSION);
        put_u64(&mut out, self.result.pretraining.as_micros());
        put_u64(&mut out, self.result.finished_at.as_micros());
        put_f64(&mut out, self.result.final_accuracy);
        put_u32(&mut out, self.result.rounds.len() as u32);
        for record in &self.result.rounds {
            put_record(&mut out, record);
        }
        put_tensors(&mut out, &self.weights);
        out
    }

    /// Decodes an outcome file.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on malformed bodies.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != OUTCOME_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.u16()?;
        if version != OUTCOME_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let pretraining = SimDuration::from_micros(r.u64()?);
        let finished_at = SimTime::from_micros(r.u64()?);
        let final_accuracy = r.f64()?;
        let n = r.u32()? as usize;
        let mut rounds = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            rounds.push(read_record(&mut r)?);
        }
        let weights = read_tensors(&mut r)?;
        finish(&r)?;
        Ok(RunOutcome {
            result: RunResult { rounds, pretraining, finished_at, final_accuracy },
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensors() -> Vec<Tensor> {
        vec![Tensor::ones(&[2, 3]), Tensor::zeros(&[4])]
    }

    fn batcher_state() -> BatcherState {
        BatcherState { indices: vec![5, 2, 9, 0], cursor: 2, rng: [1, 2, 3, 4] }
    }

    #[test]
    fn hello_and_setup_round_trip() {
        let hello = Hello { client: 3 };
        assert_eq!(Hello::decode(&hello.encode()).unwrap(), hello);

        let setup = WorkerSetup {
            dataset: DataConfig {
                spec: DatasetSpec::FmnistLike,
                train_size: 240,
                test_size: 60,
                seed: 7,
            },
            arch: ModelArch::FmnistCnn,
            batch_size: 8,
            sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 1e-4 },
            seed: 33,
            prox_mu: Some(0.05),
        };
        let decoded = WorkerSetup::decode(&setup.encode()).unwrap();
        assert_eq!(decoded.dataset, setup.dataset);
        assert_eq!(decoded.arch, setup.arch);
        assert_eq!(decoded.batch_size, setup.batch_size);
        assert_eq!(decoded.sgd.lr.to_bits(), setup.sgd.lr.to_bits());
        assert_eq!(decoded.seed, setup.seed);
        assert_eq!(decoded.prox_mu, setup.prox_mu);
        assert!(matches!(decoded.worker_strategy(), Strategy::FedProx { .. }));
    }

    #[test]
    fn orders_and_replies_round_trip() {
        let order = TrainOrderMsg {
            round: 2,
            client: 1,
            own_batches: 10,
            freeze_after: Some(4),
            snapshot_wanted: true,
            batcher: batcher_state(),
            round_base: tensors(),
        };
        let decoded = TrainOrderMsg::decode(&order.encode()).unwrap();
        assert_eq!(decoded.round, 2);
        assert_eq!(decoded.freeze_after, Some(4));
        assert_eq!(decoded.batcher, batcher_state());
        assert_eq!(decoded.round_base, tensors());

        let reply = TrainReplyMsg {
            round: 2,
            client: 1,
            losses: vec![0.5, 0.25],
            weights: tensors(),
            snapshot: Some(tensors()),
            batcher: batcher_state(),
        };
        let decoded = TrainReplyMsg::decode(&reply.encode()).unwrap();
        assert_eq!(decoded.losses, vec![0.5, 0.25]);
        assert_eq!(decoded.snapshot, Some(tensors()));

        let offload = OffloadOrderMsg {
            round: 1,
            receiver: 3,
            weak: 0,
            batches: 6,
            snapshot: tensors(),
            batcher: batcher_state(),
        };
        let decoded = OffloadOrderMsg::decode(&offload.encode()).unwrap();
        assert_eq!((decoded.receiver, decoded.weak, decoded.batches), (3, 0, 6));

        let reply = OffloadReplyMsg {
            round: 1,
            receiver: 3,
            weak: 0,
            features: tensors(),
            batcher: batcher_state(),
        };
        let decoded = OffloadReplyMsg::decode(&reply.encode()).unwrap();
        assert_eq!(decoded.features, tensors());
    }

    #[test]
    fn truncated_and_trailing_bytes_are_rejected() {
        let order = TrainOrderMsg {
            round: 0,
            client: 0,
            own_batches: 1,
            freeze_after: None,
            snapshot_wanted: false,
            batcher: batcher_state(),
            round_base: tensors(),
        };
        let mut bytes = order.encode();
        for cut in 0..bytes.len() {
            assert!(TrainOrderMsg::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        bytes.push(0);
        assert!(matches!(TrainOrderMsg::decode(&bytes), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn outcome_file_round_trips() {
        let outcome = RunOutcome {
            result: RunResult {
                rounds: vec![RoundRecord {
                    round: 0,
                    duration: SimDuration::from_micros(1_500_000),
                    test_accuracy: 0.75,
                    train_loss: 1.25,
                    participants: vec![0, 1, 2],
                    offloads: vec![(0, 2)],
                    dropped: vec![1],
                    bytes_on_wire: 12345,
                    pool: WorkspacePoolStats {
                        hits: 2,
                        misses: 1,
                        rebuilds: 0,
                        evictions: 1,
                        resident_clients: 3,
                        resident_bytes: 4096,
                    },
                }],
                pretraining: SimDuration::from_micros(10),
                finished_at: SimTime::from_micros(1_500_010),
                final_accuracy: 0.75,
            },
            weights: tensors(),
        };
        let decoded = RunOutcome::decode(&outcome.encode()).unwrap();
        assert_eq!(decoded.weights, tensors());
        let (a, b) = (&decoded.result.rounds[0], &outcome.result.rounds[0]);
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.participants, b.participants);
        assert_eq!(a.offloads, b.offloads);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(decoded.result.final_accuracy.to_bits(), 0.75f64.to_bits());
        assert!(RunOutcome::decode(&outcome.encode()[..10]).is_err());
    }
}
