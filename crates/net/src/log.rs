//! Structured operational logging and metrics for the network runtime.
//!
//! Every operational message in this crate goes through the [`netlog!`]
//! macro: one call emits a structured `aergia-telemetry` point event
//! (when the layer is enabled) *and* the human-readable stderr line,
//! so the two views can never drift apart. [`stderr_line`] is the
//! crate's single sanctioned raw-stderr site — `scripts/check_eprintln.sh`
//! fails CI on any other `eprintln!` in a library crate. User-facing
//! output from the binaries (usage text, results) belongs on stdout.
//!
//! The metric handles below are the runtime's registry surface:
//! connection lifecycle counters, an envelope-size histogram, and a
//! wall-clock round-trip histogram. The round-trip histogram is
//! *snapshot-only*: wall-clock values may appear in a Prometheus
//! snapshot but must never enter the JSONL event stream, which is
//! reserved for virtual-clock-stamped, seed-pure records.

use aergia_telemetry::{LazyCounter, LazyHistogram, SIZE_BYTES_BUCKETS};

/// Seconds buckets for the wall-clock order round-trip (snapshot-only).
const RTT_SECS_BUCKETS: &[f64] =
    &[0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0];

/// Client connections the coordinator admitted.
pub(crate) static CONNECTS: LazyCounter = LazyCounter::new("aergia_net_connects_total");
/// Connections the coordinator rejected during the Hello exchange.
pub(crate) static REJECTS: LazyCounter = LazyCounter::new("aergia_net_rejects_total");
/// Clients dropped mid-round (connection lost, timeout, bad reply).
pub(crate) static DROPS: LazyCounter = LazyCounter::new("aergia_net_client_drops_total");
/// Runs resumed from an on-disk checkpoint.
pub(crate) static RESUMES: LazyCounter = LazyCounter::new("aergia_net_checkpoint_resumes_total");
/// Client-side reconnect attempts (each waits one backoff step).
pub(crate) static BACKOFFS: LazyCounter = LazyCounter::new("aergia_net_backoffs_total");
/// Bytes of every envelope the coordinator ships to a client.
pub(crate) static ENVELOPE_BYTES: LazyHistogram =
    LazyHistogram::new("aergia_net_envelope_bytes", SIZE_BYTES_BUCKETS);
/// Wall-clock seconds from writing an order to decoding its reply.
/// Snapshot-only: real time is not part of the deterministic stream.
pub(crate) static ORDER_RTT_SECS: LazyHistogram =
    LazyHistogram::new_snapshot_only("aergia_net_order_rtt_seconds", RTT_SECS_BUCKETS);

/// Writes one formatted line to stderr — the only place the networked
/// runtime's library code touches stderr directly.
pub(crate) fn stderr_line(args: std::fmt::Arguments<'_>) {
    eprintln!("{args}");
}

/// Logs one operational event: a structured telemetry point event named
/// `$event` with the given attributes, plus a human-readable stderr
/// line. The attribute list and the message are separated by `;`.
///
/// ```ignore
/// netlog!("net.client.drop", round = round, client = c;
///         "coordinator: client {c} lost during round {round}: {e}");
/// ```
macro_rules! netlog {
    ($event:expr $(, $key:ident = $val:expr)* ; $($fmt:tt)+) => {{
        aergia_telemetry::event!($event $(, $key = $val)*);
        $crate::log::stderr_line(::std::format_args!($($fmt)+));
    }};
}

pub(crate) use netlog;
