//! The curated public surface, importable in one line.
//!
//! ```
//! use aergia::prelude::*;
//!
//! let config = ExperimentConfig { mode: Mode::Timing, ..ExperimentConfig::default() };
//! let result = Engine::new(config, Strategy::FedAvg).unwrap().run().unwrap();
//! assert_eq!(result.rounds.len(), 3);
//! ```
//!
//! Everything an experiment driver needs: the engine and its errors,
//! configuration and topology types, strategies, run/round metrics,
//! checkpointing, and the transport boundary `aergia-net` plugs into.
//! Lower-level pieces (the scheduler, profiler, message types) stay in
//! their named modules.

pub use crate::config::{ConfigError, ExperimentConfig, Mode};
pub use crate::engine::{CheckpointError, Engine, EngineError, RunProgress};
pub use crate::metrics::{RoundRecord, RunResult};
pub use crate::scenario::{
    AggregationMode, Attack, ByzantineSpec, ChurnConfig, OffloadPolicy, RobustAggregation,
    ScenarioConfig,
};
pub use crate::strategy::Strategy;
pub use crate::topology::TopologyBuilder;
pub use crate::transport::{InProcess, Transport, TransportError};
