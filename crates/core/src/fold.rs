//! Hierarchical (two-tier) aggregation: cohort layout, per-edge partial
//! folds, and the flat single-federator reference path.
//!
//! # The fold-order invariant
//!
//! Floating-point addition is not associative, so *where the brackets
//! go* defines the aggregate down to the last bit. This module fixes the
//! bracketing once, from the [`CohortLayout`]:
//!
//! ```text
//!   edge e:  pᵉ = ((0 + α₀·s₀) + α₁·s₁) + …   over e's cohort,
//!                                             in contribution order
//!   root:    out = (p⁰ + p¹) + p² + …         in fixed edge order
//! ```
//!
//! Everything else — whether the per-edge folds run serially or on the
//! work-stealing pool, whether a partial travels through a
//! [`aergia_codec::partial`] frame before the root merge, whether the
//! whole tree is evaluated at one federator — is *transparent*: it
//! cannot move a bracket, so two-tier equals flat bit for bit **by
//! construction**. The `*_reference` functions evaluate the same tree
//! serially at a single site and are the correctness oracle the
//! property tests compare against; the `*_flat` functions are the
//! legacy single-chain folds, which the tree reproduces exactly in the
//! single-edge layout (the default — so existing runs are bit-unchanged).
//!
//! Order-invariant robust rules ([`coordinate_median`] and friends, pure
//! functions of the update *multiset*) and the arrival-ordered buffered
//! async fold do not route through edges at all: edges forward their
//! cohorts' updates unfolded and the root applies the rule, which is
//! trivially identical to the flat path.
//!
//! [`coordinate_median`]: aergia_nn::weights::coordinate_median

use aergia_codec::partial::{self, PartialAggregate};
use aergia_nn::weights::StreamingFold;
use aergia_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How clients map onto edge aggregators: every client belongs to
/// exactly one cohort, by construction of both constructors.
///
/// The layout is *aggregation topology*, not experiment semantics — but
/// because the bracketing of the aggregation tree follows from it, two
/// runs only compare bit-for-bit when their layouts agree. The engine
/// therefore persists a layout fingerprint in checkpoints and validates
/// it on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohortLayout {
    num_edges: usize,
    /// `edge_of[client]` — the edge aggregator serving that client.
    edge_of: Vec<u32>,
}

impl CohortLayout {
    /// The flat layout: one edge serving every client (the default; the
    /// aggregation tree degenerates to the legacy single chain).
    #[must_use]
    pub fn single(num_clients: usize) -> Self {
        CohortLayout { num_edges: 1, edge_of: vec![0; num_clients] }
    }

    /// A seeded balanced assignment: a deterministic permutation of the
    /// clients is dealt round-robin across `num_edges` cohorts, so cohort
    /// sizes differ by at most one and every edge is non-empty.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ num_edges ≤ num_clients` (validated earlier by
    /// [`TopologyBuilder::edge_cohorts`](crate::topology::TopologyBuilder::edge_cohorts)).
    #[must_use]
    pub fn seeded(num_clients: usize, num_edges: usize, seed: u64) -> Self {
        assert!(
            (1..=num_clients).contains(&num_edges),
            "cohort layout needs 1 ≤ num_edges ≤ num_clients"
        );
        let mut perm: Vec<usize> = (0..num_clients).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x636f_686f); // "coho"
        perm.shuffle(&mut rng);
        let mut edge_of = vec![0u32; num_clients];
        for (i, &client) in perm.iter().enumerate() {
            edge_of[client] = (i % num_edges) as u32;
        }
        CohortLayout { num_edges, edge_of }
    }

    /// Number of edge aggregators.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of clients the layout covers.
    #[must_use]
    pub fn num_clients(&self) -> usize {
        self.edge_of.len()
    }

    /// The edge serving `client`.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    #[must_use]
    pub fn edge_of(&self, client: usize) -> usize {
        self.edge_of[client] as usize
    }

    /// FNV-1a fingerprint of the layout, persisted in checkpoints so a
    /// resumed run provably folds with the same bracketing.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.num_edges as u64);
        eat(self.edge_of.len() as u64);
        for &e in &self.edge_of {
            eat(u64::from(e));
        }
        h
    }
}

/// One edge aggregator's pre-folded output for a round: the in-memory
/// form of [`aergia_codec::partial::PartialAggregate`].
#[derive(Debug, Clone)]
pub struct EdgePartial {
    /// The producing edge (its rank in the fixed merge order).
    pub edge: usize,
    /// How many contributions folded in at this edge.
    pub count: usize,
    /// The cohort's scalar mass (Σ wᵢ, or Σ nᵢ for FedNova).
    pub weight: f32,
    /// Strategy-specific auxiliary scalar (FedNova's τ-effective
    /// partial; `0.0` for plain weighted means).
    pub aux: f32,
    /// The edge accumulator.
    pub tensors: Vec<Tensor>,
}

/// Groups contribution indices by edge, preserving contribution order
/// within each cohort (the order the edge folds in).
fn cohort_indices(edges: &[usize], num_edges: usize) -> Vec<Vec<usize>> {
    let mut cohorts: Vec<Vec<usize>> = vec![Vec::new(); num_edges];
    for (i, &e) in edges.iter().enumerate() {
        assert!(e < num_edges, "contribution assigned to out-of-range edge {e}");
        cohorts[e].push(i);
    }
    cohorts
}

/// The scalar total over the tree: per-edge masses merged in edge order,
/// the first non-empty edge's mass taken as-is (no spurious `0 + x`
/// term, mirroring [`StreamingFold::merge`] on an empty receiver).
fn merge_masses(masses: &[(usize, f32)]) -> f32 {
    let mut total: Option<f32> = None;
    for &(_, m) in masses {
        total = Some(match total {
            None => m,
            Some(t) => t + m,
        });
    }
    total.expect("hierarchical fold: no contributions")
}

/// Computes every non-empty edge's pre-folded partial for a weighted
/// mean: `pᵉ = Σ (wᵢ/Σw)·sᵢ` over the cohort in contribution order,
/// with the *global* weight total evaluated over the same tree. With
/// `parallel` the per-edge folds run concurrently on the work-stealing
/// pool — each edge's chain is a single task, so scheduling cannot move
/// a bracket and the output is bit-identical either way.
///
/// # Panics
///
/// Panics if `contributions` is empty, the weights sum to zero or
/// negative, or `edges` disagrees in length.
#[must_use]
pub fn weighted_edge_partials(
    contributions: &[(f32, Vec<Tensor>)],
    edges: &[usize],
    num_edges: usize,
    parallel: bool,
) -> Vec<EdgePartial> {
    assert_eq!(contributions.len(), edges.len(), "one edge per contribution");
    let cohorts = cohort_indices(edges, num_edges);
    // Scalar pass: per-edge weight mass (0-started chain, exactly the
    // flat `iter().sum()` when one cohort holds everything), then the
    // edge-order total.
    let masses: Vec<(usize, f32)> = cohorts
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .map(|(e, c)| {
            let mut s = 0.0f32;
            for &i in c {
                s += contributions[i].0;
            }
            (e, s)
        })
        .collect();
    let total = merge_masses(&masses);
    assert!(total > 0.0, "hierarchical fold: weights sum to {total}");

    struct Slot<'a> {
        edge: usize,
        cohort: &'a [usize],
        mass: f32,
        out: Option<EdgePartial>,
    }
    let mut slots: Vec<Slot<'_>> = masses
        .iter()
        .map(|&(e, mass)| Slot { edge: e, cohort: &cohorts[e], mass, out: None })
        .collect();
    let fold_one = |slot: &mut Slot<'_>| {
        let mut fold = StreamingFold::new();
        for &i in slot.cohort {
            let (w, snap) = &contributions[i];
            fold.fold(w / total, snap);
        }
        slot.out = Some(EdgePartial {
            edge: slot.edge,
            count: slot.cohort.len(),
            weight: slot.mass,
            aux: 0.0,
            tensors: fold.finish().expect("non-empty cohort"),
        });
    };
    if parallel && slots.len() > 1 {
        aergia_runtime::par_for_each_mut(&mut slots, 0, fold_one);
    } else {
        for slot in &mut slots {
            fold_one(slot);
        }
    }
    slots.into_iter().map(|s| s.out.expect("every slot folded")).collect()
}

/// The root merge: partials combine in fixed edge order (the inputs are
/// produced in that order), the first taken as-is, the rest added
/// element-wise — [`StreamingFold::merge`]'s chain.
///
/// # Panics
///
/// Panics if `partials` is empty.
#[must_use]
pub fn merge_weighted_partials(partials: Vec<EdgePartial>) -> Vec<Tensor> {
    let mut root = StreamingFold::new();
    for p in partials {
        root.merge(StreamingFold::resume(p.tensors, p.count));
    }
    root.finish().expect("root merge: no partials")
}

/// The full hierarchical weighted mean: per-edge partials (optionally
/// concurrent) merged at the root.
#[must_use]
pub fn weighted_hierarchical(
    contributions: &[(f32, Vec<Tensor>)],
    edges: &[usize],
    num_edges: usize,
    parallel: bool,
) -> Vec<Tensor> {
    merge_weighted_partials(weighted_edge_partials(contributions, edges, num_edges, parallel))
}

/// Flat single-federator weighted mean — the legacy single-chain fold
/// (see [`aergia_nn::weights::weighted_average`]), kept as the oracle
/// the single-edge layout must reproduce exactly.
#[must_use]
pub fn weighted_flat(contributions: &[(f32, Vec<Tensor>)]) -> Vec<Tensor> {
    aergia_nn::weights::weighted_average(contributions)
}

/// Serial single-site evaluation of the weighted-mean tree: the flat
/// *reference* fold a lone federator would run, against which the
/// distributed/concurrent/codec-routed hierarchical path is
/// property-tested bit-for-bit. Intentionally an independent
/// implementation (no [`StreamingFold`], no pool).
///
/// # Panics
///
/// As [`weighted_edge_partials`].
#[must_use]
pub fn weighted_reference(
    contributions: &[(f32, Vec<Tensor>)],
    edges: &[usize],
    num_edges: usize,
) -> Vec<Tensor> {
    assert_eq!(contributions.len(), edges.len(), "one edge per contribution");
    let mut total: Option<f32> = None;
    for e in 0..num_edges {
        let mut mass = 0.0f32;
        let mut any = false;
        for (i, &ei) in edges.iter().enumerate() {
            if ei == e {
                mass += contributions[i].0;
                any = true;
            }
        }
        if !any {
            continue;
        }
        total = Some(match total {
            None => mass,
            Some(t) => t + mass,
        });
    }
    let total = total.expect("weighted_reference: no contributions");
    assert!(total > 0.0, "weighted_reference: weights sum to {total}");

    let mut out: Option<Vec<Tensor>> = None;
    for e in 0..num_edges {
        let mut acc: Option<Vec<Tensor>> = None;
        for (i, &ei) in edges.iter().enumerate() {
            if ei != e {
                continue;
            }
            let (w, snap) = &contributions[i];
            let a = acc.get_or_insert_with(|| {
                snap.iter().map(|t| Tensor::zeros(t.dims())).collect::<Vec<_>>()
            });
            for (t, s) in a.iter_mut().zip(snap) {
                t.axpy(w / total, s);
            }
        }
        let Some(partial) = acc else { continue };
        match &mut out {
            None => out = Some(partial),
            Some(o) => {
                for (a, p) in o.iter_mut().zip(&partial) {
                    a.add_assign(p);
                }
            }
        }
    }
    out.expect("weighted_reference: no contributions")
}

/// Flat single-federator FedNova (Wang et al. 2020) — the legacy chain:
/// `w ← w_g − τ_eff · Σ pᵢ·dᵢ` with `dᵢ = (w_g − wᵢ)/τᵢ`,
/// `τ_eff = Σ pᵢ·τᵢ` and `pᵢ = nᵢ / Σ nⱼ`.
#[must_use]
pub fn fednova_flat(global: &[Tensor], contributions: &[(f32, Vec<Tensor>, u32)]) -> Vec<Tensor> {
    let total_n: f32 = contributions.iter().map(|(n, _, _)| n).sum();
    let tau_eff: f32 = contributions.iter().map(|(n, _, tau)| (n / total_n) * (*tau as f32)).sum();
    let mut combined_delta: Vec<Tensor> = global.iter().map(|t| Tensor::zeros(t.dims())).collect();
    for (n, weights_i, tau) in contributions {
        let p = n / total_n;
        let tau = (*tau).max(1) as f32;
        for ((acc, g), wi) in combined_delta.iter_mut().zip(global).zip(weights_i) {
            // d_i = (w_g − w_i)/τ_i, accumulated with weight p.
            let mut d = g.sub(wi);
            d.scale(p / tau);
            acc.add_assign(&d);
        }
    }
    apply_fednova(global, tau_eff, &combined_delta)
}

/// The root-only final FedNova step: `out = w_g − τ_eff·d` per tensor.
fn apply_fednova(global: &[Tensor], tau_eff: f32, combined_delta: &[Tensor]) -> Vec<Tensor> {
    global
        .iter()
        .zip(combined_delta)
        .map(|(g, d)| {
            let mut out = g.clone();
            out.axpy(-tau_eff, d);
            out
        })
        .collect()
}

/// Computes every non-empty edge's FedNova partial. Two passes: the
/// sample-count total `Σ nⱼ` is evaluated over the tree first (every
/// pᵢ needs it), then each edge folds its cohort's normalized deltas
/// and τ-effective terms — `weight` carries the cohort's Σ nᵢ, `aux`
/// its Σ pᵢ·τᵢ partial.
///
/// # Panics
///
/// Panics if `contributions` is empty or `edges` disagrees in length.
#[must_use]
pub fn fednova_edge_partials(
    global: &[Tensor],
    contributions: &[(f32, Vec<Tensor>, u32)],
    edges: &[usize],
    num_edges: usize,
    parallel: bool,
) -> Vec<EdgePartial> {
    assert_eq!(contributions.len(), edges.len(), "one edge per contribution");
    let cohorts = cohort_indices(edges, num_edges);
    let masses: Vec<(usize, f32)> = cohorts
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .map(|(e, c)| {
            let mut s = 0.0f32;
            for &i in c {
                s += contributions[i].0;
            }
            (e, s)
        })
        .collect();
    let total_n = merge_masses(&masses);

    struct Slot<'a> {
        edge: usize,
        cohort: &'a [usize],
        mass: f32,
        out: Option<EdgePartial>,
    }
    let mut slots: Vec<Slot<'_>> = masses
        .iter()
        .map(|&(e, mass)| Slot { edge: e, cohort: &cohorts[e], mass, out: None })
        .collect();
    let fold_one = |slot: &mut Slot<'_>| {
        let mut tau_part = 0.0f32;
        let mut acc: Vec<Tensor> = global.iter().map(|t| Tensor::zeros(t.dims())).collect();
        for &i in slot.cohort {
            let (n, weights_i, tau) = &contributions[i];
            tau_part += (n / total_n) * (*tau as f32);
            let p = n / total_n;
            let tau = (*tau).max(1) as f32;
            for ((a, g), wi) in acc.iter_mut().zip(global).zip(weights_i) {
                let mut d = g.sub(wi);
                d.scale(p / tau);
                a.add_assign(&d);
            }
        }
        slot.out = Some(EdgePartial {
            edge: slot.edge,
            count: slot.cohort.len(),
            weight: slot.mass,
            aux: tau_part,
            tensors: acc,
        });
    };
    if parallel && slots.len() > 1 {
        aergia_runtime::par_for_each_mut(&mut slots, 0, fold_one);
    } else {
        for slot in &mut slots {
            fold_one(slot);
        }
    }
    slots.into_iter().map(|s| s.out.expect("every slot folded")).collect()
}

/// The FedNova root merge: τ-effective and the combined delta both
/// merge in edge order (first partial taken as-is), then the final
/// `w_g − τ_eff·d` step runs once at the root.
///
/// # Panics
///
/// Panics if `partials` is empty.
#[must_use]
pub fn merge_fednova_partials(global: &[Tensor], partials: Vec<EdgePartial>) -> Vec<Tensor> {
    assert!(!partials.is_empty(), "fednova root merge: no partials");
    let mut tau_eff: Option<f32> = None;
    let mut delta = StreamingFold::new();
    for p in partials {
        tau_eff = Some(match tau_eff {
            None => p.aux,
            Some(t) => t + p.aux,
        });
        delta.merge(StreamingFold::resume(p.tensors, p.count));
    }
    let combined = delta.finish().expect("non-empty partial set");
    apply_fednova(global, tau_eff.expect("non-empty partial set"), &combined)
}

/// The full hierarchical FedNova aggregation.
#[must_use]
pub fn fednova_hierarchical(
    global: &[Tensor],
    contributions: &[(f32, Vec<Tensor>, u32)],
    edges: &[usize],
    num_edges: usize,
    parallel: bool,
) -> Vec<Tensor> {
    merge_fednova_partials(
        global,
        fednova_edge_partials(global, contributions, edges, num_edges, parallel),
    )
}

/// Serial single-site evaluation of the FedNova tree — the flat
/// reference the hierarchical path is property-tested against.
///
/// # Panics
///
/// As [`fednova_edge_partials`].
#[must_use]
pub fn fednova_reference(
    global: &[Tensor],
    contributions: &[(f32, Vec<Tensor>, u32)],
    edges: &[usize],
    num_edges: usize,
) -> Vec<Tensor> {
    assert_eq!(contributions.len(), edges.len(), "one edge per contribution");
    let mut total_n: Option<f32> = None;
    for e in 0..num_edges {
        let mut mass = 0.0f32;
        let mut any = false;
        for (i, &ei) in edges.iter().enumerate() {
            if ei == e {
                mass += contributions[i].0;
                any = true;
            }
        }
        if !any {
            continue;
        }
        total_n = Some(match total_n {
            None => mass,
            Some(t) => t + mass,
        });
    }
    let total_n = total_n.expect("fednova_reference: no contributions");

    let mut tau_eff: Option<f32> = None;
    let mut combined: Option<Vec<Tensor>> = None;
    for e in 0..num_edges {
        let mut tau_part = 0.0f32;
        let mut acc: Option<Vec<Tensor>> = None;
        for (i, &ei) in edges.iter().enumerate() {
            if ei != e {
                continue;
            }
            let (n, weights_i, tau) = &contributions[i];
            tau_part += (n / total_n) * (*tau as f32);
            let p = n / total_n;
            let tau = (*tau).max(1) as f32;
            let a = acc.get_or_insert_with(|| {
                global.iter().map(|t| Tensor::zeros(t.dims())).collect::<Vec<_>>()
            });
            for ((t, g), wi) in a.iter_mut().zip(global).zip(weights_i) {
                let mut d = g.sub(wi);
                d.scale(p / tau);
                t.add_assign(&d);
            }
        }
        let Some(partial) = acc else { continue };
        tau_eff = Some(match tau_eff {
            None => tau_part,
            Some(t) => t + tau_part,
        });
        match &mut combined {
            None => combined = Some(partial),
            Some(c) => {
                for (a, p) in c.iter_mut().zip(&partial) {
                    a.add_assign(p);
                }
            }
        }
    }
    apply_fednova(
        global,
        tau_eff.expect("fednova_reference: no contributions"),
        &combined.expect("fednova_reference: no contributions"),
    )
}

/// Routes each partial through its wire frame
/// ([`aergia_codec::partial`]) and back — the edge→root hop. Dense
/// encoding is bit-exact, so this is a lossless identity on the
/// accumulator; a debug assertion checks it anyway.
///
/// # Panics
///
/// Panics if a frame fails to decode (an internal invariant violation —
/// the frame was encoded a line earlier).
#[must_use]
pub fn through_wire(partials: Vec<EdgePartial>) -> Vec<EdgePartial> {
    partials
        .into_iter()
        .map(|p| {
            let frame = partial::encode(&PartialAggregate {
                edge: p.edge as u32,
                count: p.count as u32,
                weight: p.weight,
                aux: p.aux,
                tensors: p.tensors,
            });
            let d = partial::decode(&frame).expect("partial frame round-trips");
            debug_assert_eq!(frame, partial::encode(&d), "dense partial frames are bit-exact");
            EdgePartial {
                edge: d.edge as usize,
                count: d.count as usize,
                weight: d.weight,
                aux: d.aux,
                tensors: d.tensors,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(vals: &[f32]) -> Vec<Tensor> {
        vec![Tensor::from_vec(vals.to_vec(), &[vals.len()]).unwrap()]
    }

    fn bits(t: &[Tensor]) -> Vec<u32> {
        t.iter().flat_map(|x| x.data().iter().map(|v| v.to_bits())).collect()
    }

    #[test]
    fn single_edge_tree_reproduces_the_flat_chain_bits() {
        let contributions = vec![
            (3.0f32, snap(&[0.1, -2.5, 7.75])),
            (1.0, snap(&[4.0, 0.3, -0.125])),
            (2.0, snap(&[-0.7, 1.9, 0.33])),
        ];
        let edges = vec![0usize; contributions.len()];
        let flat = weighted_flat(&contributions);
        assert_eq!(bits(&flat), bits(&weighted_reference(&contributions, &edges, 1)));
        assert_eq!(bits(&flat), bits(&weighted_hierarchical(&contributions, &edges, 1, false)));
        assert_eq!(bits(&flat), bits(&weighted_hierarchical(&contributions, &edges, 1, true)));
    }

    #[test]
    fn hierarchical_matches_reference_across_splits() {
        let contributions: Vec<(f32, Vec<Tensor>)> = (0..7)
            .map(|i| (1.0 + i as f32 * 0.37, snap(&[i as f32 * 1.3 - 2.0, 0.21 * i as f32])))
            .collect();
        for num_edges in [1usize, 2, 3, 7] {
            let edges: Vec<usize> =
                (0..contributions.len()).map(|i| (i * 5 + 1) % num_edges).collect();
            let reference = weighted_reference(&contributions, &edges, num_edges);
            for parallel in [false, true] {
                let h = weighted_hierarchical(&contributions, &edges, num_edges, parallel);
                assert_eq!(bits(&reference), bits(&h), "E={num_edges} parallel={parallel}");
            }
            // The edge→root wire hop is a bitwise identity.
            let routed = merge_weighted_partials(through_wire(weighted_edge_partials(
                &contributions,
                &edges,
                num_edges,
                false,
            )));
            assert_eq!(bits(&reference), bits(&routed), "E={num_edges} through wire");
        }
    }

    #[test]
    fn empty_cohorts_are_skipped_on_both_paths() {
        let contributions = vec![(1.0f32, snap(&[1.0])), (2.0, snap(&[4.0]))];
        // Edges 0 and 3 of 5 are populated; 1, 2, 4 are empty.
        let edges = vec![3usize, 0];
        let reference = weighted_reference(&contributions, &edges, 5);
        let h = weighted_hierarchical(&contributions, &edges, 5, false);
        assert_eq!(bits(&reference), bits(&h));
        assert_eq!(reference[0].data(), &[3.0]);
    }

    #[test]
    fn fednova_single_edge_tree_reproduces_the_flat_chain_bits() {
        let global = snap(&[1.0, -0.5, 3.25]);
        let contributions = vec![
            (2.0f32, snap(&[0.0, 2.0, 1.0]), 4u32),
            (1.0, snap(&[2.0, 0.0, -1.0]), 7u32),
            (3.0, snap(&[0.5, 0.5, 0.5]), 1u32),
        ];
        let edges = vec![0usize; contributions.len()];
        let flat = fednova_flat(&global, &contributions);
        assert_eq!(bits(&flat), bits(&fednova_reference(&global, &contributions, &edges, 1)));
        assert_eq!(
            bits(&flat),
            bits(&fednova_hierarchical(&global, &contributions, &edges, 1, true))
        );
    }

    #[test]
    fn fednova_hierarchical_matches_reference_across_splits() {
        let global = snap(&[0.4, -1.1]);
        let contributions: Vec<(f32, Vec<Tensor>, u32)> = (0..6)
            .map(|i| (1.0 + i as f32, snap(&[i as f32 * 0.7, 2.0 - i as f32]), 1 + (i as u32 % 4)))
            .collect();
        for num_edges in [2usize, 3, 6] {
            let edges: Vec<usize> =
                (0..contributions.len()).map(|i| (i * 3 + 2) % num_edges).collect();
            let reference = fednova_reference(&global, &contributions, &edges, num_edges);
            for parallel in [false, true] {
                let h = fednova_hierarchical(&global, &contributions, &edges, num_edges, parallel);
                assert_eq!(bits(&reference), bits(&h), "E={num_edges} parallel={parallel}");
            }
            let routed = merge_fednova_partials(
                &global,
                through_wire(fednova_edge_partials(
                    &global,
                    &contributions,
                    &edges,
                    num_edges,
                    false,
                )),
            );
            assert_eq!(bits(&reference), bits(&routed), "E={num_edges} through wire");
        }
    }

    #[test]
    fn fednova_with_equal_tau_matches_fedavg() {
        let global = snap(&[1.0, 1.0]);
        let contributions = vec![(1.0, snap(&[0.0, 2.0]), 4u32), (1.0, snap(&[2.0, 0.0]), 4u32)];
        let nova = fednova_flat(&global, &contributions);
        // FedAvg average = [1.0, 1.0]; with equal tau FedNova agrees.
        assert!((nova[0].data()[0] - 1.0).abs() < 1e-6);
        assert!((nova[0].data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fednova_downweights_many_step_clients() {
        let global = snap(&[1.0]);
        // Client A moved to 0.0 in 10 steps, client B to 0.0 in 1 step.
        let contributions = vec![(1.0, snap(&[0.0]), 10u32), (1.0, snap(&[1.0]), 1u32)];
        let nova = fednova_flat(&global, &contributions);
        // Per-step delta of A is 0.1, of B is 0; tau_eff = 5.5 →
        // w = 1 − 5.5 · (0.5·0.1 + 0.5·0) = 0.725.
        assert!((nova[0].data()[0] - 0.725).abs() < 1e-6);
    }

    #[test]
    fn seeded_layout_is_balanced_and_total() {
        let layout = CohortLayout::seeded(10, 3, 42);
        assert_eq!(layout.num_edges(), 3);
        assert_eq!(layout.num_clients(), 10);
        let mut sizes = [0usize; 3];
        for c in 0..10 {
            sizes[layout.edge_of(c)] += 1;
        }
        // Balanced: sizes differ by at most one, every edge non-empty.
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "sizes {sizes:?}");
        // Deterministic in the seed; different seeds shuffle differently.
        assert_eq!(layout, CohortLayout::seeded(10, 3, 42));
        assert_eq!(layout.fingerprint(), CohortLayout::seeded(10, 3, 42).fingerprint());
        assert_ne!(layout, CohortLayout::seeded(10, 3, 43));
    }

    #[test]
    fn single_layout_maps_everyone_to_edge_zero() {
        let layout = CohortLayout::single(5);
        assert_eq!(layout.num_edges(), 1);
        assert!((0..5).all(|c| layout.edge_of(c) == 0));
    }

    #[test]
    #[should_panic(expected = "1 ≤ num_edges")]
    fn seeded_layout_rejects_more_edges_than_clients() {
        let _ = CohortLayout::seeded(3, 4, 0);
    }
}
