//! **Aergia**: straggler-aware federated learning through model freezing
//! and training offloading — a from-scratch Rust reproduction of the
//! Middleware 2022 paper.
//!
//! The middleware runs a synchronous FL protocol over the simulated
//! heterogeneous cluster of [`aergia_simnet`]: a federator selects
//! clients, ships them the global model, clients train locally and return
//! updates, the federator aggregates. On top of this common round
//! structure, the [`Strategy`] enum selects one of:
//!
//! * [`Strategy::FedAvg`] — the classic baseline (McMahan et al.);
//! * [`Strategy::FedProx`] — FedAvg plus a proximal term bounding client
//!   drift;
//! * [`Strategy::FedNova`] — normalized averaging of client updates;
//! * [`Strategy::Tifl`] — tier-based client selection (TiFL);
//! * [`Strategy::DeadlineFedAvg`] — FedAvg with a per-round deadline that
//!   drops late updates (the paper's Figure 1(b)/(c) motivation);
//! * [`Strategy::Aergia`] — the paper's contribution: clients profile the
//!   four training phases online ([`profiler`]), the federator matches
//!   stragglers to strong clients (Algorithms 1–2, [`scheduler`]) using
//!   dataset similarities computed privately in an enclave
//!   ([`aergia_enclave`]), stragglers freeze their feature layers and
//!   offload feature training to their match, and the federator recombines
//!   the pieces before aggregation.
//!
//! The discrete-event [`engine`] executes everything on a virtual clock,
//! so experiments are deterministic and laptop-fast while preserving the
//! timing shape of the paper's 24-node Kubernetes testbed.
//!
//! # Examples
//!
//! Run a small heterogeneous FL experiment with Aergia:
//!
//! ```
//! use aergia::config::{ExperimentConfig, Mode};
//! use aergia::engine::Engine;
//! use aergia::strategy::Strategy;
//! use aergia_data::{partition::Scheme, DataConfig, DatasetSpec};
//! use aergia_nn::models::ModelArch;
//!
//! let config = ExperimentConfig {
//!     dataset: DataConfig { spec: DatasetSpec::MnistLike, train_size: 96, test_size: 32, seed: 1 },
//!     arch: ModelArch::MnistCnn,
//!     partition: Scheme::Iid,
//!     num_clients: 4,
//!     clients_per_round: 4,
//!     rounds: 2,
//!     local_updates: 6,
//!     batch_size: 8,
//!     speeds: vec![0.2, 0.5, 0.9, 1.0],
//!     mode: Mode::Real,
//!     seed: 42,
//!     ..ExperimentConfig::default()
//! };
//! let result = Engine::new(config, Strategy::aergia_default()).unwrap().run().unwrap();
//! assert_eq!(result.rounds.len(), 2);
//! assert!(result.final_accuracy > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod fold;
pub mod messages;
pub mod metrics;
pub mod prelude;
pub mod profiler;
pub mod scenario;
pub mod scheduler;
pub mod strategy;
pub mod topology;
pub mod transport;

pub use config::{ExperimentConfig, Mode};
pub use engine::Engine;
pub use metrics::{RoundRecord, RunResult};
pub use strategy::Strategy;
