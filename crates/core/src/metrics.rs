//! Per-round records and whole-run results.

use aergia_simnet::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::profiler::WorkspacePoolStats;

/// What happened in one communication round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: u32,
    /// Wall-clock (virtual) duration from the federator's round start to
    /// the last expected message (paper §2.4's measurement rule).
    pub duration: SimDuration,
    /// Global-model test accuracy after aggregation (NaN in timing mode).
    pub test_accuracy: f64,
    /// Mean training loss reported by participants (NaN in timing mode).
    pub train_loss: f64,
    /// Clients selected this round.
    pub participants: Vec<usize>,
    /// Sender→receiver pairs that offloaded.
    pub offloads: Vec<(usize, usize)>,
    /// Participants whose update was dropped (deadline strategies).
    pub dropped: Vec<usize>,
    /// Payload bytes delivered over the simulated network this round —
    /// actual encoded frame sizes under the experiment's wire codec, plus
    /// control envelopes.
    pub bytes_on_wire: u64,
    /// Client-state pool observability: workspace hit/miss/rebuild counts
    /// and the resident-client byte estimate after this round's
    /// admissions.
    pub pool: WorkspacePoolStats,
}

/// The result of a whole FL run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Per-round records, in order.
    pub rounds: Vec<RoundRecord>,
    /// Time spent before round 0 (offline profiling, enclave setup, …).
    pub pretraining: SimDuration,
    /// Virtual time when the run finished.
    pub finished_at: SimTime,
    /// Test accuracy of the final global model (NaN in timing mode).
    pub final_accuracy: f64,
}

impl RunResult {
    /// Total training time: pre-training plus all round durations (the
    /// paper's Figure 1(a) metric).
    pub fn total_time(&self) -> SimDuration {
        self.rounds.iter().fold(self.pretraining, |acc, r| acc + r.duration)
    }

    /// Mean round duration in seconds.
    pub fn mean_round_secs(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.duration.as_secs_f64()).sum::<f64>() / self.rounds.len() as f64
    }

    /// `(elapsed_seconds, accuracy)` pairs — the curves of Figure 10.
    pub fn accuracy_over_time(&self) -> Vec<(f64, f64)> {
        let mut t = self.pretraining.as_secs_f64();
        self.rounds
            .iter()
            .map(|r| {
                t += r.duration.as_secs_f64();
                (t, r.test_accuracy)
            })
            .collect()
    }

    /// Round durations in seconds (the sample behind Figure 8's density).
    pub fn round_durations(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.duration.as_secs_f64()).collect()
    }

    /// Total offload count across the run.
    pub fn total_offloads(&self) -> usize {
        self.rounds.iter().map(|r| r.offloads.len()).sum()
    }

    /// Total dropped updates across the run.
    pub fn total_dropped(&self) -> usize {
        self.rounds.iter().map(|r| r.dropped.len()).sum()
    }

    /// Total bytes delivered on the wire across all rounds.
    pub fn total_bytes_on_wire(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes_on_wire).sum()
    }

    /// Mean bytes on the wire per round.
    pub fn mean_round_bytes(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.total_bytes_on_wire() as f64 / self.rounds.len() as f64
    }
}

/// A fixed-width histogram over round durations, the discrete form of the
/// paper's Figure 8 density plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurationHistogram {
    /// Left edge of the first bin (seconds).
    pub start: f64,
    /// Bin width (seconds).
    pub width: f64,
    /// Sample counts per bin.
    pub counts: Vec<usize>,
}

impl DurationHistogram {
    /// Bins `samples` into `bins` equal-width buckets spanning the data.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `bins == 0`.
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty(), "DurationHistogram: no samples");
        assert!(bins > 0, "DurationHistogram: zero bins");
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / bins as f64).max(1e-9);
        let mut counts = vec![0usize; bins];
        for &s in samples {
            let mut idx = ((s - lo) / width) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            counts[idx] += 1;
        }
        DurationHistogram { start: lo, width, counts }
    }

    /// Normalized density value of bin `i` (integrates to ≈ 1).
    pub fn density(&self, i: usize) -> f64 {
        let total: usize = self.counts.iter().sum();
        self.counts[i] as f64 / (total as f64 * self.width)
    }

    /// Center of bin `i` (seconds).
    pub fn center(&self, i: usize) -> f64 {
        self.start + (i as f64 + 0.5) * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: u32, secs: f64, acc: f64) -> RoundRecord {
        RoundRecord {
            round,
            duration: SimDuration::from_secs_f64(secs),
            test_accuracy: acc,
            train_loss: 1.0,
            participants: vec![0, 1],
            offloads: vec![],
            dropped: vec![],
            bytes_on_wire: 1_000,
            pool: WorkspacePoolStats::default(),
        }
    }

    fn run() -> RunResult {
        RunResult {
            rounds: vec![record(0, 10.0, 0.5), record(1, 20.0, 0.6), record(2, 30.0, 0.7)],
            pretraining: SimDuration::from_secs_f64(5.0),
            finished_at: SimTime::from_micros(65_000_000),
            final_accuracy: 0.7,
        }
    }

    #[test]
    fn total_time_includes_pretraining() {
        assert!((run().total_time().as_secs_f64() - 65.0).abs() < 1e-9);
    }

    #[test]
    fn mean_round_duration() {
        assert!((run().mean_round_secs() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_curve_is_cumulative_in_time() {
        let curve = run().accuracy_over_time();
        assert_eq!(curve.len(), 3);
        assert!((curve[0].0 - 15.0).abs() < 1e-9);
        assert!((curve[2].0 - 65.0).abs() < 1e-9);
        assert_eq!(curve[2].1, 0.7);
    }

    #[test]
    fn byte_totals_sum_over_rounds() {
        assert_eq!(run().total_bytes_on_wire(), 3_000);
        assert!((run().mean_round_bytes() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_cover_all_samples() {
        let h = DurationHistogram::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0], 4);
        assert_eq!(h.counts.iter().sum::<usize>(), 5);
        // Density integrates to one.
        let integral: f64 = (0..4).map(|i| h.density(i) * h.width).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_identical_samples() {
        let h = DurationHistogram::from_samples(&[2.0, 2.0, 2.0], 3);
        assert_eq!(h.counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn empty_run_has_zero_mean() {
        let r = RunResult {
            rounds: vec![],
            pretraining: SimDuration::ZERO,
            finished_at: SimTime::ZERO,
            final_accuracy: f64::NAN,
        };
        assert_eq!(r.mean_round_secs(), 0.0);
        assert_eq!(r.total_offloads(), 0);
    }
}
