//! Declarative cluster-topology overrides, applied at engine build time.
//!
//! [`ExperimentConfig`](crate::config::ExperimentConfig) describes the
//! *uniform* cluster (one link model for every edge, per-client speed
//! fractions). Experiments that need a non-uniform topology — a slow
//! federator control path, a degraded client pair, injected faults —
//! used to poke the built [`Engine`] through ad-hoc mutators; those are
//! now deprecated in favour of a [`TopologyBuilder`] handed to
//! [`Engine::with_topology`](crate::engine::Engine::with_topology),
//! which validates every override against the configuration before the
//! engine exists.
//!
//! ```
//! use aergia::config::{ExperimentConfig, Mode};
//! use aergia::engine::Engine;
//! use aergia::strategy::Strategy;
//! use aergia::topology::TopologyBuilder;
//! use aergia_simnet::{LinkModel, SimDuration};
//!
//! let config = ExperimentConfig { mode: Mode::Timing, ..ExperimentConfig::default() };
//! let topology = TopologyBuilder::new()
//!     .client_speed(2, 0.1)
//!     .federator_link(0, LinkModel { latency: SimDuration::from_secs_f64(0.2), bandwidth_bps: 1e6 })
//!     .network_faults(0.0, SimDuration::from_secs_f64(0.05), 9);
//! let engine = Engine::with_topology(config, Strategy::aergia_default(), topology).unwrap();
//! # let _ = engine;
//! ```

use aergia_simnet::node::BASE_FLOPS;
use aergia_simnet::{LinkModel, NodeId, SimDuration};

use crate::config::ConfigError;
use crate::engine::Engine;

/// Accumulates validated topology overrides for [`Engine::with_topology`].
///
/// The builder is inert data: nothing is checked until it is consumed,
/// at which point every override is validated against the configuration
/// ([`ConfigError::BadTopology`] on the first violation) and applied
/// atomically to the freshly built engine.
#[derive(Debug, Clone, Default)]
#[must_use = "a TopologyBuilder does nothing until passed to Engine::with_topology"]
pub struct TopologyBuilder {
    federator_links: Vec<(usize, LinkModel)>,
    client_links: Vec<(usize, usize, LinkModel)>,
    client_speeds: Vec<(usize, f64)>,
    faults: Option<(f64, SimDuration, u64)>,
}

impl TopologyBuilder {
    /// An empty override set (the configuration's uniform topology).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the federator→client downlink for `to` (e.g. to model a
    /// slow control path in robustness experiments).
    pub fn federator_link(mut self, to: usize, link: LinkModel) -> Self {
        self.federator_links.push((to, link));
        self
    }

    /// Overrides the link model of the `from`→`to` client pair.
    pub fn client_link(mut self, from: usize, to: usize, link: LinkModel) -> Self {
        self.client_links.push((from, to, link));
        self
    }

    /// Overrides one client's CPU speed fraction (must be in `(0, 1]`),
    /// taking precedence over
    /// [`ExperimentConfig::speeds`](crate::config::ExperimentConfig::speeds).
    pub fn client_speed(mut self, client: usize, speed: f64) -> Self {
        self.client_speeds.push((client, speed));
        self
    }

    /// Enables network fault injection: every transfer is dropped with
    /// probability `drop_prob` (in `[0, 1)`; drops break the synchronous
    /// protocol's liveness, so only jitter is recommended for full runs)
    /// and delayed by a uniform jitter in `[0, jitter]`, deterministically
    /// from `seed`.
    pub fn network_faults(mut self, drop_prob: f64, jitter: SimDuration, seed: u64) -> Self {
        self.faults = Some((drop_prob, jitter, seed));
        self
    }

    /// Whether the builder carries no overrides at all.
    pub fn is_empty(&self) -> bool {
        self.federator_links.is_empty()
            && self.client_links.is_empty()
            && self.client_speeds.is_empty()
            && self.faults.is_none()
    }

    /// Validates every override against a cluster of `num_clients`.
    pub(crate) fn validate(&self, num_clients: usize) -> Result<(), ConfigError> {
        for &(to, _) in &self.federator_links {
            if to >= num_clients {
                return Err(ConfigError::BadTopology("federator_link client out of range"));
            }
        }
        for &(from, to, _) in &self.client_links {
            if from >= num_clients || to >= num_clients {
                return Err(ConfigError::BadTopology("client_link endpoint out of range"));
            }
            if from == to {
                return Err(ConfigError::BadTopology("client_link endpoints must differ"));
            }
        }
        for &(client, speed) in &self.client_speeds {
            if client >= num_clients {
                return Err(ConfigError::BadTopology("client_speed client out of range"));
            }
            if !(speed > 0.0 && speed <= 1.0) {
                return Err(ConfigError::BadTopology("client_speed outside (0, 1]"));
            }
        }
        if let Some((drop_prob, _, _)) = self.faults {
            if !(0.0..1.0).contains(&drop_prob) {
                return Err(ConfigError::BadTopology("network_faults drop_prob outside [0, 1)"));
            }
        }
        Ok(())
    }

    /// Applies the (already validated) overrides to a built engine.
    pub(crate) fn apply(self, engine: &mut Engine) {
        for (to, link) in self.federator_links {
            engine.network.set_link(NodeId::FEDERATOR, NodeId(to as u32), link);
        }
        for (from, to, link) in self.client_links {
            engine.network.set_link(NodeId(from as u32), NodeId(to as u32), link);
        }
        for (client, speed) in self.client_speeds {
            let node = &mut engine.clients[client];
            node.cpu.set_speed(speed);
            let secs_per_flop = 1.0 / (node.cpu.speed() * BASE_FLOPS);
            node.phase_secs =
                engine.template.phase_flops(engine.config.batch_size).scaled(secs_per_flop);
        }
        if let Some((drop_prob, jitter, seed)) = self.faults {
            engine.network.enable_faults(drop_prob, jitter, seed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_overrides_are_rejected() {
        let cases = [
            TopologyBuilder::new().federator_link(4, LinkModel::datacenter()),
            TopologyBuilder::new().client_link(0, 4, LinkModel::datacenter()),
            TopologyBuilder::new().client_link(1, 1, LinkModel::datacenter()),
            TopologyBuilder::new().client_speed(9, 0.5),
            TopologyBuilder::new().client_speed(0, 0.0),
            TopologyBuilder::new().client_speed(0, 1.5),
            TopologyBuilder::new().network_faults(1.0, SimDuration::ZERO, 1),
        ];
        for (i, builder) in cases.into_iter().enumerate() {
            assert!(
                matches!(builder.validate(4), Err(ConfigError::BadTopology(_))),
                "case {i} should be rejected"
            );
        }
    }

    #[test]
    fn valid_overrides_pass_and_empty_builder_is_empty() {
        assert!(TopologyBuilder::new().is_empty());
        let builder = TopologyBuilder::new()
            .federator_link(3, LinkModel::datacenter())
            .client_link(0, 1, LinkModel::datacenter())
            .client_speed(2, 0.25)
            .network_faults(0.1, SimDuration::from_secs_f64(0.5), 7);
        assert!(!builder.is_empty());
        builder.validate(4).unwrap();
    }
}
