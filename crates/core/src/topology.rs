//! Declarative cluster-topology overrides, applied at engine build time.
//!
//! [`ExperimentConfig`](crate::config::ExperimentConfig) describes the
//! *uniform* cluster (one link model for every edge, per-client speed
//! fractions). Experiments that need a non-uniform topology — a slow
//! federator control path, a degraded client pair, injected faults —
//! used to poke the built [`Engine`] through ad-hoc mutators; those are
//! now deprecated in favour of a [`TopologyBuilder`] handed to
//! [`Engine::with_topology`](crate::engine::Engine::with_topology),
//! which validates every override against the configuration before the
//! engine exists.
//!
//! ```
//! use aergia::config::{ExperimentConfig, Mode};
//! use aergia::engine::Engine;
//! use aergia::strategy::Strategy;
//! use aergia::topology::TopologyBuilder;
//! use aergia_simnet::{LinkModel, SimDuration};
//!
//! let config = ExperimentConfig { mode: Mode::Timing, ..ExperimentConfig::default() };
//! let topology = TopologyBuilder::new()
//!     .client_speed(2, 0.1)
//!     .federator_link(0, LinkModel { latency: SimDuration::from_secs_f64(0.2), bandwidth_bps: 1e6 })
//!     .network_faults(0.0, SimDuration::from_secs_f64(0.05), 9);
//! let engine = Engine::with_topology(config, Strategy::aergia_default(), topology).unwrap();
//! # let _ = engine;
//! ```

use aergia_simnet::node::BASE_FLOPS;
use aergia_simnet::{LinkModel, NodeId, SimDuration};

use crate::config::ConfigError;
use crate::engine::Engine;
use crate::fold::CohortLayout;

/// Accumulates validated topology overrides for [`Engine::with_topology`].
///
/// The builder is inert data: nothing is checked until it is consumed,
/// at which point every override is validated against the configuration
/// ([`ConfigError::BadTopology`] on the first violation) and applied
/// atomically to the freshly built engine.
#[derive(Debug, Clone, Default)]
#[must_use = "a TopologyBuilder does nothing until passed to Engine::with_topology"]
pub struct TopologyBuilder {
    federator_links: Vec<(usize, LinkModel)>,
    client_links: Vec<(usize, usize, LinkModel)>,
    client_speeds: Vec<(usize, f64)>,
    faults: Option<(f64, SimDuration, u64)>,
    edge_cohorts: Option<(usize, u64)>,
}

impl TopologyBuilder {
    /// An empty override set (the configuration's uniform topology).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the federator→client downlink for `to` (e.g. to model a
    /// slow control path in robustness experiments).
    pub fn federator_link(mut self, to: usize, link: LinkModel) -> Self {
        self.federator_links.push((to, link));
        self
    }

    /// Overrides the link model of the `from`→`to` client pair.
    pub fn client_link(mut self, from: usize, to: usize, link: LinkModel) -> Self {
        self.client_links.push((from, to, link));
        self
    }

    /// Overrides one client's CPU speed fraction (must be in `(0, 1]`),
    /// taking precedence over
    /// [`ExperimentConfig::speeds`](crate::config::ExperimentConfig::speeds).
    pub fn client_speed(mut self, client: usize, speed: f64) -> Self {
        self.client_speeds.push((client, speed));
        self
    }

    /// Enables network fault injection: every transfer is dropped with
    /// probability `drop_prob` (in `[0, 1)`; drops break the synchronous
    /// protocol's liveness, so only jitter is recommended for full runs)
    /// and delayed by a uniform jitter in `[0, jitter]`, deterministically
    /// from `seed`.
    pub fn network_faults(mut self, drop_prob: f64, jitter: SimDuration, seed: u64) -> Self {
        self.faults = Some((drop_prob, jitter, seed));
        self
    }

    /// Partitions the clients across `num_edges` edge aggregators with a
    /// seeded balanced assignment (every client lands in exactly one
    /// cohort, cohort sizes differ by at most one, no edge is empty).
    /// Each edge pre-folds its cohort's updates in fixed client order and
    /// the root merges the partials in fixed edge order, so the layout
    /// *defines* the fold tree: results are bit-reproducible across
    /// serial, work-stealing and TCP evaluation (see [`crate::fold`]),
    /// and with `num_edges == 1` the tree reduces exactly to the legacy
    /// flat single-federator chain.
    ///
    /// Validation rejects `num_edges == 0` and `num_edges > num_clients`
    /// (an empty edge would have nothing to fold).
    pub fn edge_cohorts(mut self, num_edges: usize, seed: u64) -> Self {
        self.edge_cohorts = Some((num_edges, seed));
        self
    }

    /// Whether the builder carries no overrides at all.
    pub fn is_empty(&self) -> bool {
        self.federator_links.is_empty()
            && self.client_links.is_empty()
            && self.client_speeds.is_empty()
            && self.faults.is_none()
            && self.edge_cohorts.is_none()
    }

    /// Validates every override against a cluster of `num_clients`.
    pub(crate) fn validate(&self, num_clients: usize) -> Result<(), ConfigError> {
        for &(to, _) in &self.federator_links {
            if to >= num_clients {
                return Err(ConfigError::BadTopology("federator_link client out of range"));
            }
        }
        for &(from, to, _) in &self.client_links {
            if from >= num_clients || to >= num_clients {
                return Err(ConfigError::BadTopology("client_link endpoint out of range"));
            }
            if from == to {
                return Err(ConfigError::BadTopology("client_link endpoints must differ"));
            }
        }
        for &(client, speed) in &self.client_speeds {
            if client >= num_clients {
                return Err(ConfigError::BadTopology("client_speed client out of range"));
            }
            if !(speed > 0.0 && speed <= 1.0) {
                return Err(ConfigError::BadTopology("client_speed outside (0, 1]"));
            }
        }
        if let Some((drop_prob, _, _)) = self.faults {
            if !(0.0..1.0).contains(&drop_prob) {
                return Err(ConfigError::BadTopology("network_faults drop_prob outside [0, 1)"));
            }
        }
        if let Some((num_edges, _)) = self.edge_cohorts {
            if num_edges == 0 {
                return Err(ConfigError::BadTopology("edge_cohorts needs at least one edge"));
            }
            if num_edges > num_clients {
                return Err(ConfigError::BadTopology("edge_cohorts exceed the cluster size"));
            }
        }
        Ok(())
    }

    /// Applies the (already validated) overrides to a built engine.
    pub(crate) fn apply(self, engine: &mut Engine) {
        for (to, link) in self.federator_links {
            engine.network.set_link(NodeId::FEDERATOR, NodeId(to as u32), link);
        }
        for (from, to, link) in self.client_links {
            engine.network.set_link(NodeId(from as u32), NodeId(to as u32), link);
        }
        for (client, speed) in self.client_speeds {
            let node = &mut engine.clients[client];
            node.cpu.set_speed(speed);
            let secs_per_flop = 1.0 / (node.cpu.speed() * BASE_FLOPS);
            node.phase_secs =
                engine.template.phase_flops(engine.config.batch_size).scaled(secs_per_flop);
        }
        if let Some((drop_prob, jitter, seed)) = self.faults {
            engine.network.enable_faults(drop_prob, jitter, seed);
        }
        if let Some((num_edges, seed)) = self.edge_cohorts {
            engine.cohorts = CohortLayout::seeded(engine.config().num_clients, num_edges, seed);
        }
    }
}

/// Assigns clients to edge cohorts round-robin over a seeded
/// permutation, returning `edge_of[client]`.
///
/// # Migration
///
/// Declare the cohorts on a [`TopologyBuilder`] instead, so the
/// assignment is validated against the configuration and installed
/// atomically with the rest of the topology:
///
/// ```
/// use aergia::prelude::*;
///
/// let config = ExperimentConfig { mode: Mode::Timing, ..ExperimentConfig::default() };
/// let engine = Engine::with_topology(
///     config,
///     Strategy::FedAvg,
///     TopologyBuilder::new().edge_cohorts(2, 7),
/// )
/// .unwrap();
/// assert_eq!(engine.cohort_layout().num_edges(), 2);
/// ```
///
/// # Panics
///
/// Panics unless `1 ≤ num_edges ≤ num_clients`.
#[deprecated(
    since = "0.1.0",
    note = "use TopologyBuilder::edge_cohorts via Engine::with_topology instead"
)]
#[must_use]
pub fn assign_edge_cohorts(num_clients: usize, num_edges: usize, seed: u64) -> Vec<u32> {
    let layout = CohortLayout::seeded(num_clients, num_edges, seed);
    (0..num_clients).map(|c| layout.edge_of(c) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_overrides_are_rejected() {
        let cases = [
            TopologyBuilder::new().federator_link(4, LinkModel::datacenter()),
            TopologyBuilder::new().client_link(0, 4, LinkModel::datacenter()),
            TopologyBuilder::new().client_link(1, 1, LinkModel::datacenter()),
            TopologyBuilder::new().client_speed(9, 0.5),
            TopologyBuilder::new().client_speed(0, 0.0),
            TopologyBuilder::new().client_speed(0, 1.5),
            TopologyBuilder::new().network_faults(1.0, SimDuration::ZERO, 1),
            TopologyBuilder::new().edge_cohorts(0, 7),
            TopologyBuilder::new().edge_cohorts(5, 7),
        ];
        for (i, builder) in cases.into_iter().enumerate() {
            assert!(
                matches!(builder.validate(4), Err(ConfigError::BadTopology(_))),
                "case {i} should be rejected"
            );
        }
    }

    #[test]
    fn valid_overrides_pass_and_empty_builder_is_empty() {
        assert!(TopologyBuilder::new().is_empty());
        let builder = TopologyBuilder::new()
            .federator_link(3, LinkModel::datacenter())
            .client_link(0, 1, LinkModel::datacenter())
            .client_speed(2, 0.25)
            .network_faults(0.1, SimDuration::from_secs_f64(0.5), 7)
            .edge_cohorts(2, 11);
        assert!(!builder.is_empty());
        builder.validate(4).unwrap();
    }

    #[test]
    fn deprecated_cohort_assignment_matches_the_builder_layout() {
        #[allow(deprecated)]
        let free = assign_edge_cohorts(6, 2, 3);
        let layout = CohortLayout::seeded(6, 2, 3);
        assert_eq!(free, (0..6).map(|c| layout.edge_of(c) as u32).collect::<Vec<_>>());
        // Every client in exactly one cohort, both edges populated.
        assert!(free.iter().all(|&e| e < 2));
        assert!(free.contains(&0) && free.contains(&1));
    }
}
