//! Aggregation strategies: the four baselines of the paper's evaluation
//! plus the deadline variant of its motivation study and Aergia itself.

use aergia_simnet::SimDuration;
use serde::{Deserialize, Serialize};

/// The federated-learning algorithm an [`crate::Engine`] executes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Strategy {
    /// Plain synchronous FedAvg (McMahan et al. 2017).
    FedAvg,
    /// FedAvg with the FedProx proximal term `μ/2‖w − w_global‖²` limiting
    /// client drift (Li et al. 2020).
    FedProx {
        /// The proximal coefficient `μ`.
        mu: f32,
    },
    /// Normalized averaging (Wang et al. 2020): updates are divided by the
    /// client's local step count before aggregation.
    FedNova,
    /// Tier-based selection (Chai et al. 2020): clients are grouped by
    /// profiled speed and each round draws from a single tier, chosen by an
    /// adaptive accuracy-aware policy with per-tier credits.
    Tifl {
        /// Number of speed tiers (the TiFL paper uses 5).
        tiers: usize,
    },
    /// FedAvg with a hard per-round deadline: updates arriving after the
    /// deadline are dropped (the paper's Figure 1(b)/(c) baseline).
    DeadlineFedAvg {
        /// The per-round deadline.
        deadline: SimDuration,
    },
    /// The paper's contribution: online profiling, similarity-aware
    /// freezing/offloading scheduling, and model recombination.
    Aergia {
        /// The similarity factor `f` of Algorithm 1, line 24.
        similarity_factor: f64,
        /// Profiling window in batches (paper: 100 of 1600).
        profile_batches: u32,
        /// Which `calc_op` variant to use (see [`crate::scheduler`]).
        op_variant: crate::scheduler::OpVariant,
    },
}

impl Strategy {
    /// Aergia with the paper's defaults: `f = 1`, a 1/16 profiling window
    /// (set per-experiment) and the unimodal `calc_op`.
    pub fn aergia_default() -> Self {
        Strategy::Aergia {
            similarity_factor: 1.0,
            profile_batches: 2,
            op_variant: crate::scheduler::OpVariant::Unimodal,
        }
    }

    /// TiFL with its paper default of 5 tiers.
    pub fn tifl_default() -> Self {
        Strategy::Tifl { tiers: 5 }
    }

    /// The display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::FedAvg => "FedAvg",
            Strategy::FedProx { .. } => "FedProx",
            Strategy::FedNova => "FedNova",
            Strategy::Tifl { .. } => "TiFL",
            Strategy::DeadlineFedAvg { .. } => "Deadline-FedAvg",
            Strategy::Aergia { .. } => "Aergia",
        }
    }

    /// Whether this strategy needs the online profiling phase.
    pub fn profiles_online(&self) -> bool {
        matches!(self, Strategy::Aergia { .. })
    }

    /// Whether this strategy needs offline (pre-training) speed profiling,
    /// charged to the run's pre-training time.
    pub fn profiles_offline(&self) -> bool {
        matches!(self, Strategy::Tifl { .. })
    }

    /// Qualitative feature ratings (the paper's Table 1).
    pub fn table1_row(&self) -> Table1Row {
        match self {
            Strategy::FedAvg | Strategy::DeadlineFedAvg { .. } => Table1Row {
                name: self.name(),
                data_heterogeneity: Rating::None,
                resource_heterogeneity: Rating::None,
                minimizes_training_time: matches!(self, Strategy::DeadlineFedAvg { .. }),
            },
            Strategy::FedProx { .. } => Table1Row {
                name: "FedProx",
                data_heterogeneity: Rating::Aware,
                resource_heterogeneity: Rating::None,
                minimizes_training_time: false,
            },
            Strategy::FedNova => Table1Row {
                name: "FedNova",
                data_heterogeneity: Rating::Aware,
                resource_heterogeneity: Rating::None,
                minimizes_training_time: false,
            },
            Strategy::Tifl { .. } => Table1Row {
                name: "TiFL",
                data_heterogeneity: Rating::Aware,
                resource_heterogeneity: Rating::Aware,
                minimizes_training_time: true,
            },
            Strategy::Aergia { .. } => Table1Row {
                name: "Aergia",
                data_heterogeneity: Rating::StronglyAware,
                resource_heterogeneity: Rating::StronglyAware,
                minimizes_training_time: true,
            },
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Qualitative awareness level used in Table 1 (`-`, `+`, `++`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rating {
    /// Not addressed (`-`).
    None,
    /// Addressed (`+`).
    Aware,
    /// Addressed with a dedicated mechanism (`++`).
    StronglyAware,
}

impl std::fmt::Display for Rating {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Rating::None => "-",
            Rating::Aware => "+",
            Rating::StronglyAware => "++",
        })
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Algorithm name.
    pub name: &'static str,
    /// Data-heterogeneity awareness.
    pub data_heterogeneity: Rating,
    /// Resource-heterogeneity awareness.
    pub resource_heterogeneity: Rating,
    /// Whether the algorithm actively minimizes training time.
    pub minimizes_training_time: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        assert_eq!(Strategy::FedAvg.name(), "FedAvg");
        assert_eq!(Strategy::FedProx { mu: 0.1 }.name(), "FedProx");
        assert_eq!(Strategy::FedNova.name(), "FedNova");
        assert_eq!(Strategy::tifl_default().name(), "TiFL");
        assert_eq!(Strategy::aergia_default().name(), "Aergia");
    }

    #[test]
    fn only_aergia_profiles_online() {
        assert!(Strategy::aergia_default().profiles_online());
        assert!(!Strategy::FedAvg.profiles_online());
        assert!(!Strategy::tifl_default().profiles_online());
    }

    #[test]
    fn only_tifl_profiles_offline() {
        assert!(Strategy::tifl_default().profiles_offline());
        assert!(!Strategy::aergia_default().profiles_offline());
    }

    #[test]
    fn table1_matches_the_paper() {
        // FedAvg: -, -, no. FedProx/FedNova: +, -, no. TiFL: +, +, yes.
        // Aergia: ++, ++, yes.
        let fedavg = Strategy::FedAvg.table1_row();
        assert_eq!(fedavg.data_heterogeneity, Rating::None);
        assert!(!fedavg.minimizes_training_time);

        let fedprox = Strategy::FedProx { mu: 0.1 }.table1_row();
        assert_eq!(fedprox.data_heterogeneity, Rating::Aware);
        assert_eq!(fedprox.resource_heterogeneity, Rating::None);

        let tifl = Strategy::tifl_default().table1_row();
        assert_eq!(tifl.resource_heterogeneity, Rating::Aware);
        assert!(tifl.minimizes_training_time);

        let aergia = Strategy::aergia_default().table1_row();
        assert_eq!(aergia.data_heterogeneity, Rating::StronglyAware);
        assert_eq!(aergia.resource_heterogeneity, Rating::StronglyAware);
        assert!(aergia.minimizes_training_time);
    }

    #[test]
    fn rating_displays_paper_symbols() {
        assert_eq!(Rating::None.to_string(), "-");
        assert_eq!(Rating::Aware.to_string(), "+");
        assert_eq!(Rating::StronglyAware.to_string(), "++");
    }
}
