//! Experiment configuration.

use std::error::Error;
use std::fmt;

use aergia_codec::CodecConfig;
use aergia_data::partition::Scheme;
use aergia_data::DataConfig;
use aergia_nn::models::ModelArch;
use aergia_nn::optim::SgdConfig;
use aergia_simnet::LinkModel;
use serde::{Deserialize, Serialize};

use crate::scenario::ScenarioConfig;

/// Whether clients really train models or only the timing is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Clients run real SGD; accuracy numbers are meaningful.
    Real,
    /// Gradient computation is skipped; only the virtual clock advances.
    /// Orders of magnitude faster — used by timing-shape experiments
    /// (Figures 1(a), 8, 9(b)).
    Timing,
}

/// How per-client training state (batcher draw streams and model
/// workspaces) is held across rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClientStateMode {
    /// Every client keeps its batcher resident for the whole run (the
    /// historical behaviour; workspaces still materialize lazily on
    /// first training). Right up to a few thousand clients.
    Resident,
    /// Only ever-selected clients are materialized, in an LRU pool of at
    /// most `max_resident` entries; the unselected population exists as
    /// compact per-client timing state (tens of bytes each). Evicted
    /// clients are rebuilt from scratch on reselection — from the
    /// partition seed and the round's broadcast keyframe — so a
    /// re-admitted client restarts its batch draw stream: a documented,
    /// deterministic divergence from [`ClientStateMode::Resident`]
    /// (which also swaps the materialised per-client split for shared
    /// strided shards, so real-mode gradients differ too; under an IID
    /// split in [`Mode::Timing`] the shard sizes — and therefore the
    /// schedules — are identical).
    /// Results remain a pure function of the configuration: reruns,
    /// parallel execution and checkpoint resume stay bit-identical,
    /// which the determinism suite pins. This is the million-client
    /// scale-out mode: resident memory follows the participation cap,
    /// not the cluster size.
    CohortSampled {
        /// Pool capacity; the current round's participants are never
        /// evicted even if they exceed it.
        max_resident: usize,
    },
}

/// Full description of one federated-learning experiment.
///
/// `..ExperimentConfig::default()` fills in sane small-scale values; every
/// figure bench builds its exact configuration on top of this.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Synthetic dataset to generate.
    pub dataset: DataConfig,
    /// Network architecture to train.
    pub arch: ModelArch,
    /// How client shards are drawn (IID or non-IID(k)).
    pub partition: Scheme,
    /// Total clients in the cluster.
    pub num_clients: usize,
    /// Clients selected per round (≤ `num_clients`).
    pub clients_per_round: usize,
    /// Number of communication rounds.
    pub rounds: u32,
    /// Local batch updates per client per round (the paper uses 1600).
    pub local_updates: u32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Per-client CPU speed fractions (len == `num_clients`).
    pub speeds: Vec<f64>,
    /// Link model for every cluster edge.
    pub link: LinkModel,
    /// Local optimizer settings.
    pub sgd: SgdConfig,
    /// Maximum test samples used per accuracy evaluation.
    pub eval_samples: usize,
    /// Real training vs timing-only simulation.
    pub mode: Mode,
    /// Maximum clients whose local training executes concurrently on the
    /// [`aergia_runtime`] pool in [`Mode::Real`] rounds: `0` = one task
    /// per participant (fully work-stealing), `1` = serial execution on
    /// the calling thread, `n` = at most `n` concurrent clients.
    ///
    /// The knob trades wall-clock for nothing else: parallel runs are
    /// **bit-identical** to serial runs (every client trains on private
    /// state and results are folded in fixed client order), a guarantee
    /// enforced by the workspace determinism suite.
    pub parallelism: usize,
    /// Wire codec for every weight transfer (broadcasts, client updates,
    /// offloaded snapshots, trained feature sections). The default
    /// [`CodecConfig::DenseF32`] is lossless and leaves runs bit-identical
    /// to never serializing at all; the lossy codecs trade accuracy for
    /// bytes-on-wire (see the `compression_tradeoff` example).
    pub codec: CodecConfig,
    /// Scenario knobs: buffered-async aggregation, churn injection, and
    /// Byzantine adversaries (see [`crate::scenario`]). The default is
    /// inert — synchronous rounds over honest, stable clients.
    pub scenario: ScenarioConfig,
    /// How per-client training state is held:
    /// [`ClientStateMode::Resident`] (default) or the million-client
    /// [`ClientStateMode::CohortSampled`] pool.
    pub client_state: ClientStateMode,
    /// Master seed (selection, batching, model init all derive from it).
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            dataset: DataConfig {
                spec: aergia_data::DatasetSpec::MnistLike,
                train_size: 256,
                test_size: 128,
                seed: 1,
            },
            arch: ModelArch::MnistCnn,
            partition: Scheme::Iid,
            num_clients: 4,
            clients_per_round: 4,
            rounds: 3,
            local_updates: 8,
            batch_size: 8,
            speeds: vec![0.25, 0.5, 0.75, 1.0],
            link: LinkModel::datacenter(),
            sgd: SgdConfig { lr: 0.05, momentum: 0.9, ..SgdConfig::default() },
            eval_samples: 128,
            mode: Mode::Real,
            parallelism: 0,
            codec: CodecConfig::DenseF32,
            scenario: ScenarioConfig::default(),
            client_state: ClientStateMode::Resident,
            seed: 7,
        }
    }
}

/// Errors detected before an experiment starts.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `speeds.len()` does not match `num_clients`.
    SpeedCount {
        /// Number of speeds supplied.
        speeds: usize,
        /// Number of clients configured.
        clients: usize,
    },
    /// A speed is outside `(0, 1]`.
    BadSpeed(f64),
    /// `clients_per_round` is zero or exceeds `num_clients`.
    BadSelection {
        /// Requested per-round selection size.
        per_round: usize,
        /// Total clients.
        clients: usize,
    },
    /// Zero rounds, updates, batch size or clients.
    ZeroSized(&'static str),
    /// The codec parameters are out of range.
    BadCodec(&'static str),
    /// The dataset cannot cover the configured model (class mismatch).
    ArchMismatch {
        /// Classes in the dataset.
        data_classes: usize,
        /// Classes the model predicts.
        model_classes: usize,
    },
    /// A [`TopologyBuilder`](crate::topology::TopologyBuilder) override
    /// is out of range for the configured cluster.
    BadTopology(&'static str),
    /// A [`ScenarioConfig`] knob is out of range or the scenario is
    /// incompatible with the chosen strategy.
    BadScenario(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::SpeedCount { speeds, clients } => {
                write!(f, "{speeds} speeds supplied for {clients} clients")
            }
            ConfigError::BadSpeed(s) => write!(f, "client speed {s} outside (0, 1]"),
            ConfigError::BadSelection { per_round, clients } => {
                write!(f, "cannot select {per_round} of {clients} clients per round")
            }
            ConfigError::ZeroSized(what) => write!(f, "{what} must be positive"),
            ConfigError::BadCodec(what) => write!(f, "codec misconfigured: {what}"),
            ConfigError::ArchMismatch { data_classes, model_classes } => {
                write!(f, "dataset has {data_classes} classes but model predicts {model_classes}")
            }
            ConfigError::BadTopology(what) => write!(f, "topology override invalid: {what}"),
            ConfigError::BadScenario(what) => write!(f, "scenario misconfigured: {what}"),
        }
    }
}

impl Error for ConfigError {}

impl ExperimentConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_clients == 0 {
            return Err(ConfigError::ZeroSized("num_clients"));
        }
        if self.rounds == 0 {
            return Err(ConfigError::ZeroSized("rounds"));
        }
        if self.local_updates == 0 {
            return Err(ConfigError::ZeroSized("local_updates"));
        }
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroSized("batch_size"));
        }
        if self.speeds.len() != self.num_clients {
            return Err(ConfigError::SpeedCount {
                speeds: self.speeds.len(),
                clients: self.num_clients,
            });
        }
        if let Some(&s) = self.speeds.iter().find(|&&s| !(s > 0.0 && s <= 1.0)) {
            return Err(ConfigError::BadSpeed(s));
        }
        if self.clients_per_round == 0 || self.clients_per_round > self.num_clients {
            return Err(ConfigError::BadSelection {
                per_round: self.clients_per_round,
                clients: self.num_clients,
            });
        }
        if let CodecConfig::TopKDelta { keep_permille } = self.codec {
            if keep_permille == 0 || keep_permille > 1000 {
                return Err(ConfigError::BadCodec("keep_permille outside 1..=1000"));
            }
        }
        if self.client_state == (ClientStateMode::CohortSampled { max_resident: 0 }) {
            return Err(ConfigError::ZeroSized("max_resident"));
        }
        let data_classes = self.dataset.spec.num_classes();
        let model_classes = self.arch.num_classes();
        if data_classes != model_classes {
            return Err(ConfigError::ArchMismatch { data_classes, model_classes });
        }
        self.scenario.validate(self.num_clients)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ExperimentConfig::default().validate().unwrap();
    }

    #[test]
    fn speed_count_is_checked() {
        let cfg = ExperimentConfig { num_clients: 3, ..ExperimentConfig::default() };
        assert!(matches!(cfg.validate(), Err(ConfigError::SpeedCount { .. })));
    }

    #[test]
    fn speed_range_is_checked() {
        let cfg =
            ExperimentConfig { speeds: vec![0.5, 0.0, 0.5, 0.5], ..ExperimentConfig::default() };
        assert!(matches!(cfg.validate(), Err(ConfigError::BadSpeed(_))));
    }

    #[test]
    fn selection_bounds_are_checked() {
        let cfg = ExperimentConfig { clients_per_round: 9, ..ExperimentConfig::default() };
        assert!(matches!(cfg.validate(), Err(ConfigError::BadSelection { .. })));
        let cfg = ExperimentConfig { clients_per_round: 0, ..ExperimentConfig::default() };
        assert!(matches!(cfg.validate(), Err(ConfigError::BadSelection { .. })));
    }

    #[test]
    fn arch_dataset_mismatch_is_checked() {
        let cfg = ExperimentConfig { arch: ModelArch::Cifar100Vgg, ..ExperimentConfig::default() };
        assert!(matches!(cfg.validate(), Err(ConfigError::ArchMismatch { .. })));
    }

    #[test]
    fn codec_parameters_are_checked() {
        for bad in [0u16, 1001] {
            let cfg = ExperimentConfig {
                codec: CodecConfig::TopKDelta { keep_permille: bad },
                ..ExperimentConfig::default()
            };
            assert!(matches!(cfg.validate(), Err(ConfigError::BadCodec(_))), "permille {bad}");
        }
        let cfg = ExperimentConfig {
            codec: CodecConfig::TopKDelta { keep_permille: 50 },
            ..ExperimentConfig::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn zero_rounds_rejected() {
        let cfg = ExperimentConfig { rounds: 0, ..ExperimentConfig::default() };
        assert!(matches!(cfg.validate(), Err(ConfigError::ZeroSized("rounds"))));
    }

    #[test]
    fn zero_capacity_pool_rejected() {
        let cfg = ExperimentConfig {
            client_state: ClientStateMode::CohortSampled { max_resident: 0 },
            ..ExperimentConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(ConfigError::ZeroSized("max_resident"))));
        let cfg = ExperimentConfig {
            client_state: ClientStateMode::CohortSampled { max_resident: 2 },
            ..ExperimentConfig::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn scenario_knobs_are_validated() {
        use crate::scenario::{Attack, ByzantineSpec, ScenarioConfig};
        let cfg = ExperimentConfig {
            scenario: ScenarioConfig {
                byzantine: vec![ByzantineSpec { client: 99, attack: Attack::SignFlip }],
                ..ScenarioConfig::default()
            },
            ..ExperimentConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(ConfigError::BadScenario(_))));
    }

    #[test]
    fn error_messages_are_lowercase() {
        let e = ConfigError::BadSpeed(2.0).to_string();
        assert!(e.starts_with(char::is_lowercase));
    }
}
