//! Protocol messages, signatures and replay protection.
//!
//! Scheduling decisions are "cryptographically signed by the federator for
//! authenticity, and … contain a monotonically increasing sequence number
//! so that they cannot be replayed and so that messages sent by the
//! federator that arrive late (i.e., in the next round) are ignored"
//! (paper §4.1). The signature here is a keyed FNV hash — a simulation of
//! an HMAC, consistent with the honest-but-curious threat model.

use aergia_nn::weights;
use aergia_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::profiler::ProfileReport;
use crate::scheduler::Assignment;

fn keyed_hash(secret: u64, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ secret.rotate_left(31);
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A federator signature over a schedule message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature(u64);

/// A signed, sequence-numbered offloading instruction for one sender.
///
/// `round` doubles as the monotonically increasing sequence number: a
/// client executing round `r` discards any instruction with `round != r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignedAssignment {
    /// The instruction itself.
    pub assignment: Assignment,
    /// Round / sequence number the instruction belongs to.
    pub round: u32,
    /// Federator signature over `(round, assignment)`.
    pub signature: Signature,
}

impl SignedAssignment {
    fn payload(round: u32, a: &Assignment) -> Vec<u8> {
        let mut p = Vec::with_capacity(8 * 4);
        p.extend_from_slice(&round.to_le_bytes());
        p.extend_from_slice(&(a.sender as u64).to_le_bytes());
        p.extend_from_slice(&(a.receiver as u64).to_le_bytes());
        p.extend_from_slice(&a.offload_batches.to_le_bytes());
        p
    }

    /// Signs `assignment` for `round` with the federator's secret.
    pub fn sign(secret: u64, round: u32, assignment: Assignment) -> Self {
        let sig = Signature(keyed_hash(secret, &Self::payload(round, &assignment)));
        SignedAssignment { assignment, round, signature: sig }
    }

    /// Verifies the signature and that the instruction belongs to
    /// `current_round` (replay/lateness protection).
    pub fn verify(&self, secret: u64, current_round: u32) -> bool {
        self.round == current_round
            && self.signature
                == Signature(keyed_hash(secret, &Self::payload(self.round, &self.assignment)))
    }
}

/// Everything that travels over the simulated network.
///
/// Weight payloads carry real tensors in [`crate::Mode::Real`] runs and
/// `None` in timing-only runs; either way the *wire size* used for
/// transfer-time accounting is explicit so both modes share one timeline.
#[derive(Debug, Clone)]
pub enum Message {
    /// Federator → client: begin round `round` from the given global model.
    StartRound {
        /// Round number.
        round: u32,
        /// Global weights (absent in timing mode).
        weights: Option<Vec<Tensor>>,
    },
    /// Client → federator: online profiling finished.
    Profile {
        /// Reporting client.
        client: usize,
        /// The measurements.
        report: ProfileReport,
    },
    /// Federator → straggler: freeze and offload per the assignment.
    Schedule(SignedAssignment),
    /// Federator → strong client: expect a model from `sender` and train
    /// it for `offload_batches` batches.
    ScheduleNotice(SignedAssignment),
    /// Straggler → strong client: the (frozen-feature) model to train.
    OffloadModel {
        /// Round number.
        round: u32,
        /// The straggler sending its model.
        from: usize,
        /// Full weight snapshot (absent in timing mode).
        weights: Option<Vec<Tensor>>,
    },
    /// Client → federator: the round's local update.
    ClientUpdate {
        /// Round number.
        round: u32,
        /// Reporting client.
        client: usize,
        /// Trained weights (absent in timing mode).
        weights: Option<Vec<Tensor>>,
        /// Local dataset size (FedAvg weighting).
        num_samples: usize,
        /// Local steps actually executed (FedNova's τ).
        tau: u32,
    },
    /// Strong client → federator: trained feature layers of a straggler's
    /// offloaded model.
    OffloadedResult {
        /// Round number.
        round: u32,
        /// The straggler whose model was trained.
        weak: usize,
        /// Feature-section weights (absent in timing mode).
        features: Option<Vec<Tensor>>,
    },
}

impl Message {
    /// Size in bytes charged to the network for this message.
    ///
    /// Weight-carrying messages are charged their encoded size (computed
    /// from `payload_params` when the tensors themselves are elided in
    /// timing mode); control messages are charged a small constant.
    pub fn wire_size(&self, full_model_bytes: usize, feature_bytes: usize) -> usize {
        const CONTROL: usize = 64;
        match self {
            Message::StartRound { .. } => full_model_bytes + CONTROL,
            Message::Profile { .. } => CONTROL + 4 * 8,
            Message::Schedule(_) | Message::ScheduleNotice(_) => CONTROL,
            Message::OffloadModel { .. } => full_model_bytes + CONTROL,
            Message::ClientUpdate { .. } => full_model_bytes + CONTROL,
            Message::OffloadedResult { .. } => feature_bytes + CONTROL,
        }
    }

    /// Exact encoded size of a weight snapshot (helper re-export).
    pub fn weights_bytes(weights: &[Tensor]) -> usize {
        weights::byte_size(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment() -> Assignment {
        Assignment { sender: 3, receiver: 1, offload_batches: 5, estimated_ct: 2.0 }
    }

    #[test]
    fn signed_assignment_verifies_for_its_round() {
        let signed = SignedAssignment::sign(42, 7, assignment());
        assert!(signed.verify(42, 7));
    }

    #[test]
    fn wrong_secret_fails() {
        let signed = SignedAssignment::sign(42, 7, assignment());
        assert!(!signed.verify(43, 7));
    }

    #[test]
    fn late_message_is_rejected_by_sequence_number() {
        let signed = SignedAssignment::sign(42, 7, assignment());
        assert!(!signed.verify(42, 8), "round-7 schedule must be ignored in round 8");
        assert!(!signed.verify(42, 6));
    }

    #[test]
    fn tampered_assignment_fails() {
        let mut signed = SignedAssignment::sign(42, 7, assignment());
        signed.assignment.receiver = 2;
        assert!(!signed.verify(42, 7));
    }

    #[test]
    fn wire_sizes_charge_models_appropriately() {
        let start = Message::StartRound { round: 0, weights: None };
        let profile = Message::Profile {
            client: 0,
            report: crate::profiler::ProfileReport {
                round: 0,
                per_batch: aergia_nn::profile::PhaseCost::zero(),
                remaining_updates: 0,
            },
        };
        let result = Message::OffloadedResult { round: 0, weak: 0, features: None };
        assert!(start.wire_size(1_000_000, 800_000) > 1_000_000);
        assert!(profile.wire_size(1_000_000, 800_000) < 200);
        let r = result.wire_size(1_000_000, 800_000);
        assert!(r > 800_000 && r < 1_000_000, "features are smaller than the full model");
    }
}
