//! Protocol messages, signatures and replay protection.
//!
//! Scheduling decisions are "cryptographically signed by the federator for
//! authenticity, and … contain a monotonically increasing sequence number
//! so that they cannot be replayed and so that messages sent by the
//! federator that arrive late (i.e., in the next round) are ignored"
//! (paper §4.1). The signature here is a keyed FNV hash — a simulation of
//! an HMAC, consistent with the honest-but-curious threat model.

use std::sync::Arc;

use aergia_codec::{frame, Frame};
use aergia_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::profiler::ProfileReport;
use crate::scheduler::Assignment;

fn keyed_hash(secret: u64, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ secret.rotate_left(31);
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A federator signature over a schedule message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature(u64);

/// A signed, sequence-numbered offloading instruction for one sender.
///
/// `round` doubles as the monotonically increasing sequence number: a
/// client executing round `r` discards any instruction with `round != r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignedAssignment {
    /// The instruction itself.
    pub assignment: Assignment,
    /// Round / sequence number the instruction belongs to.
    pub round: u32,
    /// Federator signature over `(round, assignment)`.
    pub signature: Signature,
}

impl SignedAssignment {
    fn payload(round: u32, a: &Assignment) -> Vec<u8> {
        let mut p = Vec::with_capacity(8 * 4);
        p.extend_from_slice(&round.to_le_bytes());
        p.extend_from_slice(&(a.sender as u64).to_le_bytes());
        p.extend_from_slice(&(a.receiver as u64).to_le_bytes());
        p.extend_from_slice(&a.offload_batches.to_le_bytes());
        p
    }

    /// Signs `assignment` for `round` with the federator's secret.
    pub fn sign(secret: u64, round: u32, assignment: Assignment) -> Self {
        let sig = Signature(keyed_hash(secret, &Self::payload(round, &assignment)));
        SignedAssignment { assignment, round, signature: sig }
    }

    /// Verifies the signature and that the instruction belongs to
    /// `current_round` (replay/lateness protection).
    pub fn verify(&self, secret: u64, current_round: u32) -> bool {
        self.round == current_round
            && self.signature
                == Signature(keyed_hash(secret, &Self::payload(self.round, &self.assignment)))
    }
}

/// Everything that travels over the simulated network.
///
/// Weight payloads are encoded [`Frame`]s of the experiment's codec,
/// shared by `Arc` so a broadcast frame fanning out to N participants is
/// encoded once. Client-originated payloads carry `None` during the
/// event stage that walks a round's virtual clock (its timing must never
/// depend on gradient values, and the tensors they stand for are only
/// produced by the execution stage afterwards); every message is charged
/// the shape-deterministic frame size in [`RoundWireSizes`] either way,
/// and the execution stage asserts the frames it produces match.
#[derive(Debug, Clone)]
pub enum Message {
    /// Federator → client: begin round `round` from the given global model.
    StartRound {
        /// Round number.
        round: u32,
        /// The encoded global-model broadcast.
        payload: Option<Arc<Frame>>,
    },
    /// Client → federator: online profiling finished.
    Profile {
        /// Reporting client.
        client: usize,
        /// The measurements.
        report: ProfileReport,
    },
    /// Federator → straggler: freeze and offload per the assignment.
    Schedule(SignedAssignment),
    /// Federator → strong client: expect a model from `sender` and train
    /// it for `offload_batches` batches.
    ScheduleNotice(SignedAssignment),
    /// Straggler → strong client: the (frozen-feature) model to train.
    OffloadModel {
        /// Round number.
        round: u32,
        /// The straggler sending its model.
        from: usize,
        /// Encoded full snapshot (elided in the event stage).
        payload: Option<Arc<Frame>>,
    },
    /// Client → federator: the round's local update.
    ClientUpdate {
        /// Round number.
        round: u32,
        /// Reporting client.
        client: usize,
        /// Encoded trained weights (elided in the event stage).
        payload: Option<Arc<Frame>>,
        /// Local dataset size (FedAvg weighting).
        num_samples: usize,
        /// Local steps actually executed (FedNova's τ).
        tau: u32,
    },
    /// Strong client → federator: trained feature layers of a straggler's
    /// offloaded model.
    OffloadedResult {
        /// Round number.
        round: u32,
        /// The straggler whose model was trained.
        weak: usize,
        /// Encoded feature section (elided in the event stage).
        payload: Option<Arc<Frame>>,
    },
}

/// Per-message wire sizes of one round's weight frames, computed from the
/// model's shapes by the codec sizing API before any training runs.
///
/// The four entries differ because codec policy is stream-aware: a
/// `TopKDelta` broadcast opens with a dense keyframe in round 0, and the
/// offload-result frame carries only the feature section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundWireSizes {
    /// `StartRound` frame length (the global-model broadcast).
    pub start_round: usize,
    /// `ClientUpdate` frame length (a full trained snapshot).
    pub client_update: usize,
    /// `OffloadModel` frame length (a full frozen snapshot).
    pub offload_model: usize,
    /// `OffloadedResult` frame length (the feature section only).
    pub offload_result: usize,
}

/// Bytes charged per message on top of its payload: routing metadata,
/// the federator signature and sequence number.
const CONTROL: usize = 64;

/// Control envelope of a weight-carrying message. Historically these
/// messages were charged `4-byte tensor count + tensors + CONTROL`; the
/// frame header ([`frame::HEADER_LEN`]) now carries that count (and the
/// codec/section map) inside the payload, so the envelope shrinks by the
/// difference and the dense-codec wire size stays byte-for-byte what it
/// always was.
const WEIGHT_CONTROL: usize = CONTROL + 4 - frame::HEADER_LEN;

impl Message {
    /// Size in bytes charged to the network for this message: the round's
    /// frame size for weight-carrying messages (whether or not the frame
    /// itself rides along) plus a small control envelope.
    pub fn wire_size(&self, sizes: &RoundWireSizes) -> usize {
        match self {
            Message::StartRound { .. } => sizes.start_round + WEIGHT_CONTROL,
            Message::Profile { .. } => CONTROL + 4 * 8,
            Message::Schedule(_) | Message::ScheduleNotice(_) => CONTROL,
            Message::OffloadModel { .. } => sizes.offload_model + WEIGHT_CONTROL,
            Message::ClientUpdate { .. } => sizes.client_update + WEIGHT_CONTROL,
            Message::OffloadedResult { .. } => sizes.offload_result + WEIGHT_CONTROL,
        }
    }

    /// Exact encoded size of a standalone weight snapshot — routed through
    /// the codec sizing API (see [`aergia_nn::weights::byte_size`]).
    pub fn weights_bytes(weights: &[Tensor]) -> usize {
        aergia_nn::weights::byte_size(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment() -> Assignment {
        Assignment { sender: 3, receiver: 1, offload_batches: 5, estimated_ct: 2.0 }
    }

    #[test]
    fn signed_assignment_verifies_for_its_round() {
        let signed = SignedAssignment::sign(42, 7, assignment());
        assert!(signed.verify(42, 7));
    }

    #[test]
    fn wrong_secret_fails() {
        let signed = SignedAssignment::sign(42, 7, assignment());
        assert!(!signed.verify(43, 7));
    }

    #[test]
    fn late_message_is_rejected_by_sequence_number() {
        let signed = SignedAssignment::sign(42, 7, assignment());
        assert!(!signed.verify(42, 8), "round-7 schedule must be ignored in round 8");
        assert!(!signed.verify(42, 6));
    }

    #[test]
    fn tampered_assignment_fails() {
        let mut signed = SignedAssignment::sign(42, 7, assignment());
        signed.assignment.receiver = 2;
        assert!(!signed.verify(42, 7));
    }

    #[test]
    fn wire_sizes_charge_models_appropriately() {
        let sizes = RoundWireSizes {
            start_round: 1_000_000,
            client_update: 1_000_000,
            offload_model: 1_000_000,
            offload_result: 800_000,
        };
        let start = Message::StartRound { round: 0, payload: None };
        let profile = Message::Profile {
            client: 0,
            report: crate::profiler::ProfileReport {
                round: 0,
                per_batch: aergia_nn::profile::PhaseCost::zero(),
                remaining_updates: 0,
            },
        };
        let result = Message::OffloadedResult { round: 0, weak: 0, payload: None };
        assert!(start.wire_size(&sizes) > 1_000_000);
        assert!(profile.wire_size(&sizes) < 200);
        let r = result.wire_size(&sizes);
        assert!(r > 800_000 && r < 1_000_000, "features are smaller than the full model");
    }

    #[test]
    fn dense_accounting_matches_the_historical_formula() {
        // One weight message used to be charged `weights::byte_size + 64`;
        // the frame header absorbed the old 4-byte count plus 20 bytes of
        // envelope, so `frame len + WEIGHT_CONTROL` must land on the same
        // total for the dense codec.
        use aergia_codec::{dense, CodecId, FrameBuilder, SectionKind};
        let weights = vec![Tensor::ones(&[3, 4]), Tensor::ones(&[4])];
        let mut b = FrameBuilder::new();
        b.push_section(SectionKind::Features, CodecId::DenseF32, 1, |out| {
            dense::encode_payload_into(&weights[..1], out);
        });
        b.push_section(SectionKind::Classifier, CodecId::DenseF32, 1, |out| {
            dense::encode_payload_into(&weights[1..], out);
        });
        let frame_len = b.finish().wire_len();
        assert_eq!(frame_len + WEIGHT_CONTROL, Message::weights_bytes(&weights) + 64);
    }
}
