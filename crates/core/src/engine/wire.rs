//! The engine's wire protocol state: which codec every weight transfer
//! uses, the shared bases and error-feedback residuals of delta streams,
//! and the shape-derived frame sizes the event stage charges.
//!
//! Four weight streams exist per experiment (§3.3's message flow):
//!
//! * **Broadcast** (federator → participants, `StartRound`): one frame per
//!   round, identical for every receiver. `TopKDelta` runs it as a true
//!   round-over-round stream — a dense keyframe in round 0, then sparse
//!   deltas against the previous broadcast's reconstruction. Error
//!   feedback is implicit: the base advances only by what was sent, so the
//!   next delta automatically re-carries unsent mass. The simulation
//!   treats the broadcast as cluster-wide (clients skipping a round still
//!   observe it), matching a gossiped model distribution.
//! * **Client update** (participant → federator, `ClientUpdate`): deltas
//!   are taken against the round's broadcast reconstruction — a base both
//!   ends share by construction — and each client keeps its own residual
//!   across the rounds it participates in.
//! * **Offload snapshot** (straggler → strong client, `OffloadModel`) and
//!   **offload result** (strong client → federator, `OffloadedResult`):
//!   one-shot deltas against the round base (no residual — there is no
//!   stream to feed it back into).
//!
//! Every encoded length here is a pure function of shapes and policy
//! (never of values), so the virtual-clock event stage can charge
//! transfers before the execution stage trains anything — and timing-only
//! runs share the exact timeline of real runs.

use aergia_codec::{
    dense, quant, sizing, topk, CodecConfig, CodecId, Frame, FrameBuilder, SectionKind, ShapeSpec,
};
use aergia_tensor::Tensor;

use crate::messages::RoundWireSizes;

/// Wire-codec state for one engine (see the module docs).
pub(crate) struct WireState {
    pub(crate) cfg: CodecConfig,
    /// Tensors in the feature section (a full snapshot splits here).
    pub(crate) feature_tensors: usize,
    feature_spec: ShapeSpec,
    classifier_spec: ShapeSpec,
    /// Broadcast frames emitted so far; `0` means the next broadcast is a
    /// keyframe. Advanced in both modes so timing-only runs price rounds
    /// identically.
    pub(crate) broadcasts: u64,
    /// The reconstruction of the last broadcast — the base the next
    /// `TopKDelta` broadcast and all of this round's uplinks diff against.
    /// Error feedback on the broadcast stream is *implicit*: the base only
    /// advances by what was actually sent, so `global − base` always
    /// carries the accumulated unsent mass (an explicit residual here
    /// would double-count it).
    pub(crate) downlink_base: Option<Vec<Tensor>>,
    /// Per-client error feedback for the update stream (lazily created the
    /// first time a client uploads under a delta codec).
    pub(crate) uplink_residual: Vec<Option<Vec<Tensor>>>,
}

impl WireState {
    /// Builds the wire state from the model template's snapshot shape.
    pub(crate) fn new(
        cfg: CodecConfig,
        template_weights: &[Tensor],
        feature_tensors: usize,
        num_clients: usize,
    ) -> Self {
        let full_spec = ShapeSpec::of(template_weights);
        let (feature_spec, classifier_spec) = full_spec.split_at(feature_tensors);
        WireState {
            cfg,
            feature_tensors,
            feature_spec,
            classifier_spec,
            broadcasts: 0,
            downlink_base: None,
            uplink_residual: (0..num_clients).map(|_| None).collect(),
        }
    }

    /// Frame sizes for the upcoming round, from shapes and policy alone.
    pub(crate) fn round_sizes(&self) -> RoundWireSizes {
        let steady = self.cfg.steady_id();
        let opening = if self.broadcasts == 0 { self.cfg.keyframe_id() } else { steady };
        let kp = self.cfg.keep_permille();
        let full = |id| sizing::frame_len(id, kp, &[&self.feature_spec, &self.classifier_spec]);
        RoundWireSizes {
            start_round: full(opening),
            client_update: full(steady),
            offload_model: full(steady),
            offload_result: sizing::frame_len(steady, kp, &[&self.feature_spec]),
        }
    }

    /// Timing-mode stand-in for [`WireState::broadcast`]: advances the
    /// stream position (keyframe accounting) without touching tensors.
    pub(crate) fn note_broadcast(&mut self) {
        self.broadcasts += 1;
    }

    /// Encodes the round's global-model broadcast and returns the frame
    /// plus the reconstruction every client decodes — the round base all
    /// other streams diff against.
    pub(crate) fn broadcast(&mut self, global: &[Tensor]) -> (Frame, Vec<Tensor>) {
        let kp = self.cfg.keep_permille();
        let ft = self.feature_tensors;
        let (frame, decoded) = match self.cfg {
            CodecConfig::DenseF32 => encode_split(ft, kp, CodecId::DenseF32, global, None, None),
            CodecConfig::QuantI8 => encode_split(ft, kp, CodecId::QuantI8, global, None, None),
            CodecConfig::TopKDelta { .. } => match &self.downlink_base {
                None => encode_split(ft, kp, CodecId::DenseF32, global, None, None),
                Some(base) => encode_split(ft, kp, CodecId::TopKDelta, global, Some(base), None),
            },
        };
        if matches!(self.cfg, CodecConfig::TopKDelta { .. }) {
            self.downlink_base = Some(decoded.clone());
        }
        self.broadcasts += 1;
        (frame, decoded)
    }

    /// Encodes one client's trained snapshot for upload, against the
    /// round base, carrying the client's error-feedback residual forward.
    ///
    /// Unlike the broadcast, the uplink's base resets every round (to that
    /// round's broadcast reconstruction), so unsent mass would be *lost*
    /// without the explicit residual — this is where error feedback earns
    /// its keep.
    pub(crate) fn encode_update(
        &mut self,
        client: usize,
        trained: &[Tensor],
        round_base: &[Tensor],
    ) -> (Frame, Vec<Tensor>) {
        let kp = self.cfg.keep_permille();
        let ft = self.feature_tensors;
        match self.cfg {
            CodecConfig::DenseF32 => encode_split(ft, kp, CodecId::DenseF32, trained, None, None),
            CodecConfig::QuantI8 => encode_split(ft, kp, CodecId::QuantI8, trained, None, None),
            CodecConfig::TopKDelta { .. } => {
                let residual = self.uplink_residual[client]
                    .get_or_insert_with(|| topk::zero_residual(trained));
                encode_split(
                    ft,
                    kp,
                    CodecId::TopKDelta,
                    trained,
                    Some(round_base),
                    Some(&mut residual[..]),
                )
            }
        }
    }

    /// Encodes a straggler's frozen snapshot for the client-to-client
    /// offload (one-shot: no residual stream).
    pub(crate) fn encode_snapshot(
        &self,
        snapshot: &[Tensor],
        round_base: &[Tensor],
    ) -> (Frame, Vec<Tensor>) {
        let kp = self.cfg.keep_permille();
        let ft = self.feature_tensors;
        match self.cfg {
            CodecConfig::DenseF32 => encode_split(ft, kp, CodecId::DenseF32, snapshot, None, None),
            CodecConfig::QuantI8 => encode_split(ft, kp, CodecId::QuantI8, snapshot, None, None),
            CodecConfig::TopKDelta { .. } => {
                encode_split(ft, kp, CodecId::TopKDelta, snapshot, Some(round_base), None)
            }
        }
    }

    /// Encodes a trained feature section for the offload-result upload
    /// (one-shot, features only — `round_base_features` is the feature
    /// slice of the round base).
    pub(crate) fn encode_features(
        &self,
        features: &[Tensor],
        round_base_features: &[Tensor],
    ) -> (Frame, Vec<Tensor>) {
        let kp = self.cfg.keep_permille();
        let (id, base) = match self.cfg {
            CodecConfig::DenseF32 => (CodecId::DenseF32, None),
            CodecConfig::QuantI8 => (CodecId::QuantI8, None),
            CodecConfig::TopKDelta { .. } => (CodecId::TopKDelta, Some(round_base_features)),
        };
        let mut builder = FrameBuilder::new();
        builder.push_section(SectionKind::Features, id, features.len(), |out| {
            encode_section_payload(id, features, base, None, kp, out);
        });
        let frame = builder.finish();
        let decoded = decode_frame_sections(&frame, &[base.unwrap_or(&[])])
            .expect("a frame encoded in-process always decodes");
        (frame, decoded)
    }
}

/// Encodes `current` as a two-section (features + classifier) frame under
/// `codec`, then decodes it back — the returned tensors are exactly what
/// the receiving end reconstructs.
fn encode_split(
    feature_tensors: usize,
    keep_permille: u16,
    codec: CodecId,
    current: &[Tensor],
    base: Option<&[Tensor]>,
    residual: Option<&mut [Tensor]>,
) -> (Frame, Vec<Tensor>) {
    let (feat, clf) = current.split_at(feature_tensors);
    let (base_feat, base_clf) = match base {
        Some(b) => {
            let (bf, bc) = b.split_at(feature_tensors);
            (Some(bf), Some(bc))
        }
        None => (None, None),
    };
    let (res_feat, res_clf) = match residual {
        Some(r) => {
            let (rf, rc) = r.split_at_mut(feature_tensors);
            (Some(rf), Some(rc))
        }
        None => (None, None),
    };
    let mut builder = FrameBuilder::new();
    builder.push_section(SectionKind::Features, codec, feat.len(), |out| {
        encode_section_payload(codec, feat, base_feat, res_feat, keep_permille, out);
    });
    builder.push_section(SectionKind::Classifier, codec, clf.len(), |out| {
        encode_section_payload(codec, clf, base_clf, res_clf, keep_permille, out);
    });
    let frame = builder.finish();
    let decoded =
        decode_frame_sections(&frame, &[base_feat.unwrap_or(&[]), base_clf.unwrap_or(&[])])
            .expect("a frame encoded in-process always decodes");
    (frame, decoded)
}

fn encode_section_payload(
    codec: CodecId,
    current: &[Tensor],
    base: Option<&[Tensor]>,
    residual: Option<&mut [Tensor]>,
    keep_permille: u16,
    out: &mut Vec<u8>,
) {
    match codec {
        CodecId::DenseF32 => dense::encode_payload_into(current, out),
        CodecId::QuantI8 => quant::encode_payload_into(current, out),
        CodecId::TopKDelta => topk::encode_payload_into(
            current,
            base.expect("topk sections always have a base"),
            keep_permille,
            residual,
            out,
        ),
    }
}

/// Decodes every section of `frame` in order and concatenates the
/// tensors; `bases[i]` is the base snapshot of section `i` (ignored by
/// the stateless codecs).
pub(crate) fn decode_frame_sections(
    frame: &Frame,
    bases: &[&[Tensor]],
) -> Result<Vec<Tensor>, aergia_codec::CodecError> {
    let sections = frame.sections()?;
    let mut out = Vec::new();
    for (i, section) in sections.iter().enumerate() {
        let base = bases.get(i).copied().unwrap_or(&[]);
        let mut tensors = match section.codec {
            CodecId::DenseF32 => dense::decode_payload(section.payload, section.tensor_count)?,
            CodecId::QuantI8 => quant::decode_payload(section.payload, section.tensor_count)?,
            CodecId::TopKDelta => {
                topk::decode_payload(section.payload, section.tensor_count, base)?
            }
        };
        out.append(&mut tensors);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(seed: f32) -> Vec<Tensor> {
        vec![
            Tensor::from_vec((0..12).map(|i| seed + i as f32 * 0.25).collect(), &[3, 4]).unwrap(),
            Tensor::from_vec(vec![seed; 4], &[4]).unwrap(),
            Tensor::from_vec((0..8).map(|i| seed - i as f32).collect(), &[2, 4]).unwrap(),
        ]
    }

    fn bits(ws: &[Tensor]) -> Vec<u32> {
        ws.iter().flat_map(|t| t.data().iter().map(|v| v.to_bits())).collect()
    }

    #[test]
    fn dense_broadcast_reconstructs_bit_exactly_at_predicted_size() {
        let global = snapshot(0.5);
        let mut wire = WireState::new(CodecConfig::DenseF32, &global, 2, 3);
        let sizes = wire.round_sizes();
        let (frame, decoded) = wire.broadcast(&global);
        assert_eq!(frame.wire_len(), sizes.start_round);
        assert_eq!(bits(&decoded), bits(&global));
    }

    #[test]
    fn quant_broadcast_is_bounded_and_smaller() {
        let global = snapshot(-1.0);
        let mut wire = WireState::new(CodecConfig::QuantI8, &global, 2, 3);
        let dense_size = WireState::new(CodecConfig::DenseF32, &global, 2, 3).round_sizes();
        let sizes = wire.round_sizes();
        assert!(sizes.start_round < dense_size.start_round);
        let (frame, decoded) = wire.broadcast(&global);
        assert_eq!(frame.wire_len(), sizes.start_round);
        for (a, b) in global.iter().zip(&decoded) {
            let span = a.data().iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v))
                - a.data().iter().fold(f32::INFINITY, |m, &v| m.min(v));
            let bound = aergia_codec::quant::max_abs_error(span / 252.0);
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() <= bound, "{x} -> {y} (bound {bound})");
            }
        }
    }

    #[test]
    fn topk_stream_opens_dense_then_goes_sparse() {
        let global = snapshot(2.0);
        let mut wire = WireState::new(CodecConfig::TopKDelta { keep_permille: 250 }, &global, 2, 3);
        let keyframe_sizes = wire.round_sizes();
        let (frame0, decoded0) = wire.broadcast(&global);
        assert_eq!(frame0.wire_len(), keyframe_sizes.start_round);
        assert_eq!(bits(&decoded0), bits(&global), "the keyframe is dense and exact");

        let steady_sizes = wire.round_sizes();
        assert!(steady_sizes.start_round < keyframe_sizes.start_round);
        let moved: Vec<Tensor> = global.iter().map(|t| t.map(|v| v + 0.1)).collect();
        let (frame1, decoded1) = wire.broadcast(&moved);
        assert_eq!(frame1.wire_len(), steady_sizes.start_round);
        // The reconstruction moves toward `moved` but only at kept entries.
        assert_ne!(bits(&decoded1), bits(&decoded0));
        assert_ne!(bits(&decoded1), bits(&moved));
    }

    #[test]
    fn uplink_residual_feeds_back_across_rounds() {
        let global = snapshot(0.0);
        let mut wire = WireState::new(CodecConfig::TopKDelta { keep_permille: 100 }, &global, 2, 2);
        let (_, base) = wire.broadcast(&global);
        let trained: Vec<Tensor> = global.iter().map(|t| t.map(|v| v + 1.0)).collect();
        let (frame, decoded) = wire.encode_update(0, &trained, &base);
        assert_eq!(frame.wire_len(), wire.round_sizes().client_update);
        assert!(wire.uplink_residual[0].is_some(), "residual materialises on first upload");
        // Unsent delta mass is retained, not lost.
        let residual_mass: f32 = wire.uplink_residual[0]
            .as_ref()
            .unwrap()
            .iter()
            .map(|t| t.data().iter().map(|v| v.abs()).sum::<f32>())
            .sum();
        assert!(residual_mass > 0.0);
        assert_ne!(bits(&decoded), bits(&trained));
    }

    #[test]
    fn feature_frames_carry_only_the_feature_section() {
        let global = snapshot(1.0);
        let wire = WireState::new(CodecConfig::DenseF32, &global, 2, 2);
        let (frame, decoded) = wire.encode_features(&global[..2], &global[..2]);
        assert_eq!(frame.wire_len(), wire.round_sizes().offload_result);
        assert_eq!(decoded.len(), 2);
        assert_eq!(bits(&decoded), bits(&global[..2]));
    }
}
