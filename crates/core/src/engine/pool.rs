//! The client-state pool: resident state for at most `cap` clients.
//!
//! A million-client simulation cannot afford per-client heavyweight
//! state. The engine therefore splits a client in two:
//!
//! * **Compact population state** — CPU model, shard length, per-batch
//!   phase costs (`ClientNode`, tens of bytes) — lives densely for every
//!   simulated client.
//! * **Heavy participant state** — the mini-batch draw stream
//!   ([`Batcher`], which owns a copy of the shard's index permutation)
//!   and the lazily materialised training workspace
//!   ([`ClientWorkspace`], a live model plus scratch buffers) — lives in
//!   this pool, keyed by client id.
//!
//! Under [`ClientStateMode::Resident`](crate::config::ClientStateMode)
//! the pool is pre-populated with every client at build time and its
//! capacity is unbounded: behaviour (and bits) match the historical
//! dense layout exactly. Under `CohortSampled { max_resident }` the pool
//! starts empty, admits each round's participants on demand, and evicts
//! least-recently-selected clients above the cap.
//!
//! # Lifecycle and determinism
//!
//! [`CohortPool::begin_round`] admits the round's participants in
//! ascending client order (counting hits/misses/rebuilds), then evicts
//! non-participants — smallest `(stamp, client)` first — until the pool
//! fits the cap again; [`CohortPool::end_round`] evicts down to the cap
//! with the round over (participants are now fair game). Eviction order
//! is a pure function of the selection history, so pool membership — and
//! with it every statistic in
//! [`WorkspacePoolStats`](crate::profiler::WorkspacePoolStats) — is
//! identical across parallelism settings, transports and checkpoint
//! resume (the pool's entries, clock and eviction memory are serialized
//! in the `BTCH`/`POOL` checkpoint chunks).
//!
//! Evicting a workspace is *free* of numeric consequence: a workspace
//! carries no round-to-round information — every round resets it from
//! the decoded broadcast (the codec's keyframe stream) before training —
//! so a rebuilt workspace produces bit-identical results, and evicted
//! workspaces are recycled through a free list rather than dropped
//! (dirty reuse is pinned bit-safe by the determinism suite). Evicting a
//! *batcher* discards the client's draw-stream position; on
//! re-admission the stream restarts from its seeded origin. That is the
//! documented divergence of cohort-sampled runs from fully resident
//! ones — and the reason `Resident` mode never evicts.

use std::collections::{HashMap, HashSet};

use aergia_data::batcher::Batcher;

use crate::profiler::WorkspacePoolStats;
use crate::transport::ClientWorkspace;

/// One resident client's heavy state.
pub(crate) struct PoolEntry {
    /// Last round-admission tick (LRU key; ties broken by client id).
    pub(crate) stamp: u64,
    pub(crate) batcher: Batcher,
    /// Materialised lazily by the transport on first training.
    pub(crate) ws: Option<ClientWorkspace>,
}

/// LRU pool of per-client heavy state (see the module docs).
pub(crate) struct CohortPool {
    entries: HashMap<usize, PoolEntry>,
    /// Monotone admission tick.
    clock: u64,
    /// Maximum resident clients (`usize::MAX` for `Resident` mode).
    cap: usize,
    /// Every client ever evicted — distinguishes a *rebuild* from a
    /// first-time admission in the stats.
    evicted_ever: HashSet<usize>,
    /// Workspaces recycled from evicted entries, handed (dirty) to the
    /// next admission; `reset_model` makes reuse bit-invisible.
    free_ws: Vec<ClientWorkspace>,
    /// Fixed per-entry workspace charge for the resident-bytes estimate
    /// (0 in timing mode, which never materialises workspaces).
    ws_bytes_per_entry: u64,
    /// Counters of the round in flight (reset by `begin_round`).
    stats: WorkspacePoolStats,
}

impl CohortPool {
    pub(crate) fn new(cap: usize, ws_bytes_per_entry: u64) -> Self {
        CohortPool {
            entries: HashMap::new(),
            clock: 0,
            cap: cap.max(1),
            evicted_ever: HashSet::new(),
            free_ws: Vec::new(),
            ws_bytes_per_entry,
            stats: WorkspacePoolStats::default(),
        }
    }

    /// Inserts a client at build time (Resident mode), before any round.
    pub(crate) fn prepopulate(&mut self, client: usize, batcher: Batcher) {
        let stamp = self.clock;
        self.clock += 1;
        let prev = self.entries.insert(client, PoolEntry { stamp, batcher, ws: None });
        debug_assert!(prev.is_none(), "client {client} prepopulated twice");
    }

    /// Admits this round's participants (building missing batchers with
    /// `make`, in ascending client order), evicts non-participants above
    /// the cap, and leaves the round's stats readable via
    /// [`CohortPool::stats`].
    pub(crate) fn begin_round(
        &mut self,
        participants: &[usize],
        mut make: impl FnMut(usize) -> Batcher,
    ) {
        self.stats = WorkspacePoolStats::default();
        self.clock += 1;
        let stamp = self.clock;
        for &p in participants {
            if let Some(entry) = self.entries.get_mut(&p) {
                entry.stamp = stamp;
                self.stats.hits += 1;
            } else {
                self.stats.misses += 1;
                if self.evicted_ever.contains(&p) {
                    self.stats.rebuilds += 1;
                }
                let ws = self.free_ws.pop();
                self.entries.insert(p, PoolEntry { stamp, batcher: make(p), ws });
            }
        }
        let keep: HashSet<usize> = participants.iter().copied().collect();
        self.evict_over_cap(&keep);
        self.stats.resident_clients = self.entries.len() as u32;
        self.stats.resident_bytes = self
            .entries
            .values()
            .map(|e| (e.batcher.shard_len() * 8 + 64) as u64 + self.ws_bytes_per_entry)
            .sum();
    }

    /// Evicts down to the cap with no protected set — call once the
    /// round's training is folded, so the *next* round observes at most
    /// `cap` residents.
    pub(crate) fn end_round(&mut self) {
        self.evict_over_cap(&HashSet::new());
    }

    fn evict_over_cap(&mut self, keep: &HashSet<usize>) {
        if self.entries.len() <= self.cap {
            return;
        }
        let excess = self.entries.len() - self.cap;
        let mut victims: Vec<(u64, usize)> = self
            .entries
            .iter()
            .filter(|(c, _)| !keep.contains(c))
            .map(|(&c, e)| (e.stamp, c))
            .collect();
        victims.sort_unstable();
        for &(_, client) in victims.iter().take(excess) {
            let entry = self.entries.remove(&client).expect("victim is resident");
            self.stats.evictions += 1;
            self.evicted_ever.insert(client);
            if let Some(mut ws) = entry.ws {
                // A recycled workspace must not leak a previous client's
                // staged fused batch-0 forward.
                ws.fused0 = None;
                self.free_ws.push(ws);
            }
        }
    }

    /// The finished round's pool statistics.
    pub(crate) fn stats(&self) -> WorkspacePoolStats {
        self.stats
    }

    /// Disjoint `&mut` handles to every resident entry's batcher and
    /// workspace slot, for the round's transport orders.
    pub(crate) fn handles(
        &mut self,
    ) -> HashMap<usize, (&mut Batcher, &mut Option<ClientWorkspace>)> {
        self.entries.iter_mut().map(|(&c, e)| (c, (&mut e.batcher, &mut e.ws))).collect()
    }

    /// Resident client count.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether `client` is resident.
    #[cfg(test)]
    pub(crate) fn contains(&self, client: usize) -> bool {
        self.entries.contains_key(&client)
    }

    /// `(client, stamp, batcher)` of every resident entry, ascending by
    /// client id — the checkpoint's `BTCH` chunk order.
    pub(crate) fn snapshot_entries(&self) -> Vec<(usize, u64, &Batcher)> {
        let mut out: Vec<(usize, u64, &Batcher)> =
            self.entries.iter().map(|(&c, e)| (c, e.stamp, &e.batcher)).collect();
        out.sort_unstable_by_key(|&(c, _, _)| c);
        out
    }

    /// `(clock, sorted eviction memory)` — the checkpoint's `POOL` chunk.
    pub(crate) fn snapshot_meta(&self) -> (u64, Vec<usize>) {
        let mut evicted: Vec<usize> = self.evicted_ever.iter().copied().collect();
        evicted.sort_unstable();
        (self.clock, evicted)
    }

    /// Replaces the pool's contents with checkpoint-restored state.
    /// Workspaces rematerialise on demand — they carry no information a
    /// round does not rebuild from the broadcast.
    pub(crate) fn restore(
        &mut self,
        entries: Vec<(usize, u64, Batcher)>,
        clock: u64,
        evicted_ever: Vec<usize>,
    ) {
        self.entries = entries
            .into_iter()
            .map(|(c, stamp, batcher)| (c, PoolEntry { stamp, batcher, ws: None }))
            .collect();
        self.clock = clock;
        self.evicted_ever = evicted_ever.into_iter().collect();
        self.free_ws.clear();
        self.stats = WorkspacePoolStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher(id: usize) -> Batcher {
        Batcher::new(vec![id, id + 1], 2, id as u64)
    }

    fn pool(cap: usize) -> CohortPool {
        CohortPool::new(cap, 100)
    }

    #[test]
    fn resident_mode_never_evicts_and_always_hits() {
        let mut p = pool(usize::MAX);
        for c in 0..4 {
            p.prepopulate(c, batcher(c));
        }
        p.begin_round(&[1, 3], batcher);
        assert_eq!(p.stats().hits, 2);
        assert_eq!(p.stats().misses, 0);
        assert_eq!(p.stats().resident_clients, 4);
        p.end_round();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn lru_evicts_least_recently_selected_first() {
        let mut p = pool(2);
        p.begin_round(&[0, 1], batcher);
        p.end_round();
        p.begin_round(&[2], batcher); // evicts 0 or 1? same stamp → lowest id: 0
        assert!(!p.contains(0), "client 0 (oldest, lowest id) evicted");
        assert!(p.contains(1) && p.contains(2));
        p.end_round();
        p.begin_round(&[1], batcher); // refresh 1
        p.end_round();
        p.begin_round(&[3], batcher); // now 2 is the LRU
        assert!(!p.contains(2));
        assert!(p.contains(1) && p.contains(3));
    }

    #[test]
    fn participants_survive_admission_even_over_cap() {
        let mut p = pool(2);
        p.begin_round(&[0, 1, 2, 3], batcher);
        assert_eq!(p.len(), 4, "the live round's participants are protected");
        assert_eq!(p.stats().resident_clients, 4);
        p.end_round();
        assert_eq!(p.len(), 2, "end_round shrinks back to the cap");
    }

    #[test]
    fn rebuilds_count_readmissions_only() {
        let mut p = pool(1);
        p.begin_round(&[0], batcher);
        p.end_round();
        p.begin_round(&[1], batcher); // evicts 0, first admission of 1
        assert_eq!((p.stats().misses, p.stats().rebuilds), (1, 0));
        p.end_round();
        p.begin_round(&[0], batcher); // 0 comes back: a rebuild
        assert_eq!((p.stats().misses, p.stats().rebuilds), (1, 1));
    }

    #[test]
    fn resident_bytes_track_membership() {
        let mut p = pool(8);
        p.begin_round(&[0, 1, 2], batcher);
        // 3 entries × (2 indices × 8 + 64 + 100).
        assert_eq!(p.stats().resident_bytes, 3 * (16 + 64 + 100));
    }

    #[test]
    fn snapshot_restore_round_trips_membership() {
        let mut p = pool(2);
        p.begin_round(&[0, 1], batcher);
        p.end_round();
        p.begin_round(&[2], batcher);
        p.end_round();
        let entries: Vec<(usize, u64, Batcher)> = p
            .snapshot_entries()
            .into_iter()
            .map(|(c, stamp, b)| {
                let mut fresh = batcher(c);
                fresh.restore_state(b.state());
                (c, stamp, fresh)
            })
            .collect();
        let (clock, evicted) = p.snapshot_meta();
        assert_eq!(evicted, vec![0]);
        let mut q = pool(2);
        q.restore(entries, clock, evicted);
        assert_eq!(q.len(), 2);
        // Same continuation: admitting 0 again counts as a rebuild in both.
        p.begin_round(&[0], batcher);
        q.begin_round(&[0], batcher);
        assert_eq!(p.stats(), q.stats());
    }
}
