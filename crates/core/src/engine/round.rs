//! Event-driven simulation of one communication round.
//!
//! This module encodes the client and federator state machines of §3.3:
//! model download → early training with online profiling → centralized
//! scheduling → freezing/offloading → aggregation-ready uploads. All
//! message transfers go through the simulated network with explicit byte
//! sizes; all compute advances the virtual clock through the per-client
//! phase cost model.

use std::collections::HashMap;

use aergia_nn::Cnn;
use aergia_simnet::network::Delivery;
use aergia_simnet::{EventQueue, NodeId, SimDuration, SimTime};
use aergia_tensor::Tensor;

use crate::config::Mode;
use crate::messages::{Message, SignedAssignment};
use crate::profiler::{OnlineProfiler, ProfileReport};
use crate::scheduler::{self, ClientPerf};
use crate::strategy::Strategy;

use super::{Engine, EngineError};

/// Where an event is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dest {
    Client(usize),
    Federator,
}

/// The three event kinds that drive a round.
#[derive(Debug)]
enum Ev {
    Deliver(Dest, Message),
    BatchDone(usize),
    OffloadBatchDone(usize),
}

/// One client update as received by the federator.
#[derive(Debug, Clone)]
pub(crate) struct UpdateArrival {
    pub(crate) client: usize,
    pub(crate) weights: Option<Vec<Tensor>>,
    pub(crate) num_samples: usize,
    pub(crate) tau: u32,
    pub(crate) arrived: SimTime,
}

/// A trained offloaded feature section as received by the federator.
#[derive(Debug, Clone)]
pub(crate) struct OffloadResultArrival {
    pub(crate) weak: usize,
    pub(crate) features: Option<Vec<Tensor>>,
    pub(crate) arrived: SimTime,
}

/// Everything the federator observed during one round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    pub(crate) start: SimTime,
    pub(crate) duration: SimDuration,
    pub(crate) updates: Vec<UpdateArrival>,
    pub(crate) offload_results: Vec<OffloadResultArrival>,
    pub(crate) offloads_activated: Vec<(usize, usize)>,
    pub(crate) dropped: Vec<usize>,
    pub(crate) losses: Vec<f32>,
}

impl RoundOutcome {
    /// Sender→receiver pairs whose offload actually took place.
    pub fn offload_pairs(&self) -> Vec<(usize, usize)> {
        self.offloads_activated.clone()
    }

    /// Mean local training loss over all batches of the round.
    pub fn mean_loss(&self) -> f64 {
        if self.losses.is_empty() {
            return f64::NAN;
        }
        self.losses.iter().map(|&l| f64::from(l)).sum::<f64>() / self.losses.len() as f64
    }

    /// Trained feature weights for `client`'s model, if a strong client
    /// returned them this round.
    pub(crate) fn offload_features_for(&self, client: usize) -> Option<&Vec<Tensor>> {
        self.offload_results.iter().find(|r| r.weak == client).and_then(|r| r.features.as_ref())
    }

    /// Arrival time of the offloaded features for `client`.
    pub(crate) fn offload_arrival_for(&self, client: usize) -> Option<SimTime> {
        self.offload_results.iter().find(|r| r.weak == client).map(|r| r.arrived)
    }

    /// The round duration (already deadline-capped).
    pub fn duration(&self) -> SimDuration {
        self.duration
    }
}

/// Per-round, per-client state machine.
struct RClient {
    active: bool,
    model: Option<Cnn>,
    opt: aergia_nn::optim::Sgd,
    profiler: Option<OnlineProfiler>,
    batches_done: u32,
    frozen: bool,
    own_done: bool,
    // Receiver-side offload state.
    notice: Option<SignedAssignment>,
    offload_model: Option<(usize, Option<Cnn>)>,
    offload_remaining: u32,
    offload_running: bool,
}

impl RClient {
    fn idle(opt: aergia_nn::optim::Sgd) -> Self {
        RClient {
            active: false,
            model: None,
            opt,
            profiler: None,
            batches_done: 0,
            frozen: false,
            own_done: false,
            notice: None,
            offload_model: None,
            offload_remaining: 0,
            offload_running: false,
        }
    }
}

fn node(id: usize) -> NodeId {
    NodeId(id as u32)
}

/// Simulates one round and returns what the federator observed.
pub(crate) fn simulate_round(
    engine: &mut Engine,
    round: u32,
    start: SimTime,
    participants: &[usize],
) -> Result<RoundOutcome, EngineError> {
    let mode = engine.config.mode;
    let local_updates = engine.config.local_updates;
    let profile_window = match engine.strategy {
        Strategy::Aergia { profile_batches, .. } => profile_batches.min(local_updates),
        _ => 0,
    };
    let (similarity_factor, op_variant) = match engine.strategy {
        Strategy::Aergia { similarity_factor, op_variant, .. } => (similarity_factor, op_variant),
        _ => (0.0, scheduler::OpVariant::Unimodal),
    };

    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut rclients: Vec<RClient> =
        (0..engine.config.num_clients).map(|_| RClient::idle(engine.make_optimizer())).collect();

    // Federator round state.
    let mut reports: HashMap<usize, ProfileReport> = HashMap::new();
    let mut schedule_sent = false;
    let mut updates: Vec<UpdateArrival> = Vec::new();
    let mut offload_results: Vec<OffloadResultArrival> = Vec::new();
    let mut offloads_activated: Vec<(usize, usize)> = Vec::new();
    let mut losses: Vec<f32> = Vec::new();

    // Kick off: ship the global model to every participant.
    for &p in participants {
        let msg = Message::StartRound {
            round,
            weights: (mode == Mode::Real).then(|| engine.global.clone()),
        };
        let size = msg.wire_size(engine.full_model_bytes, engine.feature_bytes);
        if let Delivery::After(d) = engine.network.send(NodeId::FEDERATOR, node(p), size) {
            queue.push(start + d, Ev::Deliver(Dest::Client(p), msg));
        }
    }

    // Helper: enqueue a message through the network (drops vanish).
    macro_rules! send {
        ($now:expr, $from:expr, $to:expr, $dest:expr, $msg:expr) => {{
            let msg = $msg;
            let size = msg.wire_size(engine.full_model_bytes, engine.feature_bytes);
            if let Delivery::After(d) = engine.network.send($from, $to, size) {
                queue.push($now + d, Ev::Deliver($dest, msg));
            }
        }};
    }

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::Deliver(Dest::Client(c), Message::StartRound { round: r, weights }) => {
                if r != round {
                    continue; // stale start (cannot happen without faults)
                }
                let rc = &mut rclients[c];
                rc.active = true;
                if mode == Mode::Real {
                    let mut model = engine.template.clone();
                    model.set_weights(weights.as_ref().expect("real mode carries weights"))?;
                    rc.model = Some(model);
                }
                if profile_window > 0 {
                    rc.profiler = Some(OnlineProfiler::new(profile_window));
                }
                queue.push(now + engine.clients[c].full_batch(), Ev::BatchDone(c));
            }

            Ev::BatchDone(c) => {
                // Real gradient work (virtual cost already charged by the
                // event's timestamp).
                if mode == Mode::Real {
                    let (x, y) = engine.clients[c].batcher.next_batch(&engine.train);
                    let rc = &mut rclients[c];
                    let model = rc.model.as_mut().expect("active client has a model");
                    let stats = model
                        .train_batch(&x, &y, &mut rc.opt)
                        .expect("batch matches model input shape");
                    losses.push(stats.loss);
                }
                let rc = &mut rclients[c];
                rc.batches_done += 1;

                // Online profiling (§4.2): record the virtual per-phase
                // cost; report to the federator when the window fills.
                let mut report_now = false;
                if let Some(prof) = &mut rc.profiler {
                    if prof.record(engine.clients[c].phase_secs) {
                        report_now = true;
                    }
                }
                if report_now {
                    let report = ProfileReport {
                        round,
                        per_batch: rc.profiler.as_ref().expect("just recorded").per_batch(),
                        remaining_updates: local_updates - rc.batches_done,
                    };
                    send!(
                        now,
                        node(c),
                        NodeId::FEDERATOR,
                        Dest::Federator,
                        Message::Profile { client: c, report }
                    );
                }

                if rc.batches_done >= local_updates {
                    rc.own_done = true;
                    let weights = rc.model.as_ref().map(|m| m.weights());
                    send!(
                        now,
                        node(c),
                        NodeId::FEDERATOR,
                        Dest::Federator,
                        Message::ClientUpdate {
                            round,
                            client: c,
                            weights,
                            num_samples: engine.clients[c].shard_len,
                            tau: rc.batches_done,
                        }
                    );
                    if can_start_offload(&rclients[c]) {
                        start_offload(&mut rclients[c], &mut queue, engine, c, now);
                    }
                } else {
                    let dur = if rc.frozen {
                        engine.clients[c].frozen_batch()
                    } else {
                        engine.clients[c].full_batch()
                    };
                    queue.push(now + dur, Ev::BatchDone(c));
                }
            }

            Ev::Deliver(Dest::Federator, Message::Profile { client, report }) => {
                if report.round != round {
                    continue;
                }
                reports.insert(client, report);
                if !schedule_sent && reports.len() == participants.len() {
                    schedule_sent = true;
                    let perfs: Vec<ClientPerf> = participants
                        .iter()
                        .map(|&p| {
                            let r = &reports[&p];
                            ClientPerf {
                                id: p,
                                t123: r.t123(),
                                t4: r.t4(),
                                feature_only: r.feature_only_batch(),
                                remaining: r.remaining_updates,
                            }
                        })
                        .collect();
                    let schedule = scheduler::schedule(
                        &perfs,
                        &engine.similarity,
                        similarity_factor,
                        op_variant,
                    );
                    for assignment in schedule.assignments {
                        let signed =
                            SignedAssignment::sign(engine.federator_secret, round, assignment);
                        send!(
                            now,
                            NodeId::FEDERATOR,
                            node(assignment.sender),
                            Dest::Client(assignment.sender),
                            Message::Schedule(signed)
                        );
                        send!(
                            now,
                            NodeId::FEDERATOR,
                            node(assignment.receiver),
                            Dest::Client(assignment.receiver),
                            Message::ScheduleNotice(signed)
                        );
                    }
                }
            }

            Ev::Deliver(Dest::Client(c), Message::Schedule(signed)) => {
                // §4.1: signatures + sequence numbers make late or forged
                // scheduling messages harmless.
                if !signed.verify(engine.federator_secret, round) {
                    continue;
                }
                let rc = &mut rclients[c];
                if !rc.active || rc.own_done || rc.frozen {
                    continue; // too late to benefit from freezing
                }
                rc.frozen = true;
                let weights = rc.model.as_mut().map(|m| {
                    m.freeze_features();
                    m.weights()
                });
                offloads_activated.push((c, signed.assignment.receiver));
                send!(
                    now,
                    node(c),
                    node(signed.assignment.receiver),
                    Dest::Client(signed.assignment.receiver),
                    Message::OffloadModel { round, from: c, weights }
                );
            }

            Ev::Deliver(Dest::Client(c), Message::ScheduleNotice(signed)) => {
                if !signed.verify(engine.federator_secret, round) {
                    continue;
                }
                let rc = &mut rclients[c];
                rc.notice = Some(signed);
                rc.offload_remaining = signed.assignment.offload_batches;
                if can_start_offload(&rclients[c]) {
                    start_offload(&mut rclients[c], &mut queue, engine, c, now);
                }
            }

            Ev::Deliver(Dest::Client(c), Message::OffloadModel { round: r, from, weights }) => {
                if r != round {
                    continue;
                }
                let model = match (mode, weights) {
                    (Mode::Real, Some(w_in)) => {
                        let mut m = engine.template.clone();
                        m.set_weights(&w_in)?;
                        // Train only the feature section on the receiver's
                        // data; the straggler's classifier stays fixed.
                        m.freeze_classifier();
                        Some(m)
                    }
                    _ => None,
                };
                rclients[c].offload_model = Some((from, model));
                if can_start_offload(&rclients[c]) {
                    start_offload(&mut rclients[c], &mut queue, engine, c, now);
                }
            }

            Ev::OffloadBatchDone(c) => {
                if mode == Mode::Real {
                    let (x, y) = engine.clients[c].batcher.next_batch(&engine.train);
                    let rc = &mut rclients[c];
                    let (_, model) = rc.offload_model.as_mut().expect("offload in progress");
                    let model = model.as_mut().expect("real mode offload model");
                    model
                        .train_batch(&x, &y, &mut rc.opt)
                        .expect("offload batch matches model input shape");
                }
                let rc = &mut rclients[c];
                rc.offload_remaining -= 1;
                if rc.offload_remaining == 0 {
                    rc.offload_running = false;
                    let (weak, model) = rc.offload_model.take().expect("offload in progress");
                    let features = model.map(|m| m.feature_weights());
                    send!(
                        now,
                        node(c),
                        NodeId::FEDERATOR,
                        Dest::Federator,
                        Message::OffloadedResult { round, weak, features }
                    );
                } else {
                    queue.push(now + engine.clients[c].feature_batch(), Ev::OffloadBatchDone(c));
                }
            }

            Ev::Deliver(
                Dest::Federator,
                Message::ClientUpdate { round: r, client, weights, num_samples, tau },
            ) => {
                if r != round {
                    continue;
                }
                updates.push(UpdateArrival { client, weights, num_samples, tau, arrived: now });
            }

            Ev::Deliver(Dest::Federator, Message::OffloadedResult { round: r, weak, features }) => {
                if r != round {
                    continue;
                }
                offload_results.push(OffloadResultArrival { weak, features, arrived: now });
            }

            // Remaining combinations are protocol violations; in a
            // simulation they indicate a bug, so surface them loudly.
            Ev::Deliver(dest, msg) => {
                unreachable!("unexpected message {msg:?} delivered to {dest:?}")
            }
        }
    }

    // Round duration: from the start of the round to the last message the
    // federator waits for (§2.4), capped by the strategy's deadline.
    let last_arrival = updates
        .iter()
        .map(|u| u.arrived)
        .chain(offload_results.iter().map(|o| o.arrived))
        .max()
        .unwrap_or(start);
    let mut duration = last_arrival - start;
    if let Some(deadline) = engine.deadline() {
        duration = duration.min(deadline);
    }

    let cutoff = start + duration;
    let dropped: Vec<usize> = participants
        .iter()
        .copied()
        .filter(|&p| !updates.iter().any(|u| u.client == p && u.arrived <= cutoff))
        .collect();

    Ok(RoundOutcome {
        start,
        duration,
        updates,
        offload_results,
        offloads_activated,
        dropped,
        losses,
    })
}

fn can_start_offload(rc: &RClient) -> bool {
    rc.own_done
        && !rc.offload_running
        && rc.offload_remaining > 0
        && rc.notice.is_some()
        && rc.offload_model.is_some()
}

fn start_offload(
    rc: &mut RClient,
    queue: &mut EventQueue<Ev>,
    engine: &Engine,
    c: usize,
    now: SimTime,
) {
    rc.offload_running = true;
    queue.push(now + engine.clients[c].feature_batch(), Ev::OffloadBatchDone(c));
}
