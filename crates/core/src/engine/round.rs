//! Event-driven simulation of one communication round.
//!
//! This module encodes the client and federator state machines of §3.3:
//! model download → early training with online profiling → centralized
//! scheduling → freezing/offloading → aggregation-ready uploads. All
//! message transfers go through the simulated network with explicit byte
//! sizes; all compute advances the virtual clock through the per-client
//! phase cost model.
//!
//! # Plan, then execute
//!
//! The round runs in two stages. The *event stage* walks the virtual
//! clock exactly as before but carries no tensors: its timing depends
//! only on the per-client phase costs and the network model, never on
//! the gradient values, so it can run first and record a [`ClientPlan`]
//! per client — how many local batches ran, after which batch the
//! feature section froze, and which offloaded model was trained for how
//! many batches. The *execution stage* (real mode only) then hands the
//! numeric work those plans describe to the round's
//! [`Transport`](crate::transport::Transport): first every participant's
//! own batches ([`crate::transport::TrainOrder`]), then — after the
//! engine pushes the straggler snapshots through the wire codec — the
//! receiver-side offloaded batches
//! ([`crate::transport::OffloadOrder`]). The default
//! [`InProcess`](crate::transport::InProcess) transport executes orders
//! concurrently on the [`aergia_runtime`] work-stealing pool, bounded by
//! [`crate::config::ExperimentConfig::parallelism`]; `aergia-net`'s TCP
//! transport ships them to remote worker processes instead.
//!
//! Results are folded back in fixed client order, which makes a parallel
//! round **bit-identical** to a serial one: the workspace determinism
//! suite asserts equality of per-round losses, accuracies and final
//! weights across `parallelism` settings. A transport may *omit* a
//! reply (a real client crashing mid-upload): the round then completes
//! with the remaining participants and the silent client joins the
//! dropped set.

use std::collections::{HashMap, HashSet};

use aergia_nn::optim::Sgd;
use aergia_simnet::network::Delivery;
use aergia_simnet::{EventQueue, NodeId, SimDuration, SimTime};
use aergia_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::Mode;
use crate::messages::{Message, RoundWireSizes, SignedAssignment};
use crate::profiler::{OnlineProfiler, ProfileReport};
use crate::scenario::{Attack, OffloadPolicy};
use crate::scheduler::{self, ClientPerf};
use crate::strategy::Strategy;
use crate::transport::{OffloadOrder, RoundContext, TrainOrder, Transport};

use super::{telemetry, Engine, EngineError};

/// Where an event is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dest {
    Client(usize),
    Federator,
}

/// The three event kinds that drive a round.
#[derive(Debug)]
enum Ev {
    Deliver(Dest, Message),
    BatchDone(usize),
    OffloadBatchDone(usize),
}

/// One client update as received by the federator.
#[derive(Debug, Clone)]
pub(crate) struct UpdateArrival {
    pub(crate) client: usize,
    pub(crate) weights: Option<Vec<Tensor>>,
    pub(crate) num_samples: usize,
    pub(crate) tau: u32,
    pub(crate) arrived: SimTime,
}

/// A trained offloaded feature section as received by the federator.
#[derive(Debug, Clone)]
pub(crate) struct OffloadResultArrival {
    pub(crate) weak: usize,
    pub(crate) features: Option<Vec<Tensor>>,
    pub(crate) arrived: SimTime,
}

/// Everything the federator observed during one round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    pub(crate) start: SimTime,
    pub(crate) duration: SimDuration,
    pub(crate) updates: Vec<UpdateArrival>,
    pub(crate) offload_results: Vec<OffloadResultArrival>,
    pub(crate) offloads_activated: Vec<(usize, usize)>,
    pub(crate) dropped: Vec<usize>,
    pub(crate) losses: Vec<f32>,
}

impl RoundOutcome {
    /// Sender→receiver pairs whose offload actually took place.
    pub fn offload_pairs(&self) -> Vec<(usize, usize)> {
        self.offloads_activated.clone()
    }

    /// Mean local training loss over all batches of the round.
    pub fn mean_loss(&self) -> f64 {
        if self.losses.is_empty() {
            return f64::NAN;
        }
        self.losses.iter().map(|&l| f64::from(l)).sum::<f64>() / self.losses.len() as f64
    }

    /// Trained feature weights for `client`'s model, if a strong client
    /// returned them this round.
    pub(crate) fn offload_features_for(&self, client: usize) -> Option<&Vec<Tensor>> {
        self.offload_results.iter().find(|r| r.weak == client).and_then(|r| r.features.as_ref())
    }

    /// Arrival time of the offloaded features for `client`.
    pub(crate) fn offload_arrival_for(&self, client: usize) -> Option<SimTime> {
        self.offload_results.iter().find(|r| r.weak == client).map(|r| r.arrived)
    }

    /// The round duration (already deadline-capped).
    pub fn duration(&self) -> SimDuration {
        self.duration
    }
}

/// Per-round, per-client state machine (virtual time only — the numeric
/// training it implies is captured in the [`ClientPlan`]).
struct RClient {
    active: bool,
    profiler: Option<OnlineProfiler>,
    batches_done: u32,
    frozen: bool,
    /// Number of own batches completed when the freeze instruction landed.
    frozen_at: Option<u32>,
    own_done: bool,
    // Receiver-side offload state.
    notice: Option<SignedAssignment>,
    /// The straggler whose model this client received for training.
    offload_from: Option<usize>,
    /// Offloaded batches actually executed (virtual clock charged).
    offload_batches_run: u32,
    offload_remaining: u32,
    offload_running: bool,
    /// Churn: the client died mid-round and ignores all further events.
    crashed: bool,
    /// Total batch events survived this round (own + offloaded) — the
    /// clock the churn crash point is measured on.
    batches_total: u32,
}

impl RClient {
    fn idle() -> Self {
        RClient {
            active: false,
            profiler: None,
            batches_done: 0,
            frozen: false,
            frozen_at: None,
            own_done: false,
            notice: None,
            offload_from: None,
            offload_batches_run: 0,
            offload_remaining: 0,
            offload_running: false,
            crashed: false,
            batches_total: 0,
        }
    }
}

/// Sparse per-round client table. Only clients the round's events touch
/// (participants and offload receivers) get an entry, so per-round state
/// is `O(participants)` even when the simulated population is millions.
/// Reads of untouched clients fall back to a shared idle value; writes
/// materialise the entry on first access.
struct RTable {
    map: HashMap<usize, RClient>,
    idle: RClient,
}

impl RTable {
    fn new() -> Self {
        RTable { map: HashMap::new(), idle: RClient::idle() }
    }
}

impl std::ops::Index<usize> for RTable {
    type Output = RClient;
    fn index(&self, c: usize) -> &RClient {
        self.map.get(&c).unwrap_or(&self.idle)
    }
}

impl std::ops::IndexMut<usize> for RTable {
    fn index_mut(&mut self, c: usize) -> &mut RClient {
        self.map.entry(c).or_insert_with(RClient::idle)
    }
}

/// Advances `rc`'s batch clock by one event; returns `true` (marking the
/// client crashed) when the churn crash point is reached. The fatal
/// batch's work is lost — counters are not advanced past the crash.
fn crashes_now(threshold: Option<u32>, rc: &mut RClient) -> bool {
    let next = rc.batches_total + 1;
    if threshold.is_some_and(|n| next >= n) {
        rc.crashed = true;
        rc.active = false;
        true
    } else {
        rc.batches_total = next;
        false
    }
}

/// The numeric work one client must perform for the round, as dictated by
/// the event trace.
#[derive(Debug, Clone, Copy, Default)]
struct ClientPlan {
    /// Local batches trained on the client's own shard.
    own_batches: u32,
    /// Freeze the feature section before this (0-based) batch index.
    freeze_after: Option<u32>,
    /// Whether another client trains this client's frozen snapshot (so the
    /// snapshot must be captured at the freeze point).
    snapshot_wanted: bool,
    /// Offloaded training this client performs for a straggler.
    offload: Option<OffloadPlan>,
}

/// Receiver-side offload work: train `weak`'s frozen model for `batches`.
#[derive(Debug, Clone, Copy)]
struct OffloadPlan {
    weak: usize,
    batches: u32,
}

fn node(id: usize) -> NodeId {
    NodeId(id as u32)
}

/// Simulates one round and returns what the federator observed. The
/// numeric training dictated by the event trace executes through
/// `transport` (real mode only).
pub(crate) fn simulate_round(
    engine: &mut Engine,
    round: u32,
    start: SimTime,
    participants: &[usize],
    crash_after: &[Option<u32>],
    transport: &mut dyn Transport,
) -> Result<RoundOutcome, EngineError> {
    let mode = engine.config.mode;
    let local_updates = engine.config.local_updates;
    let reschedule_policy = engine.config.scenario.churn.map(|c| c.offload_policy);
    let profile_window = match engine.strategy {
        Strategy::Aergia { profile_batches, .. } => profile_batches.min(local_updates),
        _ => 0,
    };
    let (similarity_factor, op_variant) = match engine.strategy {
        Strategy::Aergia { similarity_factor, op_variant, .. } => (similarity_factor, op_variant),
        _ => (0.0, scheduler::OpVariant::Unimodal),
    };

    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut rclients = RTable::new();

    // Federator round state.
    let mut reports: HashMap<usize, ProfileReport> = HashMap::new();
    let mut schedule_sent = false;
    let mut updates: Vec<UpdateArrival> = Vec::new();
    let mut offload_results: Vec<OffloadResultArrival> = Vec::new();
    let mut offloads_activated: Vec<(usize, usize)> = Vec::new();

    // Frame sizes for this round, derived from shapes and codec policy
    // alone — the event stage charges transfers before any value exists.
    let sizes = engine.wire.round_sizes();

    // Encode the round's broadcast. The frame is real (its encoded length
    // must match the size the clock is charged), and its reconstruction —
    // identical for every receiver — becomes the round base all other
    // streams diff against. Timing mode only advances the stream position.
    let broadcast_span = aergia_telemetry::span!("round.broadcast", round = round);
    let round_base: Option<Vec<Tensor>> = if mode == Mode::Real {
        let (frame, view) = engine.broadcast_global();
        debug_assert_eq!(frame.wire_len(), sizes.start_round, "broadcast frame size drifted");
        // Kick off: ship the encoded global model to every participant —
        // one frame, Arc-shared across the fan-out.
        let frame = std::sync::Arc::new(frame);
        for &p in participants {
            let msg = Message::StartRound { round, payload: Some(frame.clone()) };
            let size = msg.wire_size(&sizes);
            if let Delivery::After(d) = engine.network.send(NodeId::FEDERATOR, node(p), size) {
                queue.push(start + d, Ev::Deliver(Dest::Client(p), msg));
            }
        }
        Some(view)
    } else {
        engine.wire.note_broadcast();
        for &p in participants {
            let msg = Message::StartRound { round, payload: None };
            let size = msg.wire_size(&sizes);
            if let Delivery::After(d) = engine.network.send(NodeId::FEDERATOR, node(p), size) {
                queue.push(start + d, Ev::Deliver(Dest::Client(p), msg));
            }
        }
        None
    };
    drop(broadcast_span);

    // Helper: enqueue a message through the network (drops vanish).
    // Client-originated weight payloads carry `None` in the event stage —
    // the tensors they stand for are only produced by the execution stage
    // afterwards — but are charged their exact frame size regardless.
    macro_rules! send {
        ($now:expr, $from:expr, $to:expr, $dest:expr, $msg:expr) => {{
            let msg = $msg;
            let size = msg.wire_size(&sizes);
            if let Delivery::After(d) = engine.network.send($from, $to, size) {
                queue.push($now + d, Ev::Deliver($dest, msg));
            }
        }};
    }

    // Helper: run Aergia's scheduler once every live participant has
    // reported. Crashes close the client's connection, so the federator
    // detects the loss promptly and removes it from the wait set — a
    // participant crashing inside its profile window therefore delays the
    // schedule only until the remaining reports land, instead of stalling
    // it forever.
    macro_rules! try_schedule {
        ($now:expr) => {{
            if !schedule_sent
                && profile_window > 0
                && participants.iter().all(|p| reports.contains_key(p) || rclients[*p].crashed)
            {
                schedule_sent = true;
                let perfs: Vec<ClientPerf> = participants
                    .iter()
                    .filter_map(|&p| {
                        reports.get(&p).map(|r| ClientPerf {
                            id: p,
                            t123: r.t123(),
                            t4: r.t4(),
                            feature_only: r.feature_only_batch(),
                            remaining: r.remaining_updates,
                        })
                    })
                    .collect();
                if !perfs.is_empty() {
                    let schedule = scheduler::schedule(
                        &perfs,
                        &engine.similarity,
                        similarity_factor,
                        op_variant,
                    );
                    for assignment in schedule.assignments {
                        let signed =
                            SignedAssignment::sign(engine.federator_secret, round, assignment);
                        send!(
                            $now,
                            NodeId::FEDERATOR,
                            node(assignment.sender),
                            Dest::Client(assignment.sender),
                            Message::Schedule(signed)
                        );
                        send!(
                            $now,
                            NodeId::FEDERATOR,
                            node(assignment.receiver),
                            Dest::Client(assignment.receiver),
                            Message::ScheduleNotice(signed)
                        );
                    }
                }
            }
        }};
    }

    // Helper: federator-side crash fallout, run when a participant dies.
    // Beyond unblocking the scheduler, a crashed *receiver* takes its
    // straggler's offload down with it — unless the churn policy says to
    // reschedule, in which case the federator reassigns the remaining
    // batches to the fastest alive participant not already serving an
    // offload (lower id on speed ties) and the straggler re-ships its
    // frozen snapshot.
    macro_rules! handle_crash {
        ($c:expr, $now:expr) => {{
            let c: usize = $c;
            try_schedule!($now);
            let pending = match &rclients[c].notice {
                Some(signed) if rclients[c].offload_remaining > 0 => {
                    Some((signed.assignment.sender, rclients[c].offload_remaining))
                }
                _ => None,
            };
            if let Some((weak, remaining)) = pending {
                if reschedule_policy == Some(OffloadPolicy::Reschedule) && !rclients[weak].crashed {
                    let candidate = participants
                        .iter()
                        .copied()
                        .filter(|&p| {
                            p != c
                                && p != weak
                                && rclients[p].active
                                && !rclients[p].crashed
                                && !rclients[p].frozen
                                && rclients[p].notice.is_none()
                        })
                        .max_by(|&a, &b| {
                            engine.clients[a]
                                .cpu
                                .speed()
                                .total_cmp(&engine.clients[b].cpu.speed())
                                .then(b.cmp(&a)) // lower id wins speed ties
                        });
                    if let Some(r2) = candidate {
                        let assignment = scheduler::Assignment {
                            sender: weak,
                            receiver: r2,
                            offload_batches: remaining,
                            estimated_ct: 0.0,
                        };
                        let signed =
                            SignedAssignment::sign(engine.federator_secret, round, assignment);
                        offloads_activated.push((weak, r2));
                        send!(
                            $now,
                            NodeId::FEDERATOR,
                            node(r2),
                            Dest::Client(r2),
                            Message::ScheduleNotice(signed)
                        );
                        send!(
                            $now,
                            node(weak),
                            node(r2),
                            Dest::Client(r2),
                            Message::OffloadModel { round, from: weak, payload: None }
                        );
                    }
                }
            }
        }};
    }

    let events_span = aergia_telemetry::span!("round.events", round = round);
    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::Deliver(Dest::Client(c), Message::StartRound { round: r, .. }) => {
                if r != round {
                    continue; // stale start (cannot happen without faults)
                }
                let rc = &mut rclients[c];
                rc.active = true;
                if profile_window > 0 {
                    rc.profiler = Some(OnlineProfiler::new(profile_window));
                }
                queue.push(now + engine.clients[c].full_batch(), Ev::BatchDone(c));
            }

            Ev::BatchDone(c) => {
                if rclients[c].crashed {
                    continue;
                }
                if crashes_now(crash_after.get(c).copied().flatten(), &mut rclients[c]) {
                    telemetry::record_crash(round, c, now.as_micros());
                    handle_crash!(c, now);
                    continue;
                }
                let rc = &mut rclients[c];
                rc.batches_done += 1;

                // Online profiling (§4.2): record the virtual per-phase
                // cost; report to the federator when the window fills.
                let mut report_now = false;
                if let Some(prof) = &mut rc.profiler {
                    if prof.record(engine.clients[c].phase_secs) {
                        report_now = true;
                    }
                }
                if report_now {
                    let report = ProfileReport {
                        round,
                        per_batch: rc.profiler.as_ref().expect("just recorded").per_batch(),
                        remaining_updates: local_updates - rc.batches_done,
                    };
                    send!(
                        now,
                        node(c),
                        NodeId::FEDERATOR,
                        Dest::Federator,
                        Message::Profile { client: c, report }
                    );
                }

                if rc.batches_done >= local_updates {
                    rc.own_done = true;
                    send!(
                        now,
                        node(c),
                        NodeId::FEDERATOR,
                        Dest::Federator,
                        Message::ClientUpdate {
                            round,
                            client: c,
                            payload: None,
                            num_samples: engine.clients[c].shard_len,
                            tau: rc.batches_done,
                        }
                    );
                    if can_start_offload(&rclients[c]) {
                        start_offload(&mut rclients[c], &mut queue, engine, c, now);
                    }
                } else {
                    let dur = if rc.frozen {
                        engine.clients[c].frozen_batch()
                    } else {
                        engine.clients[c].full_batch()
                    };
                    queue.push(now + dur, Ev::BatchDone(c));
                }
            }

            Ev::Deliver(Dest::Federator, Message::Profile { client, report }) => {
                if report.round != round {
                    continue;
                }
                // The federator's view of the cluster's phase costs
                // (virtual seconds, so the histograms are seed-pure).
                telemetry::PROFILE_T123.observe(report.t123());
                telemetry::PROFILE_T4.observe(report.t4());
                reports.insert(client, report);
                try_schedule!(now);
            }

            Ev::Deliver(Dest::Client(c), Message::Schedule(signed)) => {
                // §4.1: signatures + sequence numbers make late or forged
                // scheduling messages harmless.
                if !signed.verify(engine.federator_secret, round) {
                    continue;
                }
                let rc = &mut rclients[c];
                if !rc.active || rc.own_done || rc.frozen {
                    continue; // too late to benefit from freezing
                }
                rc.frozen = true;
                rc.frozen_at = Some(rc.batches_done);
                offloads_activated.push((c, signed.assignment.receiver));
                send!(
                    now,
                    node(c),
                    node(signed.assignment.receiver),
                    Dest::Client(signed.assignment.receiver),
                    Message::OffloadModel { round, from: c, payload: None }
                );
            }

            Ev::Deliver(Dest::Client(c), Message::ScheduleNotice(signed)) => {
                if !signed.verify(engine.federator_secret, round) || rclients[c].crashed {
                    continue;
                }
                let rc = &mut rclients[c];
                rc.notice = Some(signed);
                rc.offload_remaining = signed.assignment.offload_batches;
                if can_start_offload(&rclients[c]) {
                    start_offload(&mut rclients[c], &mut queue, engine, c, now);
                }
            }

            Ev::Deliver(Dest::Client(c), Message::OffloadModel { round: r, from, .. }) => {
                if r != round || rclients[c].crashed {
                    continue;
                }
                rclients[c].offload_from = Some(from);
                if can_start_offload(&rclients[c]) {
                    start_offload(&mut rclients[c], &mut queue, engine, c, now);
                }
            }

            Ev::OffloadBatchDone(c) => {
                if rclients[c].crashed {
                    continue;
                }
                if crashes_now(crash_after.get(c).copied().flatten(), &mut rclients[c]) {
                    telemetry::record_crash(round, c, now.as_micros());
                    rclients[c].offload_running = false;
                    handle_crash!(c, now);
                    continue;
                }
                let rc = &mut rclients[c];
                rc.offload_batches_run += 1;
                rc.offload_remaining -= 1;
                if rc.offload_remaining == 0 {
                    rc.offload_running = false;
                    let weak = rc.offload_from.expect("offload in progress");
                    send!(
                        now,
                        node(c),
                        NodeId::FEDERATOR,
                        Dest::Federator,
                        Message::OffloadedResult { round, weak, payload: None }
                    );
                } else {
                    queue.push(now + engine.clients[c].feature_batch(), Ev::OffloadBatchDone(c));
                }
            }

            Ev::Deliver(
                Dest::Federator,
                Message::ClientUpdate { round: r, client, num_samples, tau, .. },
            ) => {
                if r != round {
                    continue;
                }
                updates.push(UpdateArrival {
                    client,
                    weights: None,
                    num_samples,
                    tau,
                    arrived: now,
                });
            }

            Ev::Deliver(Dest::Federator, Message::OffloadedResult { round: r, weak, .. }) => {
                if r != round {
                    continue;
                }
                offload_results.push(OffloadResultArrival { weak, features: None, arrived: now });
            }

            // Remaining combinations are protocol violations; in a
            // simulation they indicate a bug, so surface them loudly.
            Ev::Deliver(dest, msg) => {
                unreachable!("unexpected message {msg:?} delivered to {dest:?}")
            }
        }
    }
    drop(events_span);

    // The event trace is complete: derive every client's numeric workload
    // and (real mode) execute it, possibly in parallel.
    let losses = if mode == Mode::Real {
        let mut plans: HashMap<usize, ClientPlan> = rclients
            .map
            .iter()
            .map(|(&c, rc)| {
                let plan = ClientPlan {
                    own_batches: rc.batches_done,
                    freeze_after: rc.frozen_at,
                    snapshot_wanted: false,
                    // A crashed receiver's partial feature training is
                    // censored with it — and must not consume the
                    // straggler's snapshot, which a rescheduled receiver
                    // may still need.
                    offload: rc
                        .offload_from
                        .filter(|_| rc.offload_batches_run > 0 && !rc.crashed)
                        .map(|weak| OffloadPlan { weak, batches: rc.offload_batches_run }),
                };
                (c, plan)
            })
            .collect();
        let wanted: Vec<usize> = plans.values().filter_map(|p| p.offload.map(|o| o.weak)).collect();
        for weak in wanted {
            plans.entry(weak).or_default().snapshot_wanted = true;
        }
        // A crashed client's update never reaches the federator, so its
        // numeric training only executes when its frozen snapshot feeds a
        // surviving offload.
        for (&c, plan) in plans.iter_mut() {
            if rclients[c].crashed && !plan.snapshot_wanted {
                plan.own_batches = 0;
                plan.freeze_after = None;
            }
        }
        let base = round_base.as_deref().expect("real mode always decodes a broadcast");
        execute_plans(
            engine,
            round,
            participants,
            &plans,
            &mut updates,
            &mut offload_results,
            base,
            &sizes,
            transport,
        )?
    } else {
        Vec::new()
    };

    // Round duration: from the start of the round to the last message the
    // federator waits for (§2.4), capped by the strategy's deadline.
    let last_arrival = updates
        .iter()
        .map(|u| u.arrived)
        .chain(offload_results.iter().map(|o| o.arrived))
        .max()
        .unwrap_or(start);
    let mut duration = last_arrival - start;
    if let Some(deadline) = engine.deadline() {
        duration = duration.min(deadline);
    }

    // A participant is dropped if its update missed the cutoff — or, in
    // real mode, if the transport never delivered its trained weights (a
    // remote client that died mid-round).
    let cutoff = start + duration;
    let arrived: HashSet<usize> = updates
        .iter()
        .filter(|u| u.arrived <= cutoff && (mode == Mode::Timing || u.weights.is_some()))
        .map(|u| u.client)
        .collect();
    let dropped: Vec<usize> =
        participants.iter().copied().filter(|p| !arrived.contains(p)).collect();

    Ok(RoundOutcome {
        start,
        duration,
        updates,
        offload_results,
        offloads_activated,
        dropped,
        losses,
    })
}

/// Executes the round's numeric training per the recorded plans —
/// through the round's [`Transport`] — and attaches the resulting
/// tensors to the federator's arrivals.
///
/// Stage 1 trains every participant's own batches (capturing the frozen
/// snapshot where a receiver needs it); stage 2 — after a barrier,
/// because receivers consume stage-1 snapshots — trains the offloaded
/// feature sections. Within one client the batcher/optimizer order (own
/// batches, then offloaded batches) matches the virtual event order
/// exactly, so results are independent of where and how concurrently the
/// orders execute.
///
/// Every weight hand-off passes through the wire codec exactly as the
/// protocol ships it: clients train from `round_base` (the decoded
/// broadcast), offload snapshots are encoded/decoded between stages, and
/// the fold phase encodes each upload so the federator aggregates what
/// the wire delivered — bit-identical to the unencoded values under the
/// dense codec, lossy under the others. All codec calls happen here on
/// the federator side — at round start, between the stages, and in the
/// fixed-order fold — never inside the transport — so delta/residual
/// state updates are ordered deterministically whatever the transport's
/// thread pool (or remote cluster) did.
///
/// A missing reply means the transport lost that participant: its
/// arrival keeps `weights: None` / `features: None`, the client counts
/// as dropped (or its offload recombination is skipped), and the round
/// completes with everyone else. Its uplink residual does not advance —
/// no upload crossed the wire.
#[allow(clippy::too_many_arguments)] // round plumbing, called from one site
fn execute_plans(
    engine: &mut Engine,
    round: u32,
    participants: &[usize],
    plans: &HashMap<usize, ClientPlan>,
    updates: &mut [UpdateArrival],
    offload_results: &mut [OffloadResultArrival],
    round_base: &[Tensor],
    sizes: &RoundWireSizes,
    transport: &mut dyn Transport,
) -> Result<Vec<f32>, EngineError> {
    // Optimizers must be built before `engine.clients` is mutably split.
    // FedProx anchors to the round base — the global model as received.
    let opts: Vec<Sgd> = participants.iter().map(|_| engine.make_optimizer(round_base)).collect();
    let parallelism = engine.config.parallelism;

    // Stage 1: every client's own local training, from the weights the
    // broadcast actually delivered.
    let mut losses = Vec::new();
    let mut final_weights: HashMap<usize, Vec<Tensor>> = HashMap::new();
    let mut opts_back: HashMap<usize, Sgd> = HashMap::new();
    let mut replied: HashSet<usize> = HashSet::new();
    let mut raw_snapshots: Vec<(usize, Vec<Tensor>)> = Vec::new();
    {
        let _train_span = aergia_telemetry::span!("round.train", round = round);
        let ctx = RoundContext {
            round,
            round_base,
            parallelism,
            train: &engine.train,
            template: &engine.template,
        };
        // Batchers and workspace slots live in the cohort pool, which
        // `begin_round` stocked for every participant — memory follows
        // actual participation, not population size. A workspace
        // materialises the first time its slot trains.
        let mut handles = engine.pool.handles();
        let mut orders: Vec<TrainOrder<'_>> = Vec::new();
        for (&p, opt) in participants.iter().zip(opts) {
            let plan = plans.get(&p).copied().unwrap_or_default();
            if plan.own_batches == 0 {
                continue;
            }
            let (batcher, workspace) =
                handles.remove(&p).expect("begin_round admits every participant");
            orders.push(TrainOrder {
                client: p,
                own_batches: plan.own_batches,
                freeze_after: plan.freeze_after,
                snapshot_wanted: plan.snapshot_wanted,
                opt,
                batcher,
                workspace,
            });
        }
        // Fold replies in participant order (the transport preserves
        // relative order) — fixed, whatever its thread pool did.
        for reply in transport.train_participants(&ctx, orders)? {
            losses.extend(reply.losses);
            replied.insert(reply.client);
            final_weights.insert(reply.client, reply.weights);
            if let Some(opt) = reply.opt {
                opts_back.insert(reply.client, opt);
            }
            if let Some(snapshot) = reply.snapshot {
                raw_snapshots.push((reply.client, snapshot));
            }
        }
    }

    // Stage 2: offloaded feature training on the receivers (barrier: the
    // straggler snapshots come out of stage 1). Each snapshot crosses the
    // client-to-client wire, so the receiver trains what the codec
    // delivered, not the sender's exact weights.
    let mut snapshots: HashMap<usize, Vec<Tensor>> = raw_snapshots
        .into_iter()
        .map(|(id, s)| {
            let (frame, delivered) = engine.wire.encode_snapshot(&s, round_base);
            debug_assert_eq!(frame.wire_len(), sizes.offload_model, "snapshot frame size drifted");
            (id, delivered)
        })
        .collect();
    let mut features: HashMap<usize, Vec<Tensor>> = HashMap::new();
    {
        let _offload_span = aergia_telemetry::span!("round.offload_train", round = round);
        let ctx = RoundContext {
            round,
            round_base,
            parallelism,
            train: &engine.train,
            template: &engine.template,
        };
        let mut handles = engine.pool.handles();
        let mut orders: Vec<OffloadOrder<'_>> = Vec::new();
        for &p in participants {
            let Some(offload) = plans.get(&p).and_then(|plan| plan.offload) else { continue };
            // The receiver or the straggler may have been lost in stage 1
            // (a remote client dying); the offload then silently lapses
            // and the straggler's own (frozen) update stands alone.
            if !replied.contains(&p) {
                continue;
            }
            let Some(snapshot) = snapshots.remove(&offload.weak) else { continue };
            let (batcher, workspace) =
                handles.remove(&p).expect("begin_round admits every participant");
            orders.push(OffloadOrder {
                receiver: p,
                weak: offload.weak,
                batches: offload.batches,
                snapshot,
                opt: opts_back.remove(&p),
                batcher,
                workspace,
            });
        }
        for reply in transport.train_offloads(&ctx, orders)? {
            features.insert(reply.weak, reply.features);
        }
    }

    // Uplinks cross the wire here, in fixed arrival order: the federator
    // aggregates the decoded reconstructions, and each client's
    // error-feedback residual advances exactly once per upload.
    let _upload_span = aergia_telemetry::span!("round.upload", round = round);
    for update in updates.iter_mut() {
        let Some(mut trained) = final_weights.remove(&update.client) else { continue };
        // Byzantine clients poison the update they hand to the uplink —
        // after honest local training, before the wire. The codec and the
        // shape-only frame sizing are untouched, so the virtual clock
        // cannot tell an adversary from an honest client.
        if let Some(attack) = engine.config.scenario.attack_for(update.client) {
            telemetry::record_byzantine(round, update.client);
            apply_attack(
                &mut trained,
                round_base,
                attack,
                engine.config.seed,
                round,
                update.client,
            );
        }
        let (frame, delivered) = engine.wire.encode_update(update.client, &trained, round_base);
        debug_assert_eq!(frame.wire_len(), sizes.client_update, "update frame size drifted");
        update.weights = Some(delivered);
    }
    let feature_tensors = engine.wire.feature_tensors;
    for result in offload_results.iter_mut() {
        let Some(trained) = features.remove(&result.weak) else { continue };
        let (frame, delivered) =
            engine.wire.encode_features(&trained, &round_base[..feature_tensors]);
        debug_assert_eq!(frame.wire_len(), sizes.offload_result, "feature frame size drifted");
        result.features = Some(delivered);
    }
    Ok(losses)
}

/// Applies a Byzantine perturbation to `weights` in place, relative to
/// `base` (the round's decoded broadcast — the model the adversary also
/// received). Noise draws come from a stream seeded by
/// `(seed, round, client)` alone, so the attack is a pure function of
/// the configuration — identical across parallelism settings and
/// transports.
fn apply_attack(
    weights: &mut [Tensor],
    base: &[Tensor],
    attack: Attack,
    seed: u64,
    round: u32,
    client: usize,
) {
    match attack {
        Attack::SignFlip => {
            // w ← base − (w − base): reverse the client's learning step.
            for (w, b) in weights.iter_mut().zip(base) {
                let d = w.sub(b);
                *w = b.clone();
                w.axpy(-1.0, &d);
            }
        }
        Attack::ScaledNoise { scale } => {
            let mut rng = StdRng::seed_from_u64(
                seed ^ 0xb12a_b12a ^ (u64::from(round) << 32) ^ client as u64,
            );
            for (w, b) in weights.iter_mut().zip(base) {
                let mut noise = Tensor::zeros(b.dims());
                init::normal(&mut noise, &mut rng, 0.0, scale);
                *w = b.clone();
                w.add_assign(&noise);
            }
        }
    }
}

fn can_start_offload(rc: &RClient) -> bool {
    rc.own_done
        && !rc.offload_running
        && rc.offload_remaining > 0
        && rc.notice.is_some()
        && rc.offload_from.is_some()
}

fn start_offload(
    rc: &mut RClient,
    queue: &mut EventQueue<Ev>,
    engine: &Engine,
    c: usize,
    now: SimTime,
) {
    rc.offload_running = true;
    queue.push(now + engine.clients[c].feature_batch(), Ev::OffloadBatchDone(c));
}
