//! TiFL's tier-based, adaptive client selection (Chai et al., HPDC 2020).
//!
//! Clients are grouped into speed tiers from offline profiling; each round
//! the federator draws one tier and selects clients within it, which
//! equalizes intra-round completion times. Tier choice is adaptive: tiers
//! whose participation last produced *lower* global accuracy are favoured
//! (they hold under-represented data), subject to per-tier credits that
//! bound how often a tier can be drawn.

use aergia_simnet::cluster::tier_indices;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt as _, SeedableRng};

/// Federator-side TiFL state.
#[derive(Debug)]
pub(crate) struct TiflState {
    tiers: Vec<Vec<usize>>,
    credits: Vec<u32>,
    accuracy: Vec<f64>,
    last_selected: Option<usize>,
    rng: StdRng,
    /// Reusable shuffle buffer so per-round selection never clones a whole
    /// tier membership list.
    scratch: Vec<usize>,
}

/// Per-tier participation budget. TiFL derives it from the round budget;
/// we use a generous constant so credits only bite in long runs.
const CREDITS_PER_TIER: u32 = 400;

/// The serializable slice of [`TiflState`] (see [`TiflState::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TiflSnapshot {
    pub(crate) credits: Vec<u32>,
    pub(crate) accuracy: Vec<f64>,
    pub(crate) last_selected: Option<usize>,
    pub(crate) rng: [u64; 4],
}

impl TiflState {
    /// Groups `speeds` into `tiers` rank-based tiers.
    pub(crate) fn new(speeds: &[f64], tiers: usize, seed: u64) -> Self {
        let tiers = tier_indices(speeds, tiers.max(1).min(speeds.len()));
        let n = tiers.len();
        TiflState {
            tiers,
            credits: vec![CREDITS_PER_TIER; n],
            accuracy: vec![f64::NAN; n],
            last_selected: None,
            rng: StdRng::seed_from_u64(seed),
            scratch: Vec::new(),
        }
    }

    /// Picks the round's tier and up to `k` clients within it.
    pub(crate) fn select(&mut self, k: usize) -> Vec<usize> {
        let eligible: Vec<usize> = (0..self.tiers.len())
            .filter(|&t| self.credits[t] > 0 && !self.tiers[t].is_empty())
            .collect();
        let pool: Vec<usize> = if eligible.is_empty() {
            (0..self.tiers.len()).filter(|&t| !self.tiers[t].is_empty()).collect()
        } else {
            eligible
        };

        // Adaptive probabilities: weight ∝ (A* − A_t + ε); unknown tiers
        // (never selected) get the maximal weight so every tier is probed.
        let known_max =
            self.accuracy.iter().copied().filter(|a| a.is_finite()).fold(0.0_f64, f64::max);
        let weights: Vec<f64> = pool
            .iter()
            .map(|&t| {
                let a = self.accuracy[t];
                if a.is_finite() {
                    (known_max - a).max(0.0) + 0.05
                } else {
                    known_max + 0.05
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut draw = self.rng.random_range(0.0..total);
        let mut tier = pool[pool.len() - 1];
        for (&t, &w) in pool.iter().zip(&weights) {
            if draw < w {
                tier = t;
                break;
            }
            draw -= w;
        }

        if self.credits[tier] > 0 {
            self.credits[tier] -= 1;
        }
        self.last_selected = Some(tier);

        // Shuffle in the persistent scratch buffer (identical RNG
        // consumption to shuffling a clone) and materialise only the
        // k-sized selection.
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.tiers[tier]);
        self.scratch.shuffle(&mut self.rng);
        self.scratch.truncate(k.max(1));
        let mut members = self.scratch.clone();
        members.sort_unstable();
        members
    }

    /// Number of speed tiers.
    pub(crate) fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// Captures the adaptive-selection state for a resumable checkpoint
    /// (the tier partition itself is rebuilt from the configuration).
    pub(crate) fn snapshot(&self) -> TiflSnapshot {
        TiflSnapshot {
            credits: self.credits.clone(),
            accuracy: self.accuracy.clone(),
            last_selected: self.last_selected,
            rng: self.rng.state(),
        }
    }

    /// Restores the state captured by [`TiflState::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's tier count differs from this state's —
    /// the snapshot came from a different configuration.
    pub(crate) fn restore(&mut self, snapshot: TiflSnapshot) {
        assert_eq!(snapshot.credits.len(), self.tiers.len(), "TiflState::restore: tier count");
        assert_eq!(snapshot.accuracy.len(), self.tiers.len(), "TiflState::restore: tier count");
        self.credits = snapshot.credits;
        self.accuracy = snapshot.accuracy;
        self.last_selected = snapshot.last_selected;
        self.rng = rand::rngs::StdRng::from_state(snapshot.rng);
    }

    /// Records the global accuracy observed after the last selected tier's
    /// round (NaN observations — timing mode — leave the state untouched).
    pub(crate) fn observe_accuracy(&mut self, accuracy: f64) {
        if let Some(t) = self.last_selected {
            if accuracy.is_finite() {
                self.accuracy[t] = accuracy;
            }
        }
    }

    /// The tier partition (weakest first) — exposed for tests.
    #[cfg(test)]
    pub(crate) fn tiers(&self) -> &[Vec<usize>] {
        &self.tiers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speeds() -> Vec<f64> {
        vec![0.1, 0.9, 0.2, 0.8, 0.3, 0.7, 0.4, 0.6, 0.5, 1.0]
    }

    #[test]
    fn tiers_partition_all_clients() {
        let state = TiflState::new(&speeds(), 5, 0);
        let total: usize = state.tiers().iter().map(|t| t.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(state.tiers().len(), 5);
        // Weakest tier contains the two slowest clients (ids 0 and 2).
        assert_eq!(state.tiers()[0], vec![0, 2]);
    }

    #[test]
    fn selection_returns_members_of_one_tier() {
        let mut state = TiflState::new(&speeds(), 5, 1);
        for _ in 0..20 {
            let picked = state.select(2);
            assert!(!picked.is_empty() && picked.len() <= 2);
            let tier = state
                .tiers()
                .iter()
                .position(|t| picked.iter().all(|p| t.contains(p)))
                .expect("selection spans multiple tiers");
            assert!(tier < 5);
        }
    }

    #[test]
    fn low_accuracy_tiers_are_favoured() {
        let mut state = TiflState::new(&speeds(), 2, 2);
        // Probe both tiers once.
        let mut seen = [false; 2];
        for _ in 0..10 {
            let picked = state.select(5);
            let tier = if picked.iter().all(|p| state.tiers()[0].contains(p)) { 0 } else { 1 };
            seen[tier] = true;
            // Tier 0 performs terribly, tier 1 perfectly.
            state.observe_accuracy(if tier == 0 { 0.1 } else { 0.99 });
            if seen[0] && seen[1] {
                break;
            }
        }
        assert!(seen[0] && seen[1], "both tiers should be probed");
        // After learning, the weak tier dominates selection.
        let mut weak = 0;
        for _ in 0..50 {
            let picked = state.select(5);
            if picked.iter().all(|p| state.tiers()[0].contains(p)) {
                weak += 1;
                state.observe_accuracy(0.1);
            } else {
                state.observe_accuracy(0.99);
            }
        }
        assert!(weak > 30, "weak tier picked only {weak}/50 times");
    }

    #[test]
    fn selection_is_deterministic_per_seed() {
        let mut a = TiflState::new(&speeds(), 3, 7);
        let mut b = TiflState::new(&speeds(), 3, 7);
        for _ in 0..5 {
            assert_eq!(a.select(3), b.select(3));
        }
    }

    #[test]
    fn nan_observation_is_ignored() {
        let mut state = TiflState::new(&speeds(), 2, 3);
        state.select(2);
        state.observe_accuracy(f64::NAN);
        assert!(state.accuracy.iter().all(|a| a.is_nan()));
    }
}
