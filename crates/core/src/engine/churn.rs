//! Seeded client-churn state: availability evolution and crash draws.
//!
//! Churn is evaluated entirely on the federator side of the simulation,
//! from one dedicated RNG stream (`seed ^ 0x6368_7572`, "chur"), so a
//! churn run is a pure function of the configuration: availability is
//! re-drawn at every round boundary in fixed client order, then crash
//! points are drawn for the selected participants in ascending id order.
//! The stream advances the same way whether the round later executes
//! serially, in parallel, or over TCP — churn therefore inherits the
//! workspace determinism contract for free.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::scenario::ChurnConfig;

/// Mutable churn state carried by the engine across rounds (and through
/// checkpoints — see the `CHRN` chunk).
pub(crate) struct ChurnState {
    pub(crate) cfg: ChurnConfig,
    /// Availability flag per client, evolved at round boundaries.
    pub(crate) available: Vec<bool>,
    pub(crate) rng: StdRng,
}

impl ChurnState {
    pub(crate) fn new(cfg: ChurnConfig, num_clients: usize, seed: u64) -> Self {
        ChurnState {
            cfg,
            available: vec![true; num_clients],
            rng: StdRng::seed_from_u64(seed ^ 0x6368_7572), // "chur"
        }
    }

    /// Evolves availability at a round boundary: every available client
    /// leaves with `leave_prob`, every absent client rejoins with
    /// `rejoin_prob`. Exactly one draw per client, in id order.
    pub(crate) fn begin_round(&mut self) {
        for slot in self.available.iter_mut() {
            *slot = if *slot {
                !self.rng.random_bool(self.cfg.leave_prob)
            } else {
                self.rng.random_bool(self.cfg.rejoin_prob)
            };
        }
    }

    /// Ids currently available for selection, ascending.
    pub(crate) fn available_ids(&self) -> Vec<usize> {
        (0..self.available.len()).filter(|&id| self.available[id]).collect()
    }

    /// Draws this round's crash points: for each participant (ascending
    /// id), with `crash_prob` the client dies when its `n`-th batch event
    /// of the round fires (own and offloaded batches both count), for a
    /// uniformly drawn `n` in `1..=max_batches`. Returns one slot per
    /// cluster client.
    pub(crate) fn draw_crashes(
        &mut self,
        participants: &[usize],
        max_batches: u32,
    ) -> Vec<Option<u32>> {
        let mut plan = vec![None; self.available.len()];
        let max = max_batches.max(1);
        for &p in participants {
            if self.rng.random_bool(self.cfg.crash_prob) {
                plan[p] = Some(self.rng.random_range(1..=max));
            }
        }
        plan
    }

    pub(crate) fn snapshot(&self) -> (Vec<bool>, [u64; 4]) {
        (self.available.clone(), self.rng.state())
    }

    pub(crate) fn restore(&mut self, available: Vec<bool>, rng: [u64; 4]) {
        debug_assert_eq!(available.len(), self.available.len());
        self.available = available;
        self.rng = StdRng::from_state(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::OffloadPolicy;

    fn cfg(leave: f64, rejoin: f64, crash: f64) -> ChurnConfig {
        ChurnConfig {
            leave_prob: leave,
            rejoin_prob: rejoin,
            crash_prob: crash,
            offload_policy: OffloadPolicy::Drop,
        }
    }

    #[test]
    fn same_seed_replays_the_same_trace() {
        let mut a = ChurnState::new(cfg(0.3, 0.5, 0.4), 8, 42);
        let mut b = ChurnState::new(cfg(0.3, 0.5, 0.4), 8, 42);
        for _ in 0..20 {
            a.begin_round();
            b.begin_round();
            assert_eq!(a.available, b.available);
            let ids = a.available_ids();
            assert_eq!(ids, b.available_ids());
            assert_eq!(a.draw_crashes(&ids, 16), b.draw_crashes(&ids, 16));
        }
    }

    #[test]
    fn zero_probabilities_leave_everyone_alone() {
        let mut s = ChurnState::new(cfg(0.0, 1.0, 0.0), 5, 7);
        for _ in 0..10 {
            s.begin_round();
            assert_eq!(s.available_ids(), vec![0, 1, 2, 3, 4]);
            assert!(s.draw_crashes(&[0, 1, 2, 3, 4], 10).iter().all(Option::is_none));
        }
    }

    #[test]
    fn certain_leave_drains_and_certain_rejoin_refills() {
        let mut s = ChurnState::new(cfg(1.0, 1.0, 0.0), 3, 9);
        s.begin_round();
        assert!(s.available_ids().is_empty());
        s.begin_round();
        assert_eq!(s.available_ids(), vec![0, 1, 2]);
    }

    #[test]
    fn crash_points_stay_in_range() {
        let mut s = ChurnState::new(cfg(0.0, 1.0, 1.0), 4, 3);
        for _ in 0..50 {
            for point in s.draw_crashes(&[0, 1, 2, 3], 12).into_iter().flatten() {
                assert!((1..=12).contains(&point));
            }
        }
    }

    #[test]
    fn snapshot_restore_round_trips_the_stream() {
        let mut a = ChurnState::new(cfg(0.4, 0.4, 0.4), 6, 11);
        a.begin_round();
        let (avail, rng) = a.snapshot();
        let mut b = ChurnState::new(cfg(0.4, 0.4, 0.4), 6, 999);
        b.begin_round();
        b.restore(avail, rng);
        a.begin_round();
        b.begin_round();
        assert_eq!(a.available, b.available);
        assert_eq!(a.draw_crashes(&[0, 1], 8), b.draw_crashes(&[0, 1], 8));
    }
}
