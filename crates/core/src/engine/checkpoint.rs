//! Disk-backed, bit-exact checkpoint save/resume for a running
//! experiment.
//!
//! A checkpoint captures *everything mutable* about a run between two
//! rounds — the global weights (as a dense wire frame), every RNG stream
//! (selection, the resident clients' batchers, TiFL, network faults),
//! the client-state pool's membership and eviction memory, the wire
//! codec's delta bases and error-feedback residuals, the bytes odometer
//! and the per-round records so far — inside the
//! [`aergia_codec::checkpoint`] chunk container. Everything *immutable*
//! (datasets, partition, similarity matrix, model template, phase costs)
//! is regenerated deterministically by [`Engine::new`] from the same
//! configuration, so a checkpoint stays small: roughly one model plus
//! bookkeeping.
//!
//! The contract, pinned by `tests/checkpoint.rs`: kill a run anywhere
//! between rounds, rebuild a fresh engine from the same
//! config/strategy, [`Engine::restore_checkpoint`], resume — and every
//! subsequent round record, the final accuracy and the final global
//! weights match an uninterrupted run **bit for bit**, under every codec.
//!
//! Topology overrides (link models, speed overrides, fault injection)
//! are not part of engine state proper: rebuild the engine through
//! [`Engine::with_topology`] with the same
//! [`TopologyBuilder`](crate::topology::TopologyBuilder) before
//! restoring, exactly as the original run was constructed. The same goes
//! for mid-run transient-load changes applied through the deprecated
//! [`Engine::set_client_speed`] shim.

use std::error::Error;
use std::fmt;
use std::path::Path;

use aergia_codec::checkpoint::{ChunkReader, ChunkWriter};
use aergia_codec::io::{put_f64, put_u16, put_u32, put_u64, Reader};
use aergia_codec::{dense, CodecError, CodecId, Frame, FrameBuilder, SectionKind};
use aergia_data::batcher::BatcherState;
use aergia_simnet::{SimDuration, SimTime};
use aergia_tensor::Tensor;

use crate::config::ClientStateMode;
use crate::metrics::{RoundRecord, RunResult};
use crate::profiler::WorkspacePoolStats;

use super::{make_batcher, tifl::TiflSnapshot, Engine};

/// Where a run currently stands: the next round to execute, the virtual
/// clock, and everything recorded so far. Produced by
/// [`Engine::start_progress`], advanced by [`Engine::step_round`], carried
/// across a kill/restore by the checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct RunProgress {
    /// The next round [`Engine::step_round`] will execute.
    pub next_round: u32,
    /// Virtual time at which that round starts.
    pub now: SimTime,
    /// Pre-training cost charged before round 0.
    pub pretraining: SimDuration,
    /// Records of every completed round, in order.
    pub rounds: Vec<RoundRecord>,
}

/// Errors surfaced while restoring a checkpoint.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The buffer is not a valid checkpoint of this version.
    Codec(CodecError),
    /// The checkpoint belongs to a different configuration or strategy.
    Mismatch(&'static str),
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Codec(e) => write!(f, "checkpoint encoding error: {e}"),
            CheckpointError::Mismatch(what) => {
                write!(f, "checkpoint does not match this engine: {what}")
            }
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Codec(e) => Some(e),
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Mismatch(_) => None,
        }
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Codec(e)
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// Chunk tags.
const META: [u8; 4] = *b"META";
const GLOB: [u8; 4] = *b"GLOB";
const SRNG: [u8; 4] = *b"SRNG";
const NETW: [u8; 4] = *b"NETW";
const BTCH: [u8; 4] = *b"BTCH";
const TIFL: [u8; 4] = *b"TIFL";
const WDLB: [u8; 4] = *b"WDLB"; // wire: downlink base
const WUPR: [u8; 4] = *b"WUPR"; // wire: one client's uplink residual
const RNDS: [u8; 4] = *b"RNDS";
const CHRN: [u8; 4] = *b"CHRN"; // churn: availability flags + rng
const POOL: [u8; 4] = *b"POOL"; // client-state pool: clock + eviction memory
const COHT: [u8; 4] = *b"COHT"; // cohort layout fingerprint
const ENGV: [u8; 4] = *b"ENGV";

/// Version of the engine's chunk *bodies* (the container frames the
/// chunks; this versions what is inside them). v2 added the optional
/// `CHRN` chunk for scenario churn state. v3 moved `BTCH` chunks to the
/// client-state pool (one per *resident* client, prefixed with its id
/// and LRU stamp), added the `POOL` and `COHT` chunks, and extended the
/// round records with pool statistics.
const ENGINE_LAYOUT_VERSION: u16 = 3;

/// FNV-1a over the debug rendering of the config/strategy pair — enough
/// to catch restoring into the wrong experiment, which would otherwise
/// fail in silently-wrong ways. `parallelism` is excluded: the
/// determinism suite proves results are bit-identical across it, so a
/// checkpoint from an 8-way run must resume on a 1-core box.
fn config_fingerprint(engine: &Engine) -> u64 {
    let mut config = engine.config.clone();
    config.parallelism = 0;
    let text = format!("{:?}|{:?}", config, engine.strategy);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A full snapshot as a dense two-section frame (the same frames that
/// travel the wire — bit-exact by construction).
fn dense_frame(weights: &[Tensor], feature_tensors: usize) -> Frame {
    let (feat, clf) = weights.split_at(feature_tensors);
    let mut builder = FrameBuilder::new();
    builder.push_section(SectionKind::Features, CodecId::DenseF32, feat.len(), |out| {
        dense::encode_payload_into(feat, out);
    });
    builder.push_section(SectionKind::Classifier, CodecId::DenseF32, clf.len(), |out| {
        dense::encode_payload_into(clf, out);
    });
    builder.finish()
}

/// Decodes a [`dense_frame`] back into the flat tensor list.
fn frame_tensors(frame: &Frame) -> Result<Vec<Tensor>, CodecError> {
    let mut out = Vec::new();
    for section in frame.sections()? {
        if section.codec != CodecId::DenseF32 {
            return Err(CodecError::Corrupt("checkpoint frames must be dense"));
        }
        out.append(&mut dense::decode_payload(section.payload, section.tensor_count)?);
    }
    Ok(out)
}

fn put_rng(out: &mut Vec<u8>, state: [u64; 4]) {
    for s in state {
        put_u64(out, s);
    }
}

fn read_rng(r: &mut Reader<'_>) -> Result<[u64; 4], CodecError> {
    Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
}

fn encode_record(out: &mut Vec<u8>, record: &RoundRecord) {
    put_u32(out, record.round);
    put_u64(out, record.duration.as_micros());
    put_f64(out, record.test_accuracy);
    put_f64(out, record.train_loss);
    put_u64(out, record.bytes_on_wire);
    put_u32(out, record.participants.len() as u32);
    for &p in &record.participants {
        put_u32(out, p as u32);
    }
    put_u32(out, record.offloads.len() as u32);
    for &(s, r) in &record.offloads {
        put_u32(out, s as u32);
        put_u32(out, r as u32);
    }
    put_u32(out, record.dropped.len() as u32);
    for &d in &record.dropped {
        put_u32(out, d as u32);
    }
    put_u32(out, record.pool.hits);
    put_u32(out, record.pool.misses);
    put_u32(out, record.pool.rebuilds);
    put_u32(out, record.pool.evictions);
    put_u32(out, record.pool.resident_clients);
    put_u64(out, record.pool.resident_bytes);
}

fn decode_record(r: &mut Reader<'_>) -> Result<RoundRecord, CodecError> {
    let round = r.u32()?;
    let duration = SimDuration::from_micros(r.u64()?);
    let test_accuracy = r.f64()?;
    let train_loss = r.f64()?;
    let bytes_on_wire = r.u64()?;
    let read_ids = |r: &mut Reader<'_>| -> Result<Vec<usize>, CodecError> {
        let n = r.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(r.u32()? as usize);
        }
        Ok(out)
    };
    let participants = read_ids(r)?;
    let n = r.u32()? as usize;
    let mut offloads = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let s = r.u32()? as usize;
        let rr = r.u32()? as usize;
        offloads.push((s, rr));
    }
    let dropped = read_ids(r)?;
    let pool = WorkspacePoolStats {
        hits: r.u32()?,
        misses: r.u32()?,
        rebuilds: r.u32()?,
        evictions: r.u32()?,
        resident_clients: r.u32()?,
        resident_bytes: r.u64()?,
    };
    Ok(RoundRecord {
        round,
        duration,
        test_accuracy,
        train_loss,
        participants,
        offloads,
        dropped,
        bytes_on_wire,
        pool,
    })
}

impl Engine {
    /// Serializes the run's full mutable state between rounds.
    ///
    /// Pair with [`Engine::restore_checkpoint`] on a fresh engine built
    /// from the same configuration and strategy.
    pub fn save_checkpoint(&self, progress: &RunProgress) -> Vec<u8> {
        let feature_tensors = self.wire.feature_tensors;
        let mut w = ChunkWriter::new();

        let mut meta = Vec::new();
        put_u32(&mut meta, progress.next_round);
        put_u64(&mut meta, progress.now.as_micros());
        put_u64(&mut meta, progress.pretraining.as_micros());
        put_u32(&mut meta, self.config.num_clients as u32);
        put_u64(&mut meta, config_fingerprint(self));
        put_u64(&mut meta, self.wire.broadcasts);
        w.chunk(META, meta);

        w.frame_chunk(GLOB, &dense_frame(&self.global, feature_tensors));

        let mut srng = Vec::new();
        put_rng(&mut srng, self.select_rng.state());
        w.chunk(SRNG, srng);

        let (drop_prob, jitter, net_rng) = self.network.fault_state();
        let mut netw = Vec::new();
        put_f64(&mut netw, drop_prob);
        put_u64(&mut netw, jitter.as_micros());
        put_rng(&mut netw, net_rng);
        put_u64(&mut netw, self.network.bytes_delivered());
        w.chunk(NETW, netw);

        // One BTCH chunk per *resident* pool entry, in client-id order:
        // under cohort sampling only the ≤ `max_resident` clients with a
        // live draw stream are persisted, so checkpoint size follows the
        // pool cap, not the simulated population.
        for (client, stamp, batcher) in self.pool.snapshot_entries() {
            let state = batcher.state();
            let mut body = Vec::new();
            put_u32(&mut body, client as u32);
            put_u64(&mut body, stamp);
            put_u64(&mut body, state.cursor as u64);
            put_rng(&mut body, state.rng);
            put_u32(&mut body, state.indices.len() as u32);
            for &i in &state.indices {
                put_u32(&mut body, i as u32);
            }
            w.chunk(BTCH, body);
        }

        let (clock, evicted) = self.pool.snapshot_meta();
        let mut pool = Vec::new();
        put_u64(&mut pool, clock);
        put_u32(&mut pool, evicted.len() as u32);
        for e in evicted {
            put_u32(&mut pool, e as u32);
        }
        w.chunk(POOL, pool);

        let mut coht = Vec::new();
        put_u32(&mut coht, self.cohorts.num_edges() as u32);
        put_u64(&mut coht, self.cohorts.fingerprint());
        w.chunk(COHT, coht);

        if let Some(tifl) = &self.tifl {
            let snap = tifl.snapshot();
            let mut body = Vec::new();
            put_u32(&mut body, snap.credits.len() as u32);
            for &c in &snap.credits {
                put_u32(&mut body, c);
            }
            for &a in &snap.accuracy {
                put_f64(&mut body, a);
            }
            match snap.last_selected {
                Some(t) => {
                    body.push(1);
                    put_u32(&mut body, t as u32);
                }
                None => {
                    body.push(0);
                    put_u32(&mut body, 0);
                }
            }
            put_rng(&mut body, snap.rng);
            w.chunk(TIFL, body);
        }

        if let Some(base) = &self.wire.downlink_base {
            w.frame_chunk(WDLB, &dense_frame(base, feature_tensors));
        }
        for (client, residual) in self.wire.uplink_residual.iter().enumerate() {
            if let Some(residual) = residual {
                let mut body = Vec::new();
                put_u32(&mut body, client as u32);
                body.extend_from_slice(dense_frame(residual, feature_tensors).as_bytes());
                w.chunk(WUPR, body);
            }
        }

        if let Some(churn) = &self.churn {
            let (available, rng) = churn.snapshot();
            let mut body = Vec::new();
            put_u32(&mut body, available.len() as u32);
            for &a in &available {
                body.push(u8::from(a));
            }
            put_rng(&mut body, rng);
            w.chunk(CHRN, body);
        }

        let mut rnds = Vec::new();
        put_u32(&mut rnds, progress.rounds.len() as u32);
        for record in &progress.rounds {
            encode_record(&mut rnds, record);
        }
        w.chunk(RNDS, rnds);

        // Version marker of the *engine* state layout (the container has
        // its own); bump when chunks change incompatibly — restore rejects
        // anything else.
        let mut vers = Vec::new();
        put_u16(&mut vers, ENGINE_LAYOUT_VERSION);
        w.chunk(ENGV, vers);

        w.finish()
    }

    /// Writes [`Engine::save_checkpoint`] to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn save_checkpoint_to(
        &self,
        path: impl AsRef<Path>,
        progress: &RunProgress,
    ) -> Result<(), CheckpointError> {
        Ok(std::fs::write(path, self.save_checkpoint(progress))?)
    }

    /// Restores the state captured by [`Engine::save_checkpoint`] into
    /// this engine (freshly built from the same config and strategy) and
    /// returns the progress to resume from.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Codec`] on a malformed buffer and
    /// [`CheckpointError::Mismatch`] if the checkpoint belongs to a
    /// different experiment.
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<RunProgress, CheckpointError> {
        let chunks = ChunkReader::parse(bytes)?;

        let mut vers =
            Reader::new(chunks.get(ENGV).ok_or(CheckpointError::Mismatch("no layout version"))?);
        let layout = vers.u16()?;
        if layout != ENGINE_LAYOUT_VERSION {
            return Err(CheckpointError::Codec(CodecError::UnsupportedVersion(layout)));
        }

        let mut meta = Reader::new(chunks.get(META).ok_or(CheckpointError::Mismatch("no meta"))?);
        let next_round = meta.u32().map_err(CheckpointError::Codec)?;
        let now = SimTime::from_micros(meta.u64().map_err(CheckpointError::Codec)?);
        let pretraining = SimDuration::from_micros(meta.u64().map_err(CheckpointError::Codec)?);
        let num_clients = meta.u32().map_err(CheckpointError::Codec)? as usize;
        let fingerprint = meta.u64().map_err(CheckpointError::Codec)?;
        let broadcasts = meta.u64().map_err(CheckpointError::Codec)?;
        if num_clients != self.config.num_clients {
            return Err(CheckpointError::Mismatch("client count"));
        }
        if fingerprint != config_fingerprint(self) {
            return Err(CheckpointError::Mismatch("config/strategy fingerprint"));
        }
        if next_round > self.config.rounds {
            return Err(CheckpointError::Mismatch("round beyond configured horizon"));
        }

        let global = frame_tensors(&chunks.frame(GLOB)?)?;
        if global.len() != self.global.len() {
            return Err(CheckpointError::Mismatch("global snapshot structure"));
        }
        self.global = global;

        let mut srng = Reader::new(chunks.get(SRNG).ok_or(CheckpointError::Mismatch("no rng"))?);
        self.select_rng = rand::rngs::StdRng::from_state(read_rng(&mut srng)?);

        let mut netw =
            Reader::new(chunks.get(NETW).ok_or(CheckpointError::Mismatch("no network state"))?);
        let drop_prob = netw.f64()?;
        let jitter = SimDuration::from_micros(netw.u64()?);
        let net_rng = read_rng(&mut netw)?;
        let odometer = netw.u64()?;
        // Validate before handing off: the setters assert, and a corrupt
        // checkpoint must surface as an error, not a panic.
        if !(0.0..1.0).contains(&drop_prob) {
            return Err(CheckpointError::Mismatch("drop probability out of range"));
        }
        self.network.restore_fault_state(drop_prob, jitter, net_rng, odometer);

        let mut pool_r =
            Reader::new(chunks.get(POOL).ok_or(CheckpointError::Mismatch("no pool state"))?);
        let clock = pool_r.u64()?;
        let n_evicted = pool_r.u32()? as usize;
        let mut evicted = Vec::with_capacity(n_evicted.min(1 << 16));
        for _ in 0..n_evicted {
            evicted.push(pool_r.u32()? as usize);
        }

        let mut coht =
            Reader::new(chunks.get(COHT).ok_or(CheckpointError::Mismatch("no cohort layout"))?);
        let num_edges = coht.u32()? as usize;
        let layout_fp = coht.u64()?;
        if num_edges != self.cohorts.num_edges() || layout_fp != self.cohorts.fingerprint() {
            return Err(CheckpointError::Mismatch("cohort layout"));
        }

        let bodies = chunks.get_all(BTCH);
        match self.config.client_state {
            ClientStateMode::Resident => {
                if bodies.len() != self.config.num_clients {
                    return Err(CheckpointError::Mismatch("batcher count"));
                }
            }
            ClientStateMode::CohortSampled { max_resident } => {
                if bodies.len() > max_resident {
                    return Err(CheckpointError::Mismatch("resident count beyond pool capacity"));
                }
            }
        }
        let mut entries = Vec::with_capacity(bodies.len());
        let mut prev_client = None;
        for body in bodies {
            let mut r = Reader::new(body);
            let client = r.u32()? as usize;
            let stamp = r.u64()?;
            let cursor = r.u64()? as usize;
            let rng = read_rng(&mut r)?;
            let n = r.u32()? as usize;
            if client >= self.config.num_clients {
                return Err(CheckpointError::Mismatch("resident client id"));
            }
            if prev_client.is_some_and(|p| p >= client) {
                return Err(CheckpointError::Mismatch("resident clients out of order"));
            }
            prev_client = Some(client);
            if stamp > clock {
                return Err(CheckpointError::Mismatch("pool stamp beyond clock"));
            }
            if n != self.clients[client].shard_len {
                return Err(CheckpointError::Mismatch("batcher shard size"));
            }
            if cursor > n {
                return Err(CheckpointError::Mismatch("batcher cursor out of range"));
            }
            let mut indices = Vec::with_capacity(n);
            for _ in 0..n {
                indices.push(r.u32()? as usize);
            }
            let mut batcher = make_batcher(&self.partition, &self.config, client);
            batcher.restore_state(BatcherState { indices, cursor, rng });
            entries.push((client, stamp, batcher));
        }
        self.pool.restore(entries, clock, evicted);

        match (&mut self.tifl, chunks.get(TIFL)) {
            (Some(tifl), Some(body)) => {
                let mut r = Reader::new(body);
                let n = r.u32()? as usize;
                if n != tifl.tier_count() {
                    return Err(CheckpointError::Mismatch("tifl tier count"));
                }
                let mut credits = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    credits.push(r.u32()?);
                }
                let mut accuracy = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    accuracy.push(r.f64()?);
                }
                let has_last = r.u8()? == 1;
                let last = r.u32()? as usize;
                if has_last && last >= n {
                    return Err(CheckpointError::Mismatch("tifl last-selected tier"));
                }
                let rng = read_rng(&mut r)?;
                tifl.restore(TiflSnapshot {
                    credits,
                    accuracy,
                    last_selected: has_last.then_some(last),
                    rng,
                });
            }
            (None, None) => {}
            _ => return Err(CheckpointError::Mismatch("tifl state presence")),
        }

        match (&mut self.churn, chunks.get(CHRN)) {
            (Some(churn), Some(body)) => {
                let mut r = Reader::new(body);
                let n = r.u32()? as usize;
                if n != self.config.num_clients {
                    return Err(CheckpointError::Mismatch("churn availability count"));
                }
                let mut available = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    available.push(r.u8()? == 1);
                }
                let rng = read_rng(&mut r)?;
                churn.restore(available, rng);
            }
            (None, None) => {}
            _ => return Err(CheckpointError::Mismatch("churn state presence")),
        }

        self.wire.broadcasts = broadcasts;
        self.wire.downlink_base = match chunks.get(WDLB) {
            Some(body) => Some(frame_tensors(&Frame::from_bytes(body.to_vec())?)?),
            None => None,
        };
        for slot in self.wire.uplink_residual.iter_mut() {
            *slot = None;
        }
        for body in chunks.get_all(WUPR) {
            let mut r = Reader::new(body);
            let client = r.u32()? as usize;
            if client >= self.wire.uplink_residual.len() {
                return Err(CheckpointError::Mismatch("uplink residual client id"));
            }
            let frame = Frame::from_bytes(r.take(r.remaining())?.to_vec())?;
            self.wire.uplink_residual[client] = Some(frame_tensors(&frame)?);
        }

        let mut rnds =
            Reader::new(chunks.get(RNDS).ok_or(CheckpointError::Mismatch("no round records"))?);
        let n = rnds.u32()? as usize;
        if n != next_round as usize {
            return Err(CheckpointError::Mismatch("record count vs next round"));
        }
        let mut rounds = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            rounds.push(decode_record(&mut rnds)?);
        }

        Ok(RunProgress { next_round, now, pretraining, rounds })
    }

    /// Reads a checkpoint file and restores it into this engine.
    ///
    /// # Errors
    ///
    /// See [`Engine::restore_checkpoint`]; filesystem failures surface as
    /// [`CheckpointError::Io`].
    pub fn restore_checkpoint_from(
        &mut self,
        path: impl AsRef<Path>,
    ) -> Result<RunProgress, CheckpointError> {
        let bytes = std::fs::read(path)?;
        self.restore_checkpoint(&bytes)
    }

    /// Convenience driver: runs to completion, writing a checkpoint file
    /// after every round (atomically enough for a simulation: the file is
    /// replaced whole). The last checkpoint on disk always resumes to the
    /// exact same result as the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Surfaces engine errors and checkpoint i/o failures.
    pub fn run_checkpointed(
        &mut self,
        path: impl AsRef<Path>,
    ) -> Result<RunResult, crate::engine::EngineError> {
        let path = path.as_ref();
        let mut progress = self.start_progress();
        loop {
            let more = self.step_round(&mut progress)?;
            self.save_checkpoint_to(path, &progress)
                .map_err(|e| crate::engine::EngineError::Checkpoint(Box::new(e)))?;
            if !more {
                break;
            }
        }
        Ok(self.finish_run(progress))
    }
}
