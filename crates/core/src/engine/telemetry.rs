//! Engine-side telemetry: the round lifecycle published onto the
//! `aergia-telemetry` registry and event stream.
//!
//! Everything here runs on the federator thread at round boundaries, so
//! every record is stamped from the virtual clock and two same-seed runs
//! emit byte-identical JSONL (the umbrella `telemetry` test pins this).
//! When the layer is disabled every call degrades to one relaxed atomic
//! load.

use aergia_telemetry::{LazyCounter, LazyGauge, LazyHistogram, DURATION_SECS_BUCKETS};

use crate::metrics::RoundRecord;

static ROUNDS: LazyCounter = LazyCounter::new("aergia_engine_rounds_total");
static PARTICIPANTS: LazyCounter = LazyCounter::new("aergia_engine_participants_total");
static OFFLOADS: LazyCounter = LazyCounter::new("aergia_engine_offloads_total");
static DROPPED: LazyCounter = LazyCounter::new("aergia_engine_dropped_updates_total");
static BYTES_ON_WIRE: LazyCounter = LazyCounter::new("aergia_engine_bytes_on_wire_total");
static ROUND_SECS: LazyHistogram =
    LazyHistogram::new("aergia_engine_round_duration_seconds", DURATION_SECS_BUCKETS);

static POOL_HITS: LazyCounter = LazyCounter::new("aergia_pool_hits_total");
static POOL_MISSES: LazyCounter = LazyCounter::new("aergia_pool_misses_total");
static POOL_REBUILDS: LazyCounter = LazyCounter::new("aergia_pool_rebuilds_total");
static POOL_EVICTIONS: LazyCounter = LazyCounter::new("aergia_pool_evictions_total");
static POOL_RESIDENT_CLIENTS: LazyGauge = LazyGauge::new("aergia_pool_resident_clients");
static POOL_RESIDENT_BYTES: LazyGauge = LazyGauge::new("aergia_pool_resident_bytes");

/// The profiler's reported per-batch phase costs, as observed by the
/// federator (paper §4.2's `t_{1,2,3}` and `t_4`), in virtual seconds.
pub(crate) static PROFILE_T123: LazyHistogram =
    LazyHistogram::new("aergia_profile_t123_seconds", DURATION_SECS_BUCKETS);
/// See [`PROFILE_T123`].
pub(crate) static PROFILE_T4: LazyHistogram =
    LazyHistogram::new("aergia_profile_t4_seconds", DURATION_SECS_BUCKETS);

static CRASHES: LazyCounter = LazyCounter::new("aergia_engine_crashes_total");
static BYZANTINE: LazyCounter = LazyCounter::new("aergia_engine_byzantine_updates_total");
static ROBUST_FOLDS: LazyCounter = LazyCounter::new("aergia_engine_robust_folds_total");

/// Counts one mid-round client crash (also emits a `client.crash` event;
/// `at` is the virtual event time).
pub(crate) fn record_crash(round: u32, client: usize, at: u64) {
    if !aergia_telemetry::enabled() {
        return;
    }
    CRASHES.add(1);
    aergia_telemetry::event!("client.crash", round = round, client = client, at = at);
}

/// Counts one adversarial update injected before upload (the engine
/// *sends* the poisoned frame; whether aggregation rejects its influence
/// is the robust rule's business).
pub(crate) fn record_byzantine(round: u32, client: usize) {
    if !aergia_telemetry::enabled() {
        return;
    }
    BYZANTINE.add(1);
    aergia_telemetry::event!("round.byzantine_update", round = round, client = client);
}

/// Counts one robust (median / trimmed-mean) aggregation fold.
pub(crate) fn record_robust_fold(round: u32, rule: &'static str, contributions: usize) {
    if !aergia_telemetry::enabled() {
        return;
    }
    ROBUST_FOLDS.add(1);
    aergia_telemetry::event!(
        "round.robust_fold",
        round = round,
        rule = rule,
        contributions = contributions
    );
}

/// Publishes a finished round's record onto the registry, emits its
/// offload/drop events and flushes changed metrics into the JSONL
/// stream. Called once per round from the federator thread, after the
/// virtual clock advanced past the round.
pub(crate) fn publish_round(record: &RoundRecord) {
    if !aergia_telemetry::enabled() {
        return;
    }
    ROUNDS.add(1);
    PARTICIPANTS.add(record.participants.len() as u64);
    OFFLOADS.add(record.offloads.len() as u64);
    DROPPED.add(record.dropped.len() as u64);
    BYTES_ON_WIRE.add(record.bytes_on_wire);
    ROUND_SECS.observe(record.duration.as_secs_f64());

    POOL_HITS.add(u64::from(record.pool.hits));
    POOL_MISSES.add(u64::from(record.pool.misses));
    POOL_REBUILDS.add(u64::from(record.pool.rebuilds));
    POOL_EVICTIONS.add(u64::from(record.pool.evictions));
    POOL_RESIDENT_CLIENTS.set(f64::from(record.pool.resident_clients));
    POOL_RESIDENT_BYTES.set(record.pool.resident_bytes as f64);

    for &(straggler, helper) in &record.offloads {
        aergia_telemetry::event!(
            "round.offload",
            round = record.round,
            straggler = straggler,
            helper = helper
        );
    }
    for &client in &record.dropped {
        aergia_telemetry::event!("round.drop", round = record.round, client = client);
    }
    aergia_telemetry::flush_metrics();
}
