//! The discrete-event federated-learning engine.
//!
//! [`Engine`] executes a full FL run for one [`Strategy`] over the
//! simulated cluster: it generates the synthetic dataset, partitions it,
//! sets up the enclave similarity matrix (for Aergia), then simulates `T`
//! synchronous rounds on a virtual clock. Each round is an event-driven
//! simulation (the `round` module): model downloads, per-batch training
//! progress,
//! profile reports, scheduling messages, client-to-client offloads and
//! update uploads all flow through the [`aergia_simnet::Network`] with
//! explicit byte sizes and latencies.
//!
//! In [`Mode::Real`] clients train actual [`aergia_nn::Cnn`] models so
//! accuracy curves are meaningful; in [`Mode::Timing`] only the virtual
//! clock advances (for the timing-shape figures).
//!
//! Real-mode rounds execute the participating clients' local training
//! concurrently on the [`aergia_runtime`] work-stealing pool (see the
//! `round` module for the plan/execute split and the
//! [`crate::config::ExperimentConfig::parallelism`] knob); aggregation
//! folds the results in fixed client order, so parallel runs are
//! bit-identical to serial ones.

mod checkpoint;
mod churn;
mod pool;
mod round;
mod telemetry;
mod tifl;
mod wire;

use std::error::Error;
use std::fmt;

use aergia_data::batcher::Batcher;
use aergia_data::partition::Partition;
use aergia_data::synth::Dataset;
use aergia_enclave::{establish_session, EnclaveError, SimilarityEnclave};
use aergia_nn::optim::Sgd;
use aergia_nn::profile::PhaseCost;
use aergia_nn::weights as w;
use aergia_nn::{Cnn, NnError};
use aergia_simnet::node::BASE_FLOPS;
use aergia_simnet::{CpuModel, LinkModel, Network, SimDuration, SimTime};
use aergia_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{ClientStateMode, ConfigError, ExperimentConfig, Mode};
use crate::metrics::{RoundRecord, RunResult};
use crate::scenario::{self, AggregationMode, RobustAggregation};
use crate::strategy::Strategy;
use crate::transport::{self, InProcess, Transport, TransportError};

pub use checkpoint::{CheckpointError, RunProgress};
pub(crate) use round::RoundOutcome;

/// Errors surfaced while constructing or running an experiment.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// A model operation failed.
    Nn(NnError),
    /// The enclave protocol failed.
    Enclave(EnclaveError),
    /// Saving or restoring a checkpoint failed.
    Checkpoint(Box<CheckpointError>),
    /// The round's [`Transport`] failed in a way that leaves it unusable
    /// (losing a single client is tolerated, not an error — see
    /// [`crate::transport::Transport`]).
    Transport(TransportError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "configuration error: {e}"),
            EngineError::Nn(e) => write!(f, "model error: {e}"),
            EngineError::Enclave(e) => write!(f, "enclave error: {e}"),
            EngineError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            EngineError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Config(e) => Some(e),
            EngineError::Nn(e) => Some(e),
            EngineError::Enclave(e) => Some(e),
            EngineError::Checkpoint(e) => Some(e.as_ref()),
            EngineError::Transport(e) => Some(e),
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl From<NnError> for EngineError {
    fn from(e: NnError) -> Self {
        EngineError::Nn(e)
    }
}

impl From<EnclaveError> for EngineError {
    fn from(e: EnclaveError) -> Self {
        EngineError::Enclave(e)
    }
}

impl From<TransportError> for EngineError {
    fn from(e: TransportError) -> Self {
        match e {
            // The in-process transport surfaces model failures directly;
            // unwrap them so the error story is unchanged for simulator
            // users (and tests matching on `EngineError::Nn`).
            TransportError::Nn(e) => EngineError::Nn(e),
            other => EngineError::Transport(other),
        }
    }
}

/// Compact persistent per-client state (survives across rounds). Tens
/// of bytes per client, stored densely for the whole simulated
/// population — heavy state (batcher, workspace) lives in the
/// capacity-bounded [`pool::CohortPool`] instead.
pub(crate) struct ClientNode {
    pub(crate) cpu: CpuModel,
    pub(crate) shard_len: usize,
    /// Per-batch virtual cost of the four phases on this client.
    pub(crate) phase_secs: PhaseCost,
}

impl ClientNode {
    /// Virtual duration of one full (4-phase) batch update.
    pub(crate) fn full_batch(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.phase_secs.total())
    }

    /// Virtual duration of one frozen (3-phase) batch update.
    pub(crate) fn frozen_batch(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.phase_secs.first_three())
    }

    /// Virtual duration of one feature-only batch (offloaded training).
    pub(crate) fn feature_batch(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.phase_secs.ff + self.phase_secs.bf)
    }
}

/// The one batcher derivation in the system: build-time pre-population,
/// on-demand pool admission and checkpoint restore all construct a
/// client's draw stream from this formula, so a batcher built at any of
/// those moments starts the identical stream.
pub(crate) fn make_batcher(partition: &Partition, config: &ExperimentConfig, id: usize) -> Batcher {
    Batcher::new(
        partition.indices(id).to_vec(),
        config.batch_size,
        config.seed ^ (id as u64).wrapping_mul(0x9e37),
    )
}

/// The federated-learning run executor.
pub struct Engine {
    pub(crate) config: ExperimentConfig,
    pub(crate) strategy: Strategy,
    pub(crate) train: Dataset,
    pub(crate) test: Dataset,
    pub(crate) partition: Partition,
    pub(crate) similarity: Vec<Vec<f64>>,
    pub(crate) enclave_setup_bytes: usize,
    /// Client → edge-aggregator assignment; the single-edge layout by
    /// default, overridden by
    /// [`TopologyBuilder::edge_cohorts`](crate::topology::TopologyBuilder::edge_cohorts).
    /// Defines the aggregation tree's bracketing, so it is fingerprinted
    /// into checkpoints.
    pub(crate) cohorts: crate::fold::CohortLayout,
    pub(crate) clients: Vec<ClientNode>,
    /// The heavy per-client state (batcher + lazily-built workspace),
    /// capacity-bounded and LRU-evicted under
    /// [`ClientStateMode::CohortSampled`]; pre-populated and unbounded
    /// under [`ClientStateMode::Resident`]. Workspaces materialise the
    /// first time their client actually trains, so resident memory
    /// follows participation, not cluster size.
    pub(crate) pool: pool::CohortPool,
    pub(crate) network: Network,
    pub(crate) global: Vec<Tensor>,
    pub(crate) template: Cnn,
    /// Wire-codec state: frame sizing, delta bases and residuals.
    pub(crate) wire: wire::WireState,
    pub(crate) select_rng: StdRng,
    pub(crate) federator_secret: u64,
    pub(crate) tifl: Option<tifl::TiflState>,
    /// Seeded churn trace; `None` unless the scenario configures churn.
    pub(crate) churn: Option<churn::ChurnState>,
    /// Lazily-built model + workspace reused by [`Engine::evaluate_global`]:
    /// evaluation runs every round, and rebuilding the model from the
    /// template each time pays the full activation/im2col allocation cost
    /// again. The weights are overwritten from the global snapshot before
    /// every use, so reuse cannot change results.
    eval_state: Option<(Cnn, aergia_tensor::Workspace)>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("strategy", &self.strategy.name())
            .field("clients", &self.clients.len())
            .field("rounds", &self.config.rounds)
            .field("mode", &self.config.mode)
            .finish()
    }
}

impl Engine {
    /// Builds an engine: generates data, partitions it, runs the enclave
    /// similarity protocol and prepares client state.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for invalid configurations and
    /// [`EngineError::Enclave`] if the similarity protocol fails.
    pub fn new(config: ExperimentConfig, strategy: Strategy) -> Result<Self, EngineError> {
        Self::with_topology(config, strategy, crate::topology::TopologyBuilder::new())
    }

    /// [`Engine::new`] with validated cluster-topology overrides (link
    /// models, per-client speeds, fault injection) applied before the
    /// first round. See [`crate::topology::TopologyBuilder`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadTopology`] (wrapped in [`EngineError::Config`])
    /// for out-of-range overrides, plus everything [`Engine::new`]
    /// returns.
    pub fn with_topology(
        config: ExperimentConfig,
        strategy: Strategy,
        topology: crate::topology::TopologyBuilder,
    ) -> Result<Self, EngineError> {
        config.validate()?;
        scenario::validate_with_strategy(&config.scenario, &strategy)?;
        // Aergia's scheduler consumes the full pairwise similarity
        // matrix, which cohort sampling deliberately never computes
        // (it is O(n²) in the population).
        if matches!(config.client_state, ClientStateMode::CohortSampled { .. })
            && matches!(strategy, Strategy::Aergia { .. })
        {
            return Err(ConfigError::BadScenario(
                "cohort-sampled client state cannot run the Aergia strategy \
                 (the full similarity matrix is never materialised)",
            )
            .into());
        }
        topology.validate(config.num_clients)?;
        let mut engine = Self::build(config, strategy)?;
        topology.apply(&mut engine);
        Ok(engine)
    }

    /// Constructs the engine from a validated configuration.
    fn build(config: ExperimentConfig, strategy: Strategy) -> Result<Self, EngineError> {
        let cohort_sampled = matches!(config.client_state, ClientStateMode::CohortSampled { .. });
        let (train, test) = config.dataset.generate_pair();
        // Cohort-sampled populations dwarf the dataset, so the partition
        // switches to shared strided shards (`O(dataset)` storage however
        // many clients are simulated) instead of materialising one index
        // list per client.
        let partition = if cohort_sampled {
            Partition::strided(&train, config.num_clients)
        } else {
            Partition::split(&train, config.num_clients, config.partition, config.seed)
        };

        // Dataset similarity, computed privately in the enclave before
        // training starts (§4.4). Every client participates once — except
        // under cohort sampling, where a full per-client protocol (and the
        // O(n²) similarity matrix behind it) is exactly the per-client
        // cost the mode exists to avoid: one probe session prices the
        // handshake and the total setup cost is charged analytically.
        let mut enclave = SimilarityEnclave::new(train.num_classes(), config.seed ^ 0xe9c1);
        let mut enclave_setup_bytes = 0usize;
        let similarity = if cohort_sampled {
            let mut session = establish_session(&mut enclave, 0, config.seed)?;
            let hist = partition.class_histogram(&train, 0);
            let blob = session.seal_histogram(&hist);
            enclave_setup_bytes = (blob.len() + 64) * config.num_clients;
            vec![vec![0.0]]
        } else {
            for client in 0..config.num_clients {
                let mut session =
                    establish_session(&mut enclave, client as u32, config.seed ^ client as u64)?;
                let hist = partition.class_histogram(&train, client);
                let blob = session.seal_histogram(&hist);
                enclave_setup_bytes += blob.len() + 64;
                enclave.submit(client as u32, blob)?;
            }
            if config.num_clients >= 2 {
                enclave.compute_similarity_matrix()?
            } else {
                vec![vec![0.0]]
            }
        };

        let template = transport::build_template(&config);
        let global = template.weights();
        // One sizing authority: every transfer is charged by its frame's
        // encoded length, derived from these shapes by aergia-codec.
        let wire = wire::WireState::new(
            config.codec,
            &global,
            template.feature_weights().len(),
            config.num_clients,
        );

        let flops = template.phase_flops(config.batch_size);
        let clients = (0..config.num_clients)
            .map(|id| {
                let cpu = CpuModel::new(config.speeds[id]);
                let secs_per_flop = 1.0 / (cpu.speed() * BASE_FLOPS);
                ClientNode {
                    cpu,
                    shard_len: partition.shard_len(id),
                    phase_secs: flops.scaled(secs_per_flop),
                }
            })
            .collect();

        let tifl = match strategy {
            Strategy::Tifl { tiers } => {
                Some(tifl::TiflState::new(&config.speeds, tiers, config.seed ^ 0x7469))
            }
            _ => None,
        };

        let churn = config
            .scenario
            .churn
            .map(|cfg| churn::ChurnState::new(cfg, config.num_clients, config.seed));

        // Resident mode pre-populates every client's heavy state (the
        // historical dense layout, bit-for-bit); cohort sampling starts
        // empty and admits participants on demand. Timing mode never
        // executes numeric plans, so its workspace charge estimate is
        // zero and workspaces never materialise.
        let cap = match config.client_state {
            ClientStateMode::Resident => usize::MAX,
            ClientStateMode::CohortSampled { max_resident } => max_resident,
        };
        let ws_bytes_per_entry = if config.mode == Mode::Real {
            // Live model weights, gradient/scratch buffers, mini-batch
            // pair: roughly three dense copies of the parameters.
            global.iter().map(Tensor::numel).sum::<usize>() as u64 * 4 * 3
        } else {
            0
        };
        let mut client_pool = pool::CohortPool::new(cap, ws_bytes_per_entry);
        if !cohort_sampled {
            for id in 0..config.num_clients {
                client_pool.prepopulate(id, make_batcher(&partition, &config, id));
            }
        }

        Ok(Engine {
            network: Network::new(config.link),
            select_rng: StdRng::seed_from_u64(config.seed ^ 0x73656c), // "sel"
            federator_secret: config.seed ^ 0xfed0_fed0,
            similarity,
            enclave_setup_bytes,
            cohorts: crate::fold::CohortLayout::single(config.num_clients),
            clients,
            pool: client_pool,
            global,
            template,
            wire,
            partition,
            train,
            test,
            config,
            strategy,
            tifl,
            churn,
            eval_state: None,
        })
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The enclave's dataset-similarity matrix (EMD distances).
    pub fn similarity_matrix(&self) -> &[Vec<f64>] {
        &self.similarity
    }

    /// The client data partition in effect.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The edge-cohort layout in effect (single-edge unless overridden
    /// through [`TopologyBuilder::edge_cohorts`](crate::topology::TopologyBuilder::edge_cohorts)).
    pub fn cohort_layout(&self) -> &crate::fold::CohortLayout {
        &self.cohorts
    }

    /// The generated training dataset.
    pub fn train_dataset(&self) -> &Dataset {
        &self.train
    }

    /// The generated test dataset.
    pub fn test_dataset(&self) -> &Dataset {
        &self.test
    }

    /// Overrides the federator→client downlink (e.g. to model a slow
    /// control path in robustness tests).
    ///
    /// # Migration
    ///
    /// Declare the link on a [`TopologyBuilder`](crate::topology::TopologyBuilder) instead, so it is
    /// validated against the configuration before the engine exists:
    ///
    /// ```
    /// use aergia::prelude::*;
    /// use aergia_simnet::{LinkModel, SimDuration};
    ///
    /// let config = ExperimentConfig { mode: Mode::Timing, ..ExperimentConfig::default() };
    /// let slow = LinkModel { latency: SimDuration::from_secs_f64(0.2), bandwidth_bps: 1e6 };
    /// let engine = Engine::with_topology(
    ///     config,
    ///     Strategy::FedAvg,
    ///     TopologyBuilder::new().federator_link(0, slow),
    /// )
    /// .unwrap();
    /// # let _ = engine;
    /// ```
    #[deprecated(since = "0.1.0", note = "pass a TopologyBuilder to Engine::with_topology instead")]
    pub fn set_federator_link(&mut self, to: usize, link: LinkModel) {
        self.network.set_link(
            aergia_simnet::NodeId::FEDERATOR,
            aergia_simnet::NodeId(to as u32),
            link,
        );
    }

    /// The configured speed fraction of `client`.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn client_speed(&self, client: usize) -> f64 {
        self.clients[client].cpu.speed()
    }

    /// Changes `client`'s speed mid-run — the paper's transient-load
    /// scenario (§3.1). Takes effect from the next round.
    ///
    /// # Migration
    ///
    /// For *initial* topology, declare the speed on a
    /// [`TopologyBuilder`](crate::topology::TopologyBuilder); only mid-run transient-load changes still go
    /// through this shim:
    ///
    /// ```
    /// use aergia::prelude::*;
    ///
    /// let config = ExperimentConfig { mode: Mode::Timing, ..ExperimentConfig::default() };
    /// let engine = Engine::with_topology(
    ///     config,
    ///     Strategy::FedAvg,
    ///     TopologyBuilder::new().client_speed(2, 0.1),
    /// )
    /// .unwrap();
    /// assert_eq!(engine.client_speed(2), 0.1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range or `speed` is outside `(0, 1]`.
    #[deprecated(
        since = "0.1.0",
        note = "for initial topology use TopologyBuilder::client_speed via Engine::with_topology; \
                mid-run transient-load changes remain available through this shim"
    )]
    pub fn set_client_speed(&mut self, client: usize, speed: f64) {
        let node = &mut self.clients[client];
        node.cpu.set_speed(speed);
        let secs_per_flop = 1.0 / (node.cpu.speed() * BASE_FLOPS);
        node.phase_secs = self.template.phase_flops(self.config.batch_size).scaled(secs_per_flop);
    }

    /// Injects network faults for robustness experiments (drops break the
    /// synchronous protocol's liveness, so only jitter is recommended for
    /// full runs).
    ///
    /// # Migration
    ///
    /// ```
    /// use aergia::prelude::*;
    /// use aergia_simnet::SimDuration;
    ///
    /// let config = ExperimentConfig { mode: Mode::Timing, ..ExperimentConfig::default() };
    /// let jittery = TopologyBuilder::new()
    ///     .network_faults(0.0, SimDuration::from_secs_f64(0.05), 9);
    /// let engine = Engine::with_topology(config, Strategy::FedAvg, jittery).unwrap();
    /// # let _ = engine;
    /// ```
    #[deprecated(since = "0.1.0", note = "pass a TopologyBuilder to Engine::with_topology instead")]
    pub fn inject_network_faults(&mut self, drop_prob: f64, jitter: SimDuration, seed: u64) {
        self.network.enable_faults(drop_prob, jitter, seed);
    }

    /// Overrides the link model of a specific client pair.
    ///
    /// # Migration
    ///
    /// ```
    /// use aergia::prelude::*;
    /// use aergia_simnet::{LinkModel, SimDuration};
    ///
    /// let config = ExperimentConfig { mode: Mode::Timing, ..ExperimentConfig::default() };
    /// let degraded = LinkModel { latency: SimDuration::from_secs_f64(0.1), bandwidth_bps: 5e5 };
    /// let engine = Engine::with_topology(
    ///     config,
    ///     Strategy::FedAvg,
    ///     TopologyBuilder::new().client_link(1, 3, degraded),
    /// )
    /// .unwrap();
    /// # let _ = engine;
    /// ```
    #[deprecated(since = "0.1.0", note = "pass a TopologyBuilder to Engine::with_topology instead")]
    pub fn set_client_link(&mut self, from: usize, to: usize, link: LinkModel) {
        self.network.set_link(
            aergia_simnet::NodeId(from as u32),
            aergia_simnet::NodeId(to as u32),
            link,
        );
    }

    /// Pre-training cost charged before round 0.
    fn pretraining_time(&self) -> SimDuration {
        let mut t = SimDuration::ZERO;
        // Enclave setup: every client ships its sealed histogram (small).
        let per_client = self
            .config
            .link
            .transfer_time(self.enclave_setup_bytes / self.config.num_clients.max(1) + 128);
        t += per_client;
        if self.strategy.profiles_offline() {
            // TiFL profiles every client offline with one full local pass;
            // the phase runs in parallel, so it costs as much as the
            // slowest client (this is the pre-training overhead the paper
            // charges in its total-time comparison).
            let slowest = self
                .clients
                .iter()
                .map(|c| c.full_batch().mul_f64(f64::from(self.config.local_updates)))
                .max()
                .unwrap_or(SimDuration::ZERO);
            t += slowest;
        }
        t
    }

    /// Runs the full experiment.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Nn`] if a snapshot operation fails
    /// mid-run (indicates an internal bug; snapshots are shape-checked).
    pub fn run(&mut self) -> Result<RunResult, EngineError> {
        let mut progress = self.start_progress();
        while self.step_round(&mut progress)? {}
        Ok(self.finish_run(progress))
    }

    /// The progress of a run that has not started yet (pre-training time
    /// charged, no rounds executed). Feed it to [`Engine::step_round`] —
    /// and to [`Engine::save_checkpoint`] between steps.
    pub fn start_progress(&self) -> RunProgress {
        let pretraining = self.pretraining_time();
        RunProgress {
            next_round: 0,
            now: SimTime::ZERO + pretraining,
            pretraining,
            rounds: Vec::with_capacity(self.config.rounds as usize),
        }
    }

    /// Executes the next round of `progress` and records it. Returns
    /// whether rounds remain — the driver loop of [`Engine::run`], exposed
    /// so callers can checkpoint (or abort) between rounds.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn step_round(&mut self, progress: &mut RunProgress) -> Result<bool, EngineError> {
        self.step_round_with(progress, &mut InProcess)
    }

    /// [`Engine::step_round`], with the round's numeric training executed
    /// through `transport` instead of the in-process default — the entry
    /// point `aergia-net`'s coordinator drives with its TCP transport.
    /// The federator state machine (event trace, codec streams,
    /// aggregation) is identical either way, which is what keeps a
    /// networked run bit-identical to the simulator.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`]; additionally [`EngineError::Transport`] if
    /// `transport` fails irrecoverably.
    pub fn step_round_with(
        &mut self,
        progress: &mut RunProgress,
        transport: &mut dyn Transport,
    ) -> Result<bool, EngineError> {
        if progress.next_round >= self.config.rounds {
            return Ok(false);
        }
        let round = progress.next_round;
        let mut now = progress.now;
        let record = self.run_round_with(round, &mut now, transport)?;
        telemetry::publish_round(&record);
        progress.now = now;
        progress.rounds.push(record);
        progress.next_round = round + 1;
        Ok(progress.next_round < self.config.rounds)
    }

    /// Wraps up a finished (or resumed-to-completion) run: evaluates the
    /// final global model and assembles the [`RunResult`].
    pub fn finish_run(&mut self, progress: RunProgress) -> RunResult {
        let final_accuracy = match self.config.mode {
            Mode::Real => self.evaluate_global(),
            Mode::Timing => f64::NAN,
        };
        RunResult {
            rounds: progress.rounds,
            pretraining: progress.pretraining,
            finished_at: progress.now,
            final_accuracy,
        }
    }

    /// Resumes a run from `progress` (fresh or checkpoint-restored) to
    /// completion.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn resume_run(&mut self, mut progress: RunProgress) -> Result<RunResult, EngineError> {
        while self.step_round(&mut progress)? {}
        Ok(self.finish_run(progress))
    }

    /// Runs a single round: selects participants, simulates the event
    /// trace, executes the numeric training through `transport` and
    /// aggregates.
    fn run_round_with(
        &mut self,
        round: u32,
        now: &mut SimTime,
        transport: &mut dyn Transport,
    ) -> Result<RoundRecord, EngineError> {
        // Telemetry records are stamped from the virtual clock so traces
        // are a pure function of the seed, like the trace itself.
        aergia_telemetry::set_virtual_now(now.as_micros());
        let round_span = aergia_telemetry::span!("round", round = round);
        // Churn draws happen up front, in a fixed order (availability for
        // every client, then crash points for the sorted participants), so
        // the trace is a pure function of the configuration — independent
        // of parallelism and transport.
        if let Some(churn) = &mut self.churn {
            churn.begin_round();
        }
        let select_span = aergia_telemetry::span!("round.select", round = round);
        let participants = self.select_participants(round);
        drop(select_span);
        let crash_plan = match &mut self.churn {
            // A client can crash during its own batches or while serving an
            // offload, so the crash point ranges over both budgets.
            Some(churn) => churn.draw_crashes(&participants, 2 * self.config.local_updates),
            None => Vec::new(),
        };
        // Admit the round's participants into the client-state pool
        // (split borrow: admission reads the partition/config, never the
        // pool's own fields).
        {
            let (partition, config) = (&self.partition, &self.config);
            self.pool.begin_round(&participants, |id| make_batcher(partition, config, id));
        }
        let bytes_before = self.network.bytes_delivered();
        let outcome =
            round::simulate_round(self, round, *now, &participants, &crash_plan, transport)?;
        let fold_span = aergia_telemetry::span!("round.fold", round = round);
        let duration = self.finalize_round(round, &outcome)?;
        drop(fold_span);
        let bytes_on_wire = self.network.bytes_delivered() - bytes_before;
        *now += duration;
        aergia_telemetry::set_virtual_now(now.as_micros());

        let eval_span = aergia_telemetry::span!("round.eval", round = round);
        let (test_accuracy, train_loss) = match self.config.mode {
            Mode::Real => (self.evaluate_global(), outcome.mean_loss()),
            Mode::Timing => (f64::NAN, f64::NAN),
        };
        drop(eval_span);
        if let Some(tifl) = &mut self.tifl {
            tifl.observe_accuracy(test_accuracy);
        }
        // The round's training is folded: participants become evictable
        // and the pool shrinks back to its cap before the next round (and
        // before any checkpoint snapshots it). Shrinking first keeps this
        // round's end-of-round evictions on its own record.
        self.pool.end_round();
        let pool = self.pool.stats();
        drop(round_span);

        Ok(RoundRecord {
            round,
            duration,
            test_accuracy,
            train_loss,
            participants,
            offloads: outcome.offload_pairs(),
            dropped: outcome.dropped.clone(),
            bytes_on_wire,
            pool,
        })
    }

    /// Strategy-specific client selection.
    fn select_participants(&mut self, _round: u32) -> Vec<usize> {
        use rand::seq::SliceRandom;
        let k = self.config.clients_per_round;
        match &mut self.tifl {
            Some(tifl) => tifl.select(k),
            None => {
                // Under churn only currently-available clients are
                // selectable; a fully drained cluster yields an empty
                // round (the global model stalls until someone rejoins).
                let mut ids: Vec<usize> = match &self.churn {
                    Some(churn) => churn.available_ids(),
                    None => (0..self.config.num_clients).collect(),
                };
                ids.shuffle(&mut self.select_rng);
                ids.truncate(k);
                ids.sort_unstable();
                ids
            }
        }
    }

    /// Applies the strategy's aggregation rule to the round's arrivals and
    /// returns the round duration.
    fn finalize_round(
        &mut self,
        round: u32,
        outcome: &RoundOutcome,
    ) -> Result<SimDuration, EngineError> {
        let duration = outcome.duration();

        if self.config.mode == Mode::Timing {
            return Ok(duration);
        }

        // Deadline strategies drop updates that arrived too late.
        let cutoff = outcome.start + duration;
        let mut contributions: Vec<Contribution> = Vec::new();
        for update in &outcome.updates {
            if update.arrived > cutoff {
                continue;
            }
            // `None` weights past the event stage mean the transport lost
            // this client mid-round: it is already in the dropped set, so
            // it simply does not contribute.
            let Some(mut weights) = update.weights.clone() else { continue };
            // Aergia recombination: feature layers from the strong client,
            // classifier from the straggler (§3.3 "Model aggregation").
            if let Some(features) = outcome.offload_features_for(update.client) {
                if let Some(arrival) = outcome.offload_arrival_for(update.client) {
                    if arrival <= cutoff {
                        let mut model = self.template.clone();
                        model.set_weights(&weights)?;
                        model.set_feature_weights(features)?;
                        weights = model.weights();
                    }
                }
            }
            contributions.push(Contribution {
                client: update.client,
                n: update.num_samples as f32,
                weights,
                tau: update.tau,
                arrived: update.arrived,
            });
        }

        if contributions.is_empty() {
            // Every update missed the deadline (or every participant was
            // lost): the global model stalls.
            return Ok(duration);
        }

        match self.config.scenario.aggregation {
            AggregationMode::Synchronous => self.aggregate_synchronous(round, contributions)?,
            AggregationMode::BufferedAsync { max_staleness, mixing } => {
                self.fold_async(contributions, outcome.start, max_staleness, mixing);
            }
        }
        Ok(duration)
    }

    /// One synchronous aggregation step over the round's full buffer: the
    /// strategy's native mean, or a Byzantine-robust replacement.
    ///
    /// Mean-family rules fold hierarchically: each edge pre-folds its
    /// cohort's contributions in fixed client order, the partials ride a
    /// [`aergia_codec::partial`] frame upstream when more than one edge
    /// exists, and the root merges them in fixed edge order — bit-equal
    /// to [`crate::fold`]'s flat reference by construction, and to the
    /// legacy single chain under the default single-edge layout. The
    /// robust rules are order-invariant (pure functions of the update
    /// multiset), so edges forward their cohorts' updates unfolded and
    /// the rule runs once at the root, trivially matching the flat path.
    fn aggregate_synchronous(
        &mut self,
        round: u32,
        contributions: Vec<Contribution>,
    ) -> Result<(), EngineError> {
        self.global = match self.config.scenario.robust {
            RobustAggregation::Mean => {
                let edges: Vec<usize> =
                    contributions.iter().map(|c| self.cohorts.edge_of(c.client)).collect();
                let num_edges = self.cohorts.num_edges();
                // Per-edge folds fan out on the work-stealing pool unless
                // the run is pinned fully serial (each edge's chain is one
                // task, so scheduling cannot change bits).
                let parallel = self.config.parallelism != 1;
                match self.strategy {
                    Strategy::FedNova => {
                        let triples: Vec<(f32, Vec<Tensor>, u32)> =
                            contributions.into_iter().map(|c| (c.n, c.weights, c.tau)).collect();
                        let mut partials = crate::fold::fednova_edge_partials(
                            &self.global,
                            &triples,
                            &edges,
                            num_edges,
                            parallel,
                        );
                        if num_edges > 1 {
                            partials = crate::fold::through_wire(partials);
                        }
                        crate::fold::merge_fednova_partials(&self.global, partials)
                    }
                    _ => {
                        let weighted: Vec<(f32, Vec<Tensor>)> =
                            contributions.into_iter().map(|c| (c.n, c.weights)).collect();
                        let mut partials = crate::fold::weighted_edge_partials(
                            &weighted, &edges, num_edges, parallel,
                        );
                        if num_edges > 1 {
                            partials = crate::fold::through_wire(partials);
                        }
                        crate::fold::merge_weighted_partials(partials)
                    }
                }
            }
            RobustAggregation::CoordinateMedian => {
                telemetry::record_robust_fold(round, "coordinate_median", contributions.len());
                let snaps: Vec<Vec<Tensor>> =
                    contributions.into_iter().map(|c| c.weights).collect();
                w::coordinate_median(&snaps)
            }
            RobustAggregation::TrimmedMean { trim_ratio } => {
                telemetry::record_robust_fold(round, "trimmed_mean", contributions.len());
                let snaps: Vec<Vec<Tensor>> =
                    contributions.into_iter().map(|c| c.weights).collect();
                let trim = (trim_ratio * snaps.len() as f64).floor() as usize;
                w::trimmed_mean(&snaps, trim)
            }
        };
        Ok(())
    }

    /// Buffered asynchronous folding (FedBuff/FedLGA style): updates fold
    /// into the global model one at a time, in virtual-clock arrival
    /// order, each discounted by its staleness —
    /// `global ← (1−α)·global + α·update` with
    /// `α = mixing · staleness_weight(arrived − start)`. Arrival order is
    /// fixed by the value-free event stage, so the fold — and with it the
    /// whole run — stays bit-identical across parallelism settings and
    /// transports. A fully stale buffer (every `α` exactly zero) leaves
    /// the global model bitwise unchanged.
    fn fold_async(
        &mut self,
        mut contributions: Vec<Contribution>,
        start: SimTime,
        max_staleness: SimDuration,
        mixing: f64,
    ) {
        contributions.sort_by_key(|c| (c.arrived, c.client));
        for c in contributions {
            let alpha = mixing * scenario::staleness_weight(c.arrived - start, max_staleness);
            if alpha <= 0.0 {
                continue;
            }
            let alpha = alpha as f32;
            for (g, wi) in self.global.iter_mut().zip(&c.weights) {
                let d = wi.sub(g);
                g.axpy(alpha, &d);
            }
        }
    }

    /// Builds a fresh optimizer for a client's local round. FedProx
    /// installs `anchor` — the round's *received* (codec-decoded) global
    /// weights, which is what a real client would anchor to — as the
    /// proximal term's reference point.
    pub(crate) fn make_optimizer(&self, anchor: &[Tensor]) -> Sgd {
        transport::round_optimizer(&self.config, &self.strategy, anchor)
    }

    /// Encodes the round's global-model broadcast (split borrow helper:
    /// the wire state and the global snapshot are disjoint fields).
    pub(crate) fn broadcast_global(&mut self) -> (aergia_codec::Frame, Vec<Tensor>) {
        self.wire.broadcast(&self.global)
    }

    /// Test accuracy of the current global model.
    pub fn evaluate_global(&mut self) -> f64 {
        if self.eval_state.is_none() {
            self.eval_state = Some((self.template.clone(), aergia_tensor::Workspace::new()));
        }
        let (model, ws) = self.eval_state.as_mut().expect("eval state just initialised");
        model.set_weights(&self.global).expect("global snapshot matches template");
        let n = self.test.len().min(self.config.eval_samples).max(1);
        let mut correct = 0usize;
        let mut seen = 0usize;
        let mut i = 0usize;
        while seen < n {
            let hi = (i + 32).min(n);
            let idx: Vec<usize> = (i..hi).collect();
            let (x, y) = self.test.batch(&idx);
            let (_, c) = model.evaluate_with(&x, &y, ws);
            correct += c;
            seen += y.len();
            i = hi;
        }
        correct as f64 / seen as f64
    }

    /// The per-round deadline, if the strategy imposes one.
    pub(crate) fn deadline(&self) -> Option<SimDuration> {
        match self.strategy {
            Strategy::DeadlineFedAvg { deadline } => Some(deadline),
            _ => None,
        }
    }

    /// Current global weights (snapshot).
    pub fn global_weights(&self) -> &[Tensor] {
        &self.global
    }
}

/// One surviving client update, ready for aggregation: recombined
/// (Aergia), cutoff-filtered, with the arrival metadata the async fold
/// and FedNova need.
struct Contribution {
    client: usize,
    n: f32,
    weights: Vec<Tensor>,
    tau: u32,
    arrived: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    use aergia_nn::models::ModelArch;

    #[test]
    fn engine_builds_for_every_strategy() {
        for strategy in [
            Strategy::FedAvg,
            Strategy::FedProx { mu: 0.1 },
            Strategy::FedNova,
            Strategy::tifl_default(),
            Strategy::DeadlineFedAvg { deadline: SimDuration::from_secs_f64(5.0) },
            Strategy::aergia_default(),
        ] {
            let config = ExperimentConfig {
                dataset: aergia_data::DataConfig {
                    spec: aergia_data::DatasetSpec::MnistLike,
                    train_size: 64,
                    test_size: 16,
                    seed: 2,
                },
                arch: ModelArch::MnistCnn,
                mode: Mode::Timing,
                ..ExperimentConfig::default()
            };
            let engine = Engine::new(config, strategy);
            assert!(engine.is_ok(), "engine failed to build for {}", strategy.name());
        }
    }

    #[test]
    fn similarity_matrix_has_cluster_dimensions() {
        let config = ExperimentConfig { mode: Mode::Timing, ..ExperimentConfig::default() };
        let engine = Engine::new(config, Strategy::FedAvg).unwrap();
        assert_eq!(engine.similarity_matrix().len(), 4);
        assert_eq!(engine.similarity_matrix()[0].len(), 4);
        assert_eq!(engine.similarity_matrix()[1][1], 0.0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let config = ExperimentConfig { rounds: 0, ..ExperimentConfig::default() };
        assert!(matches!(Engine::new(config, Strategy::FedAvg), Err(EngineError::Config(_))));
    }
}
