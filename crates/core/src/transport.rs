//! The transport-agnostic participant boundary of a round.
//!
//! A communication round has two halves. The *federator half* — client
//! selection, the virtual-clock event trace, wire-codec encoding,
//! deadline bookkeeping and aggregation — is deterministic given the
//! configuration and lives in the [`Engine`](crate::engine::Engine). The
//! *participant half* — the actual numeric training each selected client
//! performs — is the only part that must physically run *somewhere*: on
//! this process's thread pool for the simulator, or on remote worker
//! processes for the networked runtime (`aergia-net`).
//!
//! The [`Transport`] trait is that seam. Each round the engine hands the
//! transport two batches of work derived from the event trace:
//!
//! 1. [`Transport::train_participants`] — every participant's own local
//!    training, from the round's decoded broadcast ([`TrainOrder`] →
//!    [`TrainReply`]);
//! 2. [`Transport::train_offloads`] — after the engine has pushed each
//!    straggler's frozen snapshot through the wire codec, the
//!    receiver-side offloaded feature training ([`OffloadOrder`] →
//!    [`OffloadReply`]).
//!
//! Everything *stateful* stays on the engine side: batchers advance
//! through the `&mut` handles carried by the orders, codec residuals and
//! delta bases never leave the engine, and the global model is
//! aggregated from whatever replies come back. A transport is therefore
//! free to drop a participant (a real client crashing mid-upload): the
//! engine counts the client as dropped and completes the round with the
//! remaining replies.
//!
//! [`InProcess`] is the default implementation — it executes orders on
//! the calling thread or the [`aergia_runtime`] work-stealing pool,
//! exactly as the engine did before this boundary existed. The
//! determinism suite pins that a run through [`InProcess`] is
//! bit-identical across `parallelism` settings; the networked e2e suite
//! pins that a run through `aergia-net`'s TCP transport is bit-identical
//! to [`InProcess`] on the same seeds.

use std::error::Error;
use std::fmt;

use aergia_data::batcher::Batcher;
use aergia_data::synth::Dataset;
use aergia_nn::fused::{fused_forward, fusion_supported, FusedMember};
use aergia_nn::optim::Sgd;
use aergia_nn::{Cnn, ForwardPhase, NnError};
use aergia_tensor::{Tensor, Workspace};

use crate::config::ExperimentConfig;
use crate::strategy::Strategy;

/// Errors surfaced by a [`Transport`] while executing a round's orders.
///
/// [`InProcess`] only ever produces [`TransportError::Nn`]; the variants
/// beyond it exist for transports that cross a process boundary.
#[derive(Debug)]
#[non_exhaustive]
pub enum TransportError {
    /// A model operation failed while executing an order.
    Nn(NnError),
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// An encoded payload failed to decode.
    Codec(aergia_codec::CodecError),
    /// The remote end violated the protocol.
    Protocol(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Nn(e) => write!(f, "model error: {e}"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Codec(e) => write!(f, "transport decode error: {e}"),
            TransportError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::Nn(e) => Some(e),
            TransportError::Io(e) => Some(e),
            TransportError::Codec(e) => Some(e),
            TransportError::Protocol(_) => None,
        }
    }
}

impl From<NnError> for TransportError {
    fn from(e: NnError) -> Self {
        TransportError::Nn(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<aergia_codec::CodecError> for TransportError {
    fn from(e: aergia_codec::CodecError) -> Self {
        TransportError::Codec(e)
    }
}

/// Round-scoped context shared by every order of the round.
pub struct RoundContext<'a> {
    /// The round index (0-based).
    pub round: u32,
    /// The decoded broadcast — the weights every participant trains from.
    pub round_base: &'a [Tensor],
    /// The engine's `parallelism` knob (honoured by [`InProcess`];
    /// irrelevant to transports whose clients run elsewhere).
    pub parallelism: usize,
    /// The training dataset (every client batches its own shard of it).
    pub train: &'a Dataset,
    /// The model template a fresh [`ClientWorkspace`] clones.
    pub template: &'a Cnn,
}

/// One participant's own local training for the round.
///
/// The `batcher` handle is the engine's — however the order is executed,
/// the draw stream must advance here (remote transports ship
/// [`Batcher::state`] out and restore the returned state), because the
/// engine's checkpoints are the single source of truth for resumption.
pub struct TrainOrder<'a> {
    /// The client this order belongs to.
    pub client: usize,
    /// Local batches to train, in the event trace's count.
    pub own_batches: u32,
    /// Freeze the feature section before this (0-based) batch index.
    pub freeze_after: Option<u32>,
    /// Capture the frozen snapshot (a strong client will train it).
    pub snapshot_wanted: bool,
    /// The round's optimizer, freshly built by the engine (FedProx
    /// carries its proximal anchor). Returned through
    /// [`TrainReply::opt`] so offloaded training continues with the same
    /// momentum state.
    pub opt: Sgd,
    /// The client's persistent mini-batch stream.
    pub batcher: &'a mut Batcher,
    /// The client's persistent training workspace slot (materialised on
    /// first use by in-process execution; remote transports keep their
    /// own workspace on the worker and leave this slot alone).
    pub workspace: &'a mut Option<ClientWorkspace>,
}

/// What one participant's own training produced.
pub struct TrainReply {
    /// The client that trained.
    pub client: usize,
    /// The full trained snapshot (uploaded through the wire codec by the
    /// engine).
    pub weights: Vec<Tensor>,
    /// The frozen snapshot captured at the freeze point, if the order
    /// asked for one.
    pub snapshot: Option<Vec<Tensor>>,
    /// Per-batch training losses, in batch order.
    pub losses: Vec<f32>,
    /// The optimizer after the client's own batches — [`InProcess`]
    /// returns it so the engine can thread it into the client's
    /// [`OffloadOrder`]; transports whose workers keep their optimizer
    /// remotely return `None`.
    pub opt: Option<Sgd>,
}

/// Receiver-side offloaded training: train a straggler's frozen model.
pub struct OffloadOrder<'a> {
    /// The strong client doing the training.
    pub receiver: usize,
    /// The straggler whose model is being trained.
    pub weak: usize,
    /// Feature-only batches to run.
    pub batches: u32,
    /// The straggler's frozen snapshot *as the wire delivered it* (the
    /// engine already pushed it through the offload codec stream).
    pub snapshot: Vec<Tensor>,
    /// The receiver's optimizer as returned by its [`TrainReply`]
    /// (`None` when the transport keeps optimizer state on the worker).
    pub opt: Option<Sgd>,
    /// The receiver's persistent mini-batch stream (continues after its
    /// own batches, matching the virtual event order).
    pub batcher: &'a mut Batcher,
    /// The receiver's persistent training workspace slot.
    pub workspace: &'a mut Option<ClientWorkspace>,
}

/// What one receiver's offloaded training produced.
pub struct OffloadReply {
    /// The strong client that trained.
    pub receiver: usize,
    /// The straggler whose model was trained.
    pub weak: usize,
    /// The trained feature section of the straggler's model.
    pub features: Vec<Tensor>,
}

/// Executes the participant half of a round (see the module docs).
///
/// # Contract
///
/// * Replies must preserve order: reply `i` may be omitted, but the
///   replies present must appear in the same relative order as their
///   orders (the engine folds losses in that order).
/// * An omitted reply means the participant is gone this round; the
///   engine drops it and completes the round with the rest.
/// * An `Err` aborts the whole run — reserve it for failures that leave
///   the transport unusable, not for one lost client.
pub trait Transport {
    /// Executes every participant's own local training.
    fn train_participants(
        &mut self,
        ctx: &RoundContext<'_>,
        orders: Vec<TrainOrder<'_>>,
    ) -> Result<Vec<TrainReply>, TransportError>;

    /// Executes the receiver-side offloaded feature training.
    fn train_offloads(
        &mut self,
        ctx: &RoundContext<'_>,
        orders: Vec<OffloadOrder<'_>>,
    ) -> Result<Vec<OffloadReply>, TransportError>;
}

/// Persistent per-client training workspace: a live model whose weights
/// are reset from the round's snapshot via [`Cnn::set_weights`] instead
/// of cloning the template, a [`Workspace`] of reusable tensor buffers,
/// and the mini-batch buffer pair. Together these make a client's
/// steady-state batch loop allocation-free; because weight resets copy
/// values bit-for-bit and the workspace never changes arithmetic order,
/// reuse is invisible to results (pinned by the determinism suite).
///
/// [`ClientWorkspace::run_own_batches`] and
/// [`ClientWorkspace::run_offload_batches`] are the *only* training
/// loops in the system: the in-process transport and `aergia-net`'s
/// remote client binary both call them, which is what makes a networked
/// run bit-identical to the simulator.
pub struct ClientWorkspace {
    pub(crate) model: Cnn,
    pub(crate) ws: Workspace,
    pub(crate) batch_x: Tensor,
    pub(crate) batch_y: Vec<usize>,
    /// Batch-0 forward state left by the round's cross-client fused
    /// pre-pass (see [`InProcess::train_participants`]): the pre-pass
    /// resets the model, draws batch 0 and runs the cohort's forward
    /// passes as one batched GEMM per layer; `run_own_batches` then
    /// consumes this instead of re-drawing and re-running the forward.
    /// Results are bit-identical either way, so the field is pure reuse.
    pub(crate) fused0: Option<ForwardPhase>,
}

/// What [`ClientWorkspace::run_own_batches`] produced.
pub struct OwnTraining {
    /// The full trained snapshot.
    pub weights: Vec<Tensor>,
    /// The frozen snapshot at the freeze point, if requested.
    pub snapshot: Option<Vec<Tensor>>,
    /// Per-batch losses, in batch order.
    pub losses: Vec<f32>,
}

impl ClientWorkspace {
    /// A fresh workspace cloned from the model template.
    pub fn new(template: &Cnn) -> Self {
        ClientWorkspace {
            model: template.clone(),
            ws: Workspace::new(),
            batch_x: Tensor::default(),
            batch_y: Vec::new(),
            fused0: None,
        }
    }

    /// Resets the persistent model to `weights` and clears any freeze
    /// flags left by an earlier round — exactly the state a fresh
    /// template clone would start in. Both training loops go through
    /// this one helper so their reset contracts cannot drift apart.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SnapshotLength`] if `weights` does not match
    /// the model (indicates an internal bug; snapshots are shape-checked).
    pub(crate) fn reset_model(&mut self, weights: &[Tensor]) -> Result<(), NnError> {
        self.model.unfreeze_features();
        self.model.unfreeze_classifier();
        self.model.set_weights(weights)
    }

    /// One client's own local training for a round: reset to the round
    /// base, train `own_batches` mini-batches (freezing the feature
    /// section — and snapshotting, if wanted — at the freeze point), and
    /// return the trained snapshot.
    ///
    /// # Errors
    ///
    /// Returns the first model error; snapshots are shape-checked so an
    /// error indicates an internal bug.
    // Mirrors TrainOrder field-for-field; a params struct would just
    // duplicate that type under another name.
    #[allow(clippy::too_many_arguments)]
    pub fn run_own_batches(
        &mut self,
        round_base: &[Tensor],
        own_batches: u32,
        freeze_after: Option<u32>,
        snapshot_wanted: bool,
        batcher: &mut Batcher,
        train: &Dataset,
        opt: &mut Sgd,
    ) -> Result<OwnTraining, NnError> {
        self.reset_model(round_base)?;
        let ClientWorkspace { model, ws, batch_x, batch_y, fused0 } = self;
        // Claim (or discard, if this order trains no batches) any batch-0
        // forward state the fused pre-pass staged. The weights the
        // pre-pass forward ran under are bit-identical to the reset just
        // performed — both copy `round_base` — so the cached activations
        // remain exactly what a serial forward would have produced.
        let mut fused0 = fused0.take();
        let mut snapshot = None;
        let mut losses = Vec::new();
        for batch in 0..own_batches {
            if freeze_after == Some(batch) {
                // Freezing only affects the backward pass and optimizer,
                // so doing it after a fused batch-0 *forward* matches the
                // serial freeze-then-train order bit-for-bit.
                model.freeze_features();
                if snapshot_wanted {
                    snapshot = Some(model.weights());
                }
            }
            let stats = match (batch, fused0.take()) {
                (0, Some(fwd)) => {
                    // The pre-pass already advanced the batcher and ran
                    // the forward; only the backward half remains.
                    model.backward_phase(fwd, batch_y, opt, ws)?
                }
                _ => {
                    batcher.next_batch_into(train, batch_x, batch_y);
                    model.train_batch_with(batch_x, batch_y, opt, ws)?
                }
            };
            losses.push(stats.loss);
        }
        Ok(OwnTraining { weights: model.weights(), snapshot, losses })
    }

    /// Receiver-side offloaded training: reset to the straggler's
    /// delivered snapshot, freeze the classifier (only the feature
    /// section trains, §4.1), run `batches` feature-only batches on the
    /// receiver's own data and return the trained feature section.
    ///
    /// # Errors
    ///
    /// See [`ClientWorkspace::run_own_batches`].
    pub fn run_offload_batches(
        &mut self,
        snapshot: &[Tensor],
        batches: u32,
        batcher: &mut Batcher,
        train: &Dataset,
        opt: &mut Sgd,
    ) -> Result<Vec<Tensor>, NnError> {
        self.reset_model(snapshot)?;
        let ClientWorkspace { model, ws, batch_x, batch_y, .. } = self;
        model.freeze_classifier();
        for _ in 0..batches {
            batcher.next_batch_into(train, batch_x, batch_y);
            model.train_batch_with(batch_x, batch_y, opt, ws)?;
        }
        Ok(model.feature_weights())
    }
}

/// Builds the experiment's model template — the same derivation
/// [`Engine::new`](crate::engine::Engine::new) uses, exposed so remote
/// workers reconstruct bit-identical initial weights from the
/// configuration alone.
pub fn build_template(config: &ExperimentConfig) -> Cnn {
    config.arch.build(config.seed ^ 0x6d6f_64656c) // "model"
}

/// Builds the optimizer a client uses for one round. FedProx installs
/// `anchor` — the round's *received* (codec-decoded) global weights,
/// which is what a real client would anchor to — as the proximal term's
/// reference point. Exposed so remote workers build the exact optimizer
/// the simulator would.
pub fn round_optimizer(config: &ExperimentConfig, strategy: &Strategy, anchor: &[Tensor]) -> Sgd {
    let mut opt = Sgd::new(config.sgd);
    if let Strategy::FedProx { mu } = strategy {
        opt.set_prox(*mu, anchor.to_vec());
    }
    opt
}

/// The default [`Transport`]: orders execute in this process, on the
/// calling thread (`parallelism == 1`) or the [`aergia_runtime`]
/// work-stealing pool, with workspaces materialised lazily in the
/// engine's per-client slots. This is exactly the execution path the
/// engine used before the transport boundary existed — the determinism
/// suite pins its results bit-for-bit.
#[derive(Debug, Default, Clone, Copy)]
pub struct InProcess;

/// Whether the cross-client fused batch-0 forward is disabled by the
/// `AERGIA_NO_FUSE` escape hatch (any value but `0` disables, matching
/// `AERGIA_FORCE_SCALAR`). Fusion never changes results — this exists
/// for A/B timing and for pinning fused ≡ unfused in the determinism
/// suite.
fn fusion_disabled() -> bool {
    std::env::var("AERGIA_NO_FUSE").map(|v| v != "0").unwrap_or(false)
}

/// The cross-client fused batch-0 pre-pass: every order in a round
/// resets to the *same* decoded broadcast, so the cohort's first forward
/// passes can share one weight pack per GEMM layer and batch their GEMMs
/// into multi-RHS calls over the work-stealing pool (tentpole (c) of the
/// SIMD GEMM issue). Per member this stages exactly what the serial loop
/// would do — materialise the workspace, reset to the round base, draw
/// batch 0 — then runs `aergia_nn::fused::fused_forward` and parks each
/// member's forward state in its [`ClientWorkspace::fused0`] slot for
/// [`ClientWorkspace::run_own_batches`] to consume. Bit-identity with
/// the unfused path holds by construction (identical weights, identical
/// per-tile kernels; see the fused module's docs), so this is purely a
/// throughput optimisation.
fn fuse_batch_zero(ctx: &RoundContext<'_>, orders: &mut [TrainOrder<'_>]) -> Result<(), NnError> {
    if fusion_disabled() || !fusion_supported(ctx.template) {
        return Ok(());
    }
    let mut cohort: Vec<&mut TrainOrder<'_>> =
        orders.iter_mut().filter(|o| o.own_batches >= 1).collect();
    if cohort.len() < 2 {
        return Ok(());
    }
    for order in cohort.iter_mut() {
        let cw = order.workspace.get_or_insert_with(|| ClientWorkspace::new(ctx.template));
        cw.fused0 = None;
        cw.reset_model(ctx.round_base)?;
        let ClientWorkspace { batch_x, batch_y, .. } = cw;
        // Advances the engine's batcher exactly as the serial loop would.
        order.batcher.next_batch_into(ctx.train, batch_x, batch_y);
    }
    let mut members: Vec<FusedMember<'_>> = cohort
        .iter_mut()
        .map(|order| {
            let cw = order.workspace.as_mut().expect("staged above");
            let ClientWorkspace { model, ws, batch_x, .. } = cw;
            FusedMember { model, ws, x: batch_x }
        })
        .collect();
    let phases = fused_forward(&mut members)?;
    drop(members);
    for (order, fwd) in cohort.iter_mut().zip(phases) {
        order.workspace.as_mut().expect("staged above").fused0 = Some(fwd);
    }
    Ok(())
}

/// Runs `f` over the slots honouring the `parallelism` knob: `1` stays
/// on the calling thread (and never touches the pool), anything else
/// fans out on the global pool with at most `parallelism` concurrent
/// tasks (`0` = one task per order).
fn run_slots<T: Send>(slots: &mut [T], parallelism: usize, f: impl Fn(&mut T) + Sync) {
    if parallelism == 1 {
        for slot in slots {
            f(slot);
        }
    } else {
        aergia_runtime::par_for_each_mut(slots, parallelism, f);
    }
}

impl Transport for InProcess {
    fn train_participants(
        &mut self,
        ctx: &RoundContext<'_>,
        mut orders: Vec<TrainOrder<'_>>,
    ) -> Result<Vec<TrainReply>, TransportError> {
        // Batch 0 of every order trains from the same broadcast: run the
        // cohort's first forward passes fused before fanning out.
        fuse_batch_zero(ctx, &mut orders)?;
        struct Slot<'a> {
            order: TrainOrder<'a>,
            outcome: Option<Result<OwnTraining, NnError>>,
        }
        let mut slots: Vec<Slot<'_>> =
            orders.into_iter().map(|order| Slot { order, outcome: None }).collect();
        run_slots(&mut slots, ctx.parallelism, |slot| {
            let order = &mut slot.order;
            let cw = order.workspace.get_or_insert_with(|| ClientWorkspace::new(ctx.template));
            slot.outcome = Some(cw.run_own_batches(
                ctx.round_base,
                order.own_batches,
                order.freeze_after,
                order.snapshot_wanted,
                order.batcher,
                ctx.train,
                &mut order.opt,
            ));
        });
        let mut replies = Vec::with_capacity(slots.len());
        for slot in slots {
            let own = slot.outcome.expect("every slot executed")?;
            replies.push(TrainReply {
                client: slot.order.client,
                weights: own.weights,
                snapshot: own.snapshot,
                losses: own.losses,
                opt: Some(slot.order.opt),
            });
        }
        Ok(replies)
    }

    fn train_offloads(
        &mut self,
        ctx: &RoundContext<'_>,
        orders: Vec<OffloadOrder<'_>>,
    ) -> Result<Vec<OffloadReply>, TransportError> {
        struct Slot<'a> {
            order: OffloadOrder<'a>,
            outcome: Option<Result<Vec<Tensor>, TransportError>>,
        }
        let mut slots: Vec<Slot<'_>> =
            orders.into_iter().map(|order| Slot { order, outcome: None }).collect();
        run_slots(&mut slots, ctx.parallelism, |slot| {
            let order = &mut slot.order;
            let Some(opt) = order.opt.as_mut() else {
                slot.outcome = Some(Err(TransportError::Protocol(format!(
                    "offload order for client {} carries no optimizer state",
                    order.receiver
                ))));
                return;
            };
            let cw = order.workspace.get_or_insert_with(|| ClientWorkspace::new(ctx.template));
            slot.outcome = Some(
                cw.run_offload_batches(
                    &order.snapshot,
                    order.batches,
                    order.batcher,
                    ctx.train,
                    opt,
                )
                .map_err(TransportError::Nn),
            );
        });
        let mut replies = Vec::with_capacity(slots.len());
        for slot in slots {
            let features = slot.outcome.expect("every slot executed")?;
            replies.push(OffloadReply {
                receiver: slot.order.receiver,
                weak: slot.order.weak,
                features,
            });
        }
        Ok(replies)
    }
}
