//! The online profiler (§4.2).
//!
//! During the first `P` batch updates of a round, each client records the
//! duration of the four training phases using its local clock. The
//! averaged per-batch numbers — split into the paper's `t_{1,2,3}` (ff +
//! fc + bc) and `t_4` (bf) — are reported to the federator, which uses
//! them to spot stragglers and compute the offloading schedule.

use aergia_nn::profile::PhaseCost;
use serde::{Deserialize, Serialize};

/// Accumulates per-phase costs over the profiling window of a round.
#[derive(Debug, Clone, Default)]
pub struct OnlineProfiler {
    accumulated: PhaseCost,
    batches: u32,
    window: u32,
}

impl OnlineProfiler {
    /// Creates a profiler that observes the first `window` batches.
    pub fn new(window: u32) -> Self {
        OnlineProfiler { accumulated: PhaseCost::zero(), batches: 0, window }
    }

    /// Records the phase costs of one batch. Returns `true` exactly when
    /// this observation completes the profiling window (time to report).
    pub fn record(&mut self, cost: PhaseCost) -> bool {
        if self.done() {
            return false;
        }
        self.accumulated += cost;
        self.batches += 1;
        self.done()
    }

    /// True once the window is full.
    pub fn done(&self) -> bool {
        self.batches >= self.window
    }

    /// Batches observed so far.
    pub fn batches(&self) -> u32 {
        self.batches
    }

    /// Averaged per-batch profile (zeros when nothing was recorded).
    pub fn per_batch(&self) -> PhaseCost {
        if self.batches == 0 {
            PhaseCost::zero()
        } else {
            self.accumulated.scaled(1.0 / f64::from(self.batches))
        }
    }
}

/// Per-round observability of the engine's client-state pool (see
/// `engine::pool`): how many of the round's participants found their
/// state resident (`hits`) versus freshly admitted (`misses`), how many
/// of those admissions re-created state that an earlier eviction had
/// discarded (`rebuilds` — a subset of `misses`), and what the pool
/// holds after admission. Surfaced on every
/// [`RoundRecord`](crate::metrics::RoundRecord).
///
/// `resident_bytes` is a deterministic *estimate* — per-client shard
/// index storage plus a fixed workspace charge derived from the model's
/// parameter count — computed from pool membership alone, so the figure
/// is identical across parallelism settings, transports and
/// checkpoint resume (actual allocator behaviour is not).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkspacePoolStats {
    /// Participants whose client state was already resident.
    pub hits: u32,
    /// Participants whose client state had to be admitted fresh.
    pub misses: u32,
    /// Admissions that re-created previously evicted state (⊆ `misses`).
    pub rebuilds: u32,
    /// Clients evicted this round — during admission (cap pressure from
    /// the round's own participants) or at round end (shrinking back to
    /// the cap once training folded).
    pub evictions: u32,
    /// Clients resident in the pool after this round's admissions.
    pub resident_clients: u32,
    /// Estimated bytes of resident client state after admissions.
    pub resident_bytes: u64,
}

/// The numbers a client reports to the federator after profiling, plus the
/// derived quantities Algorithm 1 consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Round this report belongs to (stale reports are discarded).
    pub round: u32,
    /// Average per-batch cost of the four phases, in virtual seconds.
    pub per_batch: PhaseCost,
    /// Local batch updates still to run when the report was sent.
    pub remaining_updates: u32,
}

impl ProfileReport {
    /// The paper's `t_{j,{1,2,3}}`: per-batch cost of ff + fc + bc.
    pub fn t123(&self) -> f64 {
        self.per_batch.first_three()
    }

    /// The paper's `t_{j,4}`: per-batch cost of bf.
    pub fn t4(&self) -> f64 {
        self.per_batch.bf
    }

    /// Per-batch cost of a full (unfrozen) update.
    pub fn full_batch(&self) -> f64 {
        self.per_batch.total()
    }

    /// Per-batch cost of training *only the feature section* — the
    /// paper's `x_b`, what a strong client pays per offloaded batch.
    pub fn feature_only_batch(&self) -> f64 {
        self.per_batch.ff + self.per_batch.bf
    }

    /// Estimated time for this client to finish its remaining updates.
    pub fn estimated_completion(&self) -> f64 {
        f64::from(self.remaining_updates) * self.full_batch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(x: f64) -> PhaseCost {
        PhaseCost { ff: x, fc: x / 10.0, bc: x / 10.0, bf: 2.0 * x }
    }

    #[test]
    fn window_fills_and_reports_once() {
        let mut p = OnlineProfiler::new(3);
        assert!(!p.record(cost(1.0)));
        assert!(!p.record(cost(1.0)));
        assert!(p.record(cost(1.0)), "third batch completes the window");
        assert!(p.done());
        assert!(!p.record(cost(1.0)), "extra batches are ignored");
        assert_eq!(p.batches(), 3);
    }

    #[test]
    fn per_batch_is_the_average() {
        let mut p = OnlineProfiler::new(2);
        p.record(cost(1.0));
        p.record(cost(3.0));
        let avg = p.per_batch();
        assert!((avg.ff - 2.0).abs() < 1e-12);
        assert!((avg.bf - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profiler_reports_zero() {
        let p = OnlineProfiler::new(5);
        assert_eq!(p.per_batch(), PhaseCost::zero());
        assert!(!p.done());
    }

    #[test]
    fn report_derivations_match_paper_quantities() {
        let report = ProfileReport {
            round: 1,
            per_batch: PhaseCost { ff: 1.0, fc: 0.25, bc: 0.25, bf: 2.5 },
            remaining_updates: 10,
        };
        assert!((report.t123() - 1.5).abs() < 1e-12);
        assert!((report.t4() - 2.5).abs() < 1e-12);
        assert!((report.full_batch() - 4.0).abs() < 1e-12);
        assert!((report.feature_only_batch() - 3.5).abs() < 1e-12);
        assert!((report.estimated_completion() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn zero_window_is_immediately_done() {
        let p = OnlineProfiler::new(0);
        assert!(p.done());
    }
}
