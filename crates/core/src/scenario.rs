//! Scenario engine knobs: asynchrony, churn, and Byzantine behavior.
//!
//! Aergia's baseline evaluation assumes synchronous rounds over honest,
//! stable clients. This module adds the three scenario axes a production
//! FL middleware must survive — staleness, churn, and adversaries — as
//! *validated configuration*, not as separate code paths: every knob
//! rides the existing value-free event stage of the round state machine,
//! so scenario runs keep the workspace determinism contract (serial and
//! parallel execution are bit-identical, and TCP runs match the
//! in-process simulator). The full knob × semantics × guarantee matrix
//! lives in `docs/scenarios.md`.
//!
//! The default [`ScenarioConfig`] is inert: synchronous aggregation,
//! plain mean, no churn, no adversaries — existing experiments are
//! unaffected unless a knob is set.
//!
//! ```
//! use aergia::prelude::*;
//! use aergia::scenario::{Attack, ByzantineSpec, RobustAggregation, ScenarioConfig};
//!
//! let config = ExperimentConfig {
//!     scenario: ScenarioConfig {
//!         byzantine: vec![ByzantineSpec { client: 0, attack: Attack::SignFlip }],
//!         robust: RobustAggregation::CoordinateMedian,
//!         ..ScenarioConfig::default()
//!     },
//!     ..ExperimentConfig::default()
//! };
//! config.validate().unwrap();
//! ```

use aergia_simnet::SimDuration;
use serde::{Deserialize, Serialize};

use crate::config::ConfigError;
use crate::strategy::Strategy;

/// How the federator folds client updates into the global model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AggregationMode {
    /// Classic synchronous FL: wait for the round to finish, then fold
    /// every surviving update in one aggregation step.
    Synchronous,
    /// Buffered asynchronous aggregation (FedBuff/FedLGA style): the
    /// federator folds updates one at a time in virtual-clock arrival
    /// order, discounting each by its staleness.
    ///
    /// An update arriving `s` after round start mixes into the global
    /// model as `global ← (1−α)·global + α·update` with
    /// `α = mixing · max(0, 1 − s/max_staleness)` (see
    /// [`staleness_weight`]). Arrival order is decided by the value-free
    /// event stage, so the fold order — and therefore the result — is
    /// bit-identical across serial/parallel execution and transports.
    BufferedAsync {
        /// Staleness at which an update's weight reaches exactly zero.
        max_staleness: SimDuration,
        /// Base mixing coefficient `α₀ ∈ (0, 1]` applied to a perfectly
        /// fresh update.
        mixing: f64,
    },
}

/// Byzantine-robust alternatives to the plain (weighted) mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RobustAggregation {
    /// Sample-count-weighted mean — the strategy's native rule
    /// (FedAvg/FedProx weighting, FedNova normalization).
    Mean,
    /// Coordinate-wise median across updates: tolerates up to
    /// `⌈k/2⌉ − 1` arbitrary updates per coordinate. Ignores sample
    /// counts.
    CoordinateMedian,
    /// Coordinate-wise trimmed mean: drops the `⌊trim_ratio · k⌋`
    /// smallest and largest values per coordinate, then averages the
    /// survivors. The trim count saturates at `(k−1)/2` per side, so an
    /// aggressive ratio degenerates bit-exactly to
    /// [`RobustAggregation::CoordinateMedian`]. Ignores sample counts.
    TrimmedMean {
        /// Fraction trimmed from *each* side, in `[0, 0.5)`.
        trim_ratio: f64,
    },
}

/// What happens to a live offload when its receiver crashes mid-round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OffloadPolicy {
    /// The offload lapses silently; the straggler's own frozen update
    /// stands alone (PR 6's omitted-reply contract).
    Drop,
    /// The federator reassigns the remaining batches to the fastest
    /// alive participant not already serving an offload (lowest id on
    /// ties) and the straggler re-sends its snapshot. If no candidate
    /// exists the offload lapses as under [`OffloadPolicy::Drop`].
    Reschedule,
}

/// Seeded join/leave/crash model evaluated on the virtual clock.
///
/// Availability evolves at round boundaries (a Gilbert-Elliott-style
/// two-state chain per client); crashes strike mid-round, silencing the
/// victim from its crash point onward — exactly the censoring the
/// [`Transport`](crate::transport::Transport) contract already allows,
/// which is why churn needs no protocol changes to work over TCP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Probability an available client leaves before the next round.
    pub leave_prob: f64,
    /// Probability an unavailable client rejoins before the next round.
    pub rejoin_prob: f64,
    /// Probability a selected participant crashes mid-round.
    pub crash_prob: f64,
    /// Fate of an in-flight offload whose receiver crashes.
    pub offload_policy: OffloadPolicy,
}

/// Marks one client as an adversary for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ByzantineSpec {
    /// Index of the compromised client (`< num_clients`).
    pub client: usize,
    /// The perturbation it applies to every update it sends.
    pub attack: Attack,
}

/// Update perturbations applied by a Byzantine client.
///
/// Attacks perturb the *trained* update right before it is encoded for
/// the wire, so poisoned weights still cross the codec and the shape-only
/// wire sizing is untouched — the virtual clock cannot tell an honest
/// client from an adversary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Attack {
    /// Reflects the honest update about the round's broadcast model:
    /// `w ← base − (w − base)`, reversing the client's learning step.
    SignFlip,
    /// Replaces the update with the broadcast model plus Gaussian noise
    /// of the given standard deviation, drawn from a per-(round, client)
    /// seeded stream.
    ScaledNoise {
        /// Noise standard deviation (finite, > 0).
        scale: f32,
    },
}

/// All scenario knobs for one experiment. Inert by default.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Synchronous vs buffered-asynchronous folding.
    pub aggregation: AggregationMode,
    /// Aggregation rule hardening (mean / median / trimmed mean).
    pub robust: RobustAggregation,
    /// Join/leave/crash injection; `None` disables churn entirely.
    pub churn: Option<ChurnConfig>,
    /// Compromised clients and their attacks.
    pub byzantine: Vec<ByzantineSpec>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            aggregation: AggregationMode::Synchronous,
            robust: RobustAggregation::Mean,
            churn: None,
            byzantine: Vec::new(),
        }
    }
}

impl ScenarioConfig {
    /// Validates the knobs that can be checked from the config alone.
    /// Strategy-dependent interactions are checked by
    /// [`validate_with_strategy`] when the engine is built.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadScenario`] naming the first bad knob.
    pub fn validate(&self, num_clients: usize) -> Result<(), ConfigError> {
        if let AggregationMode::BufferedAsync { max_staleness, mixing } = self.aggregation {
            if max_staleness.as_micros() == 0 {
                return Err(ConfigError::BadScenario("max_staleness must be positive"));
            }
            if !(mixing > 0.0 && mixing <= 1.0) {
                return Err(ConfigError::BadScenario("async mixing outside (0, 1]"));
            }
            if self.robust != RobustAggregation::Mean {
                return Err(ConfigError::BadScenario(
                    "robust aggregation needs the full synchronous buffer",
                ));
            }
        }
        if let RobustAggregation::TrimmedMean { trim_ratio } = self.robust {
            if !(0.0..0.5).contains(&trim_ratio) {
                return Err(ConfigError::BadScenario("trim_ratio outside [0, 0.5)"));
            }
        }
        if let Some(churn) = &self.churn {
            for (name, p) in [
                ("leave_prob", churn.leave_prob),
                ("rejoin_prob", churn.rejoin_prob),
                ("crash_prob", churn.crash_prob),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    let _ = name;
                    return Err(ConfigError::BadScenario("churn probability outside [0, 1]"));
                }
            }
        }
        let mut seen = vec![false; num_clients];
        for spec in &self.byzantine {
            if spec.client >= num_clients {
                return Err(ConfigError::BadScenario("byzantine client id out of range"));
            }
            if std::mem::replace(&mut seen[spec.client], true) {
                return Err(ConfigError::BadScenario("duplicate byzantine client"));
            }
            if let Attack::ScaledNoise { scale } = spec.attack {
                if !(scale.is_finite() && scale > 0.0) {
                    return Err(ConfigError::BadScenario("noise scale must be finite and > 0"));
                }
            }
        }
        Ok(())
    }

    /// Looks up the attack assigned to `client`, if any.
    pub fn attack_for(&self, client: usize) -> Option<Attack> {
        self.byzantine.iter().find(|s| s.client == client).map(|s| s.attack)
    }

    /// True when every knob is at its inert default — the engine skips
    /// all scenario bookkeeping in that case.
    pub fn is_inert(&self) -> bool {
        *self == ScenarioConfig::default()
    }
}

/// Rejects scenario × strategy combinations whose semantics are
/// undefined. Called by the engine constructor, where the strategy is
/// known.
///
/// # Errors
///
/// Returns [`ConfigError::BadScenario`] for: buffered-async with FedNova
/// (its normalized fold needs the whole round's buffer), robust
/// aggregation with FedNova (same reason), and churn with TiFL (tier
/// bookkeeping assumes a stable population).
pub fn validate_with_strategy(
    scenario: &ScenarioConfig,
    strategy: &Strategy,
) -> Result<(), ConfigError> {
    let fednova = matches!(strategy, Strategy::FedNova);
    if fednova && scenario.aggregation != AggregationMode::Synchronous {
        return Err(ConfigError::BadScenario(
            "buffered-async aggregation is incompatible with FedNova's normalized fold",
        ));
    }
    if fednova && scenario.robust != RobustAggregation::Mean {
        return Err(ConfigError::BadScenario(
            "robust aggregation replaces the mean; FedNova requires its normalized mean",
        ));
    }
    if scenario.churn.is_some() && matches!(strategy, Strategy::Tifl { .. }) {
        return Err(ConfigError::BadScenario(
            "churn-aware selection is not implemented for TiFL's tier state",
        ));
    }
    Ok(())
}

/// FedLGA-style linear staleness discount: `max(0, 1 − s/max)`.
///
/// Exactly `1.0` for a fresh update, exactly `0.0` at (or beyond) the
/// staleness bound — an all-stale round therefore leaves the global
/// model bit-identical to its round-start value.
///
/// ```
/// use aergia::scenario::staleness_weight;
/// use aergia_simnet::SimDuration;
///
/// let max = SimDuration::from_secs_f64(10.0);
/// assert_eq!(staleness_weight(SimDuration::from_micros(0), max), 1.0);
/// assert_eq!(staleness_weight(SimDuration::from_secs_f64(5.0), max), 0.5);
/// assert_eq!(staleness_weight(max, max), 0.0);
/// assert_eq!(staleness_weight(SimDuration::from_secs_f64(99.0), max), 0.0);
/// ```
pub fn staleness_weight(staleness: SimDuration, max_staleness: SimDuration) -> f64 {
    if max_staleness.as_micros() == 0 || staleness.as_micros() >= max_staleness.as_micros() {
        return 0.0;
    }
    1.0 - staleness.as_secs_f64() / max_staleness.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn async_scenario(mixing: f64) -> ScenarioConfig {
        ScenarioConfig {
            aggregation: AggregationMode::BufferedAsync {
                max_staleness: SimDuration::from_secs_f64(60.0),
                mixing,
            },
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn default_is_inert_and_valid() {
        let s = ScenarioConfig::default();
        assert!(s.is_inert());
        s.validate(4).unwrap();
        for strategy in [
            Strategy::FedAvg,
            Strategy::FedNova,
            Strategy::tifl_default(),
            Strategy::aergia_default(),
        ] {
            validate_with_strategy(&s, &strategy).unwrap();
        }
    }

    #[test]
    fn async_knobs_are_range_checked() {
        async_scenario(1.0).validate(4).unwrap();
        for bad in [0.0, -0.5, 1.5] {
            assert!(matches!(async_scenario(bad).validate(4), Err(ConfigError::BadScenario(_))));
        }
        let zero_window = ScenarioConfig {
            aggregation: AggregationMode::BufferedAsync {
                max_staleness: SimDuration::from_micros(0),
                mixing: 0.5,
            },
            ..ScenarioConfig::default()
        };
        assert!(matches!(zero_window.validate(4), Err(ConfigError::BadScenario(_))));
    }

    #[test]
    fn async_excludes_robust_aggregation() {
        let s =
            ScenarioConfig { robust: RobustAggregation::CoordinateMedian, ..async_scenario(0.5) };
        assert!(matches!(s.validate(4), Err(ConfigError::BadScenario(_))));
    }

    #[test]
    fn trim_ratio_is_range_checked() {
        for (ratio, ok) in [(0.0, true), (0.25, true), (0.49, true), (0.5, false), (-0.1, false)] {
            let s = ScenarioConfig {
                robust: RobustAggregation::TrimmedMean { trim_ratio: ratio },
                ..ScenarioConfig::default()
            };
            assert_eq!(s.validate(4).is_ok(), ok, "ratio {ratio}");
        }
    }

    #[test]
    fn churn_probabilities_are_range_checked() {
        let churn = |leave, rejoin, crash| ScenarioConfig {
            churn: Some(ChurnConfig {
                leave_prob: leave,
                rejoin_prob: rejoin,
                crash_prob: crash,
                offload_policy: OffloadPolicy::Drop,
            }),
            ..ScenarioConfig::default()
        };
        churn(0.2, 0.6, 0.3).validate(4).unwrap();
        churn(0.0, 1.0, 0.0).validate(4).unwrap();
        for bad in [churn(-0.1, 0.5, 0.5), churn(0.5, 1.1, 0.5), churn(0.5, 0.5, 2.0)] {
            assert!(matches!(bad.validate(4), Err(ConfigError::BadScenario(_))));
        }
    }

    #[test]
    fn byzantine_specs_are_checked() {
        let spec = |client, attack| ScenarioConfig {
            byzantine: vec![ByzantineSpec { client, attack }],
            ..ScenarioConfig::default()
        };
        spec(3, Attack::SignFlip).validate(4).unwrap();
        assert!(matches!(spec(4, Attack::SignFlip).validate(4), Err(ConfigError::BadScenario(_))));
        assert!(matches!(
            spec(0, Attack::ScaledNoise { scale: 0.0 }).validate(4),
            Err(ConfigError::BadScenario(_))
        ));
        assert!(matches!(
            spec(0, Attack::ScaledNoise { scale: f32::NAN }).validate(4),
            Err(ConfigError::BadScenario(_))
        ));
        let dup = ScenarioConfig {
            byzantine: vec![
                ByzantineSpec { client: 1, attack: Attack::SignFlip },
                ByzantineSpec { client: 1, attack: Attack::ScaledNoise { scale: 1.0 } },
            ],
            ..ScenarioConfig::default()
        };
        assert!(matches!(dup.validate(4), Err(ConfigError::BadScenario(_))));
    }

    #[test]
    fn strategy_interactions_are_rejected() {
        assert!(validate_with_strategy(&async_scenario(0.5), &Strategy::FedNova).is_err());
        let robust = ScenarioConfig {
            robust: RobustAggregation::CoordinateMedian,
            ..ScenarioConfig::default()
        };
        assert!(validate_with_strategy(&robust, &Strategy::FedNova).is_err());
        let churn = ScenarioConfig {
            churn: Some(ChurnConfig {
                leave_prob: 0.1,
                rejoin_prob: 0.9,
                crash_prob: 0.1,
                offload_policy: OffloadPolicy::Reschedule,
            }),
            ..ScenarioConfig::default()
        };
        assert!(validate_with_strategy(&churn, &Strategy::tifl_default()).is_err());
        validate_with_strategy(&churn, &Strategy::aergia_default()).unwrap();
    }

    #[test]
    fn attack_lookup_finds_the_spec() {
        let s = ScenarioConfig {
            byzantine: vec![ByzantineSpec { client: 2, attack: Attack::SignFlip }],
            ..ScenarioConfig::default()
        };
        assert_eq!(s.attack_for(2), Some(Attack::SignFlip));
        assert_eq!(s.attack_for(1), None);
    }

    #[test]
    fn staleness_weight_is_linear_and_clamped() {
        let max = SimDuration::from_secs_f64(2.0);
        assert_eq!(staleness_weight(SimDuration::from_micros(0), max), 1.0);
        assert_eq!(staleness_weight(SimDuration::from_secs_f64(1.0), max), 0.5);
        assert_eq!(staleness_weight(max, max), 0.0);
        assert_eq!(staleness_weight(SimDuration::from_secs_f64(100.0), max), 0.0);
        assert_eq!(staleness_weight(SimDuration::from_micros(1), SimDuration::from_micros(0)), 0.0);
    }
}
