//! The federator's offloading scheduler — Algorithms 1 and 2 of the paper.
//!
//! Given the profile reports of the round's participants and the enclave's
//! dataset-similarity matrix, the scheduler computes the mean completion
//! time (`mct`), classifies clients into *senders* (stragglers whose
//! estimated completion exceeds `mct`) and *receivers*, and greedily
//! matches each sender — weakest first, because the round ends with the
//! weakest client — to the receiver minimising the similarity-weighted
//! cost `ct · (1 + ln(S_{c,k} · f + 1))` (Algorithm 1, line 24).
//!
//! ## A note on Algorithm 2 (`calc_op`)
//!
//! As printed, the recurrence `max((r_a−d)·t_a + d·x_b, (r_b−d)·t_b)` is
//! monotonically decreasing in `d` whenever `x_b < t_a` (both branches
//! fall as `d` grows), so the early-return-on-increase that the algorithm
//! is built around would never trigger and the "optimal" point would
//! always be `d = min(r_a, r_b)`. The structure of the algorithm (scan
//! until the cost starts rising) only makes sense for the unimodal
//! variant in which the receiver pays for the offloaded batches *in
//! addition to* its own work:
//!
//! ```text
//! ct(d) = max((r_a − d)·t_a,  r_b·t_b + d·x_b)
//! ```
//!
//! [`calc_op`] implements this unimodal form (the crossing of a falling
//! and a rising line) and is what [`schedule`] uses; [`calc_op_printed`]
//! implements the formula exactly as printed for the ablation bench
//! (`ablation_calc_op`). See `DESIGN.md` §4.

use serde::{Deserialize, Serialize};

/// Per-client inputs to Algorithm 1, derived from a
/// [`crate::profiler::ProfileReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientPerf {
    /// Client identifier (indexes the similarity matrix).
    pub id: usize,
    /// Per-batch cost of phases 1–3 (ff + fc + bc), seconds.
    pub t123: f64,
    /// Per-batch cost of phase 4 (bf), seconds.
    pub t4: f64,
    /// Per-batch cost of feature-only training (the paper's `x_b`).
    pub feature_only: f64,
    /// Local batch updates still to execute this round.
    pub remaining: u32,
}

impl ClientPerf {
    /// Full per-batch cost `t_{1,2,3} + t_4`.
    pub fn full_batch(&self) -> f64 {
        self.t123 + self.t4
    }

    /// Estimated completion time `ru · (t_{1,2,3} + t_4)` (Algorithm 1,
    /// line 12).
    pub fn estimated_completion(&self) -> f64 {
        f64::from(self.remaining) * self.full_batch()
    }
}

/// One sender→receiver offloading decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// The straggler that freezes and offloads.
    pub sender: usize,
    /// The strong client that trains the offloaded feature layers.
    pub receiver: usize,
    /// Number of offloaded batches the receiver should run (`op`).
    pub offload_batches: u32,
    /// Estimated pair completion time used in the cost comparison.
    pub estimated_ct: f64,
}

/// The output of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OffloadSchedule {
    /// Mean completion time across participants (the target).
    pub mct: f64,
    /// Matched sender/receiver pairs.
    pub assignments: Vec<Assignment>,
    /// Stragglers that could not be matched (receivers exhausted).
    pub unmatched_senders: Vec<usize>,
}

impl OffloadSchedule {
    /// The assignment whose sender is `client`, if any.
    pub fn assignment_for_sender(&self, client: usize) -> Option<&Assignment> {
        self.assignments.iter().find(|a| a.sender == client)
    }

    /// The assignment whose receiver is `client`, if any.
    pub fn assignment_for_receiver(&self, client: usize) -> Option<&Assignment> {
        self.assignments.iter().find(|a| a.receiver == client)
    }
}

/// Algorithm 2, unimodal form: the optimal number of offloaded batches
/// between straggler `a` and receiver `b`.
///
/// Scans `d = 1..=min(ra, rb)` and stops as soon as the cost rises,
/// returning `(best_ct, best_d)`. Returns `(∞, 0)` when either side has no
/// remaining updates.
pub fn calc_op(ta: f64, tb: f64, xb: f64, ra: u32, rb: u32) -> (f64, u32) {
    let mut ct = f64::INFINITY;
    let mut best_d = 0u32;
    for d in 1..=ra.min(rb) {
        let current = (f64::from(ra - d) * ta).max(f64::from(rb) * tb + f64::from(d) * xb);
        if current > ct {
            return (ct, best_d);
        }
        ct = current;
        best_d = d;
    }
    (ct, best_d)
}

/// Algorithm 2 with the recurrence exactly as printed in the paper
/// (`max((r_a−d)·t_a + d·x_b, (r_b−d)·t_b)`), for the ablation study.
pub fn calc_op_printed(ta: f64, tb: f64, xb: f64, ra: u32, rb: u32) -> (f64, u32) {
    let mut ct = f64::INFINITY;
    let mut best_d = 0u32;
    for d in 1..=ra.min(rb) {
        let current = (f64::from(ra - d) * ta + f64::from(d) * xb).max(f64::from(rb - d) * tb);
        if current > ct {
            return (ct, best_d);
        }
        ct = current;
        best_d = d;
    }
    (ct, best_d)
}

/// Which `calc_op` variant [`schedule`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OpVariant {
    /// The unimodal corrected form (default).
    #[default]
    Unimodal,
    /// The formula exactly as printed in the paper.
    Printed,
}

/// Algorithm 1: computes the round's freezing/offloading schedule.
///
/// `similarity[i][j]` must hold the EMD distance between the datasets of
/// clients `i` and `j` (0 = identical); `f` is the similarity factor of
/// line 24 (`f = 0` ignores data similarity entirely).
///
/// # Panics
///
/// Panics if a [`ClientPerf::id`] indexes outside `similarity` or if `f`
/// is negative.
pub fn schedule(
    perfs: &[ClientPerf],
    similarity: &[Vec<f64>],
    f: f64,
    variant: OpVariant,
) -> OffloadSchedule {
    assert!(f >= 0.0, "schedule: negative similarity factor {f}");
    if perfs.is_empty() {
        return OffloadSchedule::default();
    }

    // Line 12: mean completion time over the active clients.
    let mct = perfs.iter().map(ClientPerf::estimated_completion).sum::<f64>() / perfs.len() as f64;

    // Lines 13–14: senders are the clients that would overshoot mct.
    let mut sending: Vec<&ClientPerf> =
        perfs.iter().filter(|p| p.estimated_completion() > mct).collect();
    let mut receiving: Vec<&ClientPerf> =
        perfs.iter().filter(|p| p.estimated_completion() <= mct).collect();

    // Lines 15–16: weakest senders first (the round ends with the weakest
    // client), strongest receivers first.
    sending.sort_by(|a, b| {
        b.estimated_completion().total_cmp(&a.estimated_completion()).then(a.id.cmp(&b.id))
    });
    receiving.sort_by(|a, b| {
        a.estimated_completion().total_cmp(&b.estimated_completion()).then(a.id.cmp(&b.id))
    });

    let mut assignments = Vec::new();
    let mut unmatched = Vec::new();

    for sender in &sending {
        if receiving.is_empty() {
            unmatched.push(sender.id);
            continue;
        }
        let mut selected: Option<(usize, Assignment)> = None;
        let mut best_cost = f64::INFINITY;
        for (slot, receiver) in receiving.iter().enumerate() {
            let (ct, d) = match variant {
                OpVariant::Unimodal => calc_op(
                    sender.full_batch(),
                    receiver.full_batch(),
                    receiver.feature_only,
                    sender.remaining,
                    receiver.remaining,
                ),
                OpVariant::Printed => calc_op_printed(
                    sender.full_batch(),
                    receiver.full_batch(),
                    receiver.feature_only,
                    sender.remaining,
                    receiver.remaining,
                ),
            };
            if d == 0 {
                continue;
            }
            let s = similarity[sender.id][receiver.id];
            // Line 24: similarity-weighted cost.
            let cost = ct * (1.0 + (s * f + 1.0).ln());
            if cost < best_cost {
                best_cost = cost;
                selected = Some((
                    slot,
                    Assignment {
                        sender: sender.id,
                        receiver: receiver.id,
                        offload_batches: d,
                        estimated_ct: ct,
                    },
                ));
            }
        }
        match selected {
            Some((slot, assignment)) => {
                // Line 29: a strong client serves at most one straggler.
                receiving.remove(slot);
                assignments.push(assignment);
            }
            None => unmatched.push(sender.id),
        }
    }

    OffloadSchedule { mct, assignments, unmatched_senders: unmatched }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(id: usize, full: f64, remaining: u32) -> ClientPerf {
        // Typical CNN shape: bf ≈ 60% of a batch, features ≈ 80%.
        ClientPerf { id, t123: 0.4 * full, t4: 0.6 * full, feature_only: 0.8 * full, remaining }
    }

    fn no_similarity(n: usize) -> Vec<Vec<f64>> {
        vec![vec![0.0; n]; n]
    }

    #[test]
    fn calc_op_finds_the_crossing_point() {
        // a: 10 updates at 2 s; b: 10 updates at 0.5 s, features 0.4 s.
        let (ct, d) = calc_op(2.0, 0.5, 0.4, 10, 10);
        assert!(d > 0 && d <= 10);
        // Cost at the optimum beats both extremes.
        let at = |d: u32| (f64::from(10 - d) * 2.0).max(10.0 * 0.5 + f64::from(d) * 0.4);
        assert!(ct <= at(1));
        assert!(ct <= at(10));
        assert!((ct - at(d)).abs() < 1e-12);
    }

    #[test]
    fn calc_op_zero_updates_is_infinite() {
        assert_eq!(calc_op(1.0, 1.0, 0.5, 0, 10), (f64::INFINITY, 0));
        assert_eq!(calc_op(1.0, 1.0, 0.5, 10, 0), (f64::INFINITY, 0));
    }

    #[test]
    fn calc_op_printed_monotone_case_takes_max_d() {
        // With xb < ta both branches of the printed formula fall in d, so
        // it runs to d = min(ra, rb).
        let (_, d) = calc_op_printed(2.0, 0.5, 0.4, 8, 12);
        assert_eq!(d, 8);
    }

    #[test]
    fn homogeneous_cluster_needs_no_offloading() {
        let perfs: Vec<ClientPerf> = (0..6).map(|i| perf(i, 1.0, 20)).collect();
        let sched = schedule(&perfs, &no_similarity(6), 0.0, OpVariant::Unimodal);
        assert!(sched.assignments.is_empty());
        assert!(sched.unmatched_senders.is_empty());
        assert!((sched.mct - 20.0).abs() < 1e-9);
    }

    #[test]
    fn single_straggler_offloads_to_a_strong_client() {
        let mut perfs: Vec<ClientPerf> = (0..4).map(|i| perf(i, 0.5, 20)).collect();
        perfs.push(perf(4, 4.0, 20)); // the straggler
        let sched = schedule(&perfs, &no_similarity(5), 0.0, OpVariant::Unimodal);
        assert_eq!(sched.assignments.len(), 1);
        let a = &sched.assignments[0];
        assert_eq!(a.sender, 4);
        assert!(a.receiver < 4);
        assert!(a.offload_batches > 0);
        // The schedule must beat the straggler's solo completion.
        assert!(a.estimated_ct < 80.0);
    }

    #[test]
    fn receivers_are_used_at_most_once() {
        // Three stragglers, two strong clients: one straggler unmatched.
        let mut perfs: Vec<ClientPerf> = (0..2).map(|i| perf(i, 0.4, 20)).collect();
        perfs.extend((2..5).map(|i| perf(i, 5.0, 20)));
        let sched = schedule(&perfs, &no_similarity(5), 0.0, OpVariant::Unimodal);
        let mut receivers: Vec<usize> = sched.assignments.iter().map(|a| a.receiver).collect();
        receivers.sort_unstable();
        receivers.dedup();
        assert_eq!(receivers.len(), sched.assignments.len(), "receiver reused");
        assert_eq!(sched.assignments.len() + sched.unmatched_senders.len(), 3);
    }

    #[test]
    fn weakest_sender_is_matched_first() {
        // One strong receiver, two stragglers of different severity (both
        // above mct = 74): the weaker straggler must get the receiver.
        let perfs = vec![perf(0, 0.1, 20), perf(1, 5.0, 20), perf(2, 6.0, 20)];
        let sched = schedule(&perfs, &no_similarity(3), 0.0, OpVariant::Unimodal);
        assert_eq!(sched.assignments.len(), 1);
        assert_eq!(sched.assignments[0].sender, 2, "weakest client must be served first");
        assert_eq!(sched.unmatched_senders, vec![1]);
    }

    #[test]
    fn similarity_steers_the_matching() {
        // Two equal receivers (1, 2); receiver 2's dataset is identical to
        // the straggler's, receiver 1's is maximally distant.
        let perfs = vec![perf(0, 4.0, 20), perf(1, 0.5, 20), perf(2, 0.5, 20)];
        let mut sim = no_similarity(3);
        sim[0][1] = 9.0;
        sim[1][0] = 9.0;
        sim[0][2] = 0.0;
        // With f = 0 similarity is ignored; ties break on stronger id order.
        let ignore = schedule(&perfs, &sim, 0.0, OpVariant::Unimodal);
        assert_eq!(ignore.assignments.len(), 1);
        // With f = 1 the similar receiver must win.
        let aware = schedule(&perfs, &sim, 1.0, OpVariant::Unimodal);
        assert_eq!(aware.assignments[0].receiver, 2);
    }

    #[test]
    fn higher_similarity_factor_never_picks_a_more_distant_receiver() {
        let perfs = vec![perf(0, 4.0, 16), perf(1, 0.6, 16), perf(2, 0.5, 16)];
        let mut sim = no_similarity(3);
        sim[0][2] = 5.0; // the slightly faster receiver has alien data
        sim[2][0] = 5.0;
        let f0 = schedule(&perfs, &sim, 0.0, OpVariant::Unimodal);
        let f1 = schedule(&perfs, &sim, 1.0, OpVariant::Unimodal);
        assert_eq!(f0.assignments[0].receiver, 2, "f=0 goes purely by speed");
        assert_eq!(f1.assignments[0].receiver, 1, "f=1 trades speed for similarity");
    }

    #[test]
    fn empty_input_yields_empty_schedule() {
        let sched = schedule(&[], &no_similarity(0), 0.5, OpVariant::Unimodal);
        assert_eq!(sched, OffloadSchedule::default());
    }

    #[test]
    fn lookup_helpers_find_assignments() {
        let perfs = vec![perf(0, 4.0, 20), perf(1, 0.5, 20)];
        let sched = schedule(&perfs, &no_similarity(2), 0.0, OpVariant::Unimodal);
        assert!(sched.assignment_for_sender(0).is_some());
        assert!(sched.assignment_for_receiver(1).is_some());
        assert!(sched.assignment_for_sender(1).is_none());
    }
}
