//! The federator's offloading scheduler — Algorithms 1 and 2 of the paper.
//!
//! Given the profile reports of the round's participants and the enclave's
//! dataset-similarity matrix, the scheduler computes the mean completion
//! time (`mct`), classifies clients into *senders* (stragglers whose
//! estimated completion exceeds `mct`) and *receivers*, and greedily
//! matches each sender — weakest first, because the round ends with the
//! weakest client — to the receiver minimising the similarity-weighted
//! cost `ct · (1 + ln(S_{c,k} · f + 1))` (Algorithm 1, line 24).
//!
//! ## A note on Algorithm 2 (`calc_op`)
//!
//! As printed, the recurrence `max((r_a−d)·t_a + d·x_b, (r_b−d)·t_b)` is
//! monotonically decreasing in `d` whenever `x_b < t_a` (both branches
//! fall as `d` grows), so the early-return-on-increase that the algorithm
//! is built around would never trigger and the "optimal" point would
//! always be `d = min(r_a, r_b)`. The structure of the algorithm (scan
//! until the cost starts rising) only makes sense for the unimodal
//! variant in which the receiver pays for the offloaded batches *in
//! addition to* its own work:
//!
//! ```text
//! ct(d) = max((r_a − d)·t_a,  r_b·t_b + d·x_b)
//! ```
//!
//! [`calc_op`] implements this unimodal form (the crossing of a falling
//! and a rising line) and is what [`schedule`] uses; [`calc_op_printed`]
//! implements the formula exactly as printed for the ablation bench
//! (`ablation_calc_op`). See `DESIGN.md` §4.

use serde::{Deserialize, Serialize};

/// Per-client inputs to Algorithm 1, derived from a
/// [`crate::profiler::ProfileReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientPerf {
    /// Client identifier (indexes the similarity matrix).
    pub id: usize,
    /// Per-batch cost of phases 1–3 (ff + fc + bc), seconds.
    pub t123: f64,
    /// Per-batch cost of phase 4 (bf), seconds.
    pub t4: f64,
    /// Per-batch cost of feature-only training (the paper's `x_b`).
    pub feature_only: f64,
    /// Local batch updates still to execute this round.
    pub remaining: u32,
}

impl ClientPerf {
    /// Full per-batch cost `t_{1,2,3} + t_4`.
    pub fn full_batch(&self) -> f64 {
        self.t123 + self.t4
    }

    /// Estimated completion time `ru · (t_{1,2,3} + t_4)` (Algorithm 1,
    /// line 12).
    pub fn estimated_completion(&self) -> f64 {
        f64::from(self.remaining) * self.full_batch()
    }
}

/// One sender→receiver offloading decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// The straggler that freezes and offloads.
    pub sender: usize,
    /// The strong client that trains the offloaded feature layers.
    pub receiver: usize,
    /// Number of offloaded batches the receiver should run (`op`).
    pub offload_batches: u32,
    /// Estimated pair completion time used in the cost comparison.
    pub estimated_ct: f64,
}

/// The output of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OffloadSchedule {
    /// Mean completion time across participants (the target).
    pub mct: f64,
    /// Matched sender/receiver pairs.
    pub assignments: Vec<Assignment>,
    /// Stragglers that could not be matched (receivers exhausted).
    pub unmatched_senders: Vec<usize>,
}

impl OffloadSchedule {
    /// The assignment whose sender is `client`, if any.
    pub fn assignment_for_sender(&self, client: usize) -> Option<&Assignment> {
        self.assignments.iter().find(|a| a.sender == client)
    }

    /// The assignment whose receiver is `client`, if any.
    pub fn assignment_for_receiver(&self, client: usize) -> Option<&Assignment> {
        self.assignments.iter().find(|a| a.receiver == client)
    }
}

/// Algorithm 2, unimodal form: the optimal number of offloaded batches
/// between straggler `a` and receiver `b`.
///
/// Semantically identical to [`calc_op_reference`] — scan `d = 1..=min(ra,
/// rb)` and stop as soon as the cost rises — but instead of walking from
/// `d = 1` it jumps to just below the crossing of the falling sender line
/// `(r_a − d)·t_a` and the rising receiver line `r_b·t_b + d·x_b` and scans
/// the last few candidates from there, making the common case O(1) instead
/// of O(min(ra, rb)). The scan before the jump point is provably
/// non-increasing (`d < θ − 1` keeps the falling branch strictly dominant
/// by more than one `t_a + x_b` step, far above f32/f64 rounding), so the
/// two functions return bit-identical `(ct, d)` — a property test sweeps
/// random inputs against the reference.
///
/// Returns `(∞, 0)` when either side has no remaining updates.
pub fn calc_op(ta: f64, tb: f64, xb: f64, ra: u32, rb: u32) -> (f64, u32) {
    calc_op_from_base(ta, xb, ra, rb, f64::from(rb) * tb)
}

/// [`calc_op`] with the receiver's fixed base load `r_b·t_b` precomputed —
/// [`schedule`] hoists that product out of its sender × receiver loop.
fn calc_op_from_base(ta: f64, xb: f64, ra: u32, rb: u32, base: f64) -> (f64, u32) {
    let dmax = ra.min(rb);
    if dmax == 0 {
        return (f64::INFINITY, 0);
    }
    // Exactly the reference recurrence; `base` replaces `rb·tb`.
    let cost = |d: u32| (f64::from(ra - d) * ta).max(base + f64::from(d) * xb);

    // First d where the cost can start rising: the crossing point of the
    // two branches, θ = (ra·ta − base − xb)/(ta + xb). Two steps of slack
    // absorb floating-point error in θ itself; the subsequent scan uses
    // the exact reference arithmetic, so the early start never changes
    // the result, only skips provably non-increasing prefix work.
    let denominator = ta + xb;
    let mut d = 1u32;
    let mut ct = f64::INFINITY;
    let mut best_d = 0u32;
    if denominator > 0.0 && denominator.is_finite() {
        let theta = (f64::from(ra) * ta - base - xb) / denominator;
        if theta.is_finite() && theta >= 3.0 {
            // f64-to-u32 casts saturate, so huge θ clamps to dmax.
            let start = ((theta as u32).saturating_sub(2)).min(dmax);
            if start > 1 {
                d = start;
                best_d = start - 1;
                ct = cost(start - 1);
            }
        }
    }
    while d <= dmax {
        let current = cost(d);
        if current > ct {
            return (ct, best_d);
        }
        ct = current;
        best_d = d;
        d += 1;
    }
    (ct, best_d)
}

/// The original linear-scan form of [`calc_op`], kept as the oracle for
/// the jump-start optimisation (and for the ablation benches' baseline).
pub fn calc_op_reference(ta: f64, tb: f64, xb: f64, ra: u32, rb: u32) -> (f64, u32) {
    let mut ct = f64::INFINITY;
    let mut best_d = 0u32;
    for d in 1..=ra.min(rb) {
        let current = (f64::from(ra - d) * ta).max(f64::from(rb) * tb + f64::from(d) * xb);
        if current > ct {
            return (ct, best_d);
        }
        ct = current;
        best_d = d;
    }
    (ct, best_d)
}

/// Algorithm 2 with the recurrence exactly as printed in the paper
/// (`max((r_a−d)·t_a + d·x_b, (r_b−d)·t_b)`), for the ablation study.
pub fn calc_op_printed(ta: f64, tb: f64, xb: f64, ra: u32, rb: u32) -> (f64, u32) {
    let mut ct = f64::INFINITY;
    let mut best_d = 0u32;
    for d in 1..=ra.min(rb) {
        let current = (f64::from(ra - d) * ta + f64::from(d) * xb).max(f64::from(rb - d) * tb);
        if current > ct {
            return (ct, best_d);
        }
        ct = current;
        best_d = d;
    }
    (ct, best_d)
}

/// Which `calc_op` variant [`schedule`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OpVariant {
    /// The unimodal corrected form (default).
    #[default]
    Unimodal,
    /// The formula exactly as printed in the paper.
    Printed,
}

/// Algorithm 1: computes the round's freezing/offloading schedule.
///
/// `similarity[i][j]` must hold the EMD distance between the datasets of
/// clients `i` and `j` (0 = identical); `f` is the similarity factor of
/// line 24 (`f = 0` ignores data similarity entirely).
///
/// # Panics
///
/// Panics if a [`ClientPerf::id`] indexes outside `similarity` or if `f`
/// is negative.
pub fn schedule(
    perfs: &[ClientPerf],
    similarity: &[Vec<f64>],
    f: f64,
    variant: OpVariant,
) -> OffloadSchedule {
    assert!(f >= 0.0, "schedule: negative similarity factor {f}");
    if perfs.is_empty() {
        return OffloadSchedule::default();
    }

    // Line 12: mean completion time over the active clients.
    let mct = perfs.iter().map(ClientPerf::estimated_completion).sum::<f64>() / perfs.len() as f64;

    // Lines 13–14: senders are the clients that would overshoot mct.
    let mut sending: Vec<&ClientPerf> =
        perfs.iter().filter(|p| p.estimated_completion() > mct).collect();
    let mut receiving: Vec<&ClientPerf> =
        perfs.iter().filter(|p| p.estimated_completion() <= mct).collect();

    // Lines 15–16: weakest senders first (the round ends with the weakest
    // client), strongest receivers first.
    sending.sort_by(|a, b| {
        b.estimated_completion().total_cmp(&a.estimated_completion()).then(a.id.cmp(&b.id))
    });
    receiving.sort_by(|a, b| {
        a.estimated_completion().total_cmp(&b.estimated_completion()).then(a.id.cmp(&b.id))
    });

    // Every per-receiver quantity the matching loop needs — including the
    // running base load `r_b·t_b` that `calc_op` compares against — is
    // derived once here instead of once per (sender, receiver) pair. With
    // the jump-start `calc_op` the greedy match is O(senders × receivers)
    // instead of the previous O(senders × receivers × remaining).
    struct Receiver {
        id: usize,
        full_batch: f64,
        feature_only: f64,
        remaining: u32,
        base_load: f64,
        used: bool,
    }
    let mut receivers: Vec<Receiver> = receiving
        .iter()
        .map(|r| Receiver {
            id: r.id,
            full_batch: r.full_batch(),
            feature_only: r.feature_only,
            remaining: r.remaining,
            base_load: f64::from(r.remaining) * r.full_batch(),
            used: false,
        })
        .collect();

    let mut assignments = Vec::new();
    let mut unmatched = Vec::new();

    for sender in &sending {
        let sender_full = sender.full_batch();
        let mut selected: Option<(usize, Assignment)> = None;
        let mut best_cost = f64::INFINITY;
        for (slot, receiver) in receivers.iter().enumerate().filter(|(_, r)| !r.used) {
            let (ct, d) = match variant {
                OpVariant::Unimodal => calc_op_from_base(
                    sender_full,
                    receiver.feature_only,
                    sender.remaining,
                    receiver.remaining,
                    receiver.base_load,
                ),
                OpVariant::Printed => calc_op_printed(
                    sender_full,
                    receiver.full_batch,
                    receiver.feature_only,
                    sender.remaining,
                    receiver.remaining,
                ),
            };
            if d == 0 {
                continue;
            }
            let s = similarity[sender.id][receiver.id];
            // Line 24: similarity-weighted cost.
            let cost = ct * (1.0 + (s * f + 1.0).ln());
            if cost < best_cost {
                best_cost = cost;
                selected = Some((
                    slot,
                    Assignment {
                        sender: sender.id,
                        receiver: receiver.id,
                        offload_batches: d,
                        estimated_ct: ct,
                    },
                ));
            }
        }
        match selected {
            Some((slot, assignment)) => {
                // Line 29: a strong client serves at most one straggler.
                receivers[slot].used = true;
                assignments.push(assignment);
            }
            None => unmatched.push(sender.id),
        }
    }

    OffloadSchedule { mct, assignments, unmatched_senders: unmatched }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(id: usize, full: f64, remaining: u32) -> ClientPerf {
        // Typical CNN shape: bf ≈ 60% of a batch, features ≈ 80%.
        ClientPerf { id, t123: 0.4 * full, t4: 0.6 * full, feature_only: 0.8 * full, remaining }
    }

    fn no_similarity(n: usize) -> Vec<Vec<f64>> {
        vec![vec![0.0; n]; n]
    }

    #[test]
    fn calc_op_finds_the_crossing_point() {
        // a: 10 updates at 2 s; b: 10 updates at 0.5 s, features 0.4 s.
        let (ct, d) = calc_op(2.0, 0.5, 0.4, 10, 10);
        assert!(d > 0 && d <= 10);
        // Cost at the optimum beats both extremes.
        let at = |d: u32| (f64::from(10 - d) * 2.0).max(10.0 * 0.5 + f64::from(d) * 0.4);
        assert!(ct <= at(1));
        assert!(ct <= at(10));
        assert!((ct - at(d)).abs() < 1e-12);
    }

    #[test]
    fn calc_op_zero_updates_is_infinite() {
        assert_eq!(calc_op(1.0, 1.0, 0.5, 0, 10), (f64::INFINITY, 0));
        assert_eq!(calc_op(1.0, 1.0, 0.5, 10, 0), (f64::INFINITY, 0));
        assert_eq!(calc_op_reference(1.0, 1.0, 0.5, 0, 10), (f64::INFINITY, 0));
    }

    /// The jump-start `calc_op` must return *bit-identical* `(ct, d)` to
    /// the linear-scan reference: a seeded sweep over magnitudes from
    /// degenerate (zero costs) to paper-scale (1600 remaining updates).
    #[test]
    fn calc_op_matches_reference_on_random_sweep() {
        use rand::{rngs::StdRng, RngExt as _, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x0ca1c);
        for case in 0..20_000 {
            let scale = 10f64.powi(rng.random_range(-6..7));
            let ta = rng.random_range(0.0..scale);
            let tb = rng.random_range(0.0..scale);
            // xb spans "free" (0) through "dearer than a full batch".
            let xb = match case % 4 {
                0 => 0.0,
                1 => rng.random_range(0.0..1e-9) * scale,
                _ => rng.random_range(0.0..1.5) * ta.max(tb),
            };
            let ra = rng.random_range(0u32..2000);
            let rb = rng.random_range(0u32..2000);
            let fast = calc_op(ta, tb, xb, ra, rb);
            let slow = calc_op_reference(ta, tb, xb, ra, rb);
            assert_eq!(
                fast.0.to_bits(),
                slow.0.to_bits(),
                "ct diverged for ta={ta:e} tb={tb:e} xb={xb:e} ra={ra} rb={rb}"
            );
            assert_eq!(
                fast.1, slow.1,
                "d diverged for ta={ta:e} tb={tb:e} xb={xb:e} ra={ra} rb={rb}"
            );
        }
    }

    #[test]
    fn calc_op_matches_reference_on_adversarial_corners() {
        for (ta, tb, xb, ra, rb) in [
            (0.0, 0.0, 0.0, 50, 50),
            (1.0, 0.0, 0.0, 1000, 1000),
            (0.0, 1.0, 0.5, 100, 3),
            (2.0, 0.5, 0.4, 10, 10),
            (1e-300, 1.0, 1e-300, 1999, 1999),
            (1e300, 1e300, 1e300, 2000, 2000),
            (1.0, 1.0, f64::MIN_POSITIVE, 500, 500),
            (5.0, 0.1, 0.1, 1, 1),
            (5.0, 0.1, 0.1, 2, 1600),
        ] {
            assert_eq!(
                calc_op(ta, tb, xb, ra, rb),
                calc_op_reference(ta, tb, xb, ra, rb),
                "corner ta={ta:e} tb={tb:e} xb={xb:e} ra={ra} rb={rb}"
            );
        }
    }

    #[test]
    fn calc_op_printed_monotone_case_takes_max_d() {
        // With xb < ta both branches of the printed formula fall in d, so
        // it runs to d = min(ra, rb).
        let (_, d) = calc_op_printed(2.0, 0.5, 0.4, 8, 12);
        assert_eq!(d, 8);
    }

    #[test]
    fn homogeneous_cluster_needs_no_offloading() {
        let perfs: Vec<ClientPerf> = (0..6).map(|i| perf(i, 1.0, 20)).collect();
        let sched = schedule(&perfs, &no_similarity(6), 0.0, OpVariant::Unimodal);
        assert!(sched.assignments.is_empty());
        assert!(sched.unmatched_senders.is_empty());
        assert!((sched.mct - 20.0).abs() < 1e-9);
    }

    #[test]
    fn single_straggler_offloads_to_a_strong_client() {
        let mut perfs: Vec<ClientPerf> = (0..4).map(|i| perf(i, 0.5, 20)).collect();
        perfs.push(perf(4, 4.0, 20)); // the straggler
        let sched = schedule(&perfs, &no_similarity(5), 0.0, OpVariant::Unimodal);
        assert_eq!(sched.assignments.len(), 1);
        let a = &sched.assignments[0];
        assert_eq!(a.sender, 4);
        assert!(a.receiver < 4);
        assert!(a.offload_batches > 0);
        // The schedule must beat the straggler's solo completion.
        assert!(a.estimated_ct < 80.0);
    }

    #[test]
    fn receivers_are_used_at_most_once() {
        // Three stragglers, two strong clients: one straggler unmatched.
        let mut perfs: Vec<ClientPerf> = (0..2).map(|i| perf(i, 0.4, 20)).collect();
        perfs.extend((2..5).map(|i| perf(i, 5.0, 20)));
        let sched = schedule(&perfs, &no_similarity(5), 0.0, OpVariant::Unimodal);
        let mut receivers: Vec<usize> = sched.assignments.iter().map(|a| a.receiver).collect();
        receivers.sort_unstable();
        receivers.dedup();
        assert_eq!(receivers.len(), sched.assignments.len(), "receiver reused");
        assert_eq!(sched.assignments.len() + sched.unmatched_senders.len(), 3);
    }

    #[test]
    fn weakest_sender_is_matched_first() {
        // One strong receiver, two stragglers of different severity (both
        // above mct = 74): the weaker straggler must get the receiver.
        let perfs = vec![perf(0, 0.1, 20), perf(1, 5.0, 20), perf(2, 6.0, 20)];
        let sched = schedule(&perfs, &no_similarity(3), 0.0, OpVariant::Unimodal);
        assert_eq!(sched.assignments.len(), 1);
        assert_eq!(sched.assignments[0].sender, 2, "weakest client must be served first");
        assert_eq!(sched.unmatched_senders, vec![1]);
    }

    #[test]
    fn similarity_steers_the_matching() {
        // Two equal receivers (1, 2); receiver 2's dataset is identical to
        // the straggler's, receiver 1's is maximally distant.
        let perfs = vec![perf(0, 4.0, 20), perf(1, 0.5, 20), perf(2, 0.5, 20)];
        let mut sim = no_similarity(3);
        sim[0][1] = 9.0;
        sim[1][0] = 9.0;
        sim[0][2] = 0.0;
        // With f = 0 similarity is ignored; ties break on stronger id order.
        let ignore = schedule(&perfs, &sim, 0.0, OpVariant::Unimodal);
        assert_eq!(ignore.assignments.len(), 1);
        // With f = 1 the similar receiver must win.
        let aware = schedule(&perfs, &sim, 1.0, OpVariant::Unimodal);
        assert_eq!(aware.assignments[0].receiver, 2);
    }

    #[test]
    fn higher_similarity_factor_never_picks_a_more_distant_receiver() {
        let perfs = vec![perf(0, 4.0, 16), perf(1, 0.6, 16), perf(2, 0.5, 16)];
        let mut sim = no_similarity(3);
        sim[0][2] = 5.0; // the slightly faster receiver has alien data
        sim[2][0] = 5.0;
        let f0 = schedule(&perfs, &sim, 0.0, OpVariant::Unimodal);
        let f1 = schedule(&perfs, &sim, 1.0, OpVariant::Unimodal);
        assert_eq!(f0.assignments[0].receiver, 2, "f=0 goes purely by speed");
        assert_eq!(f1.assignments[0].receiver, 1, "f=1 trades speed for similarity");
    }

    #[test]
    fn empty_input_yields_empty_schedule() {
        let sched = schedule(&[], &no_similarity(0), 0.5, OpVariant::Unimodal);
        assert_eq!(sched, OffloadSchedule::default());
    }

    #[test]
    fn lookup_helpers_find_assignments() {
        let perfs = vec![perf(0, 4.0, 20), perf(1, 0.5, 20)];
        let sched = schedule(&perfs, &no_similarity(2), 0.0, OpVariant::Unimodal);
        assert!(sched.assignment_for_sender(0).is_some());
        assert!(sched.assignment_for_receiver(1).is_some());
        assert!(sched.assignment_for_sender(1).is_none());
    }
}
