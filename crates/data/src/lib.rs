//! Synthetic datasets, client partitioners and similarity metrics for the
//! Aergia reproduction.
//!
//! The paper evaluates on MNIST, FMNIST, CIFAR-10 (and, for profiling,
//! CIFAR-100). Real datasets cannot be downloaded in this environment, so
//! this crate generates *seeded synthetic stand-ins* with the same shapes
//! and class counts (see `DESIGN.md` §3): each class has a procedural
//! prototype image and samples are noisy, jittered copies. The difficulty
//! knobs are ordered so MNIST-like < FMNIST-like < CIFAR-like, preserving
//! the relative behaviour the evaluation depends on.
//!
//! The crate also provides the paper's two data-distribution mechanisms:
//!
//! * [`partition`] — IID and non-IID(k) **disjoint** client partitions
//!   (§5.1 “Heterogeneous Data Distribution”: clients sample 3 of 10
//!   classes),
//! * [`emd`] — the Earth Mover's Distance between client class
//!   distributions used by the enclave's similarity matrix (§4.4).
//!
//! # Examples
//!
//! ```
//! use aergia_data::spec::DatasetSpec;
//! use aergia_data::synth::DataConfig;
//!
//! let (train, test) = DataConfig {
//!     spec: DatasetSpec::MnistLike,
//!     train_size: 64,
//!     test_size: 32,
//!     seed: 7,
//! }
//! .generate_pair();
//! assert_eq!(train.len(), 64);
//! assert_eq!(test.dims(), (1, 28, 28));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod emd;
pub mod partition;
pub mod spec;
pub mod synth;

pub use spec::DatasetSpec;
pub use synth::{DataConfig, Dataset};
