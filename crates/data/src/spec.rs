//! Dataset specifications mirroring the paper's benchmarks.

use serde::{Deserialize, Serialize};

/// A synthetic stand-in for one of the paper's image benchmarks.
///
/// Image shapes and class counts match the originals; the `noise_std` /
/// `class_overlap` knobs order the classification difficulty the same way
/// (MNIST easiest, CIFAR hardest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DatasetSpec {
    /// 28×28 grayscale, 10 well-separated classes (stands in for MNIST).
    MnistLike,
    /// 28×28 grayscale, 10 classes with more overlap (FMNIST).
    FmnistLike,
    /// 32×32 RGB, 10 overlapping classes (CIFAR-10).
    Cifar10Like,
    /// 32×32 RGB, 100 overlapping classes (CIFAR-100).
    Cifar100Like,
}

impl DatasetSpec {
    /// All specs used somewhere in the evaluation.
    pub const ALL: [DatasetSpec; 4] = [
        DatasetSpec::MnistLike,
        DatasetSpec::FmnistLike,
        DatasetSpec::Cifar10Like,
        DatasetSpec::Cifar100Like,
    ];

    /// Image dimensions `(channels, height, width)`.
    pub fn dims(self) -> (usize, usize, usize) {
        match self {
            DatasetSpec::MnistLike | DatasetSpec::FmnistLike => (1, 28, 28),
            DatasetSpec::Cifar10Like | DatasetSpec::Cifar100Like => (3, 32, 32),
        }
    }

    /// Number of classes.
    pub fn num_classes(self) -> usize {
        match self {
            DatasetSpec::Cifar100Like => 100,
            _ => 10,
        }
    }

    /// Per-pixel Gaussian noise added to every sample.
    pub fn noise_std(self) -> f32 {
        match self {
            DatasetSpec::MnistLike => 0.15,
            DatasetSpec::FmnistLike => 0.25,
            DatasetSpec::Cifar10Like | DatasetSpec::Cifar100Like => 0.35,
        }
    }

    /// Fraction of a shared "background" prototype mixed into every class
    /// prototype; higher values make classes harder to tell apart.
    pub fn class_overlap(self) -> f32 {
        match self {
            DatasetSpec::MnistLike => 0.1,
            DatasetSpec::FmnistLike => 0.3,
            DatasetSpec::Cifar10Like | DatasetSpec::Cifar100Like => 0.5,
        }
    }

    /// Maximum absolute spatial jitter (pixels) applied to each sample.
    pub fn jitter(self) -> usize {
        match self {
            DatasetSpec::MnistLike | DatasetSpec::FmnistLike => 2,
            _ => 3,
        }
    }

    /// Short lowercase name used in reports (`mnist`, `fmnist`, …).
    pub fn name(self) -> &'static str {
        match self {
            DatasetSpec::MnistLike => "mnist",
            DatasetSpec::FmnistLike => "fmnist",
            DatasetSpec::Cifar10Like => "cifar10",
            DatasetSpec::Cifar100Like => "cifar100",
        }
    }
}

impl std::fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_real_benchmarks() {
        assert_eq!(DatasetSpec::MnistLike.dims(), (1, 28, 28));
        assert_eq!(DatasetSpec::FmnistLike.dims(), (1, 28, 28));
        assert_eq!(DatasetSpec::Cifar10Like.dims(), (3, 32, 32));
        assert_eq!(DatasetSpec::Cifar100Like.dims(), (3, 32, 32));
        assert_eq!(DatasetSpec::Cifar100Like.num_classes(), 100);
    }

    #[test]
    fn difficulty_ordering_is_preserved() {
        // MNIST-like must be strictly easier than FMNIST-like which must be
        // easier than CIFAR-like.
        assert!(DatasetSpec::MnistLike.noise_std() < DatasetSpec::FmnistLike.noise_std());
        assert!(DatasetSpec::FmnistLike.noise_std() < DatasetSpec::Cifar10Like.noise_std());
        assert!(DatasetSpec::MnistLike.class_overlap() < DatasetSpec::FmnistLike.class_overlap());
        assert!(DatasetSpec::FmnistLike.class_overlap() < DatasetSpec::Cifar10Like.class_overlap());
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = DatasetSpec::ALL.iter().map(|s| s.name()).collect();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped);
    }
}
