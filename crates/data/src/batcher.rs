//! Mini-batch iteration over a client's shard.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::synth::Dataset;
use aergia_tensor::Tensor;

/// The serializable iteration state of a [`Batcher`] (see
/// [`Batcher::state`] / [`Batcher::restore_state`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatcherState {
    /// The shard's sample indices in their current shuffled order.
    pub indices: Vec<usize>,
    /// Position of the next draw within `indices`.
    pub cursor: usize,
    /// Raw RNG state driving the epoch reshuffles.
    pub rng: [u64; 4],
}

/// Cycles through a client's sample indices in shuffled epochs, yielding
/// fixed-size mini-batches forever.
///
/// Local FL training runs a fixed number of *batch updates* per round
/// (1600 in the paper, scaled down here), so the iterator wraps around
/// epoch boundaries transparently, reshuffling at each new epoch.
///
/// # Examples
///
/// ```
/// use aergia_data::batcher::Batcher;
/// use aergia_data::{DataConfig, DatasetSpec};
///
/// let (train, _) = DataConfig {
///     spec: DatasetSpec::MnistLike, train_size: 10, test_size: 2, seed: 0,
/// }.generate_pair();
/// let indices: Vec<usize> = (0..10).collect();
/// let mut batcher = Batcher::new(indices, 4, 1);
/// let (x, y) = batcher.next_batch(&train);
/// assert_eq!(x.dims()[0], 4);
/// assert_eq!(y.len(), 4);
/// ```
#[derive(Debug)]
pub struct Batcher {
    indices: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    rng: StdRng,
    /// Reusable pick buffer for [`Batcher::next_batch_into`].
    picked: Vec<usize>,
}

impl Batcher {
    /// Creates a batcher over `indices` with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or `batch_size` is zero.
    pub fn new(indices: Vec<usize>, batch_size: usize, seed: u64) -> Self {
        assert!(!indices.is_empty(), "Batcher::new: empty shard");
        assert!(batch_size > 0, "Batcher::new: zero batch size");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0062_6174_6368); // "batch"
        let mut indices = indices;
        indices.shuffle(&mut rng);
        Batcher { indices, batch_size, cursor: 0, rng, picked: Vec::new() }
    }

    /// Effective batch size (may exceed the shard, in which case batches
    /// repeat samples across the wrap).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of samples in the shard this batcher cycles over.
    pub fn shard_len(&self) -> usize {
        self.indices.len()
    }

    /// Returns the next mini-batch, reshuffling at epoch boundaries.
    ///
    /// Thin wrapper over [`Batcher::next_batch_into`]; training loops
    /// should reuse a batch buffer pair through `next_batch_into` instead
    /// so steady-state iteration stays allocation-free.
    pub fn next_batch(&mut self, dataset: &Dataset) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::default();
        let mut y = Vec::new();
        self.next_batch_into(dataset, &mut x, &mut y);
        (x, y)
    }

    /// Captures the full iteration state — the current shuffled index
    /// order, the epoch cursor and the RNG — for a resumable checkpoint.
    pub fn state(&self) -> BatcherState {
        BatcherState { indices: self.indices.clone(), cursor: self.cursor, rng: self.rng.state() }
    }

    /// Restores the state captured by [`Batcher::state`]: subsequent
    /// draws continue the interrupted stream exactly.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shard size differs from this batcher's or
    /// its cursor lies beyond the shard — either means the snapshot came
    /// from a different configuration.
    pub fn restore_state(&mut self, state: BatcherState) {
        assert_eq!(
            state.indices.len(),
            self.indices.len(),
            "Batcher::restore_state: shard size mismatch"
        );
        assert!(state.cursor <= state.indices.len(), "Batcher::restore_state: cursor out of range");
        self.indices = state.indices;
        self.cursor = state.cursor;
        self.rng = StdRng::from_state(state.rng);
    }

    /// Fills a caller-provided `(Tensor, Vec<usize>)` pair with the next
    /// mini-batch, reshuffling at epoch boundaries. `x` is reshaped in
    /// place to `[batch, C, H, W]` and `y` cleared and refilled, so both
    /// buffers reuse their allocations across calls; the index draws are
    /// identical to [`Batcher::next_batch`].
    pub fn next_batch_into(&mut self, dataset: &Dataset, x: &mut Tensor, y: &mut Vec<usize>) {
        self.picked.clear();
        while self.picked.len() < self.batch_size {
            if self.cursor == self.indices.len() {
                self.indices.shuffle(&mut self.rng);
                self.cursor = 0;
            }
            self.picked.push(self.indices[self.cursor]);
            self.cursor += 1;
        }
        dataset.batch_into(&self.picked, x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;
    use crate::synth::DataConfig;

    fn dataset() -> Dataset {
        DataConfig { spec: DatasetSpec::MnistLike, train_size: 10, test_size: 1, seed: 2 }
            .generate_pair()
            .0
    }

    #[test]
    fn one_epoch_visits_every_sample_once() {
        let ds = dataset();
        let mut b = Batcher::new((0..10).collect(), 5, 0);
        let (_, y1) = b.next_batch(&ds);
        let (_, y2) = b.next_batch(&ds);
        let mut seen = y1;
        seen.extend(y2);
        seen.sort_unstable();
        let mut expected: Vec<usize> = ds.labels().to_vec();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn wraps_across_epochs() {
        let ds = dataset();
        let mut b = Batcher::new((0..10).collect(), 7, 1);
        for _ in 0..5 {
            let (x, y) = b.next_batch(&ds);
            assert_eq!(x.dims()[0], 7);
            assert_eq!(y.len(), 7);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let mut a = Batcher::new((0..10).collect(), 3, 9);
        let mut b = Batcher::new((0..10).collect(), 3, 9);
        for _ in 0..4 {
            assert_eq!(a.next_batch(&ds).1, b.next_batch(&ds).1);
        }
    }

    #[test]
    fn state_round_trip_resumes_the_draw_stream() {
        let ds = dataset();
        let mut a = Batcher::new((0..10).collect(), 3, 4);
        for _ in 0..4 {
            a.next_batch(&ds);
        }
        let snap = a.state();
        let tail: Vec<Vec<usize>> = (0..6).map(|_| a.next_batch(&ds).1).collect();
        let mut b = Batcher::new((0..10).collect(), 3, 999); // different seed
        b.restore_state(snap);
        let replay: Vec<Vec<usize>> = (0..6).map(|_| b.next_batch(&ds).1).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    #[should_panic(expected = "shard size mismatch")]
    fn restore_rejects_foreign_shards() {
        let mut a = Batcher::new((0..10).collect(), 3, 4);
        let foreign = Batcher::new((0..4).collect(), 3, 4).state();
        a.restore_state(foreign);
    }

    #[test]
    fn batch_larger_than_shard_repeats() {
        let ds = dataset();
        let mut b = Batcher::new(vec![0, 1], 5, 3);
        let (x, y) = b.next_batch(&ds);
        assert_eq!(x.dims()[0], 5);
        assert_eq!(y.len(), 5);
    }
}
