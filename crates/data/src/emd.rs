//! Earth Mover's Distance between class distributions.
//!
//! The paper (§2.3, §4.4) measures dataset heterogeneity with the EMD
//! between clients' label histograms and computes a pairwise similarity
//! matrix inside the SGX enclave. For 1-D histograms over a line of
//! equally spaced classes, the EMD has the classic closed form
//! `Σ |prefix(p) − prefix(q)|`; we provide that plus the total-variation
//! distance (EMD under a 0/1 ground metric) for comparison.

/// Normalizes a histogram of counts into a probability vector.
///
/// Returns a uniform distribution for an all-zero histogram so callers
/// never divide by zero.
///
/// # Panics
///
/// Panics if the histogram is empty.
pub fn normalize(hist: &[u64]) -> Vec<f64> {
    assert!(!hist.is_empty(), "normalize: empty histogram");
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return vec![1.0 / hist.len() as f64; hist.len()];
    }
    hist.iter().map(|&c| c as f64 / total as f64).collect()
}

/// 1-D Earth Mover's Distance between two probability vectors
/// (`Σ_i |Σ_{j≤i} p_j − q_j|`, unit ground distance between neighbours).
///
/// # Panics
///
/// Panics if the vectors differ in length or are empty.
///
/// # Examples
///
/// ```
/// let p = vec![1.0, 0.0];
/// let q = vec![0.0, 1.0];
/// assert_eq!(aergia_data::emd::emd(&p, &q), 1.0);
/// assert_eq!(aergia_data::emd::emd(&p, &p), 0.0);
/// ```
pub fn emd(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "emd: length mismatch");
    assert!(!p.is_empty(), "emd: empty distributions");
    let mut prefix = 0.0f64;
    let mut total = 0.0f64;
    for (a, b) in p.iter().zip(q) {
        prefix += a - b;
        total += prefix.abs();
    }
    total
}

/// Total-variation distance `½ Σ |p_i − q_i|` — the EMD under a 0/1 ground
/// metric, in `[0, 1]`.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "total_variation: length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// EMD between two raw count histograms (normalized first).
pub fn emd_counts(p: &[u64], q: &[u64]) -> f64 {
    emd(&normalize(p), &normalize(q))
}

/// Pairwise EMD matrix over a set of client histograms: entry `(i, j)` is
/// the distance between clients `i` and `j` (0 on the diagonal).
///
/// This is the matrix the paper's enclave emits (lower values = more
/// similar datasets).
///
/// # Panics
///
/// Panics if the histograms differ in length.
pub fn similarity_matrix(histograms: &[Vec<u64>]) -> Vec<Vec<f64>> {
    let dists: Vec<Vec<f64>> = histograms.iter().map(|h| normalize(h)).collect();
    let m = dists.len();
    let mut matrix = vec![vec![0.0; m]; m];
    for i in 0..m {
        for j in (i + 1)..m {
            let d = emd(&dists[i], &dists[j]);
            matrix[i][j] = d;
            matrix[j][i] = d;
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_distance() {
        let p = normalize(&[3, 3, 3]);
        assert_eq!(emd(&p, &p), 0.0);
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    fn opposite_corners_have_maximal_emd() {
        // All mass at class 0 vs all at class 9: EMD = 9 moves of 1 unit.
        let mut a = vec![0u64; 10];
        a[0] = 5;
        let mut b = vec![0u64; 10];
        b[9] = 5;
        assert_eq!(emd_counts(&a, &b), 9.0);
        assert_eq!(total_variation(&normalize(&a), &normalize(&b)), 1.0);
    }

    #[test]
    fn emd_is_symmetric() {
        let p = normalize(&[1, 2, 3, 4]);
        let q = normalize(&[4, 3, 2, 1]);
        assert_eq!(emd(&p, &q), emd(&q, &p));
    }

    #[test]
    fn emd_satisfies_triangle_inequality_on_examples() {
        let p = normalize(&[5, 0, 0]);
        let q = normalize(&[0, 5, 0]);
        let r = normalize(&[0, 0, 5]);
        assert!(emd(&p, &r) <= emd(&p, &q) + emd(&q, &r) + 1e-12);
    }

    #[test]
    fn closer_classes_cost_less_than_distant_ones() {
        // The ground metric matters: moving mass one class over is cheaper
        // than moving it across the whole range.
        let base = normalize(&[5, 0, 0, 0]);
        let near = normalize(&[0, 5, 0, 0]);
        let far = normalize(&[0, 0, 0, 5]);
        assert!(emd(&base, &near) < emd(&base, &far));
        // Total variation cannot see the difference.
        assert_eq!(total_variation(&base, &near), total_variation(&base, &far));
    }

    #[test]
    fn zero_histogram_normalizes_to_uniform() {
        let u = normalize(&[0, 0, 0, 0]);
        assert!(u.iter().all(|&p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let hists = vec![vec![3, 0, 1], vec![0, 4, 0], vec![1, 1, 1]];
        let m = similarity_matrix(&hists);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, value) in row.iter().enumerate() {
                assert_eq!(*value, m[j][i]);
            }
        }
        assert!(m[0][1] > 0.0);
    }
}
