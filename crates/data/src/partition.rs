//! Client data partitioning: IID and non-IID(k) disjoint splits.
//!
//! The paper's non-IID setup (§5.1): every client samples 3 of the 10
//! classes and owns a disjoint subset of the images of those classes.
//! [`Scheme::NonIid`] generalises this to any `classes_per_client` (the
//! Figure 10 sweep uses 2, 5 and 10).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::synth::Dataset;

/// How to split a dataset across clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Every client receives a uniformly random, equally sized shard.
    Iid,
    /// Every client owns samples from only `classes_per_client` classes
    /// (the paper's non-IID(k)).
    NonIid {
        /// Number of distinct classes per client.
        classes_per_client: usize,
    },
}

impl Scheme {
    /// The paper's default non-IID setting (3 classes of 10).
    pub fn paper_non_iid() -> Self {
        Scheme::NonIid { classes_per_client: 3 }
    }
}

/// A disjoint assignment of dataset indices to clients.
///
/// Normally one index list is stored per client. For populations far
/// larger than the dataset ([`Partition::strided`]) the stored lists are
/// *shared shards*: `virtual_clients` many clients map onto them
/// round-robin, so storage stays `O(dataset)` however many clients are
/// simulated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    client_indices: Vec<Vec<usize>>,
    num_classes: usize,
    /// `Some(n)`: `n` virtual clients share the stored shards
    /// round-robin (`client % shards`). `None`: one list per client.
    virtual_clients: Option<usize>,
}

impl Partition {
    /// Splits `dataset` across `clients` according to `scheme`.
    ///
    /// Shards are always disjoint. Under [`Scheme::NonIid`], every class is
    /// guaranteed at least one owner (so no data is silently dropped) and
    /// each class's samples are divided evenly among its owners.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0`, if the dataset is empty, or if
    /// `classes_per_client` is zero or exceeds the class count.
    pub fn split(dataset: &Dataset, clients: usize, scheme: Scheme, seed: u64) -> Self {
        assert!(clients > 0, "Partition::split: need at least one client");
        assert!(!dataset.is_empty(), "Partition::split: empty dataset");
        let num_classes = dataset.num_classes();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7061_7274); // "part" tag

        let client_indices = match scheme {
            Scheme::Iid => {
                let mut all: Vec<usize> = (0..dataset.len()).collect();
                all.shuffle(&mut rng);
                let mut shards = vec![Vec::new(); clients];
                for (pos, idx) in all.into_iter().enumerate() {
                    shards[pos % clients].push(idx);
                }
                shards
            }
            Scheme::NonIid { classes_per_client } => {
                assert!(
                    classes_per_client > 0 && classes_per_client <= num_classes,
                    "Partition::split: classes_per_client {classes_per_client} invalid for {num_classes} classes"
                );
                // 1. Each client picks k distinct classes.
                let mut owners: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
                for client in 0..clients {
                    let mut classes: Vec<usize> = (0..num_classes).collect();
                    classes.shuffle(&mut rng);
                    for &class in classes.iter().take(classes_per_client) {
                        owners[class].push(client);
                    }
                }
                // 2. Guarantee every class at least one owner so the global
                //    training signal covers all classes. To preserve the
                //    per-client class cap, an orphan class *swaps into* a
                //    client whose picks include a class that has another
                //    owner; only when the cluster cannot cover all classes
                //    (clients · k < classes) does the cap yield to coverage.
                for class in 0..num_classes {
                    if !owners[class].is_empty() {
                        continue;
                    }
                    let mut start = rng.random_range(0..clients);
                    let mut swapped = false;
                    for probe in 0..clients {
                        let client = (start + probe) % clients;
                        let replaceable = (0..num_classes).find(|&other| {
                            owners[other].len() >= 2 && owners[other].contains(&client)
                        });
                        if let Some(other) = replaceable {
                            owners[other].retain(|&c| c != client);
                            owners[class].push(client);
                            swapped = true;
                            break;
                        }
                    }
                    if !swapped {
                        // Cap must yield: coverage is required for training.
                        start = rng.random_range(0..clients);
                        owners[class].push(start);
                    }
                }
                // 3. Deal each class's samples round-robin to its owners.
                let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
                for i in 0..dataset.len() {
                    per_class[dataset.label(i)].push(i);
                }
                let mut shards = vec![Vec::new(); clients];
                for (class, samples) in per_class.iter_mut().enumerate() {
                    samples.shuffle(&mut rng);
                    let own = &owners[class];
                    for (pos, &idx) in samples.iter().enumerate() {
                        shards[own[pos % own.len()]].push(idx);
                    }
                }
                shards
            }
        };

        Partition { client_indices, num_classes, virtual_clients: None }
    }

    /// Splits `dataset` across `clients` with *shared strided shards*:
    /// `S = min(clients, dataset.len())` shards are materialised (shard
    /// `s` owns indices `s, s+S, s+2S, …`) and client `c` reads shard
    /// `c % S`. Storage is `O(dataset)` regardless of `clients`, which
    /// is what makes million-client populations affordable; the price is
    /// that clients congruent modulo `S` share data (their draw streams
    /// still differ — batcher seeds are per-client).
    ///
    /// Every shard is non-empty by construction.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0` or the dataset is empty.
    pub fn strided(dataset: &Dataset, clients: usize) -> Self {
        assert!(clients > 0, "Partition::strided: need at least one client");
        assert!(!dataset.is_empty(), "Partition::strided: empty dataset");
        let shards = clients.min(dataset.len());
        let client_indices =
            (0..shards).map(|s| (s..dataset.len()).step_by(shards).collect()).collect();
        Partition {
            client_indices,
            num_classes: dataset.num_classes(),
            virtual_clients: Some(clients),
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.virtual_clients.unwrap_or(self.client_indices.len())
    }

    /// The stored index list backing `client` (identity for materialised
    /// splits, `client % shards` for strided ones).
    fn slot(&self, client: usize) -> usize {
        match self.virtual_clients {
            Some(n) => {
                assert!(client < n, "client {client} out of range for {n} virtual clients");
                client % self.client_indices.len()
            }
            None => client,
        }
    }

    /// Sample indices owned by `client`.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn indices(&self, client: usize) -> &[usize] {
        &self.client_indices[self.slot(client)]
    }

    /// Number of samples owned by `client`.
    pub fn shard_len(&self, client: usize) -> usize {
        self.client_indices[self.slot(client)].len()
    }

    /// Per-class label counts of `client`'s shard — the vector clients
    /// encrypt and send to the enclave.
    pub fn class_histogram(&self, dataset: &Dataset, client: usize) -> Vec<u64> {
        let mut hist = vec![0u64; self.num_classes];
        for &i in &self.client_indices[self.slot(client)] {
            hist[dataset.label(i)] += 1;
        }
        hist
    }

    /// Number of distinct classes present in `client`'s shard.
    pub fn classes_present(&self, dataset: &Dataset, client: usize) -> usize {
        self.class_histogram(dataset, client).iter().filter(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;
    use crate::synth::DataConfig;
    use std::collections::HashSet;

    fn dataset() -> Dataset {
        DataConfig { spec: DatasetSpec::MnistLike, train_size: 400, test_size: 1, seed: 3 }
            .generate_pair()
            .0
    }

    fn assert_disjoint(p: &Partition) {
        let mut seen = HashSet::new();
        for c in 0..p.num_clients() {
            for &i in p.indices(c) {
                assert!(seen.insert(i), "index {i} assigned twice");
            }
        }
    }

    #[test]
    fn iid_shards_are_disjoint_exhaustive_and_balanced() {
        let ds = dataset();
        let p = Partition::split(&ds, 8, Scheme::Iid, 1);
        assert_disjoint(&p);
        let total: usize = (0..8).map(|c| p.shard_len(c)).sum();
        assert_eq!(total, ds.len());
        let min = (0..8).map(|c| p.shard_len(c)).min().unwrap();
        let max = (0..8).map(|c| p.shard_len(c)).max().unwrap();
        assert!(max - min <= 1, "IID shards unbalanced: {min}..{max}");
    }

    #[test]
    fn iid_shards_cover_most_classes() {
        let ds = dataset();
        let p = Partition::split(&ds, 4, Scheme::Iid, 2);
        for c in 0..4 {
            assert!(p.classes_present(&ds, c) >= 8, "IID shard missing many classes");
        }
    }

    #[test]
    fn non_iid_limits_classes_per_client() {
        let ds = dataset();
        let p = Partition::split(&ds, 8, Scheme::NonIid { classes_per_client: 3 }, 7);
        assert_disjoint(&p);
        for c in 0..8 {
            let present = p.classes_present(&ds, c);
            assert!(present <= 3, "client {c} has {present} classes, expected <= 3");
            assert!(present >= 1, "client {c} has no data");
        }
    }

    #[test]
    fn non_iid_covers_every_class_globally() {
        let ds = dataset();
        let p = Partition::split(&ds, 8, Scheme::NonIid { classes_per_client: 2 }, 9);
        let mut global = vec![0u64; ds.num_classes()];
        for c in 0..8 {
            for (g, h) in global.iter_mut().zip(p.class_histogram(&ds, c)) {
                *g += h;
            }
        }
        assert!(global.iter().all(|&count| count > 0), "some class lost: {global:?}");
    }

    #[test]
    fn non_iid_with_all_classes_equals_iid_coverage() {
        let ds = dataset();
        let p = Partition::split(&ds, 4, Scheme::NonIid { classes_per_client: 10 }, 5);
        assert_disjoint(&p);
        for c in 0..4 {
            assert_eq!(p.classes_present(&ds, c), 10);
        }
    }

    #[test]
    fn split_is_deterministic_in_seed() {
        let ds = dataset();
        let a = Partition::split(&ds, 6, Scheme::paper_non_iid(), 42);
        let b = Partition::split(&ds, 6, Scheme::paper_non_iid(), 42);
        for c in 0..6 {
            assert_eq!(a.indices(c), b.indices(c));
        }
        let c_p = Partition::split(&ds, 6, Scheme::paper_non_iid(), 43);
        assert_ne!(a.indices(0), c_p.indices(0));
    }

    #[test]
    #[should_panic(expected = "classes_per_client")]
    fn rejects_zero_classes_per_client() {
        let ds = dataset();
        Partition::split(&ds, 2, Scheme::NonIid { classes_per_client: 0 }, 0);
    }

    #[test]
    fn strided_shards_are_disjoint_and_exhaustive() {
        let ds = dataset(); // 400 samples
        let p = Partition::strided(&ds, 7);
        assert_eq!(p.num_clients(), 7);
        let mut seen = HashSet::new();
        for c in 0..7 {
            assert!(!p.indices(c).is_empty());
            for &i in p.indices(c) {
                assert!(seen.insert(i), "index {i} assigned twice");
            }
        }
        assert_eq!(seen.len(), ds.len());
    }

    #[test]
    fn strided_virtual_clients_share_shards_modulo_stride() {
        let ds = dataset(); // 400 samples, so 1000 clients share 400 shards
        let p = Partition::strided(&ds, 1000);
        assert_eq!(p.num_clients(), 1000);
        assert_eq!(p.indices(3), p.indices(403));
        assert_eq!(p.shard_len(999), p.shard_len(599));
        assert!(!p.indices(999).is_empty(), "every virtual client has data");
        assert_eq!(p.class_histogram(&ds, 5), p.class_histogram(&ds, 405));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn strided_rejects_out_of_range_clients() {
        let ds = dataset();
        Partition::strided(&ds, 10).indices(10);
    }
}
