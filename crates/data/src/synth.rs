//! Procedural dataset generation.
//!
//! Every class gets a *prototype image* composed of a handful of smooth
//! Gaussian blobs (per channel), plus a share of a background prototype
//! common to all classes (the [`crate::DatasetSpec::class_overlap`] knob).
//! A sample of class `c` is the prototype shifted by a small random jitter
//! with per-pixel Gaussian noise added. The result is a dataset a small
//! CNN genuinely has to learn spatial features for, while remaining fully
//! deterministic given a seed.

use aergia_tensor::init::standard_normal;
use aergia_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::spec::DatasetSpec;

/// Parameters for generating a train/test dataset pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataConfig {
    /// Which benchmark to imitate.
    pub spec: DatasetSpec,
    /// Number of training samples.
    pub train_size: usize,
    /// Number of test samples.
    pub test_size: usize,
    /// Master seed: prototypes derive from it, so train and test share the
    /// same class structure.
    pub seed: u64,
}

impl DataConfig {
    /// Generates the train and test datasets.
    ///
    /// Both use the same class prototypes (derived from `seed`) but
    /// disjoint sample randomness, like a real train/test split.
    pub fn generate_pair(&self) -> (Dataset, Dataset) {
        let protos = Prototypes::generate(self.spec, self.seed);
        let train = Dataset::from_prototypes(&protos, self.train_size, self.seed.wrapping_add(1));
        let test = Dataset::from_prototypes(&protos, self.test_size, self.seed.wrapping_add(2));
        (train, test)
    }
}

/// The per-class prototype images for one dataset instance.
#[derive(Debug, Clone)]
pub struct Prototypes {
    spec: DatasetSpec,
    // One flattened C×H×W image per class.
    images: Vec<Vec<f32>>,
}

impl Prototypes {
    /// Generates prototypes for `spec` from a master seed.
    pub fn generate(spec: DatasetSpec, seed: u64) -> Self {
        let (c, h, w) = spec.dims();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0070_726f_746f); // "proto" tag
        let background = random_blob_image(&mut rng, c, h, w, 4);
        let overlap = spec.class_overlap();
        let images = (0..spec.num_classes())
            .map(|_| {
                let own = random_blob_image(&mut rng, c, h, w, 3);
                own.iter()
                    .zip(&background)
                    .map(|(o, b)| (1.0 - overlap) * o + overlap * b)
                    .collect()
            })
            .collect();
        Prototypes { spec, images }
    }

    /// The spec these prototypes were generated for.
    pub fn spec(&self) -> DatasetSpec {
        self.spec
    }
}

/// Renders `blobs` smooth Gaussian bumps per channel onto a C×H×W canvas.
fn random_blob_image(rng: &mut StdRng, c: usize, h: usize, w: usize, blobs: usize) -> Vec<f32> {
    let mut img = vec![0.0f32; c * h * w];
    for chan in 0..c {
        for _ in 0..blobs {
            let cy: f32 = rng.random_range(0.15f32..0.85) * h as f32;
            let cx: f32 = rng.random_range(0.15f32..0.85) * w as f32;
            let sigma: f32 = rng.random_range(0.08f32..0.25) * h as f32;
            let amp: f32 =
                rng.random_range(0.6f32..1.4) * if rng.random_bool(0.3) { -1.0 } else { 1.0 };
            let base = chan * h * w;
            for y in 0..h {
                for x in 0..w {
                    let dy = (y as f32 - cy) / sigma;
                    let dx = (x as f32 - cx) / sigma;
                    img[base + y * w + x] += amp * (-(dy * dy + dx * dx) / 2.0).exp();
                }
            }
        }
    }
    img
}

/// An in-memory labelled image dataset.
///
/// Samples are stored contiguously (row-major C×H×W each); [`Dataset::batch`]
/// materialises any index subset as an NCHW [`Tensor`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    images: Vec<f32>,
    labels: Vec<usize>,
    dims: (usize, usize, usize),
    num_classes: usize,
}

impl Dataset {
    /// Samples `n` images (labels drawn uniformly) from prototypes.
    pub fn from_prototypes(protos: &Prototypes, n: usize, sample_seed: u64) -> Self {
        let spec = protos.spec;
        let (c, h, w) = spec.dims();
        let mut rng = StdRng::seed_from_u64(sample_seed ^ 0x73616d_706c65); // "sample"
        let noise = spec.noise_std();
        let jitter = spec.jitter() as i64;
        let mut images = Vec::with_capacity(n * c * h * w);
        let mut labels = Vec::with_capacity(n);

        for _ in 0..n {
            let label = rng.random_range(0..spec.num_classes());
            let proto = &protos.images[label];
            let dy = rng.random_range(-jitter..=jitter) as isize;
            let dx = rng.random_range(-jitter..=jitter) as isize;
            for chan in 0..c {
                let base = chan * h * w;
                for y in 0..h {
                    for x in 0..w {
                        let sy = y as isize + dy;
                        let sx = x as isize + dx;
                        let v = if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                            proto[base + sy as usize * w + sx as usize]
                        } else {
                            0.0
                        };
                        images.push(v + noise * standard_normal(&mut rng));
                    }
                }
            }
            labels.push(label);
        }

        Dataset { images, labels, dims: (c, h, w), num_classes: spec.num_classes() }
    }

    /// Builds a dataset directly from raw buffers (used in tests and by
    /// the partitioner).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not `labels.len() · c·h·w` or a label
    /// is out of range.
    pub fn from_raw(
        images: Vec<f32>,
        labels: Vec<usize>,
        dims: (usize, usize, usize),
        num_classes: usize,
    ) -> Self {
        let (c, h, w) = dims;
        assert_eq!(images.len(), labels.len() * c * h * w, "Dataset::from_raw: size mismatch");
        assert!(labels.iter().all(|&l| l < num_classes), "Dataset::from_raw: label out of range");
        Dataset { images, labels, dims, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image dimensions `(channels, height, width)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Number of classes (labels range over `0..num_classes`).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Materialises the samples at `indices` as an NCHW batch.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::default();
        let mut labels = Vec::new();
        self.batch_into(indices, &mut x, &mut labels);
        (x, labels)
    }

    /// [`Dataset::batch`] writing into a caller-provided pair: `x` is
    /// reshaped in place to `[batch, C, H, W]` and `labels` cleared and
    /// refilled, so a training loop reusing the same buffers copies sample
    /// data without touching the allocator once the buffers are warm.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of bounds.
    pub fn batch_into(&self, indices: &[usize], x: &mut Tensor, labels: &mut Vec<usize>) {
        assert!(!indices.is_empty(), "Dataset::batch: empty index list");
        let (c, h, w) = self.dims;
        let stride = c * h * w;
        x.reset_for_overwrite(&[indices.len(), c, h, w]);
        let data = x.data_mut();
        labels.clear();
        for (row, &i) in indices.iter().enumerate() {
            data[row * stride..(row + 1) * stride]
                .copy_from_slice(&self.images[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
    }

    /// The whole dataset as one batch (for small test sets).
    pub fn full_batch(&self) -> (Tensor, Vec<usize>) {
        let idx: Vec<usize> = (0..self.len()).collect();
        self.batch(&idx)
    }

    /// Histogram of labels over `indices` (or the whole set when `None`),
    /// with one bucket per class — the paper's “number of labels per
    /// class” vector that clients send to the enclave.
    pub fn class_histogram(&self, indices: Option<&[usize]>) -> Vec<u64> {
        let mut hist = vec![0u64; self.num_classes];
        match indices {
            Some(idx) => {
                for &i in idx {
                    hist[self.labels[i]] += 1;
                }
            }
            None => {
                for &l in &self.labels {
                    hist[l] += 1;
                }
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pair() -> (Dataset, Dataset) {
        DataConfig { spec: DatasetSpec::MnistLike, train_size: 40, test_size: 20, seed: 5 }
            .generate_pair()
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = small_pair();
        let (b, _) = small_pair();
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.images, b.images);
    }

    #[test]
    fn train_and_test_differ_but_share_structure() {
        let (train, test) = small_pair();
        assert_ne!(train.images[..100], test.images[..100]);
        assert_eq!(train.dims(), test.dims());
        assert_eq!(train.num_classes(), test.num_classes());
    }

    #[test]
    fn batch_shapes_and_labels() {
        let (train, _) = small_pair();
        let (x, y) = train.batch(&[0, 3, 7]);
        assert_eq!(x.dims(), &[3, 1, 28, 28]);
        assert_eq!(y, vec![train.label(0), train.label(3), train.label(7)]);
        assert!(x.is_finite());
    }

    #[test]
    fn histogram_sums_to_len() {
        let (train, _) = small_pair();
        let hist = train.class_histogram(None);
        assert_eq!(hist.iter().sum::<u64>(), train.len() as u64);
        let sub = train.class_histogram(Some(&[0, 1, 2]));
        assert_eq!(sub.iter().sum::<u64>(), 3);
    }

    #[test]
    fn prototypes_are_distinct_per_class() {
        let protos = Prototypes::generate(DatasetSpec::MnistLike, 3);
        let a = &protos.images[0];
        let b = &protos.images[1];
        let diff: f32 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "prototypes nearly identical (diff {diff})");
    }

    #[test]
    fn cifar_like_has_three_channels() {
        let (train, _) =
            DataConfig { spec: DatasetSpec::Cifar10Like, train_size: 4, test_size: 2, seed: 1 }
                .generate_pair();
        assert_eq!(train.dims(), (3, 32, 32));
    }

    #[test]
    fn from_raw_validates() {
        let ok = Dataset::from_raw(vec![0.0; 2 * 4], vec![0, 1], (1, 2, 2), 2);
        assert_eq!(ok.len(), 2);
        assert!(std::panic::catch_unwind(|| {
            Dataset::from_raw(vec![0.0; 3], vec![0], (1, 2, 2), 2)
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            Dataset::from_raw(vec![0.0; 4], vec![5], (1, 2, 2), 2)
        })
        .is_err());
    }

    #[test]
    fn a_cnn_can_learn_the_synthetic_data() {
        // The core promise of the substitution: a small CNN trained briefly
        // beats random guessing comfortably.
        use aergia_nn::models::ModelArch;
        use aergia_nn::optim::{Sgd, SgdConfig};

        let (train, test) =
            DataConfig { spec: DatasetSpec::MnistLike, train_size: 256, test_size: 128, seed: 11 }
                .generate_pair();
        let mut model = ModelArch::MnistCnn.build(0);
        let mut opt = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, ..SgdConfig::default() });
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..40 {
            let idx: Vec<usize> = (0..16).map(|_| rng.random_range(0..train.len())).collect();
            let (x, y) = train.batch(&idx);
            model.train_batch(&x, &y, &mut opt).unwrap();
        }
        let (x, y) = test.full_batch();
        let (_, correct) = model.evaluate(&x, &y);
        let acc = correct as f32 / y.len() as f32;
        assert!(acc > 0.35, "accuracy only {acc} after brief training (chance = 0.1)");
    }
}
