//! Property-based tests for partitions and the EMD metric.

use aergia_data::emd::{emd, emd_counts, normalize, similarity_matrix, total_variation};
use aergia_data::partition::{Partition, Scheme};
use aergia_data::{DataConfig, DatasetSpec};
use proptest::prelude::*;
use std::collections::HashSet;

fn histogram() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..50, 3..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// EMD is a metric on same-length histograms: non-negative, zero on
    /// identity, symmetric, triangle inequality.
    #[test]
    fn emd_is_a_metric(a in histogram(), b_seed in any::<u64>(), c_seed in any::<u64>()) {
        let n = a.len();
        let rot = |seed: u64| -> Vec<u64> {
            (0..n).map(|i| a[(i + seed as usize) % n].wrapping_add(seed % 7)).collect()
        };
        let b = rot(b_seed);
        let c = rot(c_seed);
        let (pa, pb, pc) = (normalize(&a), normalize(&b), normalize(&c));
        prop_assert!(emd(&pa, &pb) >= 0.0);
        prop_assert!(emd(&pa, &pa) < 1e-12);
        prop_assert!((emd(&pa, &pb) - emd(&pb, &pa)).abs() < 1e-12);
        prop_assert!(emd(&pa, &pc) <= emd(&pa, &pb) + emd(&pb, &pc) + 1e-9);
    }

    /// EMD dominates total variation for 1-D histograms (moving mass k
    /// classes costs k times as much).
    #[test]
    fn emd_upper_bounds_total_variation(a in histogram(), shift in 1usize..4) {
        let b: Vec<u64> = {
            let mut v = a.clone();
            let k = shift % a.len();
            v.rotate_right(k);
            v
        };
        let (pa, pb) = (normalize(&a), normalize(&b));
        prop_assert!(emd(&pa, &pb) + 1e-12 >= total_variation(&pa, &pb));
    }

    /// The similarity matrix is symmetric, zero-diagonal and consistent
    /// with pairwise emd_counts.
    #[test]
    fn similarity_matrix_is_consistent(hists in proptest::collection::vec(
        proptest::collection::vec(0u64..30, 5..=5), 2..6)) {
        let m = similarity_matrix(&hists);
        for i in 0..hists.len() {
            prop_assert_eq!(m[i][i], 0.0);
            for j in 0..hists.len() {
                prop_assert_eq!(m[i][j], m[j][i]);
                prop_assert!((m[i][j] - emd_counts(&hists[i], &hists[j])).abs() < 1e-12);
            }
        }
    }

    /// Partitions are always disjoint; IID partitions are exhaustive and
    /// balanced; non-IID partitions respect the class cap.
    #[test]
    fn partition_invariants(
        clients in 1usize..9,
        k in 1usize..10,
        seed in any::<u64>(),
        iid in any::<bool>(),
    ) {
        let (train, _) = DataConfig {
            spec: DatasetSpec::MnistLike,
            train_size: 150,
            test_size: 1,
            seed: seed % 1000,
        }
        .generate_pair();
        let scheme = if iid {
            Scheme::Iid
        } else {
            Scheme::NonIid { classes_per_client: k.min(train.num_classes()) }
        };
        let p = Partition::split(&train, clients, scheme, seed);

        let mut seen = HashSet::new();
        let mut total = 0usize;
        for c in 0..clients {
            for &i in p.indices(c) {
                prop_assert!(i < train.len());
                prop_assert!(seen.insert(i), "index {i} assigned twice");
                total += 1;
            }
        }
        match scheme {
            Scheme::Iid => {
                prop_assert_eq!(total, train.len(), "IID must be exhaustive");
                let lens: Vec<usize> = (0..clients).map(|c| p.shard_len(c)).collect();
                let (lo, hi) =
                    (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                prop_assert!(hi - lo <= 1, "IID unbalanced: {lens:?}");
            }
            Scheme::NonIid { classes_per_client } => {
                // The class cap holds whenever the cluster can cover every
                // class under it; otherwise coverage takes precedence (see
                // partition.rs step 2).
                if clients * classes_per_client >= train.num_classes() {
                    for c in 0..clients {
                        prop_assert!(p.classes_present(&train, c) <= classes_per_client);
                    }
                }
                // Global coverage always holds.
                let mut covered = vec![false; train.num_classes()];
                for c in 0..clients {
                    for (class, &count) in p.class_histogram(&train, c).iter().enumerate() {
                        if count > 0 {
                            covered[class] = true;
                        }
                    }
                }
                prop_assert!(covered.iter().all(|&x| x), "class lost by partition");
            }
        }
    }

    /// Class histograms always sum to the shard size.
    #[test]
    fn histograms_sum_to_shard(seed in any::<u64>()) {
        let (train, _) = DataConfig {
            spec: DatasetSpec::MnistLike,
            train_size: 120,
            test_size: 1,
            seed: 77,
        }
        .generate_pair();
        let p = Partition::split(&train, 5, Scheme::paper_non_iid(), seed);
        for c in 0..5 {
            let hist = p.class_histogram(&train, c);
            prop_assert_eq!(
                hist.iter().sum::<u64>() as usize,
                p.shard_len(c)
            );
        }
    }
}
