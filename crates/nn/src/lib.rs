//! Convolutional-network training stack for the Aergia reproduction.
//!
//! This crate replaces PyTorch in the paper's implementation (see
//! `DESIGN.md` §3). It provides:
//!
//! * [`layer::Layer`] and concrete layers — [`layer::Conv2d`],
//!   [`layer::Linear`], [`layer::Relu`], [`layer::MaxPool2d`],
//!   [`layer::Flatten`] and [`layer::ResidualBlock`];
//! * [`Cnn`], a sequential model with an explicit **feature/classifier
//!   split**, mirroring the paper's §2.1 decomposition of a CNN into
//!   convolutional (feature) layers and fully-connected (classifier)
//!   layers;
//! * the four training phases of §3.2 — `ff`, `fc`, `bc`, `bf` — exposed
//!   both as wall-clock measurements and as an analytic FLOP cost model
//!   ([`profile`]);
//! * **parameter freezing** ([`Cnn::freeze_features`]): a frozen feature
//!   section skips the backward feature pass (`bf`) and its weights stop
//!   updating, the mechanism Aergia's weak clients use before offloading;
//! * SGD with momentum, weight decay and a FedProx proximal term
//!   ([`optim::Sgd`]);
//! * softmax cross-entropy ([`loss`]);
//! * the model zoo of the paper's evaluation ([`models::ModelArch`]);
//! * weight snapshots and a compact wire encoding for model transfer
//!   ([`weights`]).
//!
//! # Examples
//!
//! Train one batch of a small MNIST-style CNN and inspect the phase costs:
//!
//! ```
//! use aergia_nn::models::ModelArch;
//! use aergia_nn::optim::{Sgd, SgdConfig};
//! use aergia_tensor::Tensor;
//!
//! let mut model = ModelArch::MnistCnn.build(42);
//! let mut opt = Sgd::new(SgdConfig::default());
//! let x = Tensor::zeros(&[4, 1, 28, 28]);
//! let y = vec![0usize, 1, 2, 3];
//! let stats = model.train_batch(&x, &y, &mut opt).unwrap();
//! assert!(stats.loss > 0.0);
//! // The backward feature pass dominates, as in the paper's Figure 4.
//! assert!(stats.flops.bf > stats.flops.fc);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fused;
pub mod layer;
pub mod loss;
pub mod model;
pub mod models;
pub mod optim;
pub mod profile;
pub mod weights;

pub use model::{BatchStats, Cnn, ForwardPhase, NnError};
pub use profile::{Phase, PhaseCost};
