//! Softmax cross-entropy loss, the paper's classification objective (§2.2).

use aergia_tensor::Tensor;

/// Loss value and logits gradient for one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Gradient with respect to the logits, `(softmax − onehot)/N`.
    pub dlogits: Tensor,
    /// Number of correctly classified samples (argmax == target).
    pub correct: usize,
}

/// Computes mean softmax cross-entropy over a `[batch, classes]` logits
/// matrix with integer `targets`.
///
/// # Panics
///
/// Panics if `logits` is not rank 2, if `targets.len()` differs from the
/// batch size, or if any target is out of range.
///
/// # Examples
///
/// ```
/// use aergia_nn::loss::cross_entropy;
/// use aergia_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]).unwrap();
/// let out = cross_entropy(&logits, &[0]);
/// assert!(out.loss < 1e-3);
/// assert_eq!(out.correct, 1);
/// ```
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> LossOutput {
    let mut dlogits = Tensor::default();
    let stats = cross_entropy_into(logits, targets, &mut dlogits);
    LossOutput { loss: stats.loss, dlogits, correct: stats.correct }
}

/// Loss value and correct-prediction count, without the gradient tensor
/// (which [`cross_entropy_into`] writes into a caller-provided buffer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossStats {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Number of correctly classified samples (argmax == target).
    pub correct: usize,
}

/// [`cross_entropy`] writing the logits gradient into a caller-provided
/// tensor (which is [`Tensor::reset`] to `[batch, classes]`, reusing its
/// allocation) — the allocation-free spelling the workspace-backed
/// training loop uses every batch. Results are bit-identical to
/// [`cross_entropy`], which is a thin wrapper over this function.
///
/// # Panics
///
/// Same conditions as [`cross_entropy`].
pub fn cross_entropy_into(logits: &Tensor, targets: &[usize], dlogits: &mut Tensor) -> LossStats {
    let dims = logits.dims();
    assert_eq!(dims.len(), 2, "cross_entropy: rank-2 logits required");
    let (batch, classes) = (dims[0], dims[1]);
    assert_eq!(targets.len(), batch, "cross_entropy: one target per row required");

    dlogits.reset_for_overwrite(&[batch, classes]);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    let src = logits.data();
    let dst = dlogits.data_mut();

    for (row, &target) in targets.iter().enumerate() {
        assert!(target < classes, "cross_entropy: target {target} out of {classes} classes");
        let row_logits = &src[row * classes..(row + 1) * classes];
        // Numerically stable log-softmax.
        let max = row_logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum_exp = 0.0f32;
        for &v in row_logits {
            sum_exp += (v - max).exp();
        }
        let log_z = max + sum_exp.ln();
        loss += f64::from(log_z - row_logits[target]);

        let argmax = row_logits
            .iter()
            .enumerate()
            .fold(
                (0usize, f32::NEG_INFINITY),
                |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                },
            )
            .0;
        if argmax == target {
            correct += 1;
        }

        let drow = &mut dst[row * classes..(row + 1) * classes];
        for (j, d) in drow.iter_mut().enumerate() {
            let p = (row_logits[j] - log_z).exp();
            *d = (p - if j == target { 1.0 } else { 0.0 }) / batch as f32;
        }
    }

    LossStats { loss: (loss / batch as f64) as f32, correct }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((out.loss - 10.0_f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let out = cross_entropy(&logits, &[2, 0]);
        for row in out.dlogits.data().chunks_exact(3) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 0.1], &[1, 3]).unwrap();
        let out = cross_entropy(&logits, &[1]);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let numeric =
                (cross_entropy(&lp, &[1]).loss - cross_entropy(&lm, &[1]).loss) / (2.0 * eps);
            assert!((numeric - out.dlogits.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn counts_correct_predictions() {
        let logits = Tensor::from_vec(vec![5.0, 0.0, 0.0, 5.0, 5.0, 0.0], &[3, 2]).unwrap();
        let out = cross_entropy(&logits, &[0, 1, 1]);
        assert_eq!(out.correct, 2);
    }

    #[test]
    fn large_logits_stay_finite() {
        let logits = Tensor::from_vec(vec![1e4, -1e4], &[1, 2]).unwrap();
        let out = cross_entropy(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.dlogits.is_finite());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rejects_bad_target() {
        let logits = Tensor::zeros(&[1, 2]);
        cross_entropy(&logits, &[5]);
    }
}
