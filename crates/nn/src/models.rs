//! The model zoo of the paper's evaluation (§5.1 “Networks” and Figure 4).
//!
//! * MNIST / FMNIST: a three-layer CNN (two convolutional layers and one
//!   fully-connected layer).
//! * CIFAR-10: an eight-layer CNN (six convolutional layers and two
//!   fully-connected layers).
//! * The Figure 4 profiling study additionally uses ResNet-style and
//!   VGG-style networks on CIFAR-10/CIFAR-100; we provide compact versions
//!   with the same structural characteristics (residual blocks with skip
//!   projections; deep conv stacks with a multi-layer dense head).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::layer::{Conv2d, Flatten, Layer, Linear, MaxPool2d, Relu, ResidualBlock};
use crate::model::Cnn;

/// The network architectures used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ModelArch {
    /// Two conv layers + one fully-connected layer, for 28×28×1 inputs.
    MnistCnn,
    /// Same topology as [`ModelArch::MnistCnn`] (the paper trains the same
    /// model on FMNIST).
    FmnistCnn,
    /// Six conv layers + two fully-connected layers, for 32×32×3 inputs.
    Cifar10Cnn,
    /// Conv stem + three residual blocks, 10 classes.
    Cifar10ResNet,
    /// VGG-style conv stack with a three-layer dense head, 100 classes.
    Cifar100Vgg,
    /// Conv stem + three residual blocks, 100 classes.
    Cifar100ResNet,
}

impl ModelArch {
    /// Every architecture, in the order Figure 4 reports them.
    pub const ALL: [ModelArch; 6] = [
        ModelArch::Cifar10Cnn,
        ModelArch::Cifar10ResNet,
        ModelArch::Cifar100Vgg,
        ModelArch::Cifar100ResNet,
        ModelArch::FmnistCnn,
        ModelArch::MnistCnn,
    ];

    /// The paper's name for this dataset/network pairing.
    pub fn name(self) -> &'static str {
        match self {
            ModelArch::MnistCnn => "mnist-cnn",
            ModelArch::FmnistCnn => "fmnist-cnn",
            ModelArch::Cifar10Cnn => "Cifar-10-cnn",
            ModelArch::Cifar10ResNet => "Cifar-10-resnet",
            ModelArch::Cifar100Vgg => "Cifar-100-vgg",
            ModelArch::Cifar100ResNet => "Cifar-100-resnet",
        }
    }

    /// Input dimensions `(channels, height, width)`.
    pub fn input_dims(self) -> (usize, usize, usize) {
        match self {
            ModelArch::MnistCnn | ModelArch::FmnistCnn => (1, 28, 28),
            _ => (3, 32, 32),
        }
    }

    /// Number of output classes.
    pub fn num_classes(self) -> usize {
        match self {
            ModelArch::Cifar100Vgg | ModelArch::Cifar100ResNet => 100,
            _ => 10,
        }
    }

    /// Builds the architecture with weights drawn from `seed`.
    ///
    /// Two builds from the same seed are identical, which is how every
    /// client starts a round from the same global model.
    pub fn build(self, seed: u64) -> Cnn {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            ModelArch::MnistCnn | ModelArch::FmnistCnn => mnist_cnn(&mut rng),
            ModelArch::Cifar10Cnn => cifar_cnn(&mut rng, 10),
            ModelArch::Cifar10ResNet => cifar_resnet(&mut rng, 10),
            ModelArch::Cifar100Vgg => cifar_vgg(&mut rng, 100),
            ModelArch::Cifar100ResNet => cifar_resnet(&mut rng, 100),
        }
    }
}

impl std::fmt::Display for ModelArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn mnist_cnn(rng: &mut StdRng) -> Cnn {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(1, 16, 5, 1, 2, 28, 28, rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2, 28, 28)),
        Box::new(Conv2d::new(16, 32, 5, 1, 2, 14, 14, rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2, 14, 14)),
        // --- classifier ---
        Box::new(Flatten::new()),
        Box::new(Linear::new(32 * 7 * 7, 10, rng)),
    ];
    Cnn::new(layers, 6, 10).expect("mnist_cnn: static split is valid")
}

fn cifar_cnn(rng: &mut StdRng, classes: usize) -> Cnn {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(3, 32, 3, 1, 1, 32, 32, rng)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(32, 32, 3, 1, 1, 32, 32, rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2, 32, 32)),
        Box::new(Conv2d::new(32, 64, 3, 1, 1, 16, 16, rng)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(64, 64, 3, 1, 1, 16, 16, rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2, 16, 16)),
        Box::new(Conv2d::new(64, 128, 3, 1, 1, 8, 8, rng)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(128, 128, 3, 1, 1, 8, 8, rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2, 8, 8)),
        // --- classifier ---
        Box::new(Flatten::new()),
        Box::new(Linear::new(128 * 4 * 4, 256, rng)),
        Box::new(Relu::new()),
        Box::new(Linear::new(256, classes, rng)),
    ];
    Cnn::new(layers, 15, classes).expect("cifar_cnn: static split is valid")
}

fn cifar_resnet(rng: &mut StdRng, classes: usize) -> Cnn {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(3, 16, 3, 1, 1, 32, 32, rng)),
        Box::new(Relu::new()),
        Box::new(ResidualBlock::new(16, 16, 32, 32, rng)),
        Box::new(MaxPool2d::new(2, 2, 32, 32)),
        Box::new(ResidualBlock::new(16, 32, 16, 16, rng)),
        Box::new(MaxPool2d::new(2, 2, 16, 16)),
        Box::new(ResidualBlock::new(32, 64, 8, 8, rng)),
        Box::new(MaxPool2d::new(2, 2, 8, 8)),
        // --- classifier ---
        Box::new(Flatten::new()),
        Box::new(Linear::new(64 * 4 * 4, classes, rng)),
    ];
    Cnn::new(layers, 8, classes).expect("cifar_resnet: static split is valid")
}

fn cifar_vgg(rng: &mut StdRng, classes: usize) -> Cnn {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(3, 32, 3, 1, 1, 32, 32, rng)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(32, 32, 3, 1, 1, 32, 32, rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2, 32, 32)),
        Box::new(Conv2d::new(32, 64, 3, 1, 1, 16, 16, rng)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(64, 64, 3, 1, 1, 16, 16, rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2, 16, 16)),
        Box::new(Conv2d::new(64, 128, 3, 1, 1, 8, 8, rng)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(128, 128, 3, 1, 1, 8, 8, rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2, 8, 8)),
        // --- classifier (VGG-style three-layer head) ---
        Box::new(Flatten::new()),
        Box::new(Linear::new(128 * 4 * 4, 512, rng)),
        Box::new(Relu::new()),
        Box::new(Linear::new(512, 256, rng)),
        Box::new(Relu::new()),
        Box::new(Linear::new(256, classes, rng)),
    ];
    Cnn::new(layers, 15, classes).expect("cifar_vgg: static split is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aergia_tensor::Tensor;

    #[test]
    fn all_architectures_forward_with_correct_shapes() {
        for arch in ModelArch::ALL {
            let mut model = arch.build(7);
            let (c, h, w) = arch.input_dims();
            let x = Tensor::zeros(&[2, c, h, w]);
            let logits = model.forward(&x);
            assert_eq!(logits.dims(), &[2, arch.num_classes()], "wrong logits shape for {arch}");
            assert!(logits.is_finite(), "non-finite logits for {arch}");
        }
    }

    #[test]
    fn same_seed_builds_identical_models() {
        for arch in [ModelArch::MnistCnn, ModelArch::Cifar10Cnn] {
            let a = arch.build(123);
            let b = arch.build(123);
            assert_eq!(a.weights(), b.weights(), "{arch} build is not deterministic");
        }
    }

    #[test]
    fn different_seeds_build_different_models() {
        let a = ModelArch::MnistCnn.build(1);
        let b = ModelArch::MnistCnn.build(2);
        assert_ne!(a.weights(), b.weights());
    }

    #[test]
    fn mnist_cnn_matches_paper_layer_counts() {
        let model = ModelArch::MnistCnn.build(0);
        let convs = model.layers().iter().filter(|l| l.name() == "conv2d").count();
        let linears = model.layers().iter().filter(|l| l.name() == "linear").count();
        assert_eq!((convs, linears), (2, 1), "paper: two conv + one fc");
    }

    #[test]
    fn cifar10_cnn_matches_paper_layer_counts() {
        let model = ModelArch::Cifar10Cnn.build(0);
        let convs = model.layers().iter().filter(|l| l.name() == "conv2d").count();
        let linears = model.layers().iter().filter(|l| l.name() == "linear").count();
        assert_eq!((convs, linears), (6, 2), "paper: six conv + two fc");
    }

    #[test]
    fn feature_sections_contain_all_convs() {
        for arch in ModelArch::ALL {
            let model = arch.build(0);
            for layer in &model.layers()[model.split()..] {
                assert_ne!(layer.name(), "conv2d", "{arch}: conv in classifier section");
                assert_ne!(layer.name(), "residual", "{arch}: residual in classifier section");
            }
        }
    }

    #[test]
    fn backward_feature_pass_dominates_flops() {
        // The premise of the paper's Figure 4: bf is the most expensive
        // phase for every evaluated network.
        for arch in ModelArch::ALL {
            let model = arch.build(0);
            let cost = model.phase_flops(4);
            for phase in [
                crate::Phase::ForwardFeatures,
                crate::Phase::ForwardClassifier,
                crate::Phase::BackwardClassifier,
            ] {
                assert!(
                    cost.bf > cost.get(phase),
                    "{arch}: bf ({}) not dominant over {phase} ({})",
                    cost.bf,
                    cost.get(phase)
                );
            }
        }
    }

    #[test]
    fn hundred_class_models_have_more_params() {
        let small = ModelArch::Cifar10ResNet.build(0);
        let big = ModelArch::Cifar100ResNet.build(0);
        assert!(big.num_params() > small.num_params());
        assert_eq!(big.num_feature_params(), small.num_feature_params());
    }
}
