//! The sequential CNN with an explicit feature/classifier split.

use std::error::Error;
use std::fmt;
use std::time::Instant;

use aergia_tensor::{Tensor, TensorError, Workspace};

use crate::layer::Layer;
use crate::loss::{cross_entropy, cross_entropy_into};
use crate::optim::Sgd;
use crate::profile::PhaseCost;

/// Errors produced by model construction and training.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// The feature/classifier split index is out of range.
    InvalidSplit {
        /// Requested split index.
        split: usize,
        /// Number of layers in the model.
        layers: usize,
    },
    /// A snapshot had the wrong number of tensors for the target section.
    SnapshotLength {
        /// Tensors expected.
        expected: usize,
        /// Tensors provided.
        got: usize,
    },
    /// An underlying tensor operation failed (shape mismatch).
    Tensor(TensorError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InvalidSplit { split, layers } => {
                write!(f, "split index {split} out of range for {layers} layers")
            }
            NnError::SnapshotLength { expected, got } => {
                write!(f, "weight snapshot has {got} tensors, expected {expected}")
            }
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

/// In-flight state between [`Cnn::forward_phase`] and
/// [`Cnn::backward_phase`]: the two ping-pong activation buffers (logits
/// in `a`), the batch size, and the measured forward wall-clock. Obtained
/// from [`Cnn::forward_phase`] or `fused::fused_forward` and consumed by
/// [`Cnn::backward_phase`]; the buffers return to the workspace there.
pub struct ForwardPhase {
    pub(crate) a: Tensor,
    pub(crate) b: Tensor,
    pub(crate) batch: usize,
    pub(crate) ff: f64,
    pub(crate) fc: f64,
}

/// Result of training on one mini-batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Mean cross-entropy loss of the batch.
    pub loss: f32,
    /// Correctly classified samples.
    pub correct: usize,
    /// Samples in the batch.
    pub batch_size: usize,
    /// Measured wall-clock seconds per phase.
    pub seconds: PhaseCost,
    /// Analytic FLOPs per phase (drives the simulation's virtual clock).
    pub flops: PhaseCost,
}

/// A sequential convolutional network split into a *feature* section
/// (`layers[..split]`) and a *classifier* section (`layers[split..]`),
/// mirroring the paper's §2.1 decomposition.
///
/// The model executes the four training phases of §3.2 separately so that
/// callers observe per-phase costs, and supports **feature freezing**: when
/// frozen, the backward feature pass (`bf`) is skipped and feature weights
/// stop updating — exactly the lighter procedure Aergia's weak clients run
/// after offloading (§4.1).
///
/// Use [`crate::models::ModelArch`] to construct the paper's architectures.
pub struct Cnn {
    layers: Vec<Box<dyn Layer>>,
    split: usize,
    num_classes: usize,
    frozen_features: bool,
    frozen_classifier: bool,
}

impl fmt::Debug for Cnn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Cnn")
            .field("layers", &names)
            .field("split", &self.split)
            .field("num_classes", &self.num_classes)
            .field("frozen_features", &self.frozen_features)
            .field("frozen_classifier", &self.frozen_classifier)
            .finish()
    }
}

impl Clone for Cnn {
    fn clone(&self) -> Self {
        Cnn {
            layers: self.layers.clone(),
            split: self.split,
            num_classes: self.num_classes,
            frozen_features: self.frozen_features,
            frozen_classifier: self.frozen_classifier,
        }
    }
}

impl Cnn {
    /// Builds a model from layers and a split index: `layers[..split]` form
    /// the feature section, the rest the classifier.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSplit`] unless `0 < split < layers.len()`.
    pub fn new(
        layers: Vec<Box<dyn Layer>>,
        split: usize,
        num_classes: usize,
    ) -> Result<Self, NnError> {
        if split == 0 || split >= layers.len() {
            return Err(NnError::InvalidSplit { split, layers: layers.len() });
        }
        Ok(Cnn { layers, split, num_classes, frozen_features: false, frozen_classifier: false })
    }

    /// Number of layers in the feature section.
    pub fn split(&self) -> usize {
        self.split
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Whether the feature section is frozen.
    pub fn features_frozen(&self) -> bool {
        self.frozen_features
    }

    /// Freezes the feature section: subsequent [`Cnn::train_batch`] calls
    /// skip the backward feature pass and leave feature weights untouched.
    pub fn freeze_features(&mut self) {
        self.frozen_features = true;
    }

    /// Reverses [`Cnn::freeze_features`].
    pub fn unfreeze_features(&mut self) {
        self.frozen_features = false;
    }

    /// Whether the classifier section is frozen.
    pub fn classifier_frozen(&self) -> bool {
        self.frozen_classifier
    }

    /// Freezes the classifier section: its weights stop updating while
    /// gradients still flow *through* it into the feature layers. This is
    /// the mode a strong client uses to train the feature layers of an
    /// offloaded model on its own data (§4.1).
    pub fn freeze_classifier(&mut self) {
        self.frozen_classifier = true;
    }

    /// Reverses [`Cnn::freeze_classifier`].
    pub fn unfreeze_classifier(&mut self) {
        self.frozen_classifier = false;
    }

    /// The layers (read-only), feature section first.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable layer access for the fused cross-client forward, which
    /// drives layers of several member models in lockstep.
    pub(crate) fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Forward pass through the whole network (inference).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Computes loss and the number of correct predictions without
    /// touching gradients.
    pub fn evaluate(&mut self, x: &Tensor, targets: &[usize]) -> (f32, usize) {
        self.evaluate_with(x, targets, &mut Workspace::new())
    }

    /// [`Cnn::evaluate`] backed by a caller-provided [`Workspace`], so an
    /// evaluation loop reuses its activation and im2col buffers across
    /// batches instead of reallocating them per call. The computation is
    /// the same layer-by-layer forward either way, so both entry points
    /// produce identical bits.
    pub fn evaluate_with(
        &mut self,
        x: &Tensor,
        targets: &[usize],
        ws: &mut Workspace,
    ) -> (f32, usize) {
        let fwd = self.forward_phase(x, ws);
        let out = cross_entropy(&fwd.a, targets);
        ws.give_scratch(fwd.b);
        ws.give_scratch(fwd.a);
        (out.loss, out.correct)
    }

    /// Runs one full training step (the four phases plus the optimizer
    /// update), returning per-phase costs.
    ///
    /// When the feature section is frozen the `bf` phase is skipped and its
    /// cost reported as zero.
    ///
    /// This is a convenience wrapper over [`Cnn::train_batch_with`] using a
    /// throwaway [`Workspace`]; callers in a training loop should hold a
    /// persistent workspace and call `train_batch_with` directly so buffers
    /// survive between batches.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Tensor`] if `x` does not match the model's
    /// expected input shape.
    pub fn train_batch(
        &mut self,
        x: &Tensor,
        targets: &[usize],
        opt: &mut Sgd,
    ) -> Result<BatchStats, NnError> {
        self.train_batch_with(x, targets, opt, &mut Workspace::new())
    }

    /// [`Cnn::train_batch`] backed by a caller-provided [`Workspace`]: the
    /// forward and backward passes ping-pong between two pooled activation
    /// buffers and every layer draws its scratch from `ws`, so once the
    /// workspace is warm (one batch) the whole step performs **zero** heap
    /// allocations — asserted by the counting-allocator suite. Results are
    /// bit-identical to the allocating path whatever the workspace state.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Tensor`] if `x` does not match the model's
    /// expected input shape.
    ///
    /// # Examples
    ///
    /// ```
    /// use aergia_nn::models::ModelArch;
    /// use aergia_nn::optim::{Sgd, SgdConfig};
    /// use aergia_tensor::{Tensor, Workspace};
    ///
    /// let mut model = ModelArch::MnistCnn.build(0);
    /// let mut opt = Sgd::new(SgdConfig::default());
    /// let mut ws = Workspace::new();
    /// let x = Tensor::zeros(&[2, 1, 28, 28]);
    /// for _ in 0..3 {
    ///     // After the first (warm-up) batch this loop stops allocating.
    ///     model.train_batch_with(&x, &[0, 1], &mut opt, &mut ws).unwrap();
    /// }
    /// ```
    pub fn train_batch_with(
        &mut self,
        x: &Tensor,
        targets: &[usize],
        opt: &mut Sgd,
        ws: &mut Workspace,
    ) -> Result<BatchStats, NnError> {
        let batch = x.dims().first().copied().unwrap_or(0);
        assert_eq!(targets.len(), batch, "train_batch: one target per sample required");
        let fwd = self.forward_phase(x, ws);
        self.backward_phase(fwd, targets, opt, ws)
    }

    /// The forward half of [`Cnn::train_batch_with`] (phases ff and fc),
    /// returning the in-flight [`ForwardPhase`]. Split out so the engine's
    /// cross-client fused forward (`fused::fused_forward`) can substitute
    /// a batched forward pass and hand its per-member results to
    /// [`Cnn::backward_phase`] — the two halves together are bit-identical
    /// to the unsplit loop.
    pub fn forward_phase(&mut self, x: &Tensor, ws: &mut Workspace) -> ForwardPhase {
        let batch = x.dims().first().copied().unwrap_or(0);
        let split = self.split;
        // Activations ping-pong between two scratch buffers: each layer
        // writes `b` from `a`, then the buffers swap, so the latest value
        // is always in `a` and no layer output is ever reallocated.
        let mut a = ws.take_scratch();
        let mut b = ws.take_scratch();

        // Phase 1: ff.
        let t = Instant::now();
        let mut first = true;
        for layer in &mut self.layers[..split] {
            if first {
                layer.forward_into(x, ws, &mut a);
                first = false;
            } else {
                layer.forward_into(&a, ws, &mut b);
                std::mem::swap(&mut a, &mut b);
            }
        }
        let ff = t.elapsed().as_secs_f64();

        // Phase 2: fc (the split is validated to be ≥ 1, so `a` holds the
        // feature activations here).
        let t = Instant::now();
        for layer in &mut self.layers[split..] {
            layer.forward_into(&a, ws, &mut b);
            std::mem::swap(&mut a, &mut b);
        }
        let fc = t.elapsed().as_secs_f64();
        ForwardPhase { a, b, batch, ff, fc }
    }

    /// The backward half of [`Cnn::train_batch_with`] (loss, phases bc
    /// and bf, optimizer update), consuming a [`ForwardPhase`]. Gradients
    /// are zeroed here — gradient state is disjoint from the forward
    /// pass, so zeroing after it is indistinguishable from the unsplit
    /// loop's zero-then-forward order.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Tensor`] if the logits do not match `targets`.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the forward batch size.
    pub fn backward_phase(
        &mut self,
        fwd: ForwardPhase,
        targets: &[usize],
        opt: &mut Sgd,
        ws: &mut Workspace,
    ) -> Result<BatchStats, NnError> {
        let ForwardPhase { mut a, mut b, batch, ff, fc } = fwd;
        assert_eq!(targets.len(), batch, "train_batch: one target per sample required");
        self.zero_grads();
        let flops = self.phase_flops(batch);
        let mut seconds = PhaseCost::zero();
        seconds.ff = ff;
        seconds.fc = fc;
        let split = self.split;

        // Phase 3: bc (loss gradient + classifier backward).
        let t = Instant::now();
        let out = cross_entropy_into(&a, targets, &mut b);
        std::mem::swap(&mut a, &mut b);
        for layer in self.layers[split..].iter_mut().rev() {
            layer.backward_into(&a, ws, &mut b);
            std::mem::swap(&mut a, &mut b);
        }
        seconds.bc = t.elapsed().as_secs_f64();

        // Phase 4: bf (skipped when frozen).
        let frozen = self.frozen_features;
        let t = Instant::now();
        if !frozen {
            for (i, layer) in self.layers[..split].iter_mut().enumerate().rev() {
                if i == 0 {
                    // The first layer's input gradient is discarded, so
                    // layers with a cheap path may skip computing it.
                    layer.backward_into_first(&a, ws, &mut b);
                } else {
                    layer.backward_into(&a, ws, &mut b);
                }
                std::mem::swap(&mut a, &mut b);
            }
        }
        seconds.bf = t.elapsed().as_secs_f64();
        ws.give_scratch(b);
        ws.give_scratch(a);

        opt.apply(self);

        let flops = if frozen { PhaseCost { bf: 0.0, ..flops } } else { flops };
        Ok(BatchStats { loss: out.loss, correct: out.correct, batch_size: batch, seconds, flops })
    }

    /// Analytic FLOP cost of each phase for a batch of `batch` samples
    /// (independent of freezing).
    pub fn phase_flops(&self, batch: usize) -> PhaseCost {
        let mut cost = PhaseCost::zero();
        for layer in &self.layers[..self.split] {
            cost.ff += layer.forward_flops(batch) as f64;
            cost.bf += layer.backward_flops(batch) as f64;
        }
        for layer in &self.layers[self.split..] {
            cost.fc += layer.forward_flops(batch) as f64;
            cost.bc += layer.backward_flops(batch) as f64;
        }
        cost
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Snapshot of every parameter tensor (feature section first).
    pub fn weights(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(|l| l.params().into_iter().cloned()).collect()
    }

    /// Snapshot of the feature-section parameters.
    pub fn feature_weights(&self) -> Vec<Tensor> {
        self.layers[..self.split].iter().flat_map(|l| l.params().into_iter().cloned()).collect()
    }

    /// Snapshot of the classifier-section parameters.
    pub fn classifier_weights(&self) -> Vec<Tensor> {
        self.layers[self.split..].iter().flat_map(|l| l.params().into_iter().cloned()).collect()
    }

    fn set_section(
        &mut self,
        range: std::ops::Range<usize>,
        weights: &[Tensor],
    ) -> Result<(), NnError> {
        let expected: usize = self.layers[range.clone()].iter().map(|l| l.params().len()).sum();
        if weights.len() != expected {
            return Err(NnError::SnapshotLength { expected, got: weights.len() });
        }
        let mut offset = 0;
        for layer in &mut self.layers[range] {
            let n = layer.params().len();
            layer.set_params(&weights[offset..offset + n]);
            offset += n;
        }
        Ok(())
    }

    /// Overwrites every parameter from a full snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SnapshotLength`] on count mismatch.
    ///
    /// # Panics
    ///
    /// Panics if a tensor in the snapshot has the wrong shape.
    pub fn set_weights(&mut self, weights: &[Tensor]) -> Result<(), NnError> {
        self.set_section(0..self.layers.len(), weights)
    }

    /// Overwrites the feature-section parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SnapshotLength`] on count mismatch.
    pub fn set_feature_weights(&mut self, weights: &[Tensor]) -> Result<(), NnError> {
        self.set_section(0..self.split, weights)
    }

    /// Overwrites the classifier-section parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SnapshotLength`] on count mismatch.
    pub fn set_classifier_weights(&mut self, weights: &[Tensor]) -> Result<(), NnError> {
        self.set_section(self.split..self.layers.len(), weights)
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().flat_map(|l| l.params()).map(|p| p.numel()).sum()
    }

    /// Number of scalar parameters in the feature section.
    pub fn num_feature_params(&self) -> usize {
        self.layers[..self.split].iter().flat_map(|l| l.params()).map(|p| p.numel()).sum()
    }

    /// Invalidates the parameter-derived caches (packed GEMM panels) of
    /// every layer whose parameters the optimizer just updated — i.e. the
    /// non-frozen sections, mirroring [`Cnn::for_each_trainable`]. Frozen
    /// layers keep their packs, which is exactly the per-layer pack-cache
    /// win: a frozen feature section reuses one weight pack across every
    /// remaining batch of the round.
    pub(crate) fn invalidate_trainable_param_caches(&mut self) {
        let split = self.split;
        let frozen_features = self.frozen_features;
        let frozen_classifier = self.frozen_classifier;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            let in_frozen_section =
                (frozen_features && li < split) || (frozen_classifier && li >= split);
            if !in_frozen_section {
                layer.invalidate_param_caches();
            }
        }
    }

    /// Visits `(global_param_index, param, grad)` for every *trainable*
    /// parameter (skipping the feature section when frozen). The global
    /// index is stable across freezing so optimizer state stays aligned.
    /// Built on [`Layer::for_each_param`], so the walk itself never
    /// allocates — this runs once per batch inside the optimizer.
    pub(crate) fn for_each_trainable(&mut self, f: &mut dyn FnMut(usize, &mut Tensor, &Tensor)) {
        let mut index = 0usize;
        let split = self.split;
        let frozen_features = self.frozen_features;
        let frozen_classifier = self.frozen_classifier;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            let in_frozen_section =
                (frozen_features && li < split) || (frozen_classifier && li >= split);
            layer.for_each_param(&mut |param, grad| {
                if !in_frozen_section {
                    f(index, param, grad);
                }
                index += 1;
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2d, Flatten, Linear, MaxPool2d, Relu};
    use crate::optim::{Sgd, SgdConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Cnn {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(1, 4, 3, 1, 1, 8, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2, 2, 8, 8)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4 * 4 * 4, 3, &mut rng)),
        ];
        Cnn::new(layers, 3, 3).unwrap()
    }

    fn batch(seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor::zeros(&[6, 1, 8, 8]);
        aergia_tensor::init::normal(&mut x, &mut rng, 0.0, 1.0);
        (x, vec![0, 1, 2, 0, 1, 2])
    }

    #[test]
    fn split_validation() {
        let mut rng = StdRng::seed_from_u64(0);
        let layers: Vec<Box<dyn Layer>> =
            vec![Box::new(Flatten::new()), Box::new(Linear::new(4, 2, &mut rng))];
        assert!(Cnn::new(layers, 0, 2).is_err());
    }

    #[test]
    fn train_batch_reduces_loss_over_steps() {
        let mut model = tiny_model(1);
        let mut opt = Sgd::new(SgdConfig { lr: 0.05, ..SgdConfig::default() });
        let (x, y) = batch(2);
        let first = model.train_batch(&x, &y, &mut opt).unwrap().loss;
        let mut last = first;
        for _ in 0..30 {
            last = model.train_batch(&x, &y, &mut opt).unwrap().loss;
        }
        assert!(last < first * 0.8, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn freezing_pins_feature_weights_and_skips_bf() {
        let mut model = tiny_model(3);
        let mut opt = Sgd::new(SgdConfig::default());
        let (x, y) = batch(4);
        model.freeze_features();
        let before = model.feature_weights();
        let clf_before = model.classifier_weights();
        let stats = model.train_batch(&x, &y, &mut opt).unwrap();
        assert_eq!(stats.flops.bf, 0.0);
        assert_eq!(model.feature_weights(), before, "frozen feature weights moved");
        assert_ne!(model.classifier_weights(), clf_before, "classifier should update");
        model.unfreeze_features();
        let stats = model.train_batch(&x, &y, &mut opt).unwrap();
        assert!(stats.flops.bf > 0.0);
        assert_ne!(model.feature_weights(), before);
    }

    #[test]
    fn snapshot_round_trip_full_and_sections() {
        let model_a = tiny_model(10);
        let mut model_b = tiny_model(11);
        assert_ne!(model_a.weights(), model_b.weights());
        model_b.set_weights(&model_a.weights()).unwrap();
        assert_eq!(model_a.weights(), model_b.weights());

        let mut model_c = tiny_model(12);
        model_c.set_feature_weights(&model_a.feature_weights()).unwrap();
        model_c.set_classifier_weights(&model_a.classifier_weights()).unwrap();
        assert_eq!(model_c.weights(), model_a.weights());
    }

    #[test]
    fn snapshot_length_is_validated() {
        let mut model = tiny_model(13);
        assert!(matches!(
            model.set_weights(&[Tensor::zeros(&[1])]),
            Err(NnError::SnapshotLength { .. })
        ));
    }

    #[test]
    fn recombination_matches_paper_aggregation_rule() {
        // Features from a "strong" client, classifier from a "weak" one.
        let strong = tiny_model(20);
        let weak = tiny_model(21);
        let mut combined = tiny_model(22);
        combined.set_feature_weights(&strong.feature_weights()).unwrap();
        combined.set_classifier_weights(&weak.classifier_weights()).unwrap();
        assert_eq!(combined.feature_weights(), strong.feature_weights());
        assert_eq!(combined.classifier_weights(), weak.classifier_weights());
    }

    #[test]
    fn phase_flops_are_positive_and_bf_dominates_ff() {
        let model = tiny_model(30);
        let cost = model.phase_flops(8);
        assert!(cost.ff > 0.0 && cost.fc > 0.0 && cost.bc > 0.0 && cost.bf > 0.0);
        assert!(
            cost.bf
                == 2.0 * cost.ff + model.layers[2].backward_flops(8) as f64
                    - 2.0 * model.layers[2].forward_flops(8) as f64
                || cost.bf > cost.ff
        );
    }

    #[test]
    fn param_counts_split_correctly() {
        let model = tiny_model(31);
        assert_eq!(
            model.num_params(),
            model.num_feature_params()
                + model.classifier_weights().iter().map(|t| t.numel()).sum::<usize>()
        );
    }

    #[test]
    fn clone_is_deep() {
        let model = tiny_model(40);
        let mut cloned = model.clone();
        let w = model.weights();
        cloned.set_weights(&w.iter().map(|t| t.map(|v| v + 1.0)).collect::<Vec<_>>()).unwrap();
        assert_eq!(model.weights(), w, "mutating a clone must not affect the original");
    }

    #[test]
    fn classifier_freezing_pins_classifier_but_trains_features() {
        let mut model = tiny_model(60);
        let mut opt = Sgd::new(SgdConfig::default());
        let (x, y) = batch(61);
        model.freeze_classifier();
        assert!(model.classifier_frozen());
        let clf_before = model.classifier_weights();
        let feat_before = model.feature_weights();
        model.train_batch(&x, &y, &mut opt).unwrap();
        assert_eq!(model.classifier_weights(), clf_before, "frozen classifier moved");
        assert_ne!(model.feature_weights(), feat_before, "features should update");
        model.unfreeze_classifier();
        model.train_batch(&x, &y, &mut opt).unwrap();
        assert_ne!(model.classifier_weights(), clf_before);
    }

    #[test]
    fn evaluate_counts_correct() {
        let mut model = tiny_model(50);
        let (x, y) = batch(51);
        let (loss, correct) = model.evaluate(&x, &y);
        assert!(loss.is_finite());
        assert!(correct <= y.len());
    }
}
