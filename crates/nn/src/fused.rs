//! Cross-client fused forward batching.
//!
//! At the start of a round every selected client trains its first
//! mini-batch from the *same* decoded broadcast weights — a sharing
//! opportunity unique to the federated structure (per-client solvers
//! diverge from batch 1 onward, but batch 0 is embarrassingly common).
//! [`fused_forward`] exploits it: it drives the forward pass of several
//! member models **in lockstep, layer by layer**, and at each GEMM-backed
//! layer ([`Conv2d`], [`Linear`]) issues one multi-RHS packed GEMM
//! ([`ops::matmul_nt_packed_multi_into`]) over *all* members against a
//! single shared weight pack — cutting per-member pack traffic and
//! letting the work-stealing pool schedule the whole cohort's row tiles
//! as one batch. Everything per-member stays per-member: im2col scratch,
//! bias adds, activation caches, and (later) loss and backward.
//!
//! # Bit-identity
//!
//! The fused pass computes exactly what back-to-back serial forward
//! passes would, by construction:
//!
//! * all members hold identical weights, so member 0's weight pack is
//!   byte-identical to the pack each member would build itself;
//! * the multi-RHS GEMM runs the same per-tile kernel over each member's
//!   rows as the single-RHS call (only the spawn scope differs — pinned
//!   by the tensor crate's multi-slab bitwise test);
//! * the non-GEMM layers simply run their ordinary
//!   [`crate::layer::Layer::forward_into`] per member.
//!
//! The engine's determinism suite additionally pins fused-vs-unfused
//! round fingerprints at the system level.

use std::time::Instant;

use aergia_tensor::{ops, Tensor, Workspace};

use crate::layer::{Conv2d, Linear};
use crate::model::{Cnn, ForwardPhase, NnError};

/// One member of a fused forward cohort: a model plus its private
/// workspace and mini-batch input. All members must share an
/// architecture and (for the sharing to be sound) identical weights —
/// the engine builds cohorts from clients resetting to one broadcast.
pub struct FusedMember<'a> {
    /// The member's model.
    pub model: &'a mut Cnn,
    /// The member's private scratch workspace.
    pub ws: &'a mut Workspace,
    /// The member's mini-batch input.
    pub x: &'a Tensor,
}

/// Whether `model`'s layer stack is fully covered by [`fused_forward`].
/// Callers must check this **before** building a cohort (and fall back
/// to serial forward passes otherwise); the fused driver panics on
/// unsupported layers rather than guessing.
pub fn fusion_supported(model: &Cnn) -> bool {
    model
        .layers()
        .iter()
        .all(|l| matches!(l.name(), "conv2d" | "linear" | "relu" | "maxpool2d" | "flatten"))
}

fn conv_at(model: &mut Cnn, li: usize) -> &mut Conv2d {
    model.layers_mut()[li]
        .as_any_mut()
        .and_then(|any| any.downcast_mut::<Conv2d>())
        .expect("fused_forward: conv2d layer expected")
}

fn linear_at(model: &mut Cnn, li: usize) -> &mut Linear {
    model.layers_mut()[li]
        .as_any_mut()
        .and_then(|any| any.downcast_mut::<Linear>())
        .expect("fused_forward: linear layer expected")
}

/// A conv layer for the whole cohort: per-member im2col, one multi-RHS
/// GEMM against member 0's weight pack, per-member bias/reshape/cache.
fn fuse_conv(
    members: &mut [FusedMember<'_>],
    bufs: &mut [(Tensor, Tensor)],
    li: usize,
) -> Result<(), NnError> {
    let mut staged: Vec<(Tensor, usize)> = Vec::with_capacity(members.len());
    for (m, (a, _)) in members.iter_mut().zip(bufs.iter()) {
        let input: &Tensor = if li == 0 { m.x } else { a };
        staged.push(conv_at(m.model, li).im2col_step(input, m.ws));
    }
    let conv0 = conv_at(members[0].model, li);
    let oc = conv0.out_channels();
    conv0.ensure_fwd_pack(staged[0].0.dims()[0]);
    let pack = conv0.take_fwd_pack();
    let mut ys: Vec<Tensor> = members
        .iter_mut()
        .zip(staged.iter())
        .map(|(m, (cols, _))| m.ws.take(&[cols.dims()[0], oc]))
        .collect();
    let mut slabs: Vec<(&Tensor, &mut Tensor)> =
        staged.iter().map(|(cols, _)| cols).zip(ys.iter_mut()).collect();
    let gemm = ops::matmul_nt_packed_multi_into(&mut slabs, &pack);
    drop(slabs);
    // The pack goes home before any error bubbles, so member 0 is never
    // left without its cached weight pack.
    conv_at(members[0].model, li).put_fwd_pack(pack);
    gemm?;
    for (((m, (a, b)), (cols, batch)), y) in
        members.iter_mut().zip(bufs.iter_mut()).zip(staged).zip(ys)
    {
        let conv = conv_at(m.model, li);
        if li == 0 {
            conv.finish_forward(cols, y, batch, m.ws, a);
        } else {
            conv.finish_forward(cols, y, batch, m.ws, b);
            std::mem::swap(a, b);
        }
    }
    Ok(())
}

/// A linear layer for the whole cohort: one multi-RHS GEMM straight into
/// each member's activation buffer, then per-member bias + input cache.
fn fuse_linear(
    members: &mut [FusedMember<'_>],
    bufs: &mut [(Tensor, Tensor)],
    li: usize,
) -> Result<(), NnError> {
    let rows0 = if li == 0 {
        members[0].x.dims().first().copied().unwrap_or(0)
    } else {
        bufs[0].0.dims().first().copied().unwrap_or(0)
    };
    let fc0 = linear_at(members[0].model, li);
    fc0.ensure_fwd_pack(rows0);
    let pack = fc0.take_fwd_pack();
    let mut slabs: Vec<(&Tensor, &mut Tensor)> = members
        .iter()
        .zip(bufs.iter_mut())
        .map(|(m, (a, b))| if li == 0 { (m.x, a) } else { (&*a, b) })
        .collect();
    let gemm = ops::matmul_nt_packed_multi_into(&mut slabs, &pack);
    drop(slabs);
    linear_at(members[0].model, li).put_fwd_pack(pack);
    gemm?;
    for (m, (a, b)) in members.iter_mut().zip(bufs.iter_mut()) {
        let fc = linear_at(m.model, li);
        if li == 0 {
            fc.finish_forward(m.x, m.ws, a);
        } else {
            fc.finish_forward(&*a, m.ws, b);
            std::mem::swap(a, b);
        }
    }
    Ok(())
}

/// Runs the forward pass of every member in lockstep, batching the GEMM
/// of each [`Conv2d`]/[`Linear`] layer across the cohort (see the module
/// docs), and returns one [`ForwardPhase`] per member — exactly what
/// [`Cnn::forward_phase`] would have produced serially, ready for each
/// member's own [`Cnn::backward_phase`].
///
/// Measured forward wall-clock is shared work, so it is attributed
/// evenly across members; analytic FLOP costs (which drive the simulated
/// clock) are untouched.
///
/// # Errors
///
/// Returns [`NnError::Tensor`] if a member's input does not match the
/// model — member state may be partially advanced, so callers should
/// treat an error as fatal for the round.
///
/// # Panics
///
/// Panics if `members` is empty, the members' architectures disagree, or
/// a layer is not covered by [`fusion_supported`].
pub fn fused_forward(members: &mut [FusedMember<'_>]) -> Result<Vec<ForwardPhase>, NnError> {
    assert!(!members.is_empty(), "fused_forward: empty cohort");
    let layer_count = members[0].model.layers().len();
    let split = members[0].model.split();
    for m in members.iter() {
        assert_eq!(
            m.model.layers().len(),
            layer_count,
            "fused_forward: members must share an architecture"
        );
        assert_eq!(m.model.split(), split, "fused_forward: members must share a split");
    }
    let cohort = members.len();
    let mut bufs: Vec<(Tensor, Tensor)> =
        members.iter_mut().map(|m| (m.ws.take_scratch(), m.ws.take_scratch())).collect();
    let (mut ff, mut fc) = (0.0f64, 0.0f64);
    for li in 0..layer_count {
        let t = Instant::now();
        match members[0].model.layers()[li].name() {
            "conv2d" => fuse_conv(members, &mut bufs, li)?,
            "linear" => fuse_linear(members, &mut bufs, li)?,
            _ => {
                // Element-wise / shape layers have no cross-member work
                // to share: plain per-member forward.
                for (m, (a, b)) in members.iter_mut().zip(bufs.iter_mut()) {
                    let layer = &mut m.model.layers_mut()[li];
                    if li == 0 {
                        layer.forward_into(m.x, m.ws, a);
                    } else {
                        layer.forward_into(&*a, m.ws, b);
                        std::mem::swap(a, b);
                    }
                }
            }
        }
        let dt = t.elapsed().as_secs_f64() / cohort as f64;
        if li < split {
            ff += dt;
        } else {
            fc += dt;
        }
    }
    Ok(members
        .iter()
        .zip(bufs)
        .map(|(m, (a, b))| ForwardPhase {
            a,
            b,
            batch: m.x.dims().first().copied().unwrap_or(0),
            ff,
            fc,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelArch;
    use crate::optim::{Sgd, SgdConfig};
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    fn random_batch(seed: u64, batch: usize) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor::zeros(&[batch, 1, 28, 28]);
        aergia_tensor::init::normal(&mut x, &mut rng, 0.0, 1.0);
        let y = (0..batch).map(|_| rng.random_range(0..10)).collect();
        (x, y)
    }

    /// The load-bearing property: a fused cohort's forward + per-member
    /// backward is bitwise identical to serial per-member training.
    #[test]
    fn fused_round_matches_serial_training_bitwise() {
        let template = ModelArch::MnistCnn.build(99);
        assert!(fusion_supported(&template));
        let cohort = 3;
        let batches: Vec<_> = (0..cohort).map(|i| random_batch(500 + i as u64, 4)).collect();

        // Serial reference: each member trains alone.
        let mut serial_weights = Vec::new();
        let mut serial_losses = Vec::new();
        for (x, y) in &batches {
            let mut model = template.clone();
            let mut opt = Sgd::new(SgdConfig::default());
            let mut ws = Workspace::new();
            let stats = model.train_batch_with(x, y, &mut opt, &mut ws).unwrap();
            serial_losses.push(stats.loss);
            serial_weights.push(model.weights());
        }

        // Fused: one lockstep forward, then per-member backward.
        let mut models: Vec<Cnn> = (0..cohort).map(|_| template.clone()).collect();
        let mut workspaces: Vec<Workspace> = (0..cohort).map(|_| Workspace::new()).collect();
        let mut members: Vec<FusedMember<'_>> = models
            .iter_mut()
            .zip(workspaces.iter_mut())
            .zip(&batches)
            .map(|((model, ws), (x, _))| FusedMember { model, ws, x })
            .collect();
        let phases = fused_forward(&mut members).unwrap();
        drop(members);
        for (i, fwd) in phases.into_iter().enumerate() {
            let mut opt = Sgd::new(SgdConfig::default());
            let stats =
                models[i].backward_phase(fwd, &batches[i].1, &mut opt, &mut workspaces[i]).unwrap();
            assert_eq!(stats.loss.to_bits(), serial_losses[i].to_bits(), "member {i} loss");
            let fused_w = models[i].weights();
            assert_eq!(fused_w.len(), serial_weights[i].len());
            for (fw, sw) in fused_w.iter().zip(&serial_weights[i]) {
                let fb: Vec<u32> = fw.data().iter().map(|v| v.to_bits()).collect();
                let sb: Vec<u32> = sw.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(fb, sb, "member {i} weights diverged");
            }
        }
    }

    /// Repeating fused rounds against warm workspaces must also hold
    /// (dirty pack pools, cached im2col buffers, reused scratch).
    #[test]
    fn fused_forward_is_stable_across_warm_reuse() {
        let template = ModelArch::MnistCnn.build(7);
        let cohort = 2;
        let batches: Vec<_> = (0..cohort).map(|i| random_batch(40 + i as u64, 3)).collect();
        let mut models: Vec<Cnn> = (0..cohort).map(|_| template.clone()).collect();
        let mut workspaces: Vec<Workspace> = (0..cohort).map(|_| Workspace::new()).collect();
        let mut first_logits: Vec<Vec<u32>> = Vec::new();
        for pass in 0..3 {
            let mut members: Vec<FusedMember<'_>> = models
                .iter_mut()
                .zip(workspaces.iter_mut())
                .zip(&batches)
                .map(|((model, ws), (x, _))| FusedMember { model, ws, x })
                .collect();
            let phases = fused_forward(&mut members).unwrap();
            drop(members);
            for (i, fwd) in phases.into_iter().enumerate() {
                let logits: Vec<u32> = fwd.a.data().iter().map(|v| v.to_bits()).collect();
                if pass == 0 {
                    first_logits.push(logits);
                } else {
                    assert_eq!(logits, first_logits[i], "pass {pass} member {i}");
                }
                // Return the buffers so the next pass reuses them warm.
                let ForwardPhase { a, b, .. } = fwd;
                workspaces[i].give_scratch(b);
                workspaces[i].give_scratch(a);
            }
        }
    }

    #[test]
    fn residual_architectures_are_reported_unsupported() {
        let template = ModelArch::Cifar10ResNet.build(3);
        assert!(!fusion_supported(&template));
    }
}
