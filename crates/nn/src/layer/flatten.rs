//! Shape-adapter layer between convolutional and dense sections.

use aergia_tensor::Tensor;

use super::Layer;

/// Flattens `[N, C, H, W]` activations into `[N, C·H·W]` rows.
///
/// # Examples
///
/// ```
/// use aergia_nn::layer::{Flatten, Layer};
/// use aergia_tensor::Tensor;
///
/// let mut f = Flatten::new();
/// let y = f.forward(&Tensor::zeros(&[2, 3, 4, 4]));
/// assert_eq!(y.dims(), &[2, 48]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_dims: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: Vec::new() }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let dims = x.dims().to_vec();
        assert!(dims.len() >= 2, "Flatten: input must be at least rank 2");
        let batch = dims[0];
        let rest: usize = dims[1..].iter().product();
        self.cached_dims = dims;
        x.reshape(&[batch, rest]).expect("Flatten: reshape cannot fail")
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert!(!self.cached_dims.is_empty(), "Flatten::backward before forward");
        let dx = dy.reshape(&self.cached_dims).expect("Flatten::backward: size mismatch");
        self.cached_dims.clear();
        dx
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn set_params(&mut self, weights: &[Tensor]) {
        assert!(weights.is_empty(), "Flatten::set_params: flatten has no parameters");
    }

    fn zero_grads(&mut self) {}

    fn forward_flops(&self, _batch: usize) -> u64 {
        0
    }

    fn backward_flops(&self, _batch: usize) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_shapes() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 2, 1]).unwrap();
        let y = f.forward(&x);
        assert_eq!(y.dims(), &[2, 6]);
        let dx = f.backward(&y);
        assert_eq!(dx.dims(), &[2, 3, 2, 1]);
        assert_eq!(dx.data(), x.data());
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut f = Flatten::new();
        f.backward(&Tensor::zeros(&[2, 6]));
    }
}
