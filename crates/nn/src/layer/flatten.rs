//! Shape-adapter layer between convolutional and dense sections.

use aergia_tensor::{Tensor, Workspace};

use super::Layer;

/// Flattens `[N, C, H, W]` activations into `[N, C·H·W]` rows.
///
/// # Examples
///
/// ```
/// use aergia_nn::layer::{Flatten, Layer};
/// use aergia_tensor::Tensor;
///
/// let mut f = Flatten::new();
/// let y = f.forward(&Tensor::zeros(&[2, 3, 4, 4]));
/// assert_eq!(y.dims(), &[2, 48]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_dims: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: Vec::new() }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = Tensor::default();
        self.forward_into(x, &mut Workspace::new(), &mut y);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut dx = Tensor::default();
        self.backward_into(dy, &mut Workspace::new(), &mut dx);
        dx
    }

    fn forward_into(&mut self, x: &Tensor, _ws: &mut Workspace, out: &mut Tensor) {
        let dims = x.dims();
        assert!(dims.len() >= 2, "Flatten: input must be at least rank 2");
        let batch = dims[0];
        let rest: usize = dims[1..].iter().product();
        self.cached_dims.clear();
        self.cached_dims.extend_from_slice(dims);
        out.reset_for_overwrite(&[batch, rest]);
        out.data_mut().copy_from_slice(x.data());
    }

    fn backward_into(&mut self, dy: &Tensor, _ws: &mut Workspace, out: &mut Tensor) {
        assert!(!self.cached_dims.is_empty(), "Flatten::backward before forward");
        assert_eq!(
            dy.numel(),
            self.cached_dims.iter().product::<usize>(),
            "Flatten::backward: size mismatch"
        );
        out.reset_for_overwrite(&self.cached_dims);
        out.data_mut().copy_from_slice(dy.data());
        self.cached_dims.clear();
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn set_params(&mut self, weights: &[Tensor]) {
        assert!(weights.is_empty(), "Flatten::set_params: flatten has no parameters");
    }

    fn zero_grads(&mut self) {}

    fn forward_flops(&self, _batch: usize) -> u64 {
        0
    }

    fn backward_flops(&self, _batch: usize) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_shapes() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 2, 1]).unwrap();
        let y = f.forward(&x);
        assert_eq!(y.dims(), &[2, 6]);
        let dx = f.backward(&y);
        assert_eq!(dx.dims(), &[2, 3, 2, 1]);
        assert_eq!(dx.data(), x.data());
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut f = Flatten::new();
        f.backward(&Tensor::zeros(&[2, 6]));
    }
}
