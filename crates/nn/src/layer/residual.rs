//! Residual block (two 3×3 convolutions with a skip connection), used by
//! the `*-resnet` architectures of the paper's Figure 4 profiling study.

use aergia_tensor::{Tensor, Workspace};
use rand::Rng;

use super::{check_snapshot, Conv2d, Layer, Relu};

/// `y = relu(conv2(relu(conv1(x))) + proj(x))`.
///
/// `proj` is a 1×1 convolution inserted automatically when the input and
/// output channel counts differ; otherwise the skip path is the identity.
/// Spatial dimensions are preserved (stride 1, padding 1).
///
/// # Examples
///
/// ```
/// use aergia_nn::layer::{Layer, ResidualBlock};
/// use aergia_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut block = ResidualBlock::new(8, 16, 10, 10, &mut rng);
/// let y = block.forward(&Tensor::zeros(&[2, 8, 10, 10]));
/// assert_eq!(y.dims(), &[2, 16, 10, 10]);
/// ```
#[derive(Debug, Clone)]
pub struct ResidualBlock {
    conv1: Conv2d,
    relu_mid: Relu,
    conv2: Conv2d,
    projection: Option<Conv2d>,
    relu_out: Relu,
    forward_ran: bool,
}

impl ResidualBlock {
    /// Creates a residual block mapping `in_channels` → `out_channels` on
    /// `in_h`×`in_w` feature maps.
    ///
    /// # Panics
    ///
    /// Panics on zero channel counts or if a 3×3 kernel does not fit.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        rng: &mut R,
    ) -> Self {
        let conv1 = Conv2d::new(in_channels, out_channels, 3, 1, 1, in_h, in_w, rng);
        let conv2 = Conv2d::new(out_channels, out_channels, 3, 1, 1, in_h, in_w, rng);
        let projection = (in_channels != out_channels)
            .then(|| Conv2d::new(in_channels, out_channels, 1, 1, 0, in_h, in_w, rng));
        ResidualBlock {
            conv1,
            relu_mid: Relu::new(),
            conv2,
            projection,
            relu_out: Relu::new(),
            forward_ran: false,
        }
    }

    /// Whether the skip path uses a 1×1 projection.
    pub fn has_projection(&self) -> bool {
        self.projection.is_some()
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = Tensor::default();
        self.forward_into(x, &mut Workspace::new(), &mut y);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut dx = Tensor::default();
        self.backward_into(dy, &mut Workspace::new(), &mut dx);
        dx
    }

    fn forward_into(&mut self, x: &Tensor, ws: &mut Workspace, out: &mut Tensor) {
        // Internal buffers come off the scratch stack: every one is fully
        // reset by the sub-layer it is handed to, and the LIFO discipline
        // keeps the same physical buffers in the same roles every batch.
        let mut main = ws.take_scratch();
        self.conv1.forward_into(x, ws, &mut main);
        let mut h = ws.take_scratch();
        self.relu_mid.forward_into(&main, ws, &mut h);
        self.conv2.forward_into(&h, ws, &mut main);
        // Skip path: `main += skip` matches the allocating `main.add(&skip)`
        // element order exactly.
        match &mut self.projection {
            Some(proj) => {
                proj.forward_into(x, ws, &mut h);
                main.add_assign(&h);
            }
            None => main.add_assign(x),
        }
        ws.give_scratch(h);
        self.forward_ran = true;
        self.relu_out.forward_into(&main, ws, out);
        ws.give_scratch(main);
    }

    fn backward_into(&mut self, dy: &Tensor, ws: &mut Workspace, out: &mut Tensor) {
        assert!(self.forward_ran, "ResidualBlock::backward before forward");
        self.forward_ran = false;
        let mut d_sum = ws.take_scratch();
        self.relu_out.backward_into(dy, ws, &mut d_sum);
        // Main path.
        let mut a = ws.take_scratch();
        self.conv2.backward_into(&d_sum, ws, &mut a);
        let mut b = ws.take_scratch();
        self.relu_mid.backward_into(&a, ws, &mut b);
        self.conv1.backward_into(&b, ws, out);
        // Skip path.
        match &mut self.projection {
            Some(proj) => {
                proj.backward_into(&d_sum, ws, &mut a);
                out.add_assign(&a);
            }
            None => out.add_assign(&d_sum),
        }
        ws.give_scratch(b);
        ws.give_scratch(a);
        ws.give_scratch(d_sum);
    }

    fn params(&self) -> Vec<&Tensor> {
        let mut out = self.conv1.params();
        out.extend(self.conv2.params());
        if let Some(proj) = &self.projection {
            out.extend(proj.params());
        }
        out
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        let mut out = self.conv1.params_and_grads();
        out.extend(self.conv2.params_and_grads());
        if let Some(proj) = &mut self.projection {
            out.extend(proj.params_and_grads());
        }
        out
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.conv1.for_each_param(f);
        self.conv2.for_each_param(f);
        if let Some(proj) = &mut self.projection {
            proj.for_each_param(f);
        }
    }

    fn set_params(&mut self, weights: &[Tensor]) {
        check_snapshot("ResidualBlock", &self.params(), weights);
        self.conv1.set_params(&weights[0..2]);
        self.conv2.set_params(&weights[2..4]);
        if let Some(proj) = &mut self.projection {
            proj.set_params(&weights[4..6]);
        }
    }

    fn zero_grads(&mut self) {
        self.conv1.zero_grads();
        self.conv2.zero_grads();
        if let Some(proj) = &mut self.projection {
            proj.zero_grads();
        }
    }

    fn invalidate_param_caches(&mut self) {
        self.conv1.invalidate_param_caches();
        self.conv2.invalidate_param_caches();
        if let Some(proj) = &mut self.projection {
            proj.invalidate_param_caches();
        }
    }

    fn forward_flops(&self, batch: usize) -> u64 {
        self.conv1.forward_flops(batch)
            + self.conv2.forward_flops(batch)
            + self.projection.as_ref().map_or(0, |p| p.forward_flops(batch))
    }

    fn backward_flops(&self, batch: usize) -> u64 {
        self.conv1.backward_flops(batch)
            + self.conv2.backward_flops(batch)
            + self.projection.as_ref().map_or(0, |p| p.backward_flops(batch))
    }

    fn name(&self) -> &'static str {
        "residual"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::finite_diff_input_check;
    use aergia_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn identity_skip_when_channels_match() {
        let block = ResidualBlock::new(4, 4, 6, 6, &mut rng());
        assert!(!block.has_projection());
        assert_eq!(block.params().len(), 4);
    }

    #[test]
    fn projection_inserted_on_channel_change() {
        let block = ResidualBlock::new(4, 8, 6, 6, &mut rng());
        assert!(block.has_projection());
        assert_eq!(block.params().len(), 6);
    }

    #[test]
    fn forward_shape() {
        let mut block = ResidualBlock::new(3, 5, 7, 7, &mut rng());
        let y = block.forward(&Tensor::zeros(&[2, 3, 7, 7]));
        assert_eq!(y.dims(), &[2, 5, 7, 7]);
    }

    #[test]
    fn gradient_check_identity_skip() {
        let mut block = ResidualBlock::new(2, 2, 5, 5, &mut rng());
        let mut x = Tensor::zeros(&[1, 2, 5, 5]);
        init::normal(&mut x, &mut rng(), 0.0, 0.5);
        finite_diff_input_check(&mut block, &x, 6e-2);
    }

    #[test]
    fn gradient_check_projection_skip() {
        let mut block = ResidualBlock::new(2, 3, 4, 4, &mut rng());
        let mut x = Tensor::zeros(&[1, 2, 4, 4]);
        init::normal(&mut x, &mut rng(), 0.0, 0.5);
        finite_diff_input_check(&mut block, &x, 6e-2);
    }

    #[test]
    fn set_params_round_trip() {
        let mut a = ResidualBlock::new(2, 4, 5, 5, &mut rng());
        let b = ResidualBlock::new(2, 4, 5, 5, &mut StdRng::seed_from_u64(5));
        let snapshot: Vec<Tensor> = b.params().into_iter().cloned().collect();
        a.set_params(&snapshot);
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(*pa, pb);
        }
    }
}
