//! Network layers.
//!
//! Every layer implements the object-safe [`Layer`] trait: a stateful
//! `forward` that caches whatever `backward` will need, a `backward` that
//! accumulates parameter gradients and returns the input gradient, access
//! to parameters/gradients for the optimizer and for weight snapshots, and
//! an analytic FLOP cost used by the simulation's timing model.

mod activation;
mod conv2d;
mod flatten;
mod linear;
mod pool;
mod residual;

pub use activation::Relu;
pub use conv2d::Conv2d;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::MaxPool2d;
pub use residual::ResidualBlock;

use std::fmt;

use aergia_tensor::{Tensor, Workspace};

/// A differentiable network layer.
///
/// `forward` must be called before `backward`; layers cache activations
/// between the two calls (so a layer instance is not reentrant). Gradients
/// accumulate across `backward` calls until [`Layer::zero_grads`].
///
/// The trait is object-safe: models store `Box<dyn Layer>` and clone them
/// through [`Layer::clone_box`]. Layers are plain owned data (`Send +
/// Sync`), so a model template can be shared immutably across the
/// parallel-round worker threads and cloned per client.
pub trait Layer: fmt::Debug + Send + Sync {
    /// Computes the layer output, caching state needed by `backward`.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Back-propagates `dy`, accumulating parameter gradients, and returns
    /// the gradient with respect to the forward input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Buffer-reuse twin of [`Layer::forward`]: computes the layer output
    /// into `out` (which the layer [`Tensor::reset`]s to the right shape,
    /// reusing its allocation), drawing any internal scratch from `ws`.
    ///
    /// Results are **bit-identical** to [`Layer::forward`] — the property
    /// suite asserts it per layer — and in steady state (same input shape
    /// every call, warm workspace) the call performs no heap allocation.
    /// The default implementation delegates to the allocating method so
    /// layers can migrate one by one.
    fn forward_into(&mut self, x: &Tensor, ws: &mut Workspace, out: &mut Tensor) {
        let _ = ws;
        *out = self.forward(x);
    }

    /// Buffer-reuse twin of [`Layer::backward`]: writes the input gradient
    /// into `out`, drawing scratch from `ws`. Same bit-identity and
    /// steady-state zero-allocation contract as [`Layer::forward_into`].
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before a forward pass.
    fn backward_into(&mut self, dy: &Tensor, ws: &mut Workspace, out: &mut Tensor) {
        let _ = ws;
        *out = self.backward(dy);
    }

    /// [`Layer::backward_into`] for the model's **first** layer, whose
    /// propagated input gradient is discarded by the training loop:
    /// implementations may leave `out` untouched and skip the work of
    /// producing it (parameter gradients must still be accumulated
    /// exactly as in the full backward). Defaults to the full backward.
    fn backward_into_first(&mut self, dy: &Tensor, ws: &mut Workspace, out: &mut Tensor) {
        self.backward_into(dy, ws, out);
    }

    /// Immutable views of the layer parameters (possibly empty).
    fn params(&self) -> Vec<&Tensor>;

    /// Parameter/gradient pairs for the optimizer, in the same order as
    /// [`Layer::params`].
    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)>;

    /// Visits every parameter/gradient pair in [`Layer::params`] order
    /// without materialising a `Vec` — the allocation-free path the
    /// optimizer takes every batch. The default delegates to
    /// [`Layer::params_and_grads`] (which is already allocation-free for
    /// parameterless layers, since an empty `Vec` never touches the heap).
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for (param, grad) in self.params_and_grads() {
            f(param, grad);
        }
    }

    /// Overwrites the layer parameters from a snapshot slice.
    ///
    /// Implementations must also drop any cached parameter-derived state
    /// (see [`Layer::invalidate_param_caches`]) — the engine resets client
    /// models through this entry point every round.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from `self.params().len()` or any
    /// shape mismatches.
    fn set_params(&mut self, weights: &[Tensor]);

    /// Drops cached state derived from the layer's parameters — today the
    /// packed GEMM panels ([`aergia_tensor::gemm::PackedB`]) that
    /// matmul-backed layers cache per weight operand. Called by the
    /// optimizer after every parameter update (and by `set_params`
    /// implementations); anything else that mutates parameters in place
    /// (e.g. via [`Layer::params_and_grads`]) must call it too, or
    /// subsequent forward/backward passes will run on stale packs. The
    /// default is a no-op for layers without parameter-derived caches.
    fn invalidate_param_caches(&mut self) {}

    /// Resets accumulated gradients to zero.
    fn zero_grads(&mut self);

    /// Estimated FLOPs of `forward` for a batch of `batch` samples.
    fn forward_flops(&self, batch: usize) -> u64;

    /// Estimated FLOPs of `backward` for a batch of `batch` samples.
    fn backward_flops(&self, batch: usize) -> u64;

    /// A short human-readable layer name (`conv2d`, `linear`, …).
    fn name(&self) -> &'static str;

    /// Concrete-type access for the fused cross-client forward, which
    /// must drive the GEMM-backed layers ([`Conv2d`], [`Linear`]) through
    /// their split forward stages. Layers without a fused path keep the
    /// default `None`; the fusion driver checks support up front (by
    /// [`Layer::name`]) and falls back to the plain per-member
    /// [`Layer::forward_into`] for everything else.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }

    /// Clones the layer behind a fresh box (parameters included, caches
    /// not guaranteed).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Asserts that a snapshot slice matches the layer's parameter list; used
/// by `set_params` implementations.
pub(crate) fn check_snapshot(name: &str, params: &[&Tensor], weights: &[Tensor]) {
    assert_eq!(
        params.len(),
        weights.len(),
        "{name}::set_params: expected {} tensors, got {}",
        params.len(),
        weights.len()
    );
    for (i, (p, w)) in params.iter().zip(weights).enumerate() {
        assert_eq!(
            p.dims(),
            w.dims(),
            "{name}::set_params: tensor {i} shape mismatch ({:?} vs {:?})",
            p.dims(),
            w.dims()
        );
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for layer gradient checks.

    use aergia_tensor::Tensor;

    use super::Layer;

    /// Central-difference gradient check: perturbs each input element and
    /// compares the numeric directional derivative of `sum(forward(x) * w)`
    /// against the analytic `backward(w)`.
    pub fn finite_diff_input_check(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let y = layer.forward(x);
        // Random-ish but deterministic cotangent.
        let cot = Tensor::from_vec(
            (0..y.numel()).map(|i| ((i % 7) as f32 - 3.0) / 3.0).collect(),
            y.dims(),
        )
        .unwrap();
        let dx = layer.backward(&cot);
        assert_eq!(dx.dims(), x.dims());

        for i in (0..x.numel()).step_by(x.numel().div_ceil(16).max(1)) {
            let analytic = dx.data()[i];
            // A large eps can push a pre-activation across a ReLU kink,
            // where the central difference averages two linear regimes and
            // disagrees with the (correct) analytic gradient. Shrinking eps
            // makes that artifact vanish, while a genuinely wrong gradient
            // stays wrong — so retry at finer steps before failing.
            let mut numeric = f32::NAN;
            let mut ok = false;
            for eps in [1e-2f32, 1e-3, 2.5e-4] {
                let mut xp = x.clone();
                xp.data_mut()[i] += eps;
                let mut xm = x.clone();
                xm.data_mut()[i] -= eps;
                let yp = layer.forward(&xp);
                let ym = layer.forward(&xm);
                let fp: f32 = yp.data().iter().zip(cot.data()).map(|(a, b)| a * b).sum();
                let fm: f32 = ym.data().iter().zip(cot.data()).map(|(a, b)| a * b).sum();
                numeric = (fp - fm) / (2.0 * eps);
                if (numeric - analytic).abs() <= tol * (1.0 + numeric.abs()) {
                    ok = true;
                    break;
                }
            }
            assert!(ok, "grad check failed at {i}: numeric {numeric} vs analytic {analytic}");
        }
    }
}
