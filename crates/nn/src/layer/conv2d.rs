//! 2-D convolution layer (im2col + matmul lowering).

use aergia_tensor::conv::{
    col2im_into, im2col_into, nchw_to_rows_into, rows_to_nchw_into, ConvGeometry,
};
use aergia_tensor::gemm::{GemmOp, PackedB, VariantCache};
use aergia_tensor::{init, ops, Tensor, Workspace};
use rand::Rng;

use super::{check_snapshot, Layer};

/// A 2-D convolution over NCHW inputs with square stride and padding.
///
/// Weights are stored as a `[out_channels, in_channels·kh·kw]` matrix (the
/// im2col lowering), bias as `[out_channels]`.
///
/// # Examples
///
/// ```
/// use aergia_nn::layer::{Conv2d, Layer};
/// use aergia_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(1, 4, 3, 1, 1, 8, 8, &mut rng);
/// let y = conv.forward(&Tensor::zeros(&[2, 1, 8, 8]));
/// assert_eq!(y.dims(), &[2, 4, 8, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    geom: ConvGeometry,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_cols: Option<Tensor>,
    cached_batch: usize,
    /// `Wᵀ` packed for the forward `cols·Wᵀ`; valid until the weights
    /// change (frozen feature sections reuse it across whole rounds).
    packed_wt: PackedB,
    /// `W` packed for the backward `dy_rows·W`; valid until the weights
    /// change.
    packed_w: PackedB,
    /// Autotuned kernel variants, memoized per GEMM shape next to the
    /// packs they describe — steady-state batches (fixed shapes) never
    /// touch the global tuner map. One memo per distinct GEMM.
    tuned_fwd: VariantCache,
    tuned_dw: VariantCache,
    tuned_dx: VariantCache,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform weights.
    ///
    /// `in_h`/`in_w` fix the spatial input size (needed for the FLOP model
    /// and backward geometry); stride and padding are uniform.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input (see
    /// [`ConvGeometry::new`]) or any size is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        in_h: usize,
        in_w: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0, "Conv2d: zero size");
        let geom = ConvGeometry::new(in_h, in_w, kernel, kernel, stride, pad);
        let ckk = in_channels * kernel * kernel;
        let mut weight = Tensor::zeros(&[out_channels, ckk]);
        init::kaiming_uniform(&mut weight, rng, ckk);
        Conv2d {
            in_channels,
            out_channels,
            geom,
            weight,
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, ckk]),
            grad_bias: Tensor::zeros(&[out_channels]),
            cached_cols: None,
            cached_batch: 0,
            packed_wt: PackedB::new(),
            packed_w: PackedB::new(),
            tuned_fwd: VariantCache::new(),
            tuned_dw: VariantCache::new(),
            tuned_dx: VariantCache::new(),
        }
    }

    /// Output spatial size `(out_h, out_w)`.
    pub fn out_hw(&self) -> (usize, usize) {
        (self.geom.out_h, self.geom.out_w)
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Columns of the im2col patch matrix (`in_channels · kh · kw`).
    fn ckk(&self) -> usize {
        self.in_channels * self.geom.k_h * self.geom.k_w
    }

    /// The im2col stage of the forward pass: lowers `x` into the patch
    /// matrix (reusing the cached buffer when available) and returns it
    /// with the batch size. Split out of [`Layer::forward_into`] so the
    /// fused cross-client forward can run the same stage per member.
    pub(crate) fn im2col_step(&mut self, x: &Tensor, ws: &mut Workspace) -> (Tensor, usize) {
        let batch = x.dims()[0];
        let rows = batch * self.geom.out_h * self.geom.out_w;
        // The im2col scratch cycles between the workspace and
        // `cached_cols`, so across batches the patch matrix is built in
        // the same buffer instead of a fresh allocation. A still-cached
        // buffer (backward skipped, e.g. frozen features) is reclaimed
        // rather than dropped.
        let mut cols = match self.cached_cols.take() {
            Some(buf) => buf,
            None => ws.take(&[rows, self.ckk()]),
        };
        im2col_into(x, self.in_channels, &self.geom, &mut cols)
            .expect("Conv2d::forward: bad input");
        (cols, batch)
    }

    /// Ensures the forward weight pack (`Wᵀ`, autotuned for `rows` im2col
    /// rows) is current.
    pub(crate) fn ensure_fwd_pack(&mut self, rows: usize) {
        let v = self.tuned_fwd.get(GemmOp::Nt, rows, self.ckk(), self.out_channels);
        self.packed_wt.ensure_transposed_with(&self.weight, v).expect("conv weight pack");
    }

    /// Moves the forward weight pack out of the layer (for the fused
    /// multi-member GEMM). Pair with [`Conv2d::put_fwd_pack`].
    pub(crate) fn take_fwd_pack(&mut self) -> PackedB {
        std::mem::take(&mut self.packed_wt)
    }

    /// Returns the pack taken by [`Conv2d::take_fwd_pack`].
    pub(crate) fn put_fwd_pack(&mut self, pack: PackedB) {
        self.packed_wt = pack;
    }

    /// Everything after the forward GEMM: bias add, NCHW reshape, and the
    /// cols cache `backward_into` will consume. Shared verbatim between
    /// the serial and fused forward paths so they cannot diverge.
    pub(crate) fn finish_forward(
        &mut self,
        cols: Tensor,
        mut y_rows: Tensor,
        batch: usize,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) {
        ops::add_bias_rows(&mut y_rows, &self.bias).expect("conv bias");
        rows_to_nchw_into(&y_rows, batch, self.out_channels, self.geom.out_h, self.geom.out_w, out)
            .expect("conv reshape");
        ws.give(y_rows);
        self.cached_cols = Some(cols);
        self.cached_batch = batch;
    }

    /// The parameter-gradient half of the backward pass (dW/db), shared by
    /// [`Layer::backward_into`] and the dx-skipping
    /// [`Layer::backward_into_first`]. Returns the consumed im2col cache,
    /// the reshaped `dy` rows and the row count for the dx path.
    fn backward_grads(&mut self, dy: &Tensor, ws: &mut Workspace) -> (Tensor, Tensor, usize) {
        let cols = self.cached_cols.take().expect("Conv2d::backward before forward");
        let rows = self.cached_batch * self.geom.out_h * self.geom.out_w;
        let mut dy_rows = ws.take(&[rows, self.out_channels]);
        nchw_to_rows_into(dy, &mut dy_rows).expect("conv dy reshape");
        // dW[oc, ckk] = dyᵀ · cols
        // dW/db land in zeroed scratch first, then fold into the running
        // gradients with a single add each — accumulating the matmul
        // directly into `grad_weight` would reorder the summation and
        // break bit-identity with the allocating path.
        // Both dW operands are per-batch; their packs cycle through the
        // workspace pack pools and share one autotuned variant
        // (`gemm_packed_tn` insists its operands agree on layout).
        let vdw = self.tuned_dw.get(GemmOp::Tn, self.out_channels, rows, self.ckk());
        let mut pa = ws.take_packed_a();
        pa.pack_transposed_with(&dy_rows, vdw).expect("conv dy pack");
        let mut pbc = ws.take_packed_b();
        pbc.pack_with(&cols, vdw).expect("conv cols pack");
        let mut dw = ws.take(self.grad_weight.dims());
        ops::matmul_tn_packed_into(&pa, &pbc, &mut dw).expect("conv dW");
        self.grad_weight.add_assign(&dw);
        ws.give(dw);
        ws.give_packed_b(pbc);
        ws.give_packed_a(pa);
        let mut db = ws.take(self.grad_bias.dims());
        ops::sum_rows_into(&dy_rows, &mut db).expect("conv db");
        self.grad_bias.add_assign(&db);
        ws.give(db);
        (cols, dy_rows, rows)
    }

    fn macs(&self, batch: usize) -> u64 {
        (batch
            * self.out_channels
            * self.geom.out_h
            * self.geom.out_w
            * self.in_channels
            * self.geom.k_h
            * self.geom.k_w) as u64
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = Tensor::default();
        self.forward_into(x, &mut Workspace::new(), &mut y);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut dx = Tensor::default();
        self.backward_into(dy, &mut Workspace::new(), &mut dx);
        dx
    }

    fn forward_into(&mut self, x: &Tensor, ws: &mut Workspace, out: &mut Tensor) {
        let (cols, batch) = self.im2col_step(x, ws);
        let rows = cols.dims()[0];
        // y_rows[(n,oh,ow), oc] = cols · Wᵀ — against the cached weight
        // pack, rebuilt only after the weights change.
        self.ensure_fwd_pack(rows);
        let mut y_rows = ws.take(&[rows, self.out_channels]);
        ops::matmul_nt_packed_into(&cols, &self.packed_wt, &mut y_rows).expect("conv matmul");
        self.finish_forward(cols, y_rows, batch, ws, out);
    }

    fn backward_into(&mut self, dy: &Tensor, ws: &mut Workspace, out: &mut Tensor) {
        let (cols, dy_rows, rows) = self.backward_grads(dy, ws);
        let vdx = self.tuned_dx.get(GemmOp::Nn, rows, self.out_channels, self.ckk());
        self.packed_w.ensure_with(&self.weight, vdx).expect("conv weight pack");
        let mut dcols = ws.take(cols.dims());
        ops::matmul_packed_into(&dy_rows, &self.packed_w, &mut dcols).expect("conv dcols");
        ws.give(dy_rows);
        col2im_into(&dcols, self.cached_batch, self.in_channels, &self.geom, out).expect("conv dx");
        ws.give(dcols);
        ws.give(cols);
    }

    fn backward_into_first(&mut self, dy: &Tensor, ws: &mut Workspace, _out: &mut Tensor) {
        // First layer: dx would be the gradient of the input images, which
        // the training loop throws away — skip the dx GEMM and col2im.
        let (cols, dy_rows, _) = self.backward_grads(dy, ws);
        ws.give(dy_rows);
        ws.give(cols);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![(&mut self.weight, &mut self.grad_weight), (&mut self.bias, &mut self.grad_bias)]
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn set_params(&mut self, weights: &[Tensor]) {
        check_snapshot("Conv2d", &self.params(), weights);
        self.weight.copy_from(&weights[0]);
        self.bias.copy_from(&weights[1]);
        self.invalidate_param_caches();
    }

    fn invalidate_param_caches(&mut self) {
        self.packed_wt.invalidate();
        self.packed_w.invalidate();
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn forward_flops(&self, batch: usize) -> u64 {
        2 * self.macs(batch)
    }

    fn backward_flops(&self, batch: usize) -> u64 {
        // dW and dx are each a matmul of the forward's size.
        4 * self.macs(batch)
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::finite_diff_input_check;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn forward_shape_and_padding() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, 16, 16, &mut rng());
        let y = conv.forward(&Tensor::zeros(&[2, 3, 16, 16]));
        assert_eq!(y.dims(), &[2, 8, 16, 16]);
        let mut conv = Conv2d::new(1, 2, 5, 1, 0, 28, 28, &mut rng());
        let y = conv.forward(&Tensor::zeros(&[1, 1, 28, 28]));
        assert_eq!(y.dims(), &[1, 2, 24, 24]);
    }

    #[test]
    fn known_convolution_value() {
        // 1 input channel, 1 output channel, 2x2 averaging-ish kernel.
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, 2, 2, &mut rng());
        conv.set_params(&[
            Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 4]).unwrap(),
            Tensor::from_vec(vec![0.5], &[1]).unwrap(),
        ]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = conv.forward(&x);
        assert_eq!(y.data(), &[10.5]);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 5, 5, &mut rng());
        let mut x = Tensor::zeros(&[1, 2, 5, 5]);
        init::normal(&mut x, &mut rng(), 0.0, 1.0);
        finite_diff_input_check(&mut conv, &x, 5e-2);
    }

    #[test]
    fn weight_gradient_accumulates_and_zeroes() {
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, 3, 3, &mut rng());
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv.forward(&x);
        let dy = Tensor::ones(y.dims());
        conv.backward(&dy);
        let g1 = conv.params_and_grads()[0].1.clone();
        assert!(g1.max_abs() > 0.0);
        conv.forward(&x);
        conv.backward(&dy);
        let g2 = conv.params_and_grads()[0].1.clone();
        assert!((g2.max_abs() - 2.0 * g1.max_abs()).abs() < 1e-4);
        conv.zero_grads();
        assert_eq!(conv.params_and_grads()[0].1.max_abs(), 0.0);
    }

    #[test]
    fn flops_scale_with_batch() {
        let conv = Conv2d::new(3, 8, 3, 1, 1, 16, 16, &mut rng());
        assert_eq!(conv.forward_flops(4), 4 * conv.forward_flops(1));
        assert_eq!(conv.backward_flops(1), 2 * conv.forward_flops(1));
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, 3, 3, &mut rng());
        conv.backward(&Tensor::zeros(&[1, 1, 2, 2]));
    }
}
