//! Activation layers.

use aergia_tensor::{Tensor, Workspace};

use super::Layer;

/// Width of the fixed-size chunks the elementwise loops process per step
/// — a bounded inner loop the autovectorizer reliably lifts to SIMD.
const LANES: usize = 16;

/// Rectified linear unit, `y = max(0, x)`, applied elementwise.
///
/// # Examples
///
/// ```
/// use aergia_nn::layer::{Layer, Relu};
/// use aergia_tensor::Tensor;
///
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
/// assert_eq!(relu.forward(&x).data(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
    /// Mask buffer recycled between batches by the `_into` path.
    spare_mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = Tensor::default();
        self.forward_into(x, &mut Workspace::new(), &mut y);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut dx = Tensor::default();
        self.backward_into(dy, &mut Workspace::new(), &mut dx);
        dx
    }

    fn forward_into(&mut self, x: &Tensor, _ws: &mut Workspace, out: &mut Tensor) {
        let mut mask = self.mask.take().unwrap_or_else(|| std::mem::take(&mut self.spare_mask));
        let xd = x.data();
        // Stale contents are fully overwritten below; resize only adjusts
        // the length (no churn once the buffer has reached its high-water
        // mark).
        mask.resize(xd.len(), false);
        out.reset_for_overwrite(x.dims());
        let od = out.data_mut();
        // The clamp-and-mask runs in LANES-wide chunks plus a scalar tail;
        // elements are independent, so chunking cannot change results.
        let split = xd.len() - xd.len() % LANES;
        let body = od[..split]
            .chunks_exact_mut(LANES)
            .zip(xd[..split].chunks_exact(LANES))
            .zip(mask[..split].chunks_exact_mut(LANES));
        for ((oc, xc), mc) in body {
            for ((o, &v), m) in oc.iter_mut().zip(xc).zip(mc.iter_mut()) {
                let active = v > 0.0;
                *m = active;
                *o = if active { v } else { 0.0 };
            }
        }
        let tail = od[split..].iter_mut().zip(&xd[split..]).zip(mask[split..].iter_mut());
        for ((o, &v), m) in tail {
            let active = v > 0.0;
            *m = active;
            *o = if active { v } else { 0.0 };
        }
        self.mask = Some(mask);
    }

    fn backward_into(&mut self, dy: &Tensor, _ws: &mut Workspace, out: &mut Tensor) {
        let mask = self.mask.take().expect("Relu::backward before forward");
        let dyd = dy.data();
        assert_eq!(mask.len(), dyd.len(), "Relu::backward: gradient size mismatch");
        out.reset_for_overwrite(dy.dims());
        let od = out.data_mut();
        let split = dyd.len() - dyd.len() % LANES;
        let body = od[..split]
            .chunks_exact_mut(LANES)
            .zip(dyd[..split].chunks_exact(LANES))
            .zip(mask[..split].chunks_exact(LANES));
        for ((oc, gc), mc) in body {
            for ((o, &g), &m) in oc.iter_mut().zip(gc).zip(mc) {
                *o = if m { g } else { 0.0 };
            }
        }
        for ((o, &g), &m) in od[split..].iter_mut().zip(&dyd[split..]).zip(&mask[split..]) {
            *o = if m { g } else { 0.0 };
        }
        self.spare_mask = mask;
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn set_params(&mut self, weights: &[Tensor]) {
        assert!(weights.is_empty(), "Relu::set_params: relu has no parameters");
    }

    fn zero_grads(&mut self) {}

    fn forward_flops(&self, _batch: usize) -> u64 {
        // Elementwise; negligible next to the matmuls but non-zero. We
        // cannot know the activation size without an input, so charge ~0.
        0
    }

    fn backward_flops(&self, _batch: usize) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[3]).unwrap();
        assert_eq!(relu.forward(&x).data(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 5.0], &[2]).unwrap();
        relu.forward(&x);
        let dy = Tensor::from_vec(vec![10.0, 10.0], &[2]).unwrap();
        assert_eq!(relu.backward(&dy).data(), &[0.0, 10.0]);
    }

    #[test]
    fn zero_is_not_active() {
        let mut relu = Relu::new();
        let x = Tensor::zeros(&[4]);
        relu.forward(&x);
        let dy = Tensor::ones(&[4]);
        assert_eq!(relu.backward(&dy).sum(), 0.0);
    }

    #[test]
    fn has_no_params() {
        let mut relu = Relu::new();
        assert!(relu.params().is_empty());
        assert!(relu.params_and_grads().is_empty());
        relu.set_params(&[]);
    }
}
