//! Fully-connected (dense) layer.

use aergia_tensor::gemm::{GemmOp, PackedB, VariantCache};
use aergia_tensor::{init, ops, Tensor, Workspace};
use rand::Rng;

use super::{check_snapshot, Layer};

/// A dense layer `y = x·Wᵀ + b` over `[batch, in_features]` inputs.
///
/// # Examples
///
/// ```
/// use aergia_nn::layer::{Layer, Linear};
/// use aergia_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut fc = Linear::new(8, 3, &mut rng);
/// let y = fc.forward(&Tensor::zeros(&[4, 8]));
/// assert_eq!(y.dims(), &[4, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Tensor, // [out, in]
    bias: Tensor,   // [out]
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    /// `Wᵀ` packed for the forward `x·Wᵀ`; valid until the weights change.
    packed_wt: PackedB,
    /// `W` packed for the backward `dy·W`; valid until the weights change.
    packed_w: PackedB,
    /// Autotuned kernel variants, memoized per GEMM shape next to the
    /// packs they describe — steady-state batches (fixed shapes) never
    /// touch the global tuner map. One memo per distinct GEMM.
    tuned_fwd: VariantCache,
    tuned_dw: VariantCache,
    tuned_dx: VariantCache,
}

impl Linear {
    /// Creates a dense layer with Kaiming-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        assert!(in_features > 0 && out_features > 0, "Linear: zero feature count");
        let mut weight = Tensor::zeros(&[out_features, in_features]);
        init::kaiming_uniform(&mut weight, rng, in_features);
        Linear {
            in_features,
            out_features,
            weight,
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
            packed_wt: PackedB::new(),
            packed_w: PackedB::new(),
            tuned_fwd: VariantCache::new(),
            tuned_dw: VariantCache::new(),
            tuned_dx: VariantCache::new(),
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Ensures the forward weight pack (`Wᵀ`, autotuned for `m` input
    /// rows) is current. Split out of [`Layer::forward_into`] so the
    /// fused cross-client forward can prepare one member's pack and share
    /// it across the whole cohort.
    pub(crate) fn ensure_fwd_pack(&mut self, m: usize) {
        let v = self.tuned_fwd.get(GemmOp::Nt, m, self.in_features, self.out_features);
        self.packed_wt.ensure_transposed_with(&self.weight, v).expect("linear weight pack");
    }

    /// Moves the forward weight pack out of the layer (for the fused
    /// multi-member GEMM, which must borrow it independently of the
    /// member models). Pair with [`Linear::put_fwd_pack`].
    pub(crate) fn take_fwd_pack(&mut self) -> PackedB {
        std::mem::take(&mut self.packed_wt)
    }

    /// Returns the pack taken by [`Linear::take_fwd_pack`].
    pub(crate) fn put_fwd_pack(&mut self, pack: PackedB) {
        self.packed_wt = pack;
    }

    /// Everything after the forward GEMM: bias add plus the input cache
    /// `backward_into` will consume. Shared verbatim between the serial
    /// and fused forward paths so they cannot diverge.
    pub(crate) fn finish_forward(&mut self, x: &Tensor, ws: &mut Workspace, out: &mut Tensor) {
        ops::add_bias_rows(out, &self.bias).expect("linear bias");
        // Cache a copy of the input in a recycled buffer (the buffer
        // returns to the workspace in `backward_into`).
        let mut cache = self.cached_input.take().unwrap_or_else(|| ws.take(x.dims()));
        cache.copy_from(x);
        self.cached_input = Some(cache);
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = Tensor::default();
        self.forward_into(x, &mut Workspace::new(), &mut y);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut dx = Tensor::default();
        self.backward_into(dy, &mut Workspace::new(), &mut dx);
        dx
    }

    fn forward_into(&mut self, x: &Tensor, ws: &mut Workspace, out: &mut Tensor) {
        // The weight pack persists across calls until the optimizer or
        // `set_params` invalidates it — frozen sections and evaluation
        // loops reuse one pack across every batch.
        self.ensure_fwd_pack(x.dims().first().copied().unwrap_or(0));
        ops::matmul_nt_packed_into(x, &self.packed_wt, out).expect("Linear::forward: bad input");
        self.finish_forward(x, ws, out);
    }

    fn backward_into(&mut self, dy: &Tensor, ws: &mut Workspace, out: &mut Tensor) {
        let x = self.cached_input.take().expect("Linear::backward before forward");
        // dW/db go through zeroed scratch, then one add into the running
        // gradient — same summation order as the allocating path.
        // dW[out, in] = dyᵀ · x; both operands are per-batch, so their
        // packs are rebuilt each call into workspace-pooled buffers. The
        // two packs share one autotuned variant (`gemm_packed_tn` insists
        // its operands agree on layout).
        let batch = dy.dims().first().copied().unwrap_or(0);
        let vdw = self.tuned_dw.get(GemmOp::Tn, self.out_features, batch, self.in_features);
        let mut pa = ws.take_packed_a();
        pa.pack_transposed_with(dy, vdw).expect("linear dy pack");
        let mut pbx = ws.take_packed_b();
        pbx.pack_with(&x, vdw).expect("linear x pack");
        let mut dw = ws.take(self.grad_weight.dims());
        ops::matmul_tn_packed_into(&pa, &pbx, &mut dw).expect("linear dW");
        self.grad_weight.add_assign(&dw);
        ws.give(dw);
        ws.give_packed_b(pbx);
        ws.give_packed_a(pa);
        let mut db = ws.take(self.grad_bias.dims());
        ops::sum_rows_into(dy, &mut db).expect("linear db");
        self.grad_bias.add_assign(&db);
        ws.give(db);
        // dx = dy · W (cached weight pack, like the forward).
        let vdx = self.tuned_dx.get(GemmOp::Nn, batch, self.out_features, self.in_features);
        self.packed_w.ensure_with(&self.weight, vdx).expect("linear weight pack");
        ops::matmul_packed_into(dy, &self.packed_w, out).expect("linear dx");
        ws.give(x);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![(&mut self.weight, &mut self.grad_weight), (&mut self.bias, &mut self.grad_bias)]
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn set_params(&mut self, weights: &[Tensor]) {
        check_snapshot("Linear", &self.params(), weights);
        self.weight.copy_from(&weights[0]);
        self.bias.copy_from(&weights[1]);
        self.invalidate_param_caches();
    }

    fn invalidate_param_caches(&mut self) {
        self.packed_wt.invalidate();
        self.packed_w.invalidate();
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn forward_flops(&self, batch: usize) -> u64 {
        2 * (batch * self.in_features * self.out_features) as u64
    }

    fn backward_flops(&self, batch: usize) -> u64 {
        4 * (batch * self.in_features * self.out_features) as u64
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::finite_diff_input_check;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn forward_matches_manual_affine() {
        let mut fc = Linear::new(2, 2, &mut rng());
        fc.set_params(&[
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
            Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap(),
        ]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = fc.forward(&x);
        // y = [1+2+0.5, 3+4-0.5]
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn gradient_check() {
        let mut fc = Linear::new(6, 4, &mut rng());
        let mut x = Tensor::zeros(&[3, 6]);
        init::normal(&mut x, &mut rng(), 0.0, 1.0);
        finite_diff_input_check(&mut fc, &x, 2e-2);
    }

    #[test]
    fn weight_gradient_matches_outer_product() {
        let mut fc = Linear::new(2, 1, &mut rng());
        fc.set_params(&[Tensor::zeros(&[1, 2]), Tensor::zeros(&[1])]);
        let x = Tensor::from_vec(vec![3.0, -2.0], &[1, 2]).unwrap();
        fc.forward(&x);
        let dy = Tensor::from_vec(vec![2.0], &[1, 1]).unwrap();
        fc.backward(&dy);
        let binding = fc.params_and_grads();
        let (gw, gb) = (binding[0].1.data().to_vec(), binding[1].1.data().to_vec());
        assert_eq!(gw, vec![6.0, -4.0]);
        assert_eq!(gb, vec![2.0]);
    }

    #[test]
    fn set_params_rejects_wrong_shapes() {
        let mut fc = Linear::new(2, 2, &mut rng());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fc.set_params(&[Tensor::zeros(&[3, 2]), Tensor::zeros(&[2])]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn flops_are_symmetric_in_batch() {
        let fc = Linear::new(10, 5, &mut rng());
        assert_eq!(fc.forward_flops(2), 200);
        assert_eq!(fc.backward_flops(2), 400);
    }
}
