//! Spatial pooling layers.

use aergia_tensor::conv::ConvGeometry;
use aergia_tensor::{Tensor, Workspace};

use super::Layer;

/// Max pooling over non-overlapping (or strided) square windows of an NCHW
/// tensor.
///
/// # Examples
///
/// ```
/// use aergia_nn::layer::{Layer, MaxPool2d};
/// use aergia_tensor::Tensor;
///
/// let mut pool = MaxPool2d::new(2, 2, 4, 4);
/// let y = pool.forward(&Tensor::zeros(&[1, 3, 4, 4]));
/// assert_eq!(y.dims(), &[1, 3, 2, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    geom: ConvGeometry,
    // Flat argmax index into the input buffer for every output element.
    cached_argmax: Option<Vec<usize>>,
    cached_in_dims: Vec<usize>,
    /// Argmax buffer recycled between batches by the `_into` path.
    spare_argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with a `kernel`×`kernel` window.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the input.
    pub fn new(kernel: usize, stride: usize, in_h: usize, in_w: usize) -> Self {
        let geom = ConvGeometry::new(in_h, in_w, kernel, kernel, stride, 0);
        MaxPool2d {
            geom,
            cached_argmax: None,
            cached_in_dims: Vec::new(),
            spare_argmax: Vec::new(),
        }
    }

    /// Output spatial size `(out_h, out_w)`.
    pub fn out_hw(&self) -> (usize, usize) {
        (self.geom.out_h, self.geom.out_w)
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(x, &mut Workspace::new(), &mut out);
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut dx = Tensor::default();
        self.backward_into(dy, &mut Workspace::new(), &mut dx);
        dx
    }

    fn forward_into(&mut self, x: &Tensor, _ws: &mut Workspace, out: &mut Tensor) {
        let dims = x.dims();
        assert_eq!(dims.len(), 4, "MaxPool2d: NCHW input required");
        assert_eq!(
            (dims[2], dims[3]),
            (self.geom.in_h, self.geom.in_w),
            "MaxPool2d: unexpected spatial dims"
        );
        let (n, c) = (dims[0], dims[1]);
        let (oh, ow) = (self.geom.out_h, self.geom.out_w);
        out.reset_for_overwrite(&[n, c, oh, ow]);
        let mut argmax =
            self.cached_argmax.take().unwrap_or_else(|| std::mem::take(&mut self.spare_argmax));
        argmax.clear();
        argmax.resize(n * c * oh * ow, 0);
        let src = x.data();
        let dst = out.data_mut();
        let hw = self.geom.in_h * self.geom.in_w;

        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * hw;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = base;
                        for ky in 0..self.geom.k_h {
                            let y = oy * self.geom.stride + ky;
                            for kx in 0..self.geom.k_w {
                                let xx = ox * self.geom.stride + kx;
                                let idx = base + y * self.geom.in_w + xx;
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx = ((img * c + ch) * oh + oy) * ow + ox;
                        dst[out_idx] = best;
                        argmax[out_idx] = best_idx;
                    }
                }
            }
        }
        self.cached_argmax = Some(argmax);
        self.cached_in_dims.clear();
        self.cached_in_dims.extend_from_slice(dims);
    }

    fn backward_into(&mut self, dy: &Tensor, _ws: &mut Workspace, out: &mut Tensor) {
        let argmax = self.cached_argmax.take().expect("MaxPool2d::backward before forward");
        assert_eq!(argmax.len(), dy.numel(), "MaxPool2d::backward: gradient size mismatch");
        out.reset(&self.cached_in_dims);
        let dst = out.data_mut();
        for (&idx, &g) in argmax.iter().zip(dy.data()) {
            dst[idx] += g;
        }
        self.spare_argmax = argmax;
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn set_params(&mut self, weights: &[Tensor]) {
        assert!(weights.is_empty(), "MaxPool2d::set_params: pooling has no parameters");
    }

    fn zero_grads(&mut self) {}

    fn forward_flops(&self, batch: usize) -> u64 {
        // One comparison per window element.
        (batch * self.geom.out_h * self.geom.out_w * self.geom.k_h * self.geom.k_w) as u64
    }

    fn backward_flops(&self, batch: usize) -> u64 {
        (batch * self.geom.out_h * self.geom.out_w) as u64
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_window_maxima() {
        let mut pool = MaxPool2d::new(2, 2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = pool.forward(&x);
        assert_eq!(y.data(), &[4.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        pool.forward(&x);
        let dy = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let dx = pool.backward(&dy);
        assert_eq!(dx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn multi_channel_independence() {
        let mut pool = MaxPool2d::new(2, 2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, -1.0, -2.0, -3.0, -4.0], &[1, 2, 2, 2])
            .unwrap();
        let y = pool.forward(&x);
        assert_eq!(y.data(), &[4.0, -1.0]);
    }

    #[test]
    fn strided_pooling_shapes() {
        let pool = MaxPool2d::new(2, 2, 8, 8);
        assert_eq!(pool.out_hw(), (4, 4));
        let pool = MaxPool2d::new(3, 2, 7, 7);
        assert_eq!(pool.out_hw(), (3, 3));
    }
}
