//! Stochastic gradient descent with momentum, weight decay and an optional
//! FedProx proximal term.

use aergia_tensor::Tensor;

use crate::model::Cnn;

/// Hyper-parameters for [`Sgd`].
///
/// # Examples
///
/// ```
/// use aergia_nn::optim::SgdConfig;
/// let cfg = SgdConfig { lr: 0.05, momentum: 0.9, ..SgdConfig::default() };
/// assert_eq!(cfg.weight_decay, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    /// Matches the paper's simple local-SGD setup: `lr = 0.01`, no
    /// momentum, no weight decay.
    fn default() -> Self {
        SgdConfig { lr: 0.01, momentum: 0.0, weight_decay: 0.0 }
    }
}

/// SGD optimizer with per-parameter momentum state.
///
/// The optional *proximal anchor* implements FedProx's local objective
/// `f_k(w) + μ/2 ‖w − w_global‖²` by adding `μ(w − w_global)` to each
/// gradient (see `DESIGN.md` §4); strategies set the anchor to the round's
/// global weights.
#[derive(Debug)]
pub struct Sgd {
    config: SgdConfig,
    velocities: Vec<Option<Tensor>>,
    prox: Option<ProxTerm>,
}

#[derive(Debug)]
struct ProxTerm {
    mu: f32,
    anchor: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimizer with fresh (empty) momentum state.
    pub fn new(config: SgdConfig) -> Self {
        Sgd { config, velocities: Vec::new(), prox: None }
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// Installs a FedProx proximal anchor: gradients gain `μ(w − anchor)`.
    ///
    /// The anchor must list one tensor per model parameter, in
    /// [`Cnn::weights`] order.
    pub fn set_prox(&mut self, mu: f32, anchor: Vec<Tensor>) {
        self.prox = Some(ProxTerm { mu, anchor });
    }

    /// Removes the proximal anchor.
    pub fn clear_prox(&mut self) {
        self.prox = None;
    }

    /// Whether a proximal anchor is installed.
    pub fn has_prox(&self) -> bool {
        self.prox.is_some()
    }

    /// Applies one SGD update to every trainable parameter of `model`
    /// using the gradients accumulated by its last backward pass.
    ///
    /// The update is fused element-wise and fully in place: the effective
    /// gradient `grad + wd·w + μ(w − anchor)` is folded into the parameter
    /// (and momentum) walk without materialising a gradient copy, while
    /// replicating the floating-point evaluation order of the historical
    /// tensor-at-a-time formulation exactly, so results stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if a proximal anchor is installed whose shapes do not match
    /// the model parameters.
    pub fn apply(&mut self, model: &mut Cnn) {
        let cfg = self.config;
        let velocities = &mut self.velocities;
        let prox = &self.prox;
        model.for_each_trainable(&mut |index, param, grad| {
            if velocities.len() <= index {
                velocities.resize_with(index + 1, || None);
            }
            // Effective gradient per element, evaluated in the historical
            // order: g = ((grad + wd·w) + μ·w) + (−μ)·anchor.
            let wd = cfg.weight_decay;
            let lr = cfg.lr;
            let prox_term = prox.as_ref().map(|p| {
                let anchor = &p.anchor[index];
                assert_eq!(
                    anchor.dims(),
                    param.dims(),
                    "Sgd::apply: proximal anchor shape mismatch at parameter {index}"
                );
                (p.mu, anchor.data())
            });
            let effective = |pv: f32, gv: f32, av: f32, mu: f32| -> f32 {
                let mut g = gv;
                if wd != 0.0 {
                    g += wd * pv;
                }
                if mu != 0.0 || prox_term.is_some() {
                    g += mu * pv;
                    g += -mu * av;
                }
                g
            };
            if cfg.momentum != 0.0 {
                let v = velocities[index].get_or_insert_with(|| Tensor::zeros(param.dims()));
                let vd = v.data_mut();
                let pd = param.data_mut();
                match prox_term {
                    Some((mu, ad)) => {
                        for (((pv, &gv), vv), &av) in
                            pd.iter_mut().zip(grad.data()).zip(vd.iter_mut()).zip(ad)
                        {
                            *vv = *vv * cfg.momentum + effective(*pv, gv, av, mu);
                            *pv += -lr * *vv;
                        }
                    }
                    None => {
                        for ((pv, &gv), vv) in pd.iter_mut().zip(grad.data()).zip(vd.iter_mut()) {
                            *vv = *vv * cfg.momentum + effective(*pv, gv, 0.0, 0.0);
                            *pv += -lr * *vv;
                        }
                    }
                }
            } else {
                let pd = param.data_mut();
                match prox_term {
                    Some((mu, ad)) => {
                        for ((pv, &gv), &av) in pd.iter_mut().zip(grad.data()).zip(ad) {
                            *pv += -lr * effective(*pv, gv, av, mu);
                        }
                    }
                    None => {
                        for (pv, &gv) in pd.iter_mut().zip(grad.data()) {
                            *pv += -lr * effective(*pv, gv, 0.0, 0.0);
                        }
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Flatten, Layer, Linear};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_model(seed: u64) -> Cnn {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers: Vec<Box<dyn Layer>> =
            vec![Box::new(Flatten::new()), Box::new(Linear::new(4, 2, &mut rng))];
        Cnn::new(layers, 1, 2).unwrap()
    }

    fn one_step(model: &mut Cnn, opt: &mut Sgd) {
        let x = Tensor::ones(&[2, 4]);
        let y = vec![0usize, 1];
        model.train_batch(&x, &y, opt).unwrap();
    }

    #[test]
    fn plain_sgd_moves_weights_against_gradient() {
        let mut model = linear_model(1);
        let before = model.weights();
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, ..SgdConfig::default() });
        one_step(&mut model, &mut opt);
        assert_ne!(model.weights(), before);
    }

    #[test]
    fn momentum_accelerates_under_constant_gradient() {
        // Two identical models/batches; the momentum run must move farther
        // after several steps.
        let mut plain = linear_model(2);
        let mut heavy = linear_model(2);
        let start = plain.weights();
        let mut opt_plain = Sgd::new(SgdConfig { lr: 0.01, ..SgdConfig::default() });
        let mut opt_heavy = Sgd::new(SgdConfig { lr: 0.01, momentum: 0.9, ..SgdConfig::default() });
        for _ in 0..5 {
            one_step(&mut plain, &mut opt_plain);
            one_step(&mut heavy, &mut opt_heavy);
        }
        let dist =
            |w: &[Tensor]| -> f32 { w.iter().zip(&start).map(|(a, b)| a.sub(b).sq_norm()).sum() };
        assert!(dist(&heavy.weights()) > dist(&plain.weights()));
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient() {
        // With zero incoming gradient, weight decay alone scales weights by
        // (1 - lr*wd) each apply.
        let mut model = linear_model(3);
        model.zero_grads();
        let before = model.weights();
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, weight_decay: 0.5, ..SgdConfig::default() });
        opt.apply(&mut model);
        for (b, a) in before.iter().zip(model.weights()) {
            for (x, y) in b.data().iter().zip(a.data()) {
                assert!((y - x * 0.95).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn prox_pulls_towards_anchor() {
        let mut model = linear_model(4);
        model.zero_grads();
        let anchor: Vec<Tensor> = model.weights().iter().map(|t| t.map(|_| 1.0)).collect();
        let before = model.weights();
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, ..SgdConfig::default() });
        opt.set_prox(1.0, anchor.clone());
        assert!(opt.has_prox());
        opt.apply(&mut model);
        // Every weight moved strictly towards 1.0.
        for (b, a) in before.iter().zip(model.weights()) {
            for (x, y) in b.data().iter().zip(a.data()) {
                assert!((1.0 - y).abs() <= (1.0 - x).abs() + 1e-6);
            }
        }
        opt.clear_prox();
        assert!(!opt.has_prox());
    }

    #[test]
    fn velocities_follow_global_indices_across_freezing() {
        // Freezing the feature section must not shift the classifier's
        // momentum slot.
        let mut model = linear_model(5);
        let mut opt = Sgd::new(SgdConfig { lr: 0.01, momentum: 0.9, ..SgdConfig::default() });
        one_step(&mut model, &mut opt);
        let slots_before = opt.velocities.len();
        model.freeze_features();
        one_step(&mut model, &mut opt);
        assert_eq!(opt.velocities.len(), slots_before);
    }
}
