//! Stochastic gradient descent with momentum, weight decay and an optional
//! FedProx proximal term.

use aergia_tensor::Tensor;

use crate::model::Cnn;

/// Width of the fixed-size chunks the fused update loops process per step
/// — a bounded inner loop the autovectorizer reliably lifts to SIMD.
const LANES: usize = 8;

/// Per-parameter update coefficients, captured once per tensor so the
/// element loops stay branch-uniform.
#[derive(Clone, Copy)]
struct StepCoeffs {
    lr: f32,
    wd: f32,
    mu: f32,
    momentum: f32,
    has_prox: bool,
}

/// The effective gradient of one element, evaluated in the historical
/// order: `g = ((grad + wd·w) + μ·w) + (−μ)·anchor`. Identical arithmetic
/// whatever the surrounding loop structure, so chunking cannot change
/// results.
#[inline(always)]
fn effective(pv: f32, gv: f32, av: f32, c: StepCoeffs) -> f32 {
    let mut g = gv;
    if c.wd != 0.0 {
        g += c.wd * pv;
    }
    if c.mu != 0.0 || c.has_prox {
        g += c.mu * pv;
        g += -c.mu * av;
    }
    g
}

/// Fused plain-SGD walk in [`LANES`]-wide chunks plus a scalar tail; each
/// element sees exactly the historical update sequence. `ad` is only read
/// when a proximal term is active (callers without one pass any
/// same-length slice).
fn step_plain(pd: &mut [f32], gd: &[f32], ad: &[f32], c: StepCoeffs) {
    let split = pd.len() - pd.len() % LANES;
    let chunks = pd[..split]
        .chunks_exact_mut(LANES)
        .zip(gd[..split].chunks_exact(LANES))
        .zip(ad[..split].chunks_exact(LANES));
    for ((pc, gc), ac) in chunks {
        for ((pv, &gv), &av) in pc.iter_mut().zip(gc).zip(ac) {
            *pv += -c.lr * effective(*pv, gv, av, c);
        }
    }
    for ((pv, &gv), &av) in pd[split..].iter_mut().zip(&gd[split..]).zip(&ad[split..]) {
        *pv += -c.lr * effective(*pv, gv, av, c);
    }
}

/// Fused momentum-SGD walk, chunked like [`step_plain`].
fn step_momentum(pd: &mut [f32], gd: &[f32], vd: &mut [f32], ad: &[f32], c: StepCoeffs) {
    let split = pd.len() - pd.len() % LANES;
    let chunks = pd[..split]
        .chunks_exact_mut(LANES)
        .zip(gd[..split].chunks_exact(LANES))
        .zip(vd[..split].chunks_exact_mut(LANES))
        .zip(ad[..split].chunks_exact(LANES));
    for (((pc, gc), vc), ac) in chunks {
        for (((pv, &gv), vv), &av) in pc.iter_mut().zip(gc).zip(vc.iter_mut()).zip(ac) {
            *vv = *vv * c.momentum + effective(*pv, gv, av, c);
            *pv += -c.lr * *vv;
        }
    }
    let tail =
        pd[split..].iter_mut().zip(&gd[split..]).zip(vd[split..].iter_mut()).zip(&ad[split..]);
    for (((pv, &gv), vv), &av) in tail {
        *vv = *vv * c.momentum + effective(*pv, gv, av, c);
        *pv += -c.lr * *vv;
    }
}

/// Hyper-parameters for [`Sgd`].
///
/// # Examples
///
/// ```
/// use aergia_nn::optim::SgdConfig;
/// let cfg = SgdConfig { lr: 0.05, momentum: 0.9, ..SgdConfig::default() };
/// assert_eq!(cfg.weight_decay, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    /// Matches the paper's simple local-SGD setup: `lr = 0.01`, no
    /// momentum, no weight decay.
    fn default() -> Self {
        SgdConfig { lr: 0.01, momentum: 0.0, weight_decay: 0.0 }
    }
}

/// SGD optimizer with per-parameter momentum state.
///
/// The optional *proximal anchor* implements FedProx's local objective
/// `f_k(w) + μ/2 ‖w − w_global‖²` by adding `μ(w − w_global)` to each
/// gradient (see `DESIGN.md` §4); strategies set the anchor to the round's
/// global weights.
#[derive(Debug)]
pub struct Sgd {
    config: SgdConfig,
    velocities: Vec<Option<Tensor>>,
    prox: Option<ProxTerm>,
}

#[derive(Debug)]
struct ProxTerm {
    mu: f32,
    anchor: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimizer with fresh (empty) momentum state.
    pub fn new(config: SgdConfig) -> Self {
        Sgd { config, velocities: Vec::new(), prox: None }
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// Installs a FedProx proximal anchor: gradients gain `μ(w − anchor)`.
    ///
    /// The anchor must list one tensor per model parameter, in
    /// [`Cnn::weights`] order.
    pub fn set_prox(&mut self, mu: f32, anchor: Vec<Tensor>) {
        self.prox = Some(ProxTerm { mu, anchor });
    }

    /// Removes the proximal anchor.
    pub fn clear_prox(&mut self) {
        self.prox = None;
    }

    /// Whether a proximal anchor is installed.
    pub fn has_prox(&self) -> bool {
        self.prox.is_some()
    }

    /// Applies one SGD update to every trainable parameter of `model`
    /// using the gradients accumulated by its last backward pass.
    ///
    /// The update is fused element-wise and fully in place: the effective
    /// gradient `grad + wd·w + μ(w − anchor)` is folded into the parameter
    /// (and momentum) walk without materialising a gradient copy, while
    /// replicating the floating-point evaluation order of the historical
    /// tensor-at-a-time formulation exactly, so results stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if a proximal anchor is installed whose shapes do not match
    /// the model parameters.
    pub fn apply(&mut self, model: &mut Cnn) {
        let cfg = self.config;
        let velocities = &mut self.velocities;
        let prox = &self.prox;
        model.for_each_trainable(&mut |index, param, grad| {
            if velocities.len() <= index {
                velocities.resize_with(index + 1, || None);
            }
            let prox_term = prox.as_ref().map(|p| {
                let anchor = &p.anchor[index];
                assert_eq!(
                    anchor.dims(),
                    param.dims(),
                    "Sgd::apply: proximal anchor shape mismatch at parameter {index}"
                );
                (p.mu, anchor.data())
            });
            let (mu, has_prox) = prox_term.map_or((0.0, false), |(mu, _)| (mu, true));
            let coeffs = StepCoeffs {
                lr: cfg.lr,
                wd: cfg.weight_decay,
                mu,
                momentum: cfg.momentum,
                has_prox,
            };
            let gd = grad.data();
            // Without a proximal term the anchor column is never read;
            // the gradient slice stands in to keep the zips uniform.
            let ad = prox_term.map_or(gd, |(_, ad)| ad);
            if cfg.momentum != 0.0 {
                let v = velocities[index].get_or_insert_with(|| Tensor::zeros(param.dims()));
                step_momentum(param.data_mut(), gd, v.data_mut(), ad, coeffs);
            } else {
                step_plain(param.data_mut(), gd, ad, coeffs);
            }
        });
        // The parameters just moved: drop the packed weight panels of the
        // updated (non-frozen) layers so the next forward repacks them.
        model.invalidate_trainable_param_caches();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Flatten, Layer, Linear};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_model(seed: u64) -> Cnn {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers: Vec<Box<dyn Layer>> =
            vec![Box::new(Flatten::new()), Box::new(Linear::new(4, 2, &mut rng))];
        Cnn::new(layers, 1, 2).unwrap()
    }

    fn one_step(model: &mut Cnn, opt: &mut Sgd) {
        let x = Tensor::ones(&[2, 4]);
        let y = vec![0usize, 1];
        model.train_batch(&x, &y, opt).unwrap();
    }

    #[test]
    fn plain_sgd_moves_weights_against_gradient() {
        let mut model = linear_model(1);
        let before = model.weights();
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, ..SgdConfig::default() });
        one_step(&mut model, &mut opt);
        assert_ne!(model.weights(), before);
    }

    #[test]
    fn momentum_accelerates_under_constant_gradient() {
        // Two identical models/batches; the momentum run must move farther
        // after several steps.
        let mut plain = linear_model(2);
        let mut heavy = linear_model(2);
        let start = plain.weights();
        let mut opt_plain = Sgd::new(SgdConfig { lr: 0.01, ..SgdConfig::default() });
        let mut opt_heavy = Sgd::new(SgdConfig { lr: 0.01, momentum: 0.9, ..SgdConfig::default() });
        for _ in 0..5 {
            one_step(&mut plain, &mut opt_plain);
            one_step(&mut heavy, &mut opt_heavy);
        }
        let dist =
            |w: &[Tensor]| -> f32 { w.iter().zip(&start).map(|(a, b)| a.sub(b).sq_norm()).sum() };
        assert!(dist(&heavy.weights()) > dist(&plain.weights()));
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient() {
        // With zero incoming gradient, weight decay alone scales weights by
        // (1 - lr*wd) each apply.
        let mut model = linear_model(3);
        model.zero_grads();
        let before = model.weights();
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, weight_decay: 0.5, ..SgdConfig::default() });
        opt.apply(&mut model);
        for (b, a) in before.iter().zip(model.weights()) {
            for (x, y) in b.data().iter().zip(a.data()) {
                assert!((y - x * 0.95).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn prox_pulls_towards_anchor() {
        let mut model = linear_model(4);
        model.zero_grads();
        let anchor: Vec<Tensor> = model.weights().iter().map(|t| t.map(|_| 1.0)).collect();
        let before = model.weights();
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, ..SgdConfig::default() });
        opt.set_prox(1.0, anchor.clone());
        assert!(opt.has_prox());
        opt.apply(&mut model);
        // Every weight moved strictly towards 1.0.
        for (b, a) in before.iter().zip(model.weights()) {
            for (x, y) in b.data().iter().zip(a.data()) {
                assert!((1.0 - y).abs() <= (1.0 - x).abs() + 1e-6);
            }
        }
        opt.clear_prox();
        assert!(!opt.has_prox());
    }

    #[test]
    fn velocities_follow_global_indices_across_freezing() {
        // Freezing the feature section must not shift the classifier's
        // momentum slot.
        let mut model = linear_model(5);
        let mut opt = Sgd::new(SgdConfig { lr: 0.01, momentum: 0.9, ..SgdConfig::default() });
        one_step(&mut model, &mut opt);
        let slots_before = opt.velocities.len();
        model.freeze_features();
        one_step(&mut model, &mut opt);
        assert_eq!(opt.velocities.len(), slots_before);
    }
}
