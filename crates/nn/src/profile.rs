//! The four training phases of a local update and their costs.
//!
//! The paper (§2.1, Figure 3) splits one mini-batch update of a CNN into:
//!
//! 1. `ff` — forward pass over the feature (convolutional) layers,
//! 2. `fc` — forward pass over the classifier (fully-connected) layers,
//! 3. `bc` — backward pass over the classifier layers,
//! 4. `bf` — backward pass over the feature layers.
//!
//! Aergia's online profiler measures these per client; the scheduler then
//! reasons about `t_{1,2,3}` (= ff + fc + bc) and `t_4` (= bf). This module
//! defines the [`Phase`] enum and [`PhaseCost`], a per-phase accumulator
//! used both for wall-clock seconds and for FLOP counts.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// One of the four phases of a local mini-batch update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Forward pass over the feature layers.
    ForwardFeatures,
    /// Forward pass over the classifier layers.
    ForwardClassifier,
    /// Backward pass over the classifier layers.
    BackwardClassifier,
    /// Backward pass over the feature layers.
    BackwardFeatures,
}

impl Phase {
    /// All four phases in execution order.
    pub const ALL: [Phase; 4] = [
        Phase::ForwardFeatures,
        Phase::ForwardClassifier,
        Phase::BackwardClassifier,
        Phase::BackwardFeatures,
    ];

    /// The paper's two-letter abbreviation (`ff`, `fc`, `bc`, `bf`).
    pub fn abbrev(self) -> &'static str {
        match self {
            Phase::ForwardFeatures => "ff",
            Phase::ForwardClassifier => "fc",
            Phase::BackwardClassifier => "bc",
            Phase::BackwardFeatures => "bf",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// A cost (seconds, FLOPs, …) attributed to each of the four phases.
///
/// `PhaseCost` is an additive record: summing the records of consecutive
/// batches yields the cost of the whole round segment.
///
/// # Examples
///
/// ```
/// use aergia_nn::profile::PhaseCost;
///
/// let a = PhaseCost { ff: 1.0, fc: 0.5, bc: 0.5, bf: 2.0 };
/// let b = a + a;
/// assert_eq!(b.total(), 8.0);
/// assert_eq!(a.first_three(), 2.0);
/// assert_eq!(a.share(aergia_nn::Phase::BackwardFeatures), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Cost of the forward feature pass.
    pub ff: f64,
    /// Cost of the forward classifier pass.
    pub fc: f64,
    /// Cost of the backward classifier pass.
    pub bc: f64,
    /// Cost of the backward feature pass.
    pub bf: f64,
}

impl PhaseCost {
    /// A zero record.
    pub fn zero() -> Self {
        PhaseCost::default()
    }

    /// Total cost across all four phases.
    pub fn total(&self) -> f64 {
        self.ff + self.fc + self.bc + self.bf
    }

    /// The paper's `t_{1,2,3}`: everything except the backward feature pass.
    pub fn first_three(&self) -> f64 {
        self.ff + self.fc + self.bc
    }

    /// Cost of a single phase.
    pub fn get(&self, phase: Phase) -> f64 {
        match phase {
            Phase::ForwardFeatures => self.ff,
            Phase::ForwardClassifier => self.fc,
            Phase::BackwardClassifier => self.bc,
            Phase::BackwardFeatures => self.bf,
        }
    }

    /// Adds `value` to a single phase.
    pub fn add_to(&mut self, phase: Phase, value: f64) {
        match phase {
            Phase::ForwardFeatures => self.ff += value,
            Phase::ForwardClassifier => self.fc += value,
            Phase::BackwardClassifier => self.bc += value,
            Phase::BackwardFeatures => self.bf += value,
        }
    }

    /// Fraction of the total spent in `phase` (0 when the total is 0).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.get(phase) / total
        }
    }

    /// Scales every phase by a constant (e.g. seconds per FLOP).
    pub fn scaled(&self, k: f64) -> PhaseCost {
        PhaseCost { ff: self.ff * k, fc: self.fc * k, bc: self.bc * k, bf: self.bf * k }
    }

    /// Cost of the *frozen* update the paper's weak clients run after
    /// freezing: the backward feature pass is skipped.
    pub fn frozen_total(&self) -> f64 {
        self.first_three()
    }
}

impl Add for PhaseCost {
    type Output = PhaseCost;

    fn add(self, rhs: PhaseCost) -> PhaseCost {
        PhaseCost {
            ff: self.ff + rhs.ff,
            fc: self.fc + rhs.fc,
            bc: self.bc + rhs.bc,
            bf: self.bf + rhs.bf,
        }
    }
}

impl AddAssign for PhaseCost {
    fn add_assign(&mut self, rhs: PhaseCost) {
        *self = *self + rhs;
    }
}

impl fmt::Display for PhaseCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ff={:.3} fc={:.3} bc={:.3} bf={:.3}", self.ff, self.fc, self.bc, self.bf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_shares() {
        let c = PhaseCost { ff: 1.0, fc: 1.0, bc: 1.0, bf: 1.0 };
        assert_eq!(c.total(), 4.0);
        assert_eq!(c.first_three(), 3.0);
        assert_eq!(c.frozen_total(), 3.0);
        for p in Phase::ALL {
            assert_eq!(c.share(p), 0.25);
            assert_eq!(c.get(p), 1.0);
        }
    }

    #[test]
    fn zero_record_has_zero_shares() {
        let z = PhaseCost::zero();
        assert_eq!(z.share(Phase::ForwardFeatures), 0.0);
        assert_eq!(z.total(), 0.0);
    }

    #[test]
    fn add_and_scale() {
        let a = PhaseCost { ff: 1.0, fc: 2.0, bc: 3.0, bf: 4.0 };
        let mut b = a;
        b += a;
        assert_eq!(b.total(), 20.0);
        assert_eq!(a.scaled(2.0), b);
    }

    #[test]
    fn add_to_targets_correct_phase() {
        let mut c = PhaseCost::zero();
        c.add_to(Phase::BackwardFeatures, 5.0);
        assert_eq!(c.bf, 5.0);
        assert_eq!(c.first_three(), 0.0);
    }

    #[test]
    fn abbrevs_match_paper() {
        let abbrevs: Vec<_> = Phase::ALL.iter().map(|p| p.abbrev()).collect();
        assert_eq!(abbrevs, vec!["ff", "fc", "bc", "bf"]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!PhaseCost::zero().to_string().is_empty());
        assert_eq!(Phase::BackwardFeatures.to_string(), "bf");
    }
}
