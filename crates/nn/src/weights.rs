//! Weight snapshots: aggregation math and a compact wire encoding.
//!
//! FL strategies operate on `Vec<Tensor>` snapshots taken with
//! [`crate::Cnn::weights`]; this module provides the arithmetic the
//! aggregation rules need (weighted averaging for FedAvg, normalized
//! deltas for FedNova, squared distances for FedProx analysis) plus a
//! little-endian binary encoding of standalone snapshots. The tensor
//! layout and all byte-size accounting are [`aergia_codec::dense`]'s —
//! this module only prepends a tensor count, so there is exactly one
//! sizing authority in the workspace ([`aergia_codec::sizing`]).

use std::error::Error;
use std::fmt;

use aergia_codec::{dense, CodecError, ShapeSpec};
use aergia_tensor::Tensor;
use bytes::{Buf, Bytes};

/// Errors produced when decoding a weight snapshot from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the declared contents.
    Truncated,
    /// A declared dimension or count was implausibly large.
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "unexpected end of weight buffer"),
            WireError::Corrupt(what) => write!(f, "corrupt weight buffer: {what}"),
        }
    }
}

impl Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated => WireError::Truncated,
            CodecError::Corrupt(what) | CodecError::BaseMismatch(what) => WireError::Corrupt(what),
            CodecError::BadMagic => WireError::Corrupt("magic"),
            CodecError::UnsupportedVersion(_) => WireError::Corrupt("version"),
            _ => WireError::Corrupt("encoding"),
        }
    }
}

/// Serializes a weight snapshot into a compact little-endian buffer.
///
/// Layout: `u32 tensor_count`, then the [`aergia_codec::dense`] payload
/// (per tensor `u32 rank`, `u32 dims[rank]`, `f32 data[numel]`).
///
/// # Examples
///
/// ```
/// use aergia_nn::weights::{decode, encode};
/// use aergia_tensor::Tensor;
///
/// let snapshot = vec![Tensor::ones(&[2, 3])];
/// let bytes = encode(&snapshot);
/// assert_eq!(decode(&bytes).unwrap(), snapshot);
/// ```
pub fn encode(weights: &[Tensor]) -> Bytes {
    let mut buf = Vec::with_capacity(byte_size(weights));
    buf.extend_from_slice(&(weights.len() as u32).to_le_bytes());
    dense::encode_payload_into(weights, &mut buf);
    Bytes::from(buf)
}

/// Reconstructs a snapshot from [`encode`]'s format.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] or [`WireError::Corrupt`] on malformed
/// input.
pub fn decode(mut buf: &[u8]) -> Result<Vec<Tensor>, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let count = buf.get_u32_le() as usize;
    Ok(dense::decode_payload(buf, count)?)
}

/// Exact size in bytes of [`encode`]'s output for `weights` — the count
/// prefix plus the dense payload as sized by the one workspace-wide
/// authority, [`aergia_codec::sizing`].
pub fn byte_size(weights: &[Tensor]) -> usize {
    4 + ShapeSpec::of(weights).dense_payload_len()
}

/// Weighted average of snapshots: `Σ wᵢ·sᵢ / Σ wᵢ` — FedAvg's aggregation
/// rule (§2.2).
///
/// # Panics
///
/// Panics if `snapshots` is empty, the weights sum to zero, or the
/// snapshots disagree in structure.
pub fn weighted_average(snapshots: &[(f32, Vec<Tensor>)]) -> Vec<Tensor> {
    assert!(!snapshots.is_empty(), "weighted_average: no snapshots");
    let total: f32 = snapshots.iter().map(|(w, _)| w).sum();
    assert!(total > 0.0, "weighted_average: weights sum to {total}");
    let mut acc: Vec<Tensor> = snapshots[0].1.iter().map(|t| Tensor::zeros(t.dims())).collect();
    for (w, snap) in snapshots {
        assert_eq!(snap.len(), acc.len(), "weighted_average: snapshot structure mismatch");
        for (a, s) in acc.iter_mut().zip(snap) {
            a.axpy(w / total, s);
        }
    }
    acc
}

/// `a − b`, elementwise across the snapshot.
///
/// # Panics
///
/// Panics on structure mismatch.
pub fn delta(a: &[Tensor], b: &[Tensor]) -> Vec<Tensor> {
    assert_eq!(a.len(), b.len(), "delta: snapshot structure mismatch");
    a.iter().zip(b).map(|(x, y)| x.sub(y)).collect()
}

/// `base + alpha·step`, elementwise across the snapshot.
///
/// # Panics
///
/// Panics on structure mismatch.
pub fn add_scaled(base: &[Tensor], alpha: f32, step: &[Tensor]) -> Vec<Tensor> {
    assert_eq!(base.len(), step.len(), "add_scaled: snapshot structure mismatch");
    base.iter()
        .zip(step)
        .map(|(b, s)| {
            let mut out = b.clone();
            out.axpy(alpha, s);
            out
        })
        .collect()
}

/// Squared L2 distance between two snapshots viewed as one flat vector.
///
/// # Panics
///
/// Panics on structure mismatch.
pub fn sq_distance(a: &[Tensor], b: &[Tensor]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_distance: snapshot structure mismatch");
    a.iter().zip(b).map(|(x, y)| x.sub(y).sq_norm()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(vals: &[f32]) -> Vec<Tensor> {
        vec![Tensor::from_vec(vals.to_vec(), &[vals.len()]).unwrap()]
    }

    #[test]
    fn encode_decode_round_trip() {
        let w = vec![Tensor::ones(&[2, 3]), Tensor::from_vec(vec![-1.5], &[1]).unwrap()];
        let bytes = encode(&w);
        assert_eq!(bytes.len(), byte_size(&w));
        assert_eq!(decode(&bytes).unwrap(), w);
    }

    #[test]
    fn decode_rejects_truncation() {
        let w = vec![Tensor::ones(&[4])];
        let bytes = encode(&w);
        for cut in [0, 3, 7, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn decode_rejects_corrupt_rank() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&99u32.to_le_bytes()); // absurd rank
        assert_eq!(decode(&buf).unwrap_err(), WireError::Corrupt("rank"));
    }

    #[test]
    fn weighted_average_of_equal_weights_is_mean() {
        let avg = weighted_average(&[(1.0, snap(&[0.0, 2.0])), (1.0, snap(&[4.0, 6.0]))]);
        assert_eq!(avg[0].data(), &[2.0, 4.0]);
    }

    #[test]
    fn weighted_average_respects_sample_counts() {
        // FedAvg weighting n_k / Σ n_k: 3:1 ratio.
        let avg = weighted_average(&[(3.0, snap(&[4.0])), (1.0, snap(&[0.0]))]);
        assert_eq!(avg[0].data(), &[3.0]);
    }

    #[test]
    fn delta_and_add_scaled_invert() {
        let a = snap(&[5.0, 1.0]);
        let b = snap(&[2.0, -1.0]);
        let d = delta(&a, &b);
        let restored = add_scaled(&b, 1.0, &d);
        assert_eq!(restored, a);
    }

    #[test]
    fn sq_distance_is_symmetric_and_zero_on_self() {
        let a = snap(&[1.0, 2.0]);
        let b = snap(&[-1.0, 0.0]);
        assert_eq!(sq_distance(&a, &a), 0.0);
        assert_eq!(sq_distance(&a, &b), sq_distance(&b, &a));
        assert_eq!(sq_distance(&a, &b), 8.0);
    }

    #[test]
    #[should_panic(expected = "no snapshots")]
    fn weighted_average_rejects_empty() {
        weighted_average(&[]);
    }
}
