//! Weight snapshots: aggregation math and a compact wire encoding.
//!
//! FL strategies operate on `Vec<Tensor>` snapshots taken with
//! [`crate::Cnn::weights`]; this module provides the arithmetic the
//! aggregation rules need (weighted averaging for FedAvg, normalized
//! deltas for FedNova, squared distances for FedProx analysis) plus a
//! little-endian binary encoding used to size and ship model transfers in
//! the network simulation.

use std::error::Error;
use std::fmt;

use aergia_tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors produced when decoding a weight snapshot from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the declared contents.
    Truncated,
    /// A declared dimension or count was implausibly large.
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "unexpected end of weight buffer"),
            WireError::Corrupt(what) => write!(f, "corrupt weight buffer: {what}"),
        }
    }
}

impl Error for WireError {}

/// Upper bound on tensors/dims/elements honoured by [`decode`]; prevents
/// pathological allocations from corrupt buffers.
const SANITY_LIMIT: u64 = 1 << 31;

/// Serializes a weight snapshot into a compact little-endian buffer.
///
/// Layout: `u32 tensor_count`, then per tensor `u32 rank`, `u32 dims[rank]`,
/// `f32 data[numel]`.
///
/// # Examples
///
/// ```
/// use aergia_nn::weights::{decode, encode};
/// use aergia_tensor::Tensor;
///
/// let snapshot = vec![Tensor::ones(&[2, 3])];
/// let bytes = encode(&snapshot);
/// assert_eq!(decode(&bytes).unwrap(), snapshot);
/// ```
pub fn encode(weights: &[Tensor]) -> Bytes {
    let mut buf = BytesMut::with_capacity(byte_size(weights));
    buf.put_u32_le(weights.len() as u32);
    for t in weights {
        buf.put_u32_le(t.dims().len() as u32);
        for &d in t.dims() {
            buf.put_u32_le(d as u32);
        }
        for &v in t.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Reconstructs a snapshot from [`encode`]'s format.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] or [`WireError::Corrupt`] on malformed
/// input.
pub fn decode(mut buf: &[u8]) -> Result<Vec<Tensor>, WireError> {
    fn need(buf: &[u8], n: usize) -> Result<(), WireError> {
        if buf.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }
    need(buf, 4)?;
    let count = buf.get_u32_le() as u64;
    if count > SANITY_LIMIT {
        return Err(WireError::Corrupt("tensor count"));
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        need(buf, 4)?;
        let rank = buf.get_u32_le() as usize;
        if rank as u64 > 16 {
            return Err(WireError::Corrupt("rank"));
        }
        let mut dims = Vec::with_capacity(rank);
        let mut numel: u64 = 1;
        for _ in 0..rank {
            need(buf, 4)?;
            let d = buf.get_u32_le() as u64;
            numel = numel.saturating_mul(d.max(1));
            if numel > SANITY_LIMIT {
                return Err(WireError::Corrupt("element count"));
            }
            dims.push(d as usize);
        }
        let numel: usize = dims.iter().product();
        need(buf, 4 * numel)?;
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le());
        }
        let t = Tensor::from_vec(data, &dims).map_err(|_| WireError::Corrupt("shape"))?;
        out.push(t);
    }
    Ok(out)
}

/// Exact size in bytes of [`encode`]'s output for `weights`; the network
/// simulation charges transfers by this size.
pub fn byte_size(weights: &[Tensor]) -> usize {
    4 + weights.iter().map(|t| 4 + 4 * t.dims().len() + 4 * t.numel()).sum::<usize>()
}

/// Weighted average of snapshots: `Σ wᵢ·sᵢ / Σ wᵢ` — FedAvg's aggregation
/// rule (§2.2).
///
/// # Panics
///
/// Panics if `snapshots` is empty, the weights sum to zero, or the
/// snapshots disagree in structure.
pub fn weighted_average(snapshots: &[(f32, Vec<Tensor>)]) -> Vec<Tensor> {
    assert!(!snapshots.is_empty(), "weighted_average: no snapshots");
    let total: f32 = snapshots.iter().map(|(w, _)| w).sum();
    assert!(total > 0.0, "weighted_average: weights sum to {total}");
    let mut acc: Vec<Tensor> = snapshots[0].1.iter().map(|t| Tensor::zeros(t.dims())).collect();
    for (w, snap) in snapshots {
        assert_eq!(snap.len(), acc.len(), "weighted_average: snapshot structure mismatch");
        for (a, s) in acc.iter_mut().zip(snap) {
            a.axpy(w / total, s);
        }
    }
    acc
}

/// `a − b`, elementwise across the snapshot.
///
/// # Panics
///
/// Panics on structure mismatch.
pub fn delta(a: &[Tensor], b: &[Tensor]) -> Vec<Tensor> {
    assert_eq!(a.len(), b.len(), "delta: snapshot structure mismatch");
    a.iter().zip(b).map(|(x, y)| x.sub(y)).collect()
}

/// `base + alpha·step`, elementwise across the snapshot.
///
/// # Panics
///
/// Panics on structure mismatch.
pub fn add_scaled(base: &[Tensor], alpha: f32, step: &[Tensor]) -> Vec<Tensor> {
    assert_eq!(base.len(), step.len(), "add_scaled: snapshot structure mismatch");
    base.iter()
        .zip(step)
        .map(|(b, s)| {
            let mut out = b.clone();
            out.axpy(alpha, s);
            out
        })
        .collect()
}

/// Squared L2 distance between two snapshots viewed as one flat vector.
///
/// # Panics
///
/// Panics on structure mismatch.
pub fn sq_distance(a: &[Tensor], b: &[Tensor]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_distance: snapshot structure mismatch");
    a.iter().zip(b).map(|(x, y)| x.sub(y).sq_norm()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(vals: &[f32]) -> Vec<Tensor> {
        vec![Tensor::from_vec(vals.to_vec(), &[vals.len()]).unwrap()]
    }

    #[test]
    fn encode_decode_round_trip() {
        let w = vec![Tensor::ones(&[2, 3]), Tensor::from_vec(vec![-1.5], &[1]).unwrap()];
        let bytes = encode(&w);
        assert_eq!(bytes.len(), byte_size(&w));
        assert_eq!(decode(&bytes).unwrap(), w);
    }

    #[test]
    fn decode_rejects_truncation() {
        let w = vec![Tensor::ones(&[4])];
        let bytes = encode(&w);
        for cut in [0, 3, 7, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn decode_rejects_corrupt_rank() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u32_le(99); // absurd rank
        assert_eq!(decode(&buf).unwrap_err(), WireError::Corrupt("rank"));
    }

    #[test]
    fn weighted_average_of_equal_weights_is_mean() {
        let avg = weighted_average(&[(1.0, snap(&[0.0, 2.0])), (1.0, snap(&[4.0, 6.0]))]);
        assert_eq!(avg[0].data(), &[2.0, 4.0]);
    }

    #[test]
    fn weighted_average_respects_sample_counts() {
        // FedAvg weighting n_k / Σ n_k: 3:1 ratio.
        let avg = weighted_average(&[(3.0, snap(&[4.0])), (1.0, snap(&[0.0]))]);
        assert_eq!(avg[0].data(), &[3.0]);
    }

    #[test]
    fn delta_and_add_scaled_invert() {
        let a = snap(&[5.0, 1.0]);
        let b = snap(&[2.0, -1.0]);
        let d = delta(&a, &b);
        let restored = add_scaled(&b, 1.0, &d);
        assert_eq!(restored, a);
    }

    #[test]
    fn sq_distance_is_symmetric_and_zero_on_self() {
        let a = snap(&[1.0, 2.0]);
        let b = snap(&[-1.0, 0.0]);
        assert_eq!(sq_distance(&a, &a), 0.0);
        assert_eq!(sq_distance(&a, &b), sq_distance(&b, &a));
        assert_eq!(sq_distance(&a, &b), 8.0);
    }

    #[test]
    #[should_panic(expected = "no snapshots")]
    fn weighted_average_rejects_empty() {
        weighted_average(&[]);
    }
}
