//! Weight snapshots: aggregation math and a compact wire encoding.
//!
//! FL strategies operate on `Vec<Tensor>` snapshots taken with
//! [`crate::Cnn::weights`]; this module provides the arithmetic the
//! aggregation rules need (weighted averaging for FedAvg, normalized
//! deltas for FedNova, squared distances for FedProx analysis) plus a
//! little-endian binary encoding of standalone snapshots. The tensor
//! layout and all byte-size accounting are [`aergia_codec::dense`]'s —
//! this module only prepends a tensor count, so there is exactly one
//! sizing authority in the workspace ([`aergia_codec::sizing`]).

use std::error::Error;
use std::fmt;

use aergia_codec::{dense, CodecError, ShapeSpec};
use aergia_tensor::Tensor;
use bytes::{Buf, Bytes};

/// Errors produced when decoding a weight snapshot from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the declared contents.
    Truncated,
    /// A declared dimension or count was implausibly large.
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "unexpected end of weight buffer"),
            WireError::Corrupt(what) => write!(f, "corrupt weight buffer: {what}"),
        }
    }
}

impl Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated => WireError::Truncated,
            CodecError::Corrupt(what) | CodecError::BaseMismatch(what) => WireError::Corrupt(what),
            CodecError::BadMagic => WireError::Corrupt("magic"),
            CodecError::UnsupportedVersion(_) => WireError::Corrupt("version"),
            _ => WireError::Corrupt("encoding"),
        }
    }
}

/// Serializes a weight snapshot into a compact little-endian buffer.
///
/// Layout: `u32 tensor_count`, then the [`aergia_codec::dense`] payload
/// (per tensor `u32 rank`, `u32 dims[rank]`, `f32 data[numel]`).
///
/// # Examples
///
/// ```
/// use aergia_nn::weights::{decode, encode};
/// use aergia_tensor::Tensor;
///
/// let snapshot = vec![Tensor::ones(&[2, 3])];
/// let bytes = encode(&snapshot);
/// assert_eq!(decode(&bytes).unwrap(), snapshot);
/// ```
pub fn encode(weights: &[Tensor]) -> Bytes {
    let mut buf = Vec::with_capacity(byte_size(weights));
    buf.extend_from_slice(&(weights.len() as u32).to_le_bytes());
    dense::encode_payload_into(weights, &mut buf);
    Bytes::from(buf)
}

/// Reconstructs a snapshot from [`encode`]'s format.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] or [`WireError::Corrupt`] on malformed
/// input.
pub fn decode(mut buf: &[u8]) -> Result<Vec<Tensor>, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let count = buf.get_u32_le() as usize;
    Ok(dense::decode_payload(buf, count)?)
}

/// Exact size in bytes of [`encode`]'s output for `weights` — the count
/// prefix plus the dense payload as sized by the one workspace-wide
/// authority, [`aergia_codec::sizing`].
pub fn byte_size(weights: &[Tensor]) -> usize {
    4 + ShapeSpec::of(weights).dense_payload_len()
}

/// Weighted average of snapshots: `Σ wᵢ·sᵢ / Σ wᵢ` — FedAvg's aggregation
/// rule (§2.2).
///
/// # Panics
///
/// Panics if `snapshots` is empty, the weights sum to zero, or the
/// snapshots disagree in structure.
pub fn weighted_average(snapshots: &[(f32, Vec<Tensor>)]) -> Vec<Tensor> {
    assert!(!snapshots.is_empty(), "weighted_average: no snapshots");
    let total: f32 = snapshots.iter().map(|(w, _)| w).sum();
    assert!(total > 0.0, "weighted_average: weights sum to {total}");
    let mut acc: Vec<Tensor> = snapshots[0].1.iter().map(|t| Tensor::zeros(t.dims())).collect();
    for (w, snap) in snapshots {
        assert_eq!(snap.len(), acc.len(), "weighted_average: snapshot structure mismatch");
        for (a, s) in acc.iter_mut().zip(snap) {
            a.axpy(w / total, s);
        }
    }
    acc
}

/// Coordinate-wise median across snapshots — a Byzantine-robust
/// alternative to [`weighted_average`] that ignores sample counts.
///
/// Each output element is the median of the corresponding elements of
/// every snapshot (for an even count, the mean of the two middle
/// values). Values are ordered by [`f32::total_cmp`], so the result is
/// a pure function of the input multiset — bit-identical regardless of
/// snapshot order.
///
/// # Panics
///
/// Panics if `snapshots` is empty or the snapshots disagree in structure.
pub fn coordinate_median(snapshots: &[Vec<Tensor>]) -> Vec<Tensor> {
    trimmed_mean(snapshots, usize::MAX)
}

/// Coordinate-wise trimmed mean: per element, drops the `trim_per_side`
/// smallest and largest values, then averages the survivors.
///
/// `trim_per_side` saturates at `(k−1)/2` so at least one value always
/// survives; at the saturation point the rule degenerates bit-exactly to
/// [`coordinate_median`]. `trim_per_side = 0` is the plain unweighted
/// mean. Ignores sample counts; ordering uses [`f32::total_cmp`].
///
/// # Panics
///
/// Panics if `snapshots` is empty or the snapshots disagree in structure.
pub fn trimmed_mean(snapshots: &[Vec<Tensor>], trim_per_side: usize) -> Vec<Tensor> {
    assert!(!snapshots.is_empty(), "trimmed_mean: no snapshots");
    let k = snapshots.len();
    let trim = trim_per_side.min((k - 1) / 2);
    let keep = k - 2 * trim;
    let first = &snapshots[0];
    for snap in snapshots {
        assert_eq!(snap.len(), first.len(), "trimmed_mean: snapshot structure mismatch");
    }
    let mut scratch: Vec<f32> = Vec::with_capacity(k);
    first
        .iter()
        .enumerate()
        .map(|(ti, proto)| {
            for snap in snapshots {
                assert_eq!(
                    snap[ti].dims(),
                    proto.dims(),
                    "trimmed_mean: snapshot structure mismatch"
                );
            }
            let data: Vec<f32> = (0..proto.data().len())
                .map(|ei| {
                    scratch.clear();
                    scratch.extend(snapshots.iter().map(|snap| snap[ti].data()[ei]));
                    scratch.sort_unstable_by(f32::total_cmp);
                    let sum: f32 = scratch[trim..trim + keep].iter().sum();
                    sum / keep as f32
                })
                .collect();
            Tensor::from_vec(data, proto.dims()).expect("trimmed_mean: shape preserved")
        })
        .collect()
}

/// A streaming in-place fold of scaled snapshots: the accumulator an
/// edge aggregator keeps while its cohort's updates arrive one at a
/// time — constant memory in the cohort size, one snapshot's worth of
/// tensors regardless of how many contributions fold in.
///
/// The fold is a plain left-to-right `acc += αᵢ·sᵢ` chain, so the
/// floating-point bracketing is *defined by the call order*: folding the
/// same `(α, snapshot)` sequence always produces bit-identical output,
/// and [`StreamingFold::merge`] extends the chain with another fold's
/// accumulator (`first.merge(second)` ≡ folding `second`'s sequence
/// after `first`'s, element-wise). Hierarchical aggregation leans on
/// exactly this: per-edge partials in fixed client order, merged
/// upstream in fixed edge order, reproduce the flat reference fold
/// bit for bit by construction.
///
/// # Examples
///
/// ```
/// use aergia_nn::weights::StreamingFold;
/// use aergia_tensor::Tensor;
///
/// let snap = |v: f32| vec![Tensor::from_vec(vec![v], &[1]).unwrap()];
/// let mut edge = StreamingFold::new();
/// edge.fold(0.5, &snap(2.0));
/// edge.fold(0.5, &snap(4.0));
/// let mut root = StreamingFold::new();
/// root.merge(edge);
/// assert_eq!(root.finish().unwrap()[0].data(), &[3.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamingFold {
    acc: Option<Vec<Tensor>>,
    count: usize,
}

impl StreamingFold {
    /// An empty fold: no snapshot has arrived yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs a fold from an accumulator that already absorbed
    /// `count` snapshots — the decode side of shipping a partial
    /// aggregate over the wire. The accumulator is adopted bit-exactly.
    #[must_use]
    pub fn resume(acc: Vec<Tensor>, count: usize) -> Self {
        StreamingFold { acc: Some(acc), count }
    }

    /// Number of snapshots folded in (merged folds included).
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether nothing has been folded in yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `alpha·snapshot` into the accumulator. The first call
    /// materializes a zero accumulator with the snapshot's structure, so
    /// a chain of `fold` calls evaluates exactly the
    /// `((0 + α₀·s₀) + α₁·s₁) + …` bracketing of
    /// [`weighted_average`]'s loop.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot` disagrees in structure with earlier folds.
    pub fn fold(&mut self, alpha: f32, snapshot: &[Tensor]) {
        let acc = self
            .acc
            .get_or_insert_with(|| snapshot.iter().map(|t| Tensor::zeros(t.dims())).collect());
        assert_eq!(snapshot.len(), acc.len(), "StreamingFold: snapshot structure mismatch");
        for (a, s) in acc.iter_mut().zip(snapshot) {
            a.axpy(alpha, s);
        }
        self.count += 1;
    }

    /// Appends another fold's chain to this one: an empty receiver takes
    /// `other`'s accumulator as-is (no spurious `0 + x` term — the merged
    /// bits are exactly `other`'s), otherwise the accumulators add
    /// element-wise. This is the upstream merge of per-edge partials.
    ///
    /// # Panics
    ///
    /// Panics if the two accumulators disagree in structure.
    pub fn merge(&mut self, other: StreamingFold) {
        let Some(theirs) = other.acc else { return };
        match &mut self.acc {
            None => self.acc = Some(theirs),
            Some(acc) => {
                assert_eq!(theirs.len(), acc.len(), "StreamingFold: partial structure mismatch");
                for (a, t) in acc.iter_mut().zip(&theirs) {
                    a.add_assign(t);
                }
            }
        }
        self.count += other.count;
    }

    /// Consumes the fold, returning the accumulated snapshot (`None` if
    /// nothing was ever folded in).
    #[must_use]
    pub fn finish(self) -> Option<Vec<Tensor>> {
        self.acc
    }
}

/// `a − b`, elementwise across the snapshot.
///
/// # Panics
///
/// Panics on structure mismatch.
pub fn delta(a: &[Tensor], b: &[Tensor]) -> Vec<Tensor> {
    assert_eq!(a.len(), b.len(), "delta: snapshot structure mismatch");
    a.iter().zip(b).map(|(x, y)| x.sub(y)).collect()
}

/// `base + alpha·step`, elementwise across the snapshot.
///
/// # Panics
///
/// Panics on structure mismatch.
pub fn add_scaled(base: &[Tensor], alpha: f32, step: &[Tensor]) -> Vec<Tensor> {
    assert_eq!(base.len(), step.len(), "add_scaled: snapshot structure mismatch");
    base.iter()
        .zip(step)
        .map(|(b, s)| {
            let mut out = b.clone();
            out.axpy(alpha, s);
            out
        })
        .collect()
}

/// Squared L2 distance between two snapshots viewed as one flat vector.
///
/// # Panics
///
/// Panics on structure mismatch.
pub fn sq_distance(a: &[Tensor], b: &[Tensor]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_distance: snapshot structure mismatch");
    a.iter().zip(b).map(|(x, y)| x.sub(y).sq_norm()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(vals: &[f32]) -> Vec<Tensor> {
        vec![Tensor::from_vec(vals.to_vec(), &[vals.len()]).unwrap()]
    }

    #[test]
    fn encode_decode_round_trip() {
        let w = vec![Tensor::ones(&[2, 3]), Tensor::from_vec(vec![-1.5], &[1]).unwrap()];
        let bytes = encode(&w);
        assert_eq!(bytes.len(), byte_size(&w));
        assert_eq!(decode(&bytes).unwrap(), w);
    }

    #[test]
    fn decode_rejects_truncation() {
        let w = vec![Tensor::ones(&[4])];
        let bytes = encode(&w);
        for cut in [0, 3, 7, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn decode_rejects_corrupt_rank() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&99u32.to_le_bytes()); // absurd rank
        assert_eq!(decode(&buf).unwrap_err(), WireError::Corrupt("rank"));
    }

    #[test]
    fn weighted_average_of_equal_weights_is_mean() {
        let avg = weighted_average(&[(1.0, snap(&[0.0, 2.0])), (1.0, snap(&[4.0, 6.0]))]);
        assert_eq!(avg[0].data(), &[2.0, 4.0]);
    }

    #[test]
    fn weighted_average_respects_sample_counts() {
        // FedAvg weighting n_k / Σ n_k: 3:1 ratio.
        let avg = weighted_average(&[(3.0, snap(&[4.0])), (1.0, snap(&[0.0]))]);
        assert_eq!(avg[0].data(), &[3.0]);
    }

    #[test]
    fn delta_and_add_scaled_invert() {
        let a = snap(&[5.0, 1.0]);
        let b = snap(&[2.0, -1.0]);
        let d = delta(&a, &b);
        let restored = add_scaled(&b, 1.0, &d);
        assert_eq!(restored, a);
    }

    #[test]
    fn sq_distance_is_symmetric_and_zero_on_self() {
        let a = snap(&[1.0, 2.0]);
        let b = snap(&[-1.0, 0.0]);
        assert_eq!(sq_distance(&a, &a), 0.0);
        assert_eq!(sq_distance(&a, &b), sq_distance(&b, &a));
        assert_eq!(sq_distance(&a, &b), 8.0);
    }

    #[test]
    #[should_panic(expected = "no snapshots")]
    fn weighted_average_rejects_empty() {
        weighted_average(&[]);
    }

    #[test]
    fn coordinate_median_odd_and_even_counts() {
        let odd = coordinate_median(&[snap(&[1.0, -9.0]), snap(&[5.0, 0.0]), snap(&[3.0, 99.0])]);
        assert_eq!(odd[0].data(), &[3.0, 0.0]);
        let even = coordinate_median(&[snap(&[1.0]), snap(&[3.0]), snap(&[100.0]), snap(&[2.0])]);
        assert_eq!(even[0].data(), &[2.5]);
        let single = coordinate_median(&[snap(&[7.0])]);
        assert_eq!(single[0].data(), &[7.0]);
    }

    #[test]
    fn coordinate_median_resists_a_minority_outlier() {
        // One adversarial snapshot with absurd values cannot move the
        // median outside the honest range.
        let honest = [snap(&[1.0]), snap(&[1.1]), snap(&[0.9])];
        let m = coordinate_median(&[
            honest[0].clone(),
            honest[1].clone(),
            honest[2].clone(),
            snap(&[-1e30]),
        ]);
        assert!(m[0].data()[0] >= 0.9 && m[0].data()[0] <= 1.1);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        // Values {0, 1, 2, 100}: trim 1 per side keeps {1, 2} → 1.5.
        let t = trimmed_mean(&[snap(&[0.0]), snap(&[1.0]), snap(&[2.0]), snap(&[100.0])], 1);
        assert_eq!(t[0].data(), &[1.5]);
        // Trim 0 is the plain mean.
        let mean = trimmed_mean(&[snap(&[0.0]), snap(&[4.0])], 0);
        assert_eq!(mean[0].data(), &[2.0]);
    }

    #[test]
    fn trimmed_mean_saturates_to_the_median() {
        let snaps = [snap(&[1.0, 5.0]), snap(&[2.0, 6.0]), snap(&[3.0, 7.0]), snap(&[4.0, 8.0])];
        for extreme in [2usize, 10, usize::MAX] {
            let t = trimmed_mean(&snaps, extreme);
            let m = coordinate_median(&snaps);
            assert_eq!(t[0].data(), m[0].data(), "trim {extreme}");
        }
    }

    #[test]
    fn robust_rules_are_order_invariant() {
        let a = [snap(&[1.0]), snap(&[9.0]), snap(&[2.0])];
        let b = [snap(&[9.0]), snap(&[2.0]), snap(&[1.0])];
        assert_eq!(coordinate_median(&a), coordinate_median(&b));
        assert_eq!(trimmed_mean(&a, 1), trimmed_mean(&b, 1));
    }

    #[test]
    #[should_panic(expected = "no snapshots")]
    fn trimmed_mean_rejects_empty() {
        trimmed_mean(&[], 1);
    }

    #[test]
    fn streaming_fold_chain_matches_weighted_average_bits() {
        // One edge folding every contribution in order is exactly the
        // flat weighted_average loop, down to the last bit.
        let contributions =
            [(3.0f32, snap(&[0.1, -2.5])), (1.0, snap(&[4.0, 0.3])), (2.0, snap(&[-0.7, 1.9]))];
        let total: f32 = contributions.iter().map(|(w, _)| w).sum();
        let mut fold = StreamingFold::new();
        for (w, s) in &contributions {
            fold.fold(w / total, s);
        }
        assert_eq!(fold.count(), 3);
        let flat = weighted_average(&contributions);
        assert_eq!(fold.finish().unwrap(), flat);
    }

    #[test]
    fn streaming_fold_merge_adds_partial_sums() {
        // Merging brackets the chains: the result is exactly
        // `left_sum + right_sum` (one addition of the two partial
        // accumulators), NOT a replay of the flat element-wise chain —
        // float addition is non-associative, so those differ in general.
        // The engine's hierarchical fold therefore *defines* the
        // aggregation tree by the cohort layout and compares against a
        // reference that evaluates the same tree.
        let seq: Vec<(f32, Vec<Tensor>)> = (0..5)
            .map(|i| (0.1 + i as f32 * 0.3, snap(&[i as f32 * 1.7 - 2.0, -0.3 * i as f32])))
            .collect();
        for cut in 0..=seq.len() {
            let fold_range = |range: &[(f32, Vec<Tensor>)]| {
                let mut f = StreamingFold::new();
                for (a, s) in range {
                    f.fold(*a, s);
                }
                f
            };
            let mut left = fold_range(&seq[..cut]);
            left.merge(fold_range(&seq[cut..]));
            assert_eq!(left.count(), seq.len());
            // Reference tree: the two partial sums combined by one add.
            let expected =
                match (fold_range(&seq[..cut]).finish(), fold_range(&seq[cut..]).finish()) {
                    (Some(mut l), Some(r)) => {
                        for (a, b) in l.iter_mut().zip(&r) {
                            a.add_assign(b);
                        }
                        l
                    }
                    (l, r) => l.or(r).expect("five contributions"),
                };
            assert_eq!(left.finish().unwrap(), expected, "split at {cut}");
        }
    }

    #[test]
    fn streaming_fold_merge_into_empty_moves_the_chain() {
        // The degenerate empty-prefix split is bit-identical to the whole
        // chain: merge *moves* the other accumulator rather than adding
        // it to zeros, so a single-edge layout reproduces the flat fold.
        let seq: Vec<(f32, Vec<Tensor>)> =
            (0..5).map(|i| (0.2 + i as f32 * 0.1, snap(&[i as f32 * 1.3 - 1.0]))).collect();
        let mut whole = StreamingFold::new();
        let mut tail = StreamingFold::new();
        for (a, s) in &seq {
            whole.fold(*a, s);
            tail.fold(*a, s);
        }
        let mut empty = StreamingFold::new();
        empty.merge(tail);
        assert_eq!(empty.count(), seq.len());
        assert_eq!(empty.finish().unwrap(), whole.finish().unwrap());
    }

    #[test]
    fn streaming_fold_empty_merge_is_identity() {
        let mut fold = StreamingFold::new();
        fold.fold(1.0, &snap(&[2.0]));
        let before = fold.clone().finish().unwrap();
        fold.merge(StreamingFold::new());
        assert_eq!(fold.count(), 1);
        assert_eq!(fold.finish().unwrap(), before);
        assert!(StreamingFold::new().finish().is_none());
    }
}
