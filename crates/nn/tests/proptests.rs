//! Property-based tests for the network stack: wire-format round trips,
//! aggregation algebra, freezing invariants and loss behaviour.

use aergia_nn::layer::{Flatten, Layer, Linear};
use aergia_nn::loss::cross_entropy;
use aergia_nn::optim::{Sgd, SgdConfig};
use aergia_nn::weights::{add_scaled, byte_size, decode, delta, encode, weighted_average};
use aergia_nn::Cnn;
use aergia_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn snapshot_strategy() -> impl Strategy<Value = Vec<Tensor>> {
    proptest::collection::vec(
        (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-3.0f32..3.0, r * c)
                .prop_map(move |v| Tensor::from_vec(v, &[r, c]).expect("sized"))
        }),
        1..4,
    )
}

fn tiny_model(seed: u64) -> Cnn {
    let mut rng = StdRng::seed_from_u64(seed);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Linear::new(6, 8, &mut rng)),
        Box::new(aergia_nn::layer::Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(8, 4, &mut rng)),
    ];
    Cnn::new(layers, 2, 4).expect("valid split")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wire_round_trip(snap in snapshot_strategy()) {
        let bytes = encode(&snap);
        prop_assert_eq!(bytes.len(), byte_size(&snap));
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn truncated_buffers_never_decode(snap in snapshot_strategy(), frac in 0.0f64..0.99) {
        let bytes = encode(&snap);
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn average_of_identical_snapshots_is_identity(snap in snapshot_strategy(), n in 1usize..5) {
        let group: Vec<(f32, Vec<Tensor>)> = (0..n).map(|i| ((i + 1) as f32, snap.clone())).collect();
        let avg = weighted_average(&group);
        for (a, s) in avg.iter().zip(&snap) {
            for (x, y) in a.data().iter().zip(s.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn average_stays_within_convex_hull(a in snapshot_strategy(), w1 in 0.1f32..5.0, w2 in 0.1f32..5.0) {
        // Build b = a + 1 elementwise; average must lie between them.
        let b: Vec<Tensor> = a.iter().map(|t| t.map(|v| v + 1.0)).collect();
        let avg = weighted_average(&[(w1, a.clone()), (w2, b.clone())]);
        for (av, (lo, hi)) in avg.iter().zip(a.iter().zip(&b)) {
            for ((x, l), h) in av.data().iter().zip(lo.data()).zip(hi.data()) {
                prop_assert!(*x >= l - 1e-4 && *x <= h + 1e-4);
            }
        }
    }

    #[test]
    fn delta_add_scaled_round_trip(a in snapshot_strategy()) {
        let b: Vec<Tensor> = a.iter().map(|t| t.map(|v| v * 0.5 - 1.0)).collect();
        let d = delta(&a, &b);
        let restored = add_scaled(&b, 1.0, &d);
        for (r, orig) in restored.iter().zip(&a) {
            for (x, y) in r.data().iter().zip(orig.data()) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_with_prob_gradient(
        logits in proptest::collection::vec(-5.0f32..5.0, 8),
        t0 in 0usize..4, t1 in 0usize..4,
    ) {
        let logits = Tensor::from_vec(logits, &[2, 4]).unwrap();
        let out = cross_entropy(&logits, &[t0, t1]);
        prop_assert!(out.loss >= 0.0);
        // Per-row gradient sums to zero.
        for row in out.dlogits.data().chunks_exact(4) {
            let s: f32 = row.iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn frozen_feature_weights_never_move(seed in 0u64..1000, steps in 1usize..5) {
        let mut model = tiny_model(seed);
        model.freeze_features();
        let before = model.feature_weights();
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.9, ..SgdConfig::default() });
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..steps {
            let mut x = Tensor::zeros(&[3, 6]);
            aergia_tensor::init::normal(&mut x, &mut rng, 0.0, 1.0);
            model.train_batch(&x, &[0, 1, 2], &mut opt).unwrap();
        }
        prop_assert_eq!(model.feature_weights(), before);
    }

    #[test]
    fn training_keeps_weights_finite(seed in 0u64..500) {
        let mut model = tiny_model(seed);
        let mut opt = Sgd::new(SgdConfig { lr: 0.05, ..SgdConfig::default() });
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..3 {
            let mut x = Tensor::zeros(&[2, 6]);
            aergia_tensor::init::normal(&mut x, &mut rng, 0.0, 1.0);
            let stats = model.train_batch(&x, &[1, 3], &mut opt).unwrap();
            prop_assert!(stats.loss.is_finite());
        }
        for w in model.weights() {
            prop_assert!(w.is_finite());
        }
    }
}

/// Exact bit equality of two tensors (shape and every element).
fn bits_eq(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims() && a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Deterministic non-trivial cotangent matching the forward output shape.
fn cotangent(dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|i| ((i % 7) as f32 - 3.0) / 3.0).collect(), dims).unwrap()
}

/// A workspace pre-polluted with NaN-filled buffers: reuse must never let
/// stale contents leak into results.
fn dirty_workspace() -> aergia_tensor::Workspace {
    let mut ws = aergia_tensor::Workspace::new();
    for dims in [[3usize, 3], [1, 7]] {
        let mut t = ws.take(&dims);
        t.fill(f32::NAN);
        ws.give(t);
    }
    let mut s = ws.take_scratch();
    s.reset(&[5]);
    s.fill(f32::NAN);
    ws.give_scratch(s);
    ws
}

/// Drives two identically-initialised layers through the allocating and
/// the workspace-backed paths (twice, so the second round sees a warm,
/// previously-used workspace) and asserts bit-identical outputs, input
/// gradients and accumulated parameter gradients.
fn assert_into_path_bit_identical(
    alloc: &mut dyn aergia_nn::layer::Layer,
    into: &mut dyn aergia_nn::layer::Layer,
    x: &Tensor,
) {
    let mut ws = dirty_workspace();
    let mut y_into = Tensor::full(&[2], f32::NAN);
    let mut dx_into = Tensor::full(&[3], f32::NAN);
    for round in 0..2 {
        let y_alloc = alloc.forward(x);
        into.forward_into(x, &mut ws, &mut y_into);
        assert!(bits_eq(&y_alloc, &y_into), "forward diverged (round {round})");

        let dy = cotangent(y_alloc.dims());
        let dx_alloc = alloc.backward(&dy);
        into.backward_into(&dy, &mut ws, &mut dx_into);
        assert!(bits_eq(&dx_alloc, &dx_into), "backward diverged (round {round})");

        let mut ga = alloc.params_and_grads();
        let mut gi = into.params_and_grads();
        assert_eq!(ga.len(), gi.len());
        for (i, ((_, a), (_, b))) in ga.iter_mut().zip(gi.iter_mut()).enumerate() {
            assert!(bits_eq(a, b), "param grad {i} diverged (round {round})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv2d_into_is_bit_identical(
        (in_c, out_c) in (1usize..3, 1usize..4),
        kernel in 1usize..4,
        pad in 0usize..2,
        (h, w, batch) in (4usize..7, 4usize..7, 1usize..3),
        seed in any::<u64>(),
    ) {
        use aergia_nn::layer::Conv2d;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut alloc = Conv2d::new(in_c, out_c, kernel, 1, pad, h, w, &mut rng);
        let mut into = alloc.clone();
        let mut x = Tensor::zeros(&[batch, in_c, h, w]);
        aergia_tensor::init::normal(&mut x, &mut StdRng::seed_from_u64(seed ^ 1), 0.0, 1.0);
        assert_into_path_bit_identical(&mut alloc, &mut into, &x);
    }

    #[test]
    fn linear_into_is_bit_identical(
        (inf, outf, batch) in (1usize..9, 1usize..9, 1usize..5),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut alloc = Linear::new(inf, outf, &mut rng);
        let mut into = alloc.clone();
        let mut x = Tensor::zeros(&[batch, inf]);
        aergia_tensor::init::normal(&mut x, &mut StdRng::seed_from_u64(seed ^ 2), 0.0, 1.0);
        assert_into_path_bit_identical(&mut alloc, &mut into, &x);
    }

    #[test]
    fn relu_flatten_into_are_bit_identical(
        (batch, c, h, w) in (1usize..3, 1usize..4, 1usize..5, 1usize..5),
        seed in any::<u64>(),
    ) {
        let mut x = Tensor::zeros(&[batch, c, h, w]);
        aergia_tensor::init::normal(&mut x, &mut StdRng::seed_from_u64(seed), 0.0, 1.0);
        let mut relu_alloc = aergia_nn::layer::Relu::new();
        let mut relu_into = aergia_nn::layer::Relu::new();
        assert_into_path_bit_identical(&mut relu_alloc, &mut relu_into, &x);
        let mut flat_alloc = Flatten::new();
        let mut flat_into = Flatten::new();
        assert_into_path_bit_identical(&mut flat_alloc, &mut flat_into, &x);
    }

    #[test]
    fn maxpool_into_is_bit_identical(
        (batch, c) in (1usize..3, 1usize..4),
        (kernel, stride) in (1usize..4, 1usize..3),
        (h, w) in (4usize..8, 4usize..8),
        seed in any::<u64>(),
    ) {
        use aergia_nn::layer::MaxPool2d;
        let mut x = Tensor::zeros(&[batch, c, h, w]);
        aergia_tensor::init::normal(&mut x, &mut StdRng::seed_from_u64(seed), 0.0, 1.0);
        let mut alloc = MaxPool2d::new(kernel, stride, h, w);
        let mut into = MaxPool2d::new(kernel, stride, h, w);
        assert_into_path_bit_identical(&mut alloc, &mut into, &x);
    }

    #[test]
    fn residual_into_is_bit_identical(
        (in_c, out_c) in (1usize..3, 1usize..4),
        (h, w, batch) in (4usize..6, 4usize..6, 1usize..3),
        seed in any::<u64>(),
    ) {
        use aergia_nn::layer::ResidualBlock;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut alloc = ResidualBlock::new(in_c, out_c, h, w, &mut rng);
        let mut into = alloc.clone();
        let mut x = Tensor::zeros(&[batch, in_c, h, w]);
        aergia_tensor::init::normal(&mut x, &mut StdRng::seed_from_u64(seed ^ 3), 0.0, 1.0);
        assert_into_path_bit_identical(&mut alloc, &mut into, &x);
    }

    /// Whole-model contract: training with a persistent (warm, dirty)
    /// workspace is bit-identical to training with a throwaway workspace
    /// per batch, step after step.
    #[test]
    fn train_batch_with_persistent_workspace_is_bit_identical(
        seed in 0u64..500, steps in 1usize..4,
    ) {
        let mut fresh = tiny_model(seed);
        let mut warm = tiny_model(seed);
        let mut opt_fresh = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, ..SgdConfig::default() });
        let mut opt_warm = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, ..SgdConfig::default() });
        let mut ws = dirty_workspace();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        for _ in 0..steps {
            let mut x = Tensor::zeros(&[3, 6]);
            aergia_tensor::init::normal(&mut x, &mut rng, 0.0, 1.0);
            let a = fresh.train_batch(&x, &[0, 1, 2], &mut opt_fresh).unwrap();
            let b = warm.train_batch_with(&x, &[0, 1, 2], &mut opt_warm, &mut ws).unwrap();
            prop_assert_eq!(a.loss.to_bits(), b.loss.to_bits());
            prop_assert_eq!(a.correct, b.correct);
        }
        for (a, b) in fresh.weights().iter().zip(&warm.weights()) {
            prop_assert!(bits_eq(a, b), "weights diverged between fresh and persistent workspace");
        }
    }

    /// `cross_entropy_into` with a dirty reused buffer matches the
    /// allocating `cross_entropy` bit for bit.
    #[test]
    fn cross_entropy_into_matches_allocating(
        logits in proptest::collection::vec(-4.0f32..4.0, 8),
        t0 in 0usize..4, t1 in 0usize..4,
    ) {
        let logits = Tensor::from_vec(logits, &[2, 4]).unwrap();
        let out = cross_entropy(&logits, &[t0, t1]);
        let mut dl = Tensor::full(&[3], f32::NAN);
        let stats = aergia_nn::loss::cross_entropy_into(&logits, &[t0, t1], &mut dl);
        prop_assert_eq!(stats.loss.to_bits(), out.loss.to_bits());
        prop_assert_eq!(stats.correct, out.correct);
        prop_assert!(bits_eq(&dl, &out.dlogits));
    }
}
