//! Property-based tests for the network stack: wire-format round trips,
//! aggregation algebra, freezing invariants and loss behaviour.

use aergia_nn::layer::{Flatten, Layer, Linear};
use aergia_nn::loss::cross_entropy;
use aergia_nn::optim::{Sgd, SgdConfig};
use aergia_nn::weights::{add_scaled, byte_size, decode, delta, encode, weighted_average};
use aergia_nn::Cnn;
use aergia_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn snapshot_strategy() -> impl Strategy<Value = Vec<Tensor>> {
    proptest::collection::vec(
        (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-3.0f32..3.0, r * c)
                .prop_map(move |v| Tensor::from_vec(v, &[r, c]).expect("sized"))
        }),
        1..4,
    )
}

fn tiny_model(seed: u64) -> Cnn {
    let mut rng = StdRng::seed_from_u64(seed);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Linear::new(6, 8, &mut rng)),
        Box::new(aergia_nn::layer::Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(8, 4, &mut rng)),
    ];
    Cnn::new(layers, 2, 4).expect("valid split")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wire_round_trip(snap in snapshot_strategy()) {
        let bytes = encode(&snap);
        prop_assert_eq!(bytes.len(), byte_size(&snap));
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn truncated_buffers_never_decode(snap in snapshot_strategy(), frac in 0.0f64..0.99) {
        let bytes = encode(&snap);
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn average_of_identical_snapshots_is_identity(snap in snapshot_strategy(), n in 1usize..5) {
        let group: Vec<(f32, Vec<Tensor>)> = (0..n).map(|i| ((i + 1) as f32, snap.clone())).collect();
        let avg = weighted_average(&group);
        for (a, s) in avg.iter().zip(&snap) {
            for (x, y) in a.data().iter().zip(s.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn average_stays_within_convex_hull(a in snapshot_strategy(), w1 in 0.1f32..5.0, w2 in 0.1f32..5.0) {
        // Build b = a + 1 elementwise; average must lie between them.
        let b: Vec<Tensor> = a.iter().map(|t| t.map(|v| v + 1.0)).collect();
        let avg = weighted_average(&[(w1, a.clone()), (w2, b.clone())]);
        for (av, (lo, hi)) in avg.iter().zip(a.iter().zip(&b)) {
            for ((x, l), h) in av.data().iter().zip(lo.data()).zip(hi.data()) {
                prop_assert!(*x >= l - 1e-4 && *x <= h + 1e-4);
            }
        }
    }

    #[test]
    fn delta_add_scaled_round_trip(a in snapshot_strategy()) {
        let b: Vec<Tensor> = a.iter().map(|t| t.map(|v| v * 0.5 - 1.0)).collect();
        let d = delta(&a, &b);
        let restored = add_scaled(&b, 1.0, &d);
        for (r, orig) in restored.iter().zip(&a) {
            for (x, y) in r.data().iter().zip(orig.data()) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_with_prob_gradient(
        logits in proptest::collection::vec(-5.0f32..5.0, 8),
        t0 in 0usize..4, t1 in 0usize..4,
    ) {
        let logits = Tensor::from_vec(logits, &[2, 4]).unwrap();
        let out = cross_entropy(&logits, &[t0, t1]);
        prop_assert!(out.loss >= 0.0);
        // Per-row gradient sums to zero.
        for row in out.dlogits.data().chunks_exact(4) {
            let s: f32 = row.iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn frozen_feature_weights_never_move(seed in 0u64..1000, steps in 1usize..5) {
        let mut model = tiny_model(seed);
        model.freeze_features();
        let before = model.feature_weights();
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.9, ..SgdConfig::default() });
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..steps {
            let mut x = Tensor::zeros(&[3, 6]);
            aergia_tensor::init::normal(&mut x, &mut rng, 0.0, 1.0);
            model.train_batch(&x, &[0, 1, 2], &mut opt).unwrap();
        }
        prop_assert_eq!(model.feature_weights(), before);
    }

    #[test]
    fn training_keeps_weights_finite(seed in 0u64..500) {
        let mut model = tiny_model(seed);
        let mut opt = Sgd::new(SgdConfig { lr: 0.05, ..SgdConfig::default() });
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..3 {
            let mut x = Tensor::zeros(&[2, 6]);
            aergia_tensor::init::normal(&mut x, &mut rng, 0.0, 1.0);
            let stats = model.train_batch(&x, &[1, 3], &mut opt).unwrap();
            prop_assert!(stats.loss.is_finite());
        }
        for w in model.weights() {
            prop_assert!(w.is_finite());
        }
    }
}
