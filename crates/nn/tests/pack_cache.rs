//! Staleness tests for the per-layer packed-weight caches.
//!
//! `Linear` and `Conv2d` cache packed GEMM panels of their weight matrix
//! and reuse them until the weights change. These tests pin the
//! invalidation contract: an optimizer step (`Sgd::apply`) and a snapshot
//! restore (`set_params`/`set_weights`) must both drop the cached packs,
//! so no forward or backward pass ever runs on a stale pack.

use aergia_nn::layer::{Conv2d, Flatten, Layer, Linear, Relu};
use aergia_nn::optim::{Sgd, SgdConfig};
use aergia_nn::Cnn;
use aergia_tensor::{init, ops, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `y = x·Wᵀ + b` computed from scratch with the naive reference kernel.
fn linear_reference(x: &Tensor, w: &Tensor, b: &Tensor) -> Tensor {
    let mut y = ops::matmul_nt_reference(x, w).unwrap();
    ops::add_bias_rows(&mut y, b).unwrap();
    y
}

#[test]
fn linear_set_params_invalidates_cached_weight_pack() {
    let mut fc = Linear::new(6, 4, &mut rng(1));
    let mut x = Tensor::zeros(&[3, 6]);
    init::normal(&mut x, &mut rng(2), 0.0, 1.0);
    // Warm the forward pack on the initial weights.
    fc.forward(&x);

    let mut w2 = Tensor::zeros(&[4, 6]);
    init::normal(&mut w2, &mut rng(3), 0.0, 1.0);
    let b2 = Tensor::zeros(&[4]);
    fc.set_params(&[w2.clone(), b2.clone()]);
    // A stale pack would still multiply against the old weights.
    assert_eq!(
        fc.forward(&x),
        linear_reference(&x, &w2, &b2),
        "forward after set_params must use the new weights, not a stale pack"
    );
}

#[test]
fn linear_backward_pack_tracks_weight_updates() {
    // train → step → train: the second batch must see the stepped
    // weights in both its forward pack and its backward (dx) pack.
    let layers: Vec<Box<dyn Layer>> =
        vec![Box::new(Flatten::new()), Box::new(Linear::new(8, 3, &mut rng(4)))];
    let mut model = Cnn::new(layers, 1, 3).unwrap();
    let mut opt = Sgd::new(SgdConfig { lr: 0.1, ..SgdConfig::default() });
    let mut x = Tensor::zeros(&[4, 8]);
    init::normal(&mut x, &mut rng(5), 0.0, 1.0);
    let y = vec![0usize, 1, 2, 0];

    model.train_batch(&x, &y, &mut opt).unwrap();
    let stepped = model.weights();

    // A fresh model started from the stepped weights has no caches at
    // all; one more identical batch must leave both models bit-identical.
    let layers: Vec<Box<dyn Layer>> =
        vec![Box::new(Flatten::new()), Box::new(Linear::new(8, 3, &mut rng(4)))];
    let mut fresh = Cnn::new(layers, 1, 3).unwrap();
    fresh.set_weights(&stepped).unwrap();
    let mut fresh_opt = Sgd::new(SgdConfig { lr: 0.1, ..SgdConfig::default() });

    model.train_batch(&x, &y, &mut opt).unwrap();
    fresh.train_batch(&x, &y, &mut fresh_opt).unwrap();
    assert_eq!(
        model.weights(),
        fresh.weights(),
        "a second batch through warm pack caches must match a cache-free model"
    );
}

#[test]
fn conv_pack_caches_follow_step_and_snapshot() {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(1, 4, 3, 1, 1, 8, 8, &mut rng(7))),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(4 * 8 * 8, 3, &mut rng(8))),
    ];
    let mut model = Cnn::new(layers, 2, 3).unwrap();
    let mut opt = Sgd::new(SgdConfig { lr: 0.05, ..SgdConfig::default() });
    let mut x = Tensor::zeros(&[2, 1, 8, 8]);
    init::normal(&mut x, &mut rng(9), 0.0, 1.0);
    let y = vec![1usize, 2];

    // Three steps with warm caches...
    for _ in 0..3 {
        model.train_batch(&x, &y, &mut opt).unwrap();
    }
    // ...must land exactly where a replay that rebuilds every model (and
    // therefore every pack) from the previous step's snapshot lands.
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(1, 4, 3, 1, 1, 8, 8, &mut rng(7))),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(4 * 8 * 8, 3, &mut rng(8))),
    ];
    let mut replay = Cnn::new(layers, 2, 3).unwrap();
    let mut replay_opt = Sgd::new(SgdConfig { lr: 0.05, ..SgdConfig::default() });
    for _ in 0..3 {
        let snapshot = replay.weights();
        replay.set_weights(&snapshot).unwrap();
        replay.train_batch(&x, &y, &mut replay_opt).unwrap();
    }
    assert_eq!(model.weights(), replay.weights());
}

#[test]
fn frozen_layers_may_keep_packs_but_stay_correct_after_unfreeze() {
    // Freeze → train (features keep their packs across batches) →
    // unfreeze → train: results must match a model that never cached.
    let build = || -> Cnn {
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(1, 3, 3, 1, 1, 6, 6, &mut rng(11))),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(3 * 6 * 6, 2, &mut rng(12))),
        ];
        Cnn::new(layers, 2, 2).unwrap()
    };
    let mut cached = build();
    let mut opt_a = Sgd::new(SgdConfig::default());
    let mut x = Tensor::zeros(&[2, 1, 6, 6]);
    init::normal(&mut x, &mut rng(13), 0.0, 1.0);
    let y = vec![0usize, 1];

    cached.freeze_features();
    for _ in 0..2 {
        cached.train_batch(&x, &y, &mut opt_a).unwrap();
    }
    cached.unfreeze_features();
    cached.train_batch(&x, &y, &mut opt_a).unwrap();

    // Replay with per-batch weight round-trips (set_weights drops every
    // cache each time, so this path never reuses a pack).
    let mut uncached = build();
    let mut opt_b = Sgd::new(SgdConfig::default());
    uncached.freeze_features();
    for _ in 0..2 {
        let w = uncached.weights();
        uncached.set_weights(&w).unwrap();
        uncached.train_batch(&x, &y, &mut opt_b).unwrap();
    }
    uncached.unfreeze_features();
    let w = uncached.weights();
    uncached.set_weights(&w).unwrap();
    uncached.train_batch(&x, &y, &mut opt_b).unwrap();

    assert_eq!(cached.weights(), uncached.weights());
}
