//! The similarity enclave: collects sealed client histograms and emits
//! only the pairwise EMD matrix.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use aergia_data::emd;

use crate::attestation::{AttestationReport, Measurement};
use crate::sealing::{decode_histogram, encode_histogram, SealedBlob, SessionKey};

/// Errors surfaced by the enclave protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EnclaveError {
    /// The attestation report did not verify.
    AttestationFailed,
    /// A sealed blob failed integrity checking or decoding.
    BadBlob {
        /// Submitting client.
        client: u32,
    },
    /// A client submitted twice for the same epoch.
    DuplicateSubmission {
        /// Offending client.
        client: u32,
    },
    /// Fewer than two histograms available.
    NotEnoughClients {
        /// Histograms currently held.
        have: usize,
    },
    /// Histograms disagree on class count.
    InconsistentClasses,
    /// The submitting client never established a session.
    UnknownClient {
        /// Offending client.
        client: u32,
    },
}

impl fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnclaveError::AttestationFailed => write!(f, "enclave attestation failed"),
            EnclaveError::BadBlob { client } => {
                write!(f, "sealed blob from client {client} failed to unseal")
            }
            EnclaveError::DuplicateSubmission { client } => {
                write!(f, "client {client} already submitted a histogram")
            }
            EnclaveError::NotEnoughClients { have } => {
                write!(f, "need at least 2 histograms, have {have}")
            }
            EnclaveError::InconsistentClasses => {
                write!(f, "client histograms disagree on class count")
            }
            EnclaveError::UnknownClient { client } => {
                write!(f, "client {client} has no attested session")
            }
        }
    }
}

impl Error for EnclaveError {}

/// The federator-hosted enclave computing dataset similarities (§4.4).
///
/// The plaintext histograms live only in the private `histograms` map —
/// the untrusted host (the federator code in `aergia`) interacts purely
/// through sealed blobs and receives only the final matrix, mirroring the
/// SGX isolation boundary.
#[derive(Debug)]
pub struct SimilarityEnclave {
    measurement: Measurement,
    secret: u64,
    num_classes: usize,
    sessions: HashMap<u32, SessionKey>,
    histograms: HashMap<u32, Vec<u64>>,
}

impl SimilarityEnclave {
    /// Launches an enclave expecting histograms of `num_classes` buckets.
    ///
    /// `secret` seeds the enclave's private key material (in real SGX this
    /// comes from the CPU's sealing identity).
    pub fn new(num_classes: usize, secret: u64) -> Self {
        SimilarityEnclave {
            measurement: Measurement::current(),
            secret,
            num_classes,
            sessions: HashMap::new(),
            histograms: HashMap::new(),
        }
    }

    /// The enclave's code measurement (public knowledge).
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Answers an attestation challenge (run inside the enclave).
    pub fn attest(&self, nonce: u64) -> AttestationReport {
        AttestationReport::answer(self.measurement, nonce)
    }

    /// Derives the session key for `client` after a successful handshake.
    /// Also called by [`ClientSession::establish`] to model the key
    /// agreement of an attested channel.
    fn derive_key(&self, client: u32, client_nonce: u64) -> SessionKey {
        SessionKey(
            self.secret.rotate_left(13).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ u64::from(client).wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
                ^ client_nonce,
        )
    }

    /// Registers `client`'s attested session so its blobs can be unsealed.
    pub(crate) fn register_session(&mut self, client: u32, key: SessionKey) {
        self.sessions.insert(client, key);
    }

    /// Accepts a sealed histogram from `client`.
    ///
    /// # Errors
    ///
    /// [`EnclaveError::UnknownClient`] without a prior session,
    /// [`EnclaveError::BadBlob`] if unsealing or decoding fails,
    /// [`EnclaveError::DuplicateSubmission`] on a second submit, and
    /// [`EnclaveError::InconsistentClasses`] on a wrong bucket count.
    pub fn submit(&mut self, client: u32, blob: SealedBlob) -> Result<(), EnclaveError> {
        let key = *self.sessions.get(&client).ok_or(EnclaveError::UnknownClient { client })?;
        if self.histograms.contains_key(&client) {
            return Err(EnclaveError::DuplicateSubmission { client });
        }
        let plain = blob.unseal(key).ok_or(EnclaveError::BadBlob { client })?;
        let hist = decode_histogram(&plain).ok_or(EnclaveError::BadBlob { client })?;
        if hist.len() != self.num_classes {
            return Err(EnclaveError::InconsistentClasses);
        }
        self.histograms.insert(client, hist);
        Ok(())
    }

    /// Number of histograms received so far.
    pub fn submissions(&self) -> usize {
        self.histograms.len()
    }

    /// Computes the pairwise EMD matrix over all submitted histograms.
    ///
    /// Entry `(i, j)` of the result is the distance between the datasets
    /// of the `i`-th and `j`-th *submitting* clients in ascending client-id
    /// order (use [`SimilarityEnclave::client_order`] to map back). Only
    /// this matrix leaves the enclave; the histograms do not.
    ///
    /// # Errors
    ///
    /// [`EnclaveError::NotEnoughClients`] with fewer than two submissions.
    pub fn compute_similarity_matrix(&self) -> Result<Vec<Vec<f64>>, EnclaveError> {
        if self.histograms.len() < 2 {
            return Err(EnclaveError::NotEnoughClients { have: self.histograms.len() });
        }
        let order = self.client_order();
        let hists: Vec<Vec<u64>> = order.iter().map(|id| self.histograms[id].clone()).collect();
        Ok(emd::similarity_matrix(&hists))
    }

    /// Ascending ids of the clients whose histograms are present; row `i`
    /// of the similarity matrix corresponds to `client_order()[i]`.
    pub fn client_order(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.histograms.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Clears submissions (sessions survive), e.g. between experiments.
    pub fn reset_submissions(&mut self) {
        self.histograms.clear();
    }
}

/// A client's side of the attested channel.
///
/// `establish` performs the attestation handshake against the enclave and
/// derives the shared session key; `seal_histogram` encrypts the client's
/// private class distribution for submission *via the untrusted federator*.
#[derive(Debug)]
pub struct ClientSession {
    client: u32,
    key: SessionKey,
    next_nonce: u64,
}

impl ClientSession {
    /// Runs the attestation handshake and key agreement.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::AttestationFailed`] if the enclave's report
    /// does not verify against [`Measurement::current`].
    pub fn establish(
        enclave: &SimilarityEnclave,
        client: u32,
        nonce: u64,
    ) -> Result<ClientSessionHandle, EnclaveError> {
        let report = enclave.attest(nonce);
        if !report.verify(Measurement::current(), nonce) {
            return Err(EnclaveError::AttestationFailed);
        }
        let key = enclave.derive_key(client, nonce);
        Ok(ClientSessionHandle { session: ClientSession { client, key, next_nonce: 1 }, key })
    }

    /// The client id this session belongs to.
    pub fn client(&self) -> u32 {
        self.client
    }

    /// Seals a class histogram for submission.
    pub fn seal_histogram(&mut self, hist: &[u64]) -> SealedBlob {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        SealedBlob::seal(self.key, nonce ^ (u64::from(self.client) << 32), &encode_histogram(hist))
    }
}

/// Result of [`ClientSession::establish`]: the client-side session plus
/// the key the enclave must register (models the conclusion of the key
/// agreement, where both ends hold the same key).
#[derive(Debug)]
pub struct ClientSessionHandle {
    session: ClientSession,
    key: SessionKey,
}

impl ClientSessionHandle {
    /// Completes the handshake: registers the key inside the enclave and
    /// returns the client-side session.
    pub fn finish(self, enclave: &mut SimilarityEnclave) -> ClientSession {
        enclave.register_session(self.session.client, self.key);
        self.session
    }
}

/// Convenience wrapper: attest, agree on a key and register it, returning
/// the ready-to-use client session.
///
/// # Errors
///
/// Propagates [`EnclaveError::AttestationFailed`].
pub fn establish_session(
    enclave: &mut SimilarityEnclave,
    client: u32,
    nonce: u64,
) -> Result<ClientSession, EnclaveError> {
    Ok(ClientSession::establish(enclave, client, nonce)?.finish(enclave))
}

impl ClientSession {
    /// Shorthand used in examples: [`establish_session`] as an associated
    /// function returning the finished session.
    ///
    /// # Errors
    ///
    /// Propagates [`EnclaveError::AttestationFailed`].
    pub fn establish_and_register(
        enclave: &mut SimilarityEnclave,
        client: u32,
        nonce: u64,
    ) -> Result<ClientSession, EnclaveError> {
        establish_session(enclave, client, nonce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enclave_with(hists: &[(u32, Vec<u64>)]) -> SimilarityEnclave {
        let classes = hists[0].1.len();
        let mut enclave = SimilarityEnclave::new(classes, 1234);
        for (client, hist) in hists {
            let mut session = establish_session(&mut enclave, *client, 55).unwrap();
            enclave.submit(*client, session.seal_histogram(hist)).unwrap();
        }
        enclave
    }

    #[test]
    fn end_to_end_matrix_matches_plaintext_emd() {
        let hists = vec![(0u32, vec![10u64, 0, 0]), (1, vec![0, 10, 0]), (2, vec![10, 0, 0])];
        let enclave = enclave_with(&hists);
        let matrix = enclave.compute_similarity_matrix().unwrap();
        let plain: Vec<Vec<u64>> = hists.iter().map(|(_, h)| h.clone()).collect();
        let expected = aergia_data::emd::similarity_matrix(&plain);
        assert_eq!(matrix, expected);
        assert_eq!(matrix[0][2], 0.0, "identical distributions");
        assert!(matrix[0][1] > 0.0);
    }

    #[test]
    fn submission_without_session_is_rejected() {
        let mut enclave = SimilarityEnclave::new(2, 9);
        let other = SimilarityEnclave::new(2, 9);
        let mut session = ClientSession::establish(&other, 0, 1).unwrap().session;
        let blob = session.seal_histogram(&[1, 2]);
        assert_eq!(enclave.submit(0, blob).unwrap_err(), EnclaveError::UnknownClient { client: 0 });
    }

    #[test]
    fn duplicate_submission_is_rejected() {
        let mut enclave = SimilarityEnclave::new(2, 9);
        let mut session = establish_session(&mut enclave, 0, 1).unwrap();
        enclave.submit(0, session.seal_histogram(&[1, 2])).unwrap();
        let err = enclave.submit(0, session.seal_histogram(&[1, 2])).unwrap_err();
        assert_eq!(err, EnclaveError::DuplicateSubmission { client: 0 });
    }

    #[test]
    fn wrong_class_count_is_rejected() {
        let mut enclave = SimilarityEnclave::new(3, 9);
        let mut session = establish_session(&mut enclave, 0, 1).unwrap();
        let err = enclave.submit(0, session.seal_histogram(&[1, 2])).unwrap_err();
        assert_eq!(err, EnclaveError::InconsistentClasses);
    }

    #[test]
    fn tampered_blob_is_rejected() {
        let mut enclave = SimilarityEnclave::new(2, 9);
        let mut session = establish_session(&mut enclave, 7, 1).unwrap();
        let blob = session.seal_histogram(&[3, 4]);
        // Re-seal under a bogus key to simulate tampering in transit.
        let forged = SealedBlob::seal(SessionKey(42), 1, b"0123456789abcdef");
        assert_eq!(enclave.submit(7, forged).unwrap_err(), EnclaveError::BadBlob { client: 7 });
        // The genuine blob still works.
        enclave.submit(7, blob).unwrap();
    }

    #[test]
    fn matrix_needs_two_clients() {
        let mut enclave = SimilarityEnclave::new(2, 9);
        assert_eq!(
            enclave.compute_similarity_matrix().unwrap_err(),
            EnclaveError::NotEnoughClients { have: 0 }
        );
        let mut session = establish_session(&mut enclave, 0, 1).unwrap();
        enclave.submit(0, session.seal_histogram(&[1, 1])).unwrap();
        assert!(enclave.compute_similarity_matrix().is_err());
    }

    #[test]
    fn client_order_is_sorted_ids() {
        let enclave = enclave_with(&[(5, vec![1, 0]), (2, vec![0, 1]), (9, vec![1, 1])]);
        assert_eq!(enclave.client_order(), vec![2, 5, 9]);
    }

    #[test]
    fn reset_clears_submissions_but_keeps_sessions() {
        let mut enclave = SimilarityEnclave::new(2, 9);
        let mut session = establish_session(&mut enclave, 0, 1).unwrap();
        enclave.submit(0, session.seal_histogram(&[1, 1])).unwrap();
        enclave.reset_submissions();
        assert_eq!(enclave.submissions(), 0);
        // Session still valid: a fresh submit succeeds.
        enclave.submit(0, session.seal_histogram(&[2, 2])).unwrap();
    }

    #[test]
    fn different_enclave_secrets_give_different_keys() {
        let a = SimilarityEnclave::new(2, 1);
        let b = SimilarityEnclave::new(2, 2);
        assert_ne!(a.derive_key(0, 7).0, b.derive_key(0, 7).0);
    }
}
