//! Simulated remote attestation.
//!
//! Real SGX attestation proves to a remote party that specific code
//! (identified by its measurement, MRENCLAVE) runs inside a genuine
//! enclave. We keep the protocol shape — the client sends a nonce, the
//! enclave answers with its measurement and a nonce-bound response — while
//! replacing the Intel quoting infrastructure with a deterministic hash.

use serde::{Deserialize, Serialize};

/// FNV-1a, the stand-in for the attestation hash. Deterministic and cheap;
/// *not* collision resistant — acceptable for a simulation whose parties
/// are honest (paper §3.1 assumes all parties honest).
pub fn measurement_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The identity of the enclave code ("MRENCLAVE").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Measurement(pub u64);

impl Measurement {
    /// Measurement of this crate's similarity-enclave code. A real
    /// deployment would hash the enclave binary; we hash a version string
    /// so that "code changes" change the measurement.
    pub fn current() -> Self {
        Measurement(measurement_hash(b"aergia-similarity-enclave-v1"))
    }
}

/// The enclave's answer to an attestation challenge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttestationReport {
    /// Claimed code measurement.
    pub measurement: Measurement,
    /// Binds the report to the challenger's nonce (prevents replay).
    pub nonce_binding: u64,
}

impl AttestationReport {
    /// Produces a report for a challenge `nonce` (enclave side).
    pub fn answer(measurement: Measurement, nonce: u64) -> Self {
        AttestationReport {
            measurement,
            nonce_binding: measurement_hash(
                &[measurement.0.to_le_bytes(), nonce.to_le_bytes()].concat(),
            ),
        }
    }

    /// Verifies the report against the expected measurement and the nonce
    /// the challenger sent (client side).
    pub fn verify(&self, expected: Measurement, nonce: u64) -> bool {
        self.measurement == expected
            && self.nonce_binding
                == measurement_hash(&[expected.0.to_le_bytes(), nonce.to_le_bytes()].concat())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_report_verifies() {
        let m = Measurement::current();
        let report = AttestationReport::answer(m, 42);
        assert!(report.verify(m, 42));
    }

    #[test]
    fn wrong_measurement_fails() {
        let report = AttestationReport::answer(Measurement(123), 42);
        assert!(!report.verify(Measurement::current(), 42));
    }

    #[test]
    fn replayed_report_fails_on_fresh_nonce() {
        let m = Measurement::current();
        let report = AttestationReport::answer(m, 42);
        assert!(!report.verify(m, 43), "report bound to nonce 42 must not verify for 43");
    }

    #[test]
    fn measurement_is_stable_and_content_sensitive() {
        assert_eq!(Measurement::current(), Measurement::current());
        assert_ne!(measurement_hash(b"a"), measurement_hash(b"b"));
        assert_ne!(measurement_hash(b""), 0);
    }
}
