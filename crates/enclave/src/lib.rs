//! Simulated trusted execution environment for private dataset-similarity
//! computation.
//!
//! In the paper (§3.1, §4.4), clients send their *encrypted* per-class
//! label counts to an Intel SGX enclave hosted by the federator; the
//! enclave — after clients authenticate it via remote attestation —
//! decrypts the histograms and emits only the pairwise EMD similarity
//! matrix, so the federator never sees any client's class distribution.
//!
//! This crate reproduces that *code path* without real SGX hardware:
//!
//! * [`attestation`] — a measurement-check + nonce handshake standing in
//!   for remote attestation;
//! * [`sealing`] — a keystream cipher standing in for the attested
//!   session's authenticated encryption (**not cryptographically secure**;
//!   see the module docs);
//! * [`SimilarityEnclave`] — the enclave itself. Plaintext histograms
//!   exist only inside its private state; the public API exposes nothing
//!   but the similarity matrix, mirroring the SGX isolation boundary at
//!   the type level.
//!
//! # Examples
//!
//! ```
//! use aergia_enclave::{establish_session, SimilarityEnclave};
//!
//! let mut enclave = SimilarityEnclave::new(2, 99);
//! // Each client attests the enclave, derives a session key and seals its
//! // private histogram.
//! for (client, hist) in [(0u32, vec![8u64, 0]), (1, vec![0, 8])].into_iter() {
//!     let mut session = establish_session(&mut enclave, client, 7).unwrap();
//!     let blob = session.seal_histogram(&hist);
//!     enclave.submit(client, blob).unwrap();
//! }
//! let matrix = enclave.compute_similarity_matrix().unwrap();
//! assert!(matrix[0][1] > 0.0); // disjoint class distributions are distant
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod sealing;

mod enclave;

pub use enclave::{establish_session, ClientSession, EnclaveError, SimilarityEnclave};
