//! Sealed (encrypted + integrity-tagged) blobs for the client → enclave
//! channel.
//!
//! **Security disclaimer**: the cipher is a xorshift64* keystream and the
//! tag is an FNV hash — a *simulation* of the attested channel's AEAD, not
//! a real one (see `DESIGN.md` §3). The point reproduced here is the
//! dataflow: the federator relays these blobs but cannot read them; only
//! the enclave, which shares the session key, can.

use serde::{Deserialize, Serialize};

use crate::attestation::measurement_hash;

/// A symmetric session key shared by one client and the enclave.
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionKey(pub(crate) u64);

impl std::fmt::Debug for SessionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("SessionKey(<redacted>)")
    }
}

/// An encrypted, integrity-tagged payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedBlob {
    nonce: u64,
    ciphertext: Vec<u8>,
    tag: u64,
}

fn keystream_byte(state: &mut u64) -> u8 {
    // xorshift64* — fast deterministic stream, NOT cryptographic.
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8
}

fn apply_stream(key: SessionKey, nonce: u64, data: &mut [u8]) {
    let mut state = key.0 ^ nonce.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15;
    if state == 0 {
        state = 1;
    }
    for b in data {
        *b ^= keystream_byte(&mut state);
    }
}

fn tag_of(key: SessionKey, nonce: u64, ciphertext: &[u8]) -> u64 {
    let mut material = Vec::with_capacity(16 + ciphertext.len());
    material.extend_from_slice(&key.0.to_le_bytes());
    material.extend_from_slice(&nonce.to_le_bytes());
    material.extend_from_slice(ciphertext);
    measurement_hash(&material)
}

impl SealedBlob {
    /// Encrypts `plaintext` under `key` with a caller-chosen unique nonce.
    pub fn seal(key: SessionKey, nonce: u64, plaintext: &[u8]) -> Self {
        let mut ciphertext = plaintext.to_vec();
        apply_stream(key, nonce, &mut ciphertext);
        let tag = tag_of(key, nonce, &ciphertext);
        SealedBlob { nonce, ciphertext, tag }
    }

    /// Decrypts and checks integrity; `None` on tag mismatch (tampering or
    /// wrong key).
    pub fn unseal(&self, key: SessionKey) -> Option<Vec<u8>> {
        if tag_of(key, self.nonce, &self.ciphertext) != self.tag {
            return None;
        }
        let mut plaintext = self.ciphertext.clone();
        apply_stream(key, self.nonce, &mut plaintext);
        Some(plaintext)
    }

    /// Size of the sealed payload in bytes (for transfer-cost accounting).
    pub fn len(&self) -> usize {
        self.ciphertext.len() + 16
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.ciphertext.is_empty()
    }
}

/// Encodes a class histogram as little-endian u64s (the plaintext the
/// clients seal).
pub fn encode_histogram(hist: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * hist.len());
    for &c in hist {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out
}

/// Inverse of [`encode_histogram`]; `None` if the length is not a multiple
/// of 8.
pub fn decode_histogram(bytes: &[u8]) -> Option<Vec<u64>> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_round_trip() {
        let key = SessionKey(0xdead_beef);
        let blob = SealedBlob::seal(key, 1, b"hello histograms");
        assert_eq!(blob.unseal(key).unwrap(), b"hello histograms");
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let key = SessionKey(1);
        let blob = SealedBlob::seal(key, 2, b"secret");
        assert_ne!(blob.ciphertext, b"secret");
    }

    #[test]
    fn wrong_key_fails_integrity() {
        let blob = SealedBlob::seal(SessionKey(1), 3, b"data");
        assert!(blob.unseal(SessionKey(2)).is_none());
    }

    #[test]
    fn tampering_is_detected() {
        let key = SessionKey(5);
        let mut blob = SealedBlob::seal(key, 4, b"data");
        blob.ciphertext[0] ^= 1;
        assert!(blob.unseal(key).is_none());
    }

    #[test]
    fn same_plaintext_different_nonce_differs() {
        let key = SessionKey(9);
        let a = SealedBlob::seal(key, 1, b"xxxx");
        let b = SealedBlob::seal(key, 2, b"xxxx");
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn histogram_codec_round_trips() {
        let hist = vec![0u64, 5, 17, u64::MAX];
        let bytes = encode_histogram(&hist);
        assert_eq!(decode_histogram(&bytes).unwrap(), hist);
        assert!(decode_histogram(&bytes[..7]).is_none());
    }

    #[test]
    fn debug_never_leaks_key() {
        let key = SessionKey(0x1234);
        assert_eq!(format!("{key:?}"), "SessionKey(<redacted>)");
    }
}
