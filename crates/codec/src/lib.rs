//! The wire codec subsystem: how model weights travel and persist.
//!
//! Aergia's central trade-off is communication vs. computation — stragglers
//! ship partial-model snapshots to fast clients, so what a model costs *on
//! the wire* directly moves the offloading break-even. This crate makes
//! that cost real: a framed, versioned binary format ([`frame`]) whose
//! sections carry the exact frozen/feature split the offload protocol
//! needs, three pluggable weight codecs, a shape-only sizing API
//! ([`sizing`]) so the discrete-event simulation can charge transfers
//! *before* any numeric work runs, and a chunked container
//! ([`checkpoint`]) for resumable on-disk run state built on the same
//! frames.
//!
//! # Codecs
//!
//! | Codec | Id | Ratio vs dense | Loss |
//! |---|---|---|---|
//! | [`dense`] (`DenseF32`) | 0 | 1× | none — bit-exact incl. NaN/±inf/−0.0 |
//! | [`quant`] (`QuantI8`) | 1 | ≈4× | ≤ `scale/2` per element (affine, per-tensor scale/zero-point) |
//! | [`topk`] (`TopKDelta`) | 2 | ≈`1000/(2·keep_permille)`× | unsent delta held in a client-side error-feedback residual |
//!
//! Every codec's encoded length is a pure function of tensor *shapes*
//! (plus the codec's own parameters), never of the values — the invariant
//! that lets a timing-only simulation share one timeline with real runs.
//! Property tests pin `encoded len == predicted len` for all three.
//!
//! # Examples
//!
//! ```
//! use aergia_codec::{dense, frame::FrameBuilder, CodecId, SectionKind};
//! use aergia_tensor::Tensor;
//!
//! let weights = vec![Tensor::ones(&[2, 3])];
//! let mut builder = FrameBuilder::new();
//! builder.push_section(SectionKind::Features, CodecId::DenseF32, weights.len(), |out| {
//!     dense::encode_payload_into(&weights, out);
//! });
//! let frame = builder.finish();
//! let section = frame.sections().unwrap().pop().unwrap();
//! let decoded = dense::decode_payload(section.payload, section.tensor_count).unwrap();
//! assert_eq!(decoded, weights);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod dense;
pub mod envelope;
pub mod frame;
pub mod io;
pub mod partial;
pub mod quant;
pub mod sizing;
mod telemetry_hooks;
pub mod topk;

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

pub use frame::{Frame, FrameBuilder, Section};
pub use sizing::ShapeSpec;

/// Errors produced while decoding frames, payloads or checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer ended before the declared contents.
    Truncated,
    /// A structural invariant of the format was violated.
    Corrupt(&'static str),
    /// The frame/checkpoint magic does not match.
    BadMagic,
    /// The format version is newer than this decoder understands.
    UnsupportedVersion(u16),
    /// A delta payload does not match the shape of its base snapshot.
    BaseMismatch(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "unexpected end of buffer"),
            CodecError::Corrupt(what) => write!(f, "corrupt encoding: {what}"),
            CodecError::BadMagic => write!(f, "bad magic bytes"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::BaseMismatch(what) => write!(f, "delta/base mismatch: {what}"),
        }
    }
}

impl Error for CodecError {}

/// On-wire codec identifier (one byte per frame section).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CodecId {
    /// Little-endian IEEE-754 `f32`, bit-exact round-trip.
    DenseF32 = 0,
    /// Per-tensor affine int8 quantization with stored scale/zero-point.
    QuantI8 = 1,
    /// Sparse top-k delta against a base snapshot both ends share.
    TopKDelta = 2,
}

impl CodecId {
    /// Decodes the one-byte wire representation.
    pub fn from_wire(byte: u8) -> Result<Self, CodecError> {
        match byte {
            0 => Ok(CodecId::DenseF32),
            1 => Ok(CodecId::QuantI8),
            2 => Ok(CodecId::TopKDelta),
            _ => Err(CodecError::Corrupt("codec id")),
        }
    }
}

/// Which slice of the model a frame section carries — exactly the
/// feature/classifier split of Aergia's offload protocol (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum SectionKind {
    /// The feature section (`layers[..split]` parameters).
    Features = 0,
    /// The classifier section (`layers[split..]` parameters).
    Classifier = 1,
}

impl SectionKind {
    /// Decodes the one-byte wire representation.
    pub fn from_wire(byte: u8) -> Result<Self, CodecError> {
        match byte {
            0 => Ok(SectionKind::Features),
            1 => Ok(SectionKind::Classifier),
            _ => Err(CodecError::Corrupt("section kind")),
        }
    }
}

/// The experiment-level codec selection (the `ExperimentConfig` knob).
///
/// This is *policy*, not wire truth: frames are self-describing (each
/// section carries its own [`CodecId`]), which is how a `TopKDelta` stream
/// can open with a dense keyframe before any shared base exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CodecConfig {
    /// Ship raw `f32` weights — lossless, bit-exact.
    #[default]
    DenseF32,
    /// Per-tensor affine int8 quantization (≈4× smaller).
    QuantI8,
    /// Round-over-round sparse deltas with client-side error feedback.
    TopKDelta {
        /// Elements kept per tensor, in permille of its element count
        /// (`1..=1000`; each tensor keeps at least one element).
        keep_permille: u16,
    },
}

impl CodecConfig {
    /// The codec id steady-state frames of this policy carry.
    pub fn steady_id(&self) -> CodecId {
        match self {
            CodecConfig::DenseF32 => CodecId::DenseF32,
            CodecConfig::QuantI8 => CodecId::QuantI8,
            CodecConfig::TopKDelta { .. } => CodecId::TopKDelta,
        }
    }

    /// The codec id of a stream's first frame, before any shared base
    /// exists: delta codecs must open with a dense keyframe.
    pub fn keyframe_id(&self) -> CodecId {
        match self {
            CodecConfig::TopKDelta { .. } => CodecId::DenseF32,
            other => other.steady_id(),
        }
    }

    /// `keep_permille` for [`CodecConfig::TopKDelta`], `1000` otherwise.
    pub fn keep_permille(&self) -> u16 {
        match self {
            CodecConfig::TopKDelta { keep_permille } => *keep_permille,
            _ => 1000,
        }
    }

    /// Short display name used in reports and benchmark entries.
    pub fn name(&self) -> &'static str {
        match self {
            CodecConfig::DenseF32 => "dense-f32",
            CodecConfig::QuantI8 => "quant-i8",
            CodecConfig::TopKDelta { .. } => "topk-delta",
        }
    }
}

impl fmt::Display for CodecConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecConfig::TopKDelta { keep_permille } => {
                write!(f, "topk-delta({keep_permille}‰)")
            }
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_ids_round_trip_the_wire_byte() {
        for id in [CodecId::DenseF32, CodecId::QuantI8, CodecId::TopKDelta] {
            assert_eq!(CodecId::from_wire(id as u8).unwrap(), id);
        }
        assert!(CodecId::from_wire(7).is_err());
    }

    #[test]
    fn section_kinds_round_trip_the_wire_byte() {
        for kind in [SectionKind::Features, SectionKind::Classifier] {
            assert_eq!(SectionKind::from_wire(kind as u8).unwrap(), kind);
        }
        assert!(SectionKind::from_wire(2).is_err());
    }

    #[test]
    fn keyframe_policy_falls_back_to_dense_only_for_deltas() {
        assert_eq!(CodecConfig::DenseF32.keyframe_id(), CodecId::DenseF32);
        assert_eq!(CodecConfig::QuantI8.keyframe_id(), CodecId::QuantI8);
        assert_eq!(CodecConfig::TopKDelta { keep_permille: 50 }.keyframe_id(), CodecId::DenseF32);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(CodecConfig::DenseF32.to_string(), "dense-f32");
        assert_eq!(CodecConfig::QuantI8.to_string(), "quant-i8");
        assert_eq!(CodecConfig::TopKDelta { keep_permille: 50 }.to_string(), "topk-delta(50‰)");
    }
}
