//! Bounds-checked little-endian primitives shared by every decoder —
//! public so higher layers (the engine's checkpoint serializer) speak the
//! same byte dialect as the codecs.

use crate::CodecError;

/// A forward-only cursor over an encoded buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Starts a cursor at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] if fewer than `n` bytes remain;
    /// so do all the typed readers below.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads one signed byte.
    pub fn i8(&mut self) -> Result<i8, CodecError> {
        Ok(self.take(1)?[0] as i8)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f32` by bit pattern (NaN payloads survive).
    pub fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Appends a little-endian `u16` (the writers never fail).
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f32` by bit pattern, so NaN payloads and −0.0 survive
/// the wire.
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

/// Appends an `f64` by bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_round_trips_every_width() {
        let mut buf = Vec::new();
        buf.push(7u8);
        buf.push((-3i8) as u8);
        put_u16(&mut buf, 512);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX - 1);
        put_f32(&mut buf, f32::from_bits(0x7fc0_dead)); // NaN with payload
        put_f64(&mut buf, -0.0);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.i8().unwrap(), -3);
        assert_eq!(r.u16().unwrap(), 512);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap().to_bits(), 0x7fc0_dead);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), Err(CodecError::Truncated));
    }
}
