//! Per-edge partial-aggregate frames for hierarchical aggregation.
//!
//! A two-tier topology folds each edge cohort's updates *at the edge*
//! into one pre-folded snapshot, then ships only that partial upstream.
//! This module is the wire format of that partial: the edge's identity,
//! how many contributions folded in, the cohort's scalar weight mass,
//! one strategy-specific auxiliary scalar (FedNova's τ-effective term),
//! and the accumulator tensors themselves.
//!
//! The payload is always [`dense`] — a partial aggregate is federator
//! infrastructure state, not client traffic, and the determinism
//! contract requires the root merge to see the edge accumulator
//! *bit-exactly* as the edge computed it (dense is the one codec with a
//! lossless round-trip, NaN/±inf/−0.0 included). Scalars travel by bit
//! pattern for the same reason.

use aergia_tensor::Tensor;

use crate::io::{put_f32, put_u16, put_u32, Reader};
use crate::sizing::ShapeSpec;
use crate::{dense, CodecError};

/// Frame magic: "APAG" (Aergia Partial AGgregate).
pub const PARTIAL_MAGIC: &[u8; 4] = b"APAG";
/// Current partial-aggregate frame version.
pub const PARTIAL_VERSION: u16 = 1;

/// One edge aggregator's pre-folded contribution to a round.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialAggregate {
    /// Which edge produced this partial (its rank in the fixed merge
    /// order).
    pub edge: u32,
    /// How many client contributions folded into the accumulator.
    pub count: u32,
    /// The cohort's scalar weight mass (Σ wᵢ for weighted means, Σ nᵢ
    /// for FedNova's first pass).
    pub weight: f32,
    /// Strategy-specific auxiliary scalar (FedNova's per-edge
    /// τ-effective partial sum; `0.0` when unused).
    pub aux: f32,
    /// The edge's accumulator snapshot.
    pub tensors: Vec<Tensor>,
}

/// Encodes a partial aggregate: magic, version, `edge`, `count`,
/// `weight`/`aux` bit patterns, tensor count, then the dense payload.
#[must_use]
pub fn encode(partial: &PartialAggregate) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame_len(&ShapeSpec::of(&partial.tensors)));
    out.extend_from_slice(PARTIAL_MAGIC);
    put_u16(&mut out, PARTIAL_VERSION);
    put_u32(&mut out, partial.edge);
    put_u32(&mut out, partial.count);
    put_f32(&mut out, partial.weight);
    put_f32(&mut out, partial.aux);
    put_u32(&mut out, partial.tensors.len() as u32);
    dense::encode_payload_into(&partial.tensors, &mut out);
    out
}

/// Decodes an [`encode`]d partial aggregate, bit-exactly.
///
/// # Errors
///
/// Returns [`CodecError::BadMagic`], [`CodecError::UnsupportedVersion`],
/// or [`CodecError::Truncated`]/[`CodecError::Corrupt`] on malformed
/// input.
pub fn decode(buf: &[u8]) -> Result<PartialAggregate, CodecError> {
    let mut r = Reader::new(buf);
    if r.take(4)? != PARTIAL_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if version != PARTIAL_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let edge = r.u32()?;
    let count = r.u32()?;
    let weight = r.f32()?;
    let aux = r.f32()?;
    let tensor_count = r.u32()? as usize;
    if tensor_count > buf.len() {
        return Err(CodecError::Corrupt("tensor count"));
    }
    let tensors = dense::decode_payload(r.take(r.remaining())?, tensor_count)?;
    Ok(PartialAggregate { edge, count, weight, aux, tensors })
}

/// Exact encoded length for a partial whose tensors have shape `spec` —
/// a pure function of shapes, like every sizing in this crate.
#[must_use]
pub fn frame_len(spec: &ShapeSpec) -> usize {
    // magic + version + edge + count + weight + aux + tensor count.
    4 + 2 + 4 + 4 + 4 + 4 + 4 + spec.dense_payload_len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partial() -> PartialAggregate {
        PartialAggregate {
            edge: 3,
            count: 17,
            weight: 42.5,
            aux: -0.0,
            tensors: vec![
                Tensor::from_vec(vec![1.0, -0.0, f32::NAN, f32::INFINITY], &[2, 2]).unwrap(),
                Tensor::ones(&[3]),
            ],
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let p = partial();
        let bytes = encode(&p);
        assert_eq!(bytes.len(), frame_len(&ShapeSpec::of(&p.tensors)));
        let d = decode(&bytes).unwrap();
        assert_eq!(d.edge, p.edge);
        assert_eq!(d.count, p.count);
        assert_eq!(d.weight.to_bits(), p.weight.to_bits());
        assert_eq!(d.aux.to_bits(), p.aux.to_bits());
        assert_eq!(d.tensors.len(), p.tensors.len());
        for (a, b) in d.tensors.iter().zip(&p.tensors) {
            assert_eq!(a.dims(), b.dims());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let bytes = encode(&partial());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode(&bad).unwrap_err(), CodecError::BadMagic);
        let mut newer = bytes.clone();
        newer[4] = 99;
        assert!(matches!(decode(&newer).unwrap_err(), CodecError::UnsupportedVersion(_)));
        for cut in [0, 5, 12, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
