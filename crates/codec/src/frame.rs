//! The framed wire format: a fixed header, a two-slot section map, and
//! codec-encoded payloads.
//!
//! Every weight transfer in the protocol — full-model broadcasts, client
//! updates, offloaded snapshots, trained feature sections — is one
//! `Frame`. The header is a **fixed** [`HEADER_LEN`] bytes whatever the
//! section count (the unused slot is zeroed), which keeps the framing
//! overhead a shape-independent constant the network accounting can fold
//! into its control envelope:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"AERG"
//!      4     2  version (little-endian, currently 1)
//!      6     1  flags (reserved, 0)
//!      7     1  section count (1 or 2)
//!      8     8  section slot 0: kind u8 · codec u8 · tensor_count u16 · payload_len u32
//!     16     8  section slot 1 (all zero when unused)
//!     24     …  payloads, in slot order
//! ```
//!
//! Sections are self-describing: each slot names its [`SectionKind`]
//! (features / classifier — the frozen/feature split Aergia's offload
//! messages need) and its [`CodecId`], so a `TopKDelta` stream can open
//! with a dense keyframe and a decoder never guesses.

use crate::io::{put_u16, put_u32, Reader};
use crate::{telemetry_hooks, CodecError, CodecId, SectionKind};

/// Frame magic bytes.
pub const MAGIC: [u8; 4] = *b"AERG";

/// Wire format version this crate encodes and decodes.
pub const VERSION: u16 = 1;

/// Fixed header size in bytes (magic + version + flags + count + two
/// 8-byte section slots), independent of how many slots are in use.
pub const HEADER_LEN: usize = 24;

/// Maximum sections a frame can carry (features + classifier).
pub const MAX_SECTIONS: usize = 2;

/// One decoded section view: its map entry plus a borrow of its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section<'a> {
    /// Which model slice the payload holds.
    pub kind: SectionKind,
    /// How the payload is encoded.
    pub codec: CodecId,
    /// Number of tensors in the payload.
    pub tensor_count: usize,
    /// The encoded tensor list.
    pub payload: &'a [u8],
}

/// An owned, encoded frame (header + payloads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    bytes: Vec<u8>,
}

impl Frame {
    /// Total encoded length — the exact byte count a network transfer of
    /// this frame is charged.
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }

    /// The raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Validates and adopts an encoded buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the header is malformed, the version is
    /// unknown, or the payload lengths disagree with the buffer.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, CodecError> {
        let frame = Frame { bytes };
        let sections = frame.sections()?; // full header + length validation
        if aergia_telemetry::enabled() {
            for s in &sections {
                telemetry_hooks::record_section_decoded(s.codec, s.kind, s.payload.len());
            }
            telemetry_hooks::record_frame_decoded(frame.wire_len());
        }
        drop(sections);
        Ok(frame)
    }

    /// Decodes the section map and returns one view per populated slot.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on any structural violation.
    pub fn sections(&self) -> Result<Vec<Section<'_>>, CodecError> {
        let mut r = Reader::new(&self.bytes);
        if r.take(4)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let _flags = r.u8()?;
        let nsections = r.u8()? as usize;
        if nsections == 0 || nsections > MAX_SECTIONS {
            return Err(CodecError::Corrupt("section count"));
        }
        let mut slots = Vec::with_capacity(nsections);
        for slot in 0..MAX_SECTIONS {
            let kind = r.u8()?;
            let codec = r.u8()?;
            let tensor_count = r.u16()? as usize;
            let payload_len = r.u32()? as usize;
            if slot < nsections {
                slots.push((
                    SectionKind::from_wire(kind)?,
                    CodecId::from_wire(codec)?,
                    tensor_count,
                    payload_len,
                ));
            } else if kind != 0 || codec != 0 || tensor_count != 0 || payload_len != 0 {
                return Err(CodecError::Corrupt("unused section slot not zeroed"));
            }
        }
        let mut sections = Vec::with_capacity(nsections);
        for (kind, codec, tensor_count, payload_len) in slots {
            let payload = r.take(payload_len)?;
            sections.push(Section { kind, codec, tensor_count, payload });
        }
        if r.remaining() != 0 {
            return Err(CodecError::Corrupt("trailing bytes after payloads"));
        }
        Ok(sections)
    }

    /// The section of the given kind, if present.
    ///
    /// # Errors
    ///
    /// Propagates structural errors from [`Frame::sections`].
    pub fn section(&self, kind: SectionKind) -> Result<Option<Section<'_>>, CodecError> {
        Ok(self.sections()?.into_iter().find(|s| s.kind == kind))
    }
}

/// Builds a frame section by section.
#[derive(Debug, Default)]
pub struct FrameBuilder {
    /// `(kind, codec, tensor_count, payload)` per pushed section.
    sections: Vec<(SectionKind, CodecId, usize, Vec<u8>)>,
}

impl FrameBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        FrameBuilder::default()
    }

    /// Appends a section whose payload is produced by `encode` writing
    /// into a fresh buffer.
    ///
    /// # Panics
    ///
    /// Panics if the frame already holds [`MAX_SECTIONS`] sections or
    /// `tensor_count` exceeds `u16::MAX`.
    pub fn push_section(
        &mut self,
        kind: SectionKind,
        codec: CodecId,
        tensor_count: usize,
        encode: impl FnOnce(&mut Vec<u8>),
    ) -> &mut Self {
        assert!(self.sections.len() < MAX_SECTIONS, "frame holds at most {MAX_SECTIONS} sections");
        assert!(tensor_count <= u16::MAX as usize, "section tensor count overflows u16");
        let mut payload = Vec::new();
        encode(&mut payload);
        self.sections.push((kind, codec, tensor_count, payload));
        self
    }

    /// Assembles the encoded frame.
    ///
    /// # Panics
    ///
    /// Panics if no section was pushed or a payload exceeds `u32::MAX`
    /// bytes.
    pub fn finish(self) -> Frame {
        assert!(!self.sections.is_empty(), "frame needs at least one section");
        let payload_total: usize = self.sections.iter().map(|(_, _, _, p)| p.len()).sum();
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload_total);
        bytes.extend_from_slice(&MAGIC);
        put_u16(&mut bytes, VERSION);
        bytes.push(0); // flags
        bytes.push(self.sections.len() as u8);
        for slot in 0..MAX_SECTIONS {
            match self.sections.get(slot) {
                Some(&(kind, codec, tensor_count, ref payload)) => {
                    assert!(payload.len() <= u32::MAX as usize, "section payload overflows u32");
                    bytes.push(kind as u8);
                    bytes.push(codec as u8);
                    put_u16(&mut bytes, tensor_count as u16);
                    put_u32(&mut bytes, payload.len() as u32);
                }
                None => bytes.extend_from_slice(&[0u8; 8]),
            }
        }
        for (_, _, _, payload) in &self.sections {
            bytes.extend_from_slice(payload);
        }
        if aergia_telemetry::enabled() {
            for (kind, codec, _, payload) in &self.sections {
                telemetry_hooks::record_section_encoded(*codec, *kind, payload.len());
            }
            telemetry_hooks::record_frame_encoded(bytes.len());
        }
        Frame { bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_section_frame() -> Frame {
        let mut b = FrameBuilder::new();
        b.push_section(SectionKind::Features, CodecId::DenseF32, 2, |out| {
            out.extend_from_slice(&[1, 2, 3]);
        });
        b.push_section(SectionKind::Classifier, CodecId::QuantI8, 1, |out| {
            out.extend_from_slice(&[9]);
        });
        b.finish()
    }

    #[test]
    fn header_is_fixed_size_for_any_section_count() {
        let mut one = FrameBuilder::new();
        one.push_section(SectionKind::Features, CodecId::DenseF32, 0, |_| {});
        assert_eq!(one.finish().wire_len(), HEADER_LEN);
        assert_eq!(two_section_frame().wire_len(), HEADER_LEN + 4);
    }

    #[test]
    fn sections_round_trip_kind_codec_count_and_payload() {
        let frame = two_section_frame();
        let sections = frame.sections().unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].kind, SectionKind::Features);
        assert_eq!(sections[0].codec, CodecId::DenseF32);
        assert_eq!(sections[0].tensor_count, 2);
        assert_eq!(sections[0].payload, &[1, 2, 3]);
        assert_eq!(sections[1].kind, SectionKind::Classifier);
        assert_eq!(sections[1].codec, CodecId::QuantI8);
        assert_eq!(sections[1].payload, &[9]);
        let feat = frame.section(SectionKind::Features).unwrap().unwrap();
        assert_eq!(feat.payload, &[1, 2, 3]);
    }

    #[test]
    fn from_bytes_validates_structure() {
        let good = two_section_frame();
        assert!(Frame::from_bytes(good.as_bytes().to_vec()).is_ok());

        let mut bad_magic = good.as_bytes().to_vec();
        bad_magic[0] = b'X';
        assert_eq!(Frame::from_bytes(bad_magic), Err(CodecError::BadMagic));

        let mut bad_version = good.as_bytes().to_vec();
        bad_version[4] = 99;
        assert_eq!(Frame::from_bytes(bad_version), Err(CodecError::UnsupportedVersion(99)));

        let truncated = good.as_bytes()[..good.wire_len() - 1].to_vec();
        assert_eq!(Frame::from_bytes(truncated), Err(CodecError::Truncated));

        let mut trailing = good.as_bytes().to_vec();
        trailing.push(0);
        assert!(Frame::from_bytes(trailing).is_err());
    }

    #[test]
    fn unused_slot_must_be_zeroed() {
        let mut one = FrameBuilder::new();
        one.push_section(SectionKind::Features, CodecId::DenseF32, 0, |_| {});
        let mut bytes = one.finish().as_bytes().to_vec();
        bytes[16] = 1; // poke the unused slot
        assert!(Frame::from_bytes(bytes).is_err());
    }
}
