//! Length-prefixed message envelopes for the networked runtime.
//!
//! `aergia-net` ships [`frame`](crate::frame)/[`checkpoint`](crate::checkpoint)
//! payloads over TCP; this module is the outermost layer of that wire
//! format — a fixed 12-byte header that names the message and bounds its
//! body, so a reader can validate *before* allocating:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"AENV"
//! 4       2     version (little-endian, currently 1)
//! 6       1     message kind (MsgKind)
//! 7       1     reserved (must be 0)
//! 8       4     body length (little-endian, ≤ MAX_BODY_LEN)
//! ```
//!
//! The header is deliberately self-contained: [`parse`] borrows from the
//! input and never allocates, and [`read_from`] checks the declared body
//! length against [`MAX_BODY_LEN`] before reserving a single byte — a
//! corrupt or hostile length prefix costs nothing. The property suite
//! pins that truncated, corrupt and oversized inputs error (never panic,
//! never over-allocate).

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

use crate::io::{put_u16, put_u32, Reader};
use crate::CodecError;

/// Envelope magic bytes.
pub const MAGIC: [u8; 4] = *b"AENV";

/// Current envelope format version.
pub const VERSION: u16 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a message body (256 MiB) — far above any frame the
/// protocol produces, far below anything that could exhaust memory.
/// Checked before allocation on the read path.
pub const MAX_BODY_LEN: usize = 256 << 20;

/// The message kinds of the coordinator⇄client protocol, as carried in
/// the envelope header. Bodies are chunked containers / frames built by
/// `aergia-net` on top of this crate's primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgKind {
    /// Client → coordinator: introduce client id, request admission.
    Hello = 1,
    /// Coordinator → client: admission plus the experiment description.
    Welcome = 2,
    /// Coordinator → client: train your own batches for a round.
    TrainOrder = 3,
    /// Client → coordinator: trained weights and losses.
    TrainReply = 4,
    /// Coordinator → client: train a straggler's frozen snapshot.
    OffloadOrder = 5,
    /// Client → coordinator: the trained feature section.
    OffloadReply = 6,
    /// Coordinator → client: the run is over, shut down.
    Finish = 7,
}

impl MsgKind {
    /// Decodes the one-byte wire representation.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] for unknown kinds.
    pub fn from_wire(byte: u8) -> Result<Self, CodecError> {
        match byte {
            1 => Ok(MsgKind::Hello),
            2 => Ok(MsgKind::Welcome),
            3 => Ok(MsgKind::TrainOrder),
            4 => Ok(MsgKind::TrainReply),
            5 => Ok(MsgKind::OffloadOrder),
            6 => Ok(MsgKind::OffloadReply),
            7 => Ok(MsgKind::Finish),
            _ => Err(CodecError::Corrupt("envelope message kind")),
        }
    }
}

/// Errors surfaced while reading an envelope from a stream.
#[derive(Debug)]
pub enum EnvelopeError {
    /// The underlying stream failed (including EOF mid-envelope).
    Io(std::io::Error),
    /// The bytes read do not form a valid envelope.
    Codec(CodecError),
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::Io(e) => write!(f, "envelope i/o error: {e}"),
            EnvelopeError::Codec(e) => write!(f, "envelope decode error: {e}"),
        }
    }
}

impl Error for EnvelopeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EnvelopeError::Io(e) => Some(e),
            EnvelopeError::Codec(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for EnvelopeError {
    fn from(e: std::io::Error) -> Self {
        EnvelopeError::Io(e)
    }
}

impl From<CodecError> for EnvelopeError {
    fn from(e: CodecError) -> Self {
        EnvelopeError::Codec(e)
    }
}

/// Validates a 12-byte header and returns `(kind, body_len)`.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(MsgKind, usize), CodecError> {
    let mut r = Reader::new(header);
    let magic = r.take(4).expect("header is 12 bytes");
    if magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16().expect("header is 12 bytes");
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let kind = MsgKind::from_wire(r.u8().expect("header is 12 bytes"))?;
    if r.u8().expect("header is 12 bytes") != 0 {
        return Err(CodecError::Corrupt("envelope reserved byte"));
    }
    let body_len = r.u32().expect("header is 12 bytes") as usize;
    if body_len > MAX_BODY_LEN {
        return Err(CodecError::Corrupt("envelope body length over cap"));
    }
    Ok((kind, body_len))
}

/// Parses one envelope from the front of `buf` without allocating.
/// Returns the kind, the borrowed body, and the total bytes consumed
/// (header + body) so callers can advance through a buffer of
/// back-to-back envelopes.
///
/// # Errors
///
/// [`CodecError::Truncated`] if `buf` ends before the header or the
/// declared body; [`CodecError::BadMagic`] /
/// [`CodecError::UnsupportedVersion`] / [`CodecError::Corrupt`] for
/// invalid headers (including a body length over [`MAX_BODY_LEN`]).
pub fn parse(buf: &[u8]) -> Result<(MsgKind, &[u8], usize), CodecError> {
    if buf.len() < HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    let header: &[u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().expect("sliced to length");
    let (kind, body_len) = parse_header(header)?;
    let total = HEADER_LEN + body_len;
    if buf.len() < total {
        return Err(CodecError::Truncated);
    }
    Ok((kind, &buf[HEADER_LEN..total], total))
}

/// Encodes an envelope into a fresh buffer.
///
/// # Panics
///
/// Panics if `body` exceeds [`MAX_BODY_LEN`] — protocol messages are
/// sized by the model's shapes, orders of magnitude below the cap, so an
/// oversized body indicates an internal bug.
pub fn encode(kind: MsgKind, body: &[u8]) -> Vec<u8> {
    assert!(body.len() <= MAX_BODY_LEN, "envelope body exceeds MAX_BODY_LEN");
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, VERSION);
    out.push(kind as u8);
    out.push(0);
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(body);
    out
}

/// Writes one envelope to `w` (a single buffered write of header +
/// body).
///
/// # Errors
///
/// Propagates the sink's i/o errors.
///
/// # Panics
///
/// See [`encode`].
pub fn write_to<W: Write>(w: &mut W, kind: MsgKind, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode(kind, body))
}

/// Reads one complete envelope from `r`, validating the header —
/// including the [`MAX_BODY_LEN`] cap — before allocating the body.
///
/// # Errors
///
/// [`EnvelopeError::Io`] on stream failure or EOF mid-envelope;
/// [`EnvelopeError::Codec`] for invalid headers.
pub fn read_from<R: Read>(r: &mut R) -> Result<(MsgKind, Vec<u8>), EnvelopeError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (kind, body_len) = parse_header(&header)?;
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    Ok((kind, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_round_trip_through_parse_and_read() {
        let body = vec![7u8; 33];
        let bytes = encode(MsgKind::TrainReply, &body);
        assert_eq!(bytes.len(), HEADER_LEN + body.len());

        let (kind, parsed, consumed) = parse(&bytes).unwrap();
        assert_eq!(kind, MsgKind::TrainReply);
        assert_eq!(parsed, &body[..]);
        assert_eq!(consumed, bytes.len());

        let (kind, read) = read_from(&mut &bytes[..]).unwrap();
        assert_eq!(kind, MsgKind::TrainReply);
        assert_eq!(read, body);
    }

    #[test]
    fn back_to_back_envelopes_parse_sequentially() {
        let mut stream = encode(MsgKind::Hello, &[1]);
        stream.extend_from_slice(&encode(MsgKind::Finish, &[]));
        let (kind, _, used) = parse(&stream).unwrap();
        assert_eq!(kind, MsgKind::Hello);
        let (kind, body, _) = parse(&stream[used..]).unwrap();
        assert_eq!(kind, MsgKind::Finish);
        assert!(body.is_empty());
    }

    #[test]
    fn truncation_and_corruption_error_cleanly() {
        let bytes = encode(MsgKind::Welcome, &[9u8; 16]);
        for cut in 0..bytes.len() {
            assert_eq!(parse(&bytes[..cut]).unwrap_err(), CodecError::Truncated, "cut {cut}");
            assert!(read_from(&mut &bytes[..cut]).is_err(), "cut {cut}");
        }

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(parse(&bad_magic).unwrap_err(), CodecError::BadMagic);

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xff;
        assert!(matches!(parse(&bad_version).unwrap_err(), CodecError::UnsupportedVersion(_)));

        let mut bad_kind = bytes.clone();
        bad_kind[6] = 0;
        assert!(matches!(parse(&bad_kind).unwrap_err(), CodecError::Corrupt(_)));

        let mut bad_reserved = bytes;
        bad_reserved[7] = 1;
        assert!(matches!(parse(&bad_reserved).unwrap_err(), CodecError::Corrupt(_)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = encode(MsgKind::TrainOrder, &[]);
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(parse(&bytes).unwrap_err(), CodecError::Corrupt(_)));
        // read_from must reject from the header alone — no body needed.
        assert!(matches!(
            read_from(&mut &bytes[..HEADER_LEN]).unwrap_err(),
            EnvelopeError::Codec(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn kinds_round_trip_the_wire_byte() {
        for kind in [
            MsgKind::Hello,
            MsgKind::Welcome,
            MsgKind::TrainOrder,
            MsgKind::TrainReply,
            MsgKind::OffloadOrder,
            MsgKind::OffloadReply,
            MsgKind::Finish,
        ] {
            assert_eq!(MsgKind::from_wire(kind as u8).unwrap(), kind);
        }
        assert!(MsgKind::from_wire(0).is_err());
        assert!(MsgKind::from_wire(8).is_err());
    }
}
