//! `QuantI8`: per-tensor affine int8 quantization with stored
//! scale/zero-point.
//!
//! Payload layout, per tensor: `u32 rank`, `u32 dims[rank]`, `f32 scale`,
//! `f32 zero_point`, then `numel` signed bytes — a fixed ≈4× reduction
//! whose length depends only on the shape.
//!
//! Finite values quantize onto the 253-code grid `[-126, 126]`:
//! `q = round((v − zero_point) / scale) − 126`, with `scale =
//! (max − min) / 252` and `zero_point = min` over the tensor's finite
//! values, so dequantization `v′ = zero_point + (q + 126)·scale` is off by
//! at most [`max_abs_error`]`(scale)` per element. The three remaining
//! codes are reserved so non-finite values survive exactly: `-128 → NaN`,
//! `-127 → −∞`, `127 → +∞`. A constant tensor stores `scale = 0` and
//! round-trips exactly.

use aergia_tensor::Tensor;

use crate::dense::decode_shape;
use crate::io::{put_f32, put_u32, Reader};
use crate::sizing::ShapeSpec;
use crate::CodecError;

/// Reserved code for NaN.
const CODE_NAN: i8 = -128;
/// Reserved code for −∞.
const CODE_NEG_INF: i8 = -127;
/// Reserved code for +∞.
const CODE_POS_INF: i8 = 127;
/// Finite values map onto `[-GRID, GRID]`.
const GRID: i32 = 126;
/// Number of finite quantization steps (`2·GRID`).
const STEPS: f32 = (2 * GRID) as f32;

/// The stated per-element error bound for finite values of a tensor
/// quantized with `scale`: half a step, padded for the `f32` arithmetic
/// of the quantize/dequantize pair.
pub fn max_abs_error(scale: f32) -> f32 {
    scale * 0.5001
}

/// Appends the quantized encoding of `tensors` to `out`.
pub fn encode_payload_into(tensors: &[Tensor], out: &mut Vec<u8>) {
    if aergia_telemetry::enabled() {
        crate::telemetry_hooks::record_dense_equiv(
            crate::CodecId::QuantI8,
            ShapeSpec::of(tensors).dense_payload_len(),
        );
    }
    out.reserve(ShapeSpec::of(tensors).quant_payload_len());
    for t in tensors {
        put_u32(out, t.dims().len() as u32);
        for &d in t.dims() {
            put_u32(out, d as u32);
        }
        let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in t.data() {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
            }
        }
        // No finite values at all: zero_point 0, scale 0. The range is
        // spanned in f64: two finite f32 extremes can be 2*f32::MAX apart,
        // and an f32 subtraction would overflow scale to infinity.
        let zero_point = if min.is_finite() { min } else { 0.0 };
        let scale = if min.is_finite() && max > min {
            ((f64::from(max) - f64::from(min)) / f64::from(STEPS)) as f32
        } else {
            0.0
        };
        put_f32(out, scale);
        put_f32(out, zero_point);
        for &v in t.data() {
            out.push(quantize(v, scale, zero_point) as u8);
        }
    }
}

fn quantize(v: f32, scale: f32, zero_point: f32) -> i8 {
    if v.is_nan() {
        return CODE_NAN;
    }
    if v == f32::INFINITY {
        return CODE_POS_INF;
    }
    if v == f32::NEG_INFINITY {
        return CODE_NEG_INF;
    }
    if scale == 0.0 {
        return -GRID as i8;
    }
    // f64 keeps the intermediate finite even when the tensor spans most of
    // the f32 range (the `as i32` cast saturates, and the clamp bounds it).
    let q = ((f64::from(v) - f64::from(zero_point)) / f64::from(scale)).round() as i32 - GRID;
    q.clamp(-GRID, GRID) as i8
}

fn dequantize(q: i8, scale: f32, zero_point: f32) -> f32 {
    match q {
        CODE_NAN => f32::NAN,
        CODE_NEG_INF => f32::NEG_INFINITY,
        CODE_POS_INF => f32::INFINITY,
        // f64 again: `(q+126)*scale` alone can exceed f32::MAX even when
        // the final value is a representable f32.
        q => (f64::from(zero_point) + f64::from(i32::from(q) + GRID) * f64::from(scale)) as f32,
    }
}

/// Decodes `tensor_count` tensors from a quantized payload.
///
/// # Errors
///
/// Returns [`CodecError`] on truncation or implausible shape metadata.
pub fn decode_payload(payload: &[u8], tensor_count: usize) -> Result<Vec<Tensor>, CodecError> {
    let mut r = Reader::new(payload);
    // Cap the pre-allocation: a corrupt count must not allocate blindly.
    let mut out = Vec::with_capacity(tensor_count.min(payload.len() / 4 + 1));
    for _ in 0..tensor_count {
        let (dims, numel) = decode_shape(&mut r)?;
        let scale = r.f32()?;
        let zero_point = r.f32()?;
        // Capped like the dense decoder: corrupt dims fail fast.
        let mut data = Vec::with_capacity(numel.min(r.remaining() + 1));
        for _ in 0..numel {
            data.push(dequantize(r.i8()?, scale, zero_point));
        }
        out.push(Tensor::from_vec(data, &dims).map_err(|_| CodecError::Corrupt("shape"))?);
    }
    if r.remaining() != 0 {
        return Err(CodecError::Corrupt("trailing bytes in quant payload"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(t: &Tensor) -> Tensor {
        let mut payload = Vec::new();
        encode_payload_into(std::slice::from_ref(t), &mut payload);
        assert_eq!(payload.len(), ShapeSpec::of(std::slice::from_ref(t)).quant_payload_len());
        decode_payload(&payload, 1).unwrap().pop().unwrap()
    }

    #[test]
    fn finite_values_stay_within_the_stated_bound() {
        let vals = vec![-3.0, -1.25, 0.0, 0.6, 2.0, 5.0];
        let t = Tensor::from_vec(vals.clone(), &[6]).unwrap();
        let scale = (5.0 - (-3.0)) / STEPS;
        let back = round_trip(&t);
        for (v, v2) in vals.iter().zip(back.data()) {
            assert!((v - v2).abs() <= max_abs_error(scale), "{v} -> {v2}");
        }
    }

    #[test]
    fn non_finite_values_round_trip_exactly() {
        let t = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0, -1.0], &[5])
            .unwrap();
        let back = round_trip(&t);
        assert!(back.data()[0].is_nan());
        assert_eq!(back.data()[1], f32::INFINITY);
        assert_eq!(back.data()[2], f32::NEG_INFINITY);
        assert!((back.data()[3] - 1.0).abs() <= max_abs_error(2.0 / STEPS));
    }

    #[test]
    fn constant_and_empty_range_tensors_are_exact() {
        let t = Tensor::full(&[4], -2.5);
        assert_eq!(round_trip(&t).data(), t.data());
        // All non-finite: nothing finite to span a range with.
        let t = Tensor::from_vec(vec![f32::NAN, f32::INFINITY], &[2]).unwrap();
        let back = round_trip(&t);
        assert!(back.data()[0].is_nan());
        assert_eq!(back.data()[1], f32::INFINITY);
    }

    #[test]
    fn range_extremes_map_to_grid_ends() {
        let t = Tensor::from_vec(vec![-1.0, 1.0], &[2]).unwrap();
        let back = round_trip(&t);
        // The minimum is the zero-point, so it reproduces exactly; the
        // maximum lands within the stated bound of the top grid code
        // (`scale` itself is rounded to f32, so 252·scale ≠ range exactly).
        let bound = max_abs_error(2.0 / STEPS);
        assert_eq!(back.data()[0], -1.0);
        assert!((back.data()[1] - 1.0).abs() <= bound);
    }

    #[test]
    fn huge_finite_ranges_stay_finite_and_bounded() {
        // Extremes nearly 2*f32::MAX apart: an f32 range computation would
        // overflow scale to infinity and dequantize everything to NaN.
        let vals = vec![-2.0e38, 2.0e38, 0.0, 1.0e38];
        let t = Tensor::from_vec(vals.clone(), &[4]).unwrap();
        let back = round_trip(&t);
        let scale = ((2.0e38f64 - (-2.0e38f64)) / f64::from(STEPS)) as f32;
        for (v, v2) in vals.iter().zip(back.data()) {
            assert!(v2.is_finite(), "{v} dequantized to {v2}");
            assert!((v - v2).abs() <= max_abs_error(scale), "{v} -> {v2}");
        }
    }

    #[test]
    fn payload_is_about_a_quarter_of_dense() {
        let t = vec![Tensor::zeros(&[64, 64])];
        let spec = ShapeSpec::of(&t);
        let ratio = spec.dense_payload_len() as f64 / spec.quant_payload_len() as f64;
        assert!(ratio > 3.9, "quant ratio only {ratio:.2}x");
    }
}
