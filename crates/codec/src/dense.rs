//! `DenseF32`: raw little-endian `f32` tensors, bit-exact round-trip.
//!
//! Payload layout, per tensor: `u32 rank`, `u32 dims[rank]`, then `numel`
//! little-endian `f32` bit patterns. Values are moved by bit pattern, so
//! NaN payloads, ±infinity and −0.0 survive the wire unchanged — the
//! property that lets a dense-codec run stay byte-identical to one that
//! never serialized at all.

use aergia_tensor::Tensor;

use crate::io::{put_f32, put_u32, Reader};
use crate::sizing::{self, ShapeSpec};
use crate::CodecError;

/// Upper bound on rank/element counts honoured by the decoder; prevents
/// pathological allocations from corrupt buffers.
const SANITY_LIMIT: u64 = 1 << 31;
const MAX_RANK: u32 = 16;

/// Appends the dense encoding of `tensors` to `out`.
pub fn encode_payload_into(tensors: &[Tensor], out: &mut Vec<u8>) {
    if aergia_telemetry::enabled() {
        crate::telemetry_hooks::record_dense_equiv(
            crate::CodecId::DenseF32,
            sizing::ShapeSpec::of(tensors).dense_payload_len(),
        );
    }
    out.reserve(sizing::ShapeSpec::of(tensors).dense_payload_len());
    for t in tensors {
        put_u32(out, t.dims().len() as u32);
        for &d in t.dims() {
            put_u32(out, d as u32);
        }
        for &v in t.data() {
            put_f32(out, v);
        }
    }
}

/// Decodes `tensor_count` tensors from a dense payload.
///
/// # Errors
///
/// Returns [`CodecError`] on truncation or implausible shape metadata.
pub fn decode_payload(payload: &[u8], tensor_count: usize) -> Result<Vec<Tensor>, CodecError> {
    let mut r = Reader::new(payload);
    // Cap the pre-allocation: a corrupt count must not allocate blindly.
    let mut out = Vec::with_capacity(tensor_count.min(payload.len() / 4 + 1));
    for _ in 0..tensor_count {
        let (dims, numel) = decode_shape(&mut r)?;
        // Cap against the bytes actually present: corrupt dims must fail
        // with Truncated, not attempt a multi-GiB allocation first.
        let mut data = Vec::with_capacity(numel.min(r.remaining() / 4 + 1));
        for _ in 0..numel {
            data.push(r.f32()?);
        }
        out.push(Tensor::from_vec(data, &dims).map_err(|_| CodecError::Corrupt("shape"))?);
    }
    if r.remaining() != 0 {
        return Err(CodecError::Corrupt("trailing bytes in dense payload"));
    }
    Ok(out)
}

/// Reads the shared `rank + dims` prefix every payload format uses.
pub(crate) fn decode_shape(r: &mut Reader<'_>) -> Result<(Vec<usize>, usize), CodecError> {
    let rank = r.u32()?;
    if rank > MAX_RANK {
        return Err(CodecError::Corrupt("rank"));
    }
    let mut dims = Vec::with_capacity(rank as usize);
    let mut numel: u64 = 1;
    for _ in 0..rank {
        let d = u64::from(r.u32()?);
        numel = numel.saturating_mul(d.max(1));
        if numel > SANITY_LIMIT {
            return Err(CodecError::Corrupt("element count"));
        }
        dims.push(d as usize);
    }
    let numel: usize = dims.iter().product();
    Ok((dims, numel))
}

/// Exact dense payload length for `tensors` (shape-only; see
/// [`ShapeSpec::dense_payload_len`]).
pub fn payload_len(tensors: &[Tensor]) -> usize {
    ShapeSpec::of(tensors).dense_payload_len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bit_exact_including_specials() {
        let specials = vec![
            0.0,
            -0.0,
            1.5,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::from_bits(0x7fc0_1234), // NaN with payload
            f32::MIN_POSITIVE / 2.0,     // subnormal
        ];
        let tensors =
            vec![Tensor::from_vec(specials, &[2, 4]).unwrap(), Tensor::ones(&[1, 2, 1, 3])];
        let mut payload = Vec::new();
        encode_payload_into(&tensors, &mut payload);
        assert_eq!(payload.len(), payload_len(&tensors));
        let decoded = decode_payload(&payload, tensors.len()).unwrap();
        for (a, b) in tensors.iter().zip(&decoded) {
            assert_eq!(a.dims(), b.dims());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn truncation_and_corruption_are_rejected() {
        let tensors = vec![Tensor::ones(&[3])];
        let mut payload = Vec::new();
        encode_payload_into(&tensors, &mut payload);
        for cut in [0, 3, payload.len() - 1] {
            assert!(decode_payload(&payload[..cut], 1).is_err(), "cut at {cut}");
        }
        // Absurd rank.
        let mut bad = Vec::new();
        put_u32(&mut bad, 99);
        assert_eq!(decode_payload(&bad, 1), Err(CodecError::Corrupt("rank")));
        // Huge declared dims in a tiny buffer: must fail fast (Truncated),
        // not allocate gigabytes up front.
        let mut bomb = Vec::new();
        put_u32(&mut bomb, 1);
        put_u32(&mut bomb, 0x7fff_ffff);
        assert_eq!(decode_payload(&bomb, 1), Err(CodecError::Truncated));
        // Declared tensor count smaller than the payload.
        assert!(decode_payload(&payload, 0).is_err());
    }
}
