//! Shape-only sizing: the exact encoded length of any payload or frame,
//! computed without touching a single value.
//!
//! The discrete-event engine walks a round's timeline *before* any
//! numeric training runs (and timing-only runs never train at all), so
//! transfer costs must be computable from shapes alone. Every codec in
//! this crate honours that: [`ShapeSpec`] is the one sizing authority,
//! and property tests pin `encode(...).len() == predicted` for all of
//! them.

use aergia_tensor::Tensor;

use crate::topk::keep_count;
use crate::{frame, CodecId};

/// The shapes of a tensor list — everything sizing needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeSpec {
    dims: Vec<Vec<usize>>,
}

impl ShapeSpec {
    /// Captures the shapes of `tensors`.
    pub fn of(tensors: &[Tensor]) -> Self {
        ShapeSpec { dims: tensors.iter().map(|t| t.dims().to_vec()).collect() }
    }

    /// Builds a spec from raw dimension lists.
    pub fn from_dims(dims: Vec<Vec<usize>>) -> Self {
        ShapeSpec { dims }
    }

    /// Number of tensors described.
    pub fn tensor_count(&self) -> usize {
        self.dims.len()
    }

    /// Splits the spec into the first `n` tensors and the rest — the
    /// feature/classifier partition of a full-model snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the tensor count.
    pub fn split_at(&self, n: usize) -> (ShapeSpec, ShapeSpec) {
        let (a, b) = self.dims.split_at(n);
        (ShapeSpec { dims: a.to_vec() }, ShapeSpec { dims: b.to_vec() })
    }

    /// Total scalar elements across all tensors.
    pub fn total_elements(&self) -> usize {
        self.dims.iter().map(|d| d.iter().product::<usize>()).sum()
    }

    fn shape_prefix_len(dims: &[usize]) -> usize {
        4 + 4 * dims.len() // u32 rank + u32 per dim
    }

    /// Length of the [`crate::dense`] payload: per tensor, the shape
    /// prefix plus 4 bytes per element.
    pub fn dense_payload_len(&self) -> usize {
        self.dims.iter().map(|d| Self::shape_prefix_len(d) + 4 * d.iter().product::<usize>()).sum()
    }

    /// Length of the [`crate::quant`] payload: per tensor, the shape
    /// prefix, 8 bytes of scale/zero-point and 1 byte per element.
    pub fn quant_payload_len(&self) -> usize {
        self.dims.iter().map(|d| Self::shape_prefix_len(d) + 8 + d.iter().product::<usize>()).sum()
    }

    /// Length of the [`crate::topk`] payload: per tensor, the shape
    /// prefix, a count and 8 bytes per kept element.
    pub fn topk_payload_len(&self, keep_permille: u16) -> usize {
        self.dims
            .iter()
            .map(|d| {
                let numel = d.iter().product::<usize>();
                Self::shape_prefix_len(d) + 4 + 8 * keep_count(numel, keep_permille)
            })
            .sum()
    }

    /// Payload length under `codec` (`keep_permille` only matters for
    /// [`CodecId::TopKDelta`]).
    pub fn payload_len(&self, codec: CodecId, keep_permille: u16) -> usize {
        match codec {
            CodecId::DenseF32 => self.dense_payload_len(),
            CodecId::QuantI8 => self.quant_payload_len(),
            CodecId::TopKDelta => self.topk_payload_len(keep_permille),
        }
    }
}

/// Total wire length of a frame carrying the given sections, all encoded
/// with `codec`.
pub fn frame_len(codec: CodecId, keep_permille: u16, sections: &[&ShapeSpec]) -> usize {
    frame::HEADER_LEN + sections.iter().map(|s| s.payload_len(codec, keep_permille)).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dense, quant, topk};

    fn tensors() -> Vec<Tensor> {
        vec![Tensor::ones(&[3, 4]), Tensor::ones(&[7]), Tensor::ones(&[2, 2, 2])]
    }

    #[test]
    fn predicted_lengths_match_actual_encodings() {
        let ts = tensors();
        let spec = ShapeSpec::of(&ts);

        let mut d = Vec::new();
        dense::encode_payload_into(&ts, &mut d);
        assert_eq!(d.len(), spec.dense_payload_len());

        let mut q = Vec::new();
        quant::encode_payload_into(&ts, &mut q);
        assert_eq!(q.len(), spec.quant_payload_len());

        let base: Vec<Tensor> = ts.iter().map(|t| Tensor::zeros(t.dims())).collect();
        for permille in [1, 50, 500, 1000] {
            let mut s = Vec::new();
            topk::encode_payload_into(&ts, &base, permille, None, &mut s);
            assert_eq!(s.len(), spec.topk_payload_len(permille), "permille {permille}");
        }
    }

    #[test]
    fn split_partitions_the_tensor_list() {
        let spec = ShapeSpec::of(&tensors());
        let (a, b) = spec.split_at(1);
        assert_eq!(a.tensor_count(), 1);
        assert_eq!(b.tensor_count(), 2);
        assert_eq!(
            a.dense_payload_len() + b.dense_payload_len(),
            spec.dense_payload_len(),
            "dense length is additive over a split"
        );
    }

    #[test]
    fn frame_len_adds_the_fixed_header() {
        let spec = ShapeSpec::of(&tensors());
        let (feat, clf) = spec.split_at(2);
        assert_eq!(
            frame_len(CodecId::DenseF32, 1000, &[&feat, &clf]),
            frame::HEADER_LEN + spec.dense_payload_len()
        );
    }

    #[test]
    fn total_elements_counts_scalars() {
        assert_eq!(ShapeSpec::of(&tensors()).total_elements(), 12 + 7 + 8);
    }
}
