//! Telemetry counters for the wire format: frames and bytes in/out per
//! `(codec, section kind)`, plus the dense-equivalent byte counts that
//! make per-codec compression ratios derivable from a snapshot
//! (`ratio = dense_equiv_bytes / encoded_bytes`).
//!
//! Everything here is a [`LazyCounter`] — label strings are baked into
//! `static` names so the encode/decode hot paths never allocate, and
//! counters commute so calls from transport worker threads keep
//! snapshots deterministic. When telemetry is disabled each hook is a
//! single load-and-branch.

use aergia_telemetry::LazyCounter;

use crate::{CodecId, SectionKind};

/// `(codec, kind)`-indexed counter table, codec-major.
type PerSection = [[LazyCounter; 2]; 3];

static ENCODED_BYTES: PerSection = [
    [
        LazyCounter::new("aergia_codec_encoded_bytes_total{codec=\"dense_f32\",kind=\"features\"}"),
        LazyCounter::new(
            "aergia_codec_encoded_bytes_total{codec=\"dense_f32\",kind=\"classifier\"}",
        ),
    ],
    [
        LazyCounter::new("aergia_codec_encoded_bytes_total{codec=\"quant_i8\",kind=\"features\"}"),
        LazyCounter::new(
            "aergia_codec_encoded_bytes_total{codec=\"quant_i8\",kind=\"classifier\"}",
        ),
    ],
    [
        LazyCounter::new(
            "aergia_codec_encoded_bytes_total{codec=\"topk_delta\",kind=\"features\"}",
        ),
        LazyCounter::new(
            "aergia_codec_encoded_bytes_total{codec=\"topk_delta\",kind=\"classifier\"}",
        ),
    ],
];

static DECODED_BYTES: PerSection = [
    [
        LazyCounter::new("aergia_codec_decoded_bytes_total{codec=\"dense_f32\",kind=\"features\"}"),
        LazyCounter::new(
            "aergia_codec_decoded_bytes_total{codec=\"dense_f32\",kind=\"classifier\"}",
        ),
    ],
    [
        LazyCounter::new("aergia_codec_decoded_bytes_total{codec=\"quant_i8\",kind=\"features\"}"),
        LazyCounter::new(
            "aergia_codec_decoded_bytes_total{codec=\"quant_i8\",kind=\"classifier\"}",
        ),
    ],
    [
        LazyCounter::new(
            "aergia_codec_decoded_bytes_total{codec=\"topk_delta\",kind=\"features\"}",
        ),
        LazyCounter::new(
            "aergia_codec_decoded_bytes_total{codec=\"topk_delta\",kind=\"classifier\"}",
        ),
    ],
];

/// Dense-`f32`-equivalent bytes of every payload an encoder produced,
/// by codec: the compression-ratio denominator's counterpart.
static DENSE_EQUIV_BYTES: [LazyCounter; 3] = [
    LazyCounter::new("aergia_codec_dense_equiv_bytes_total{codec=\"dense_f32\"}"),
    LazyCounter::new("aergia_codec_dense_equiv_bytes_total{codec=\"quant_i8\"}"),
    LazyCounter::new("aergia_codec_dense_equiv_bytes_total{codec=\"topk_delta\"}"),
];

static FRAMES_ENCODED: LazyCounter = LazyCounter::new("aergia_codec_frames_encoded_total");
static FRAMES_DECODED: LazyCounter = LazyCounter::new("aergia_codec_frames_decoded_total");
static FRAME_BYTES_ENCODED: LazyCounter =
    LazyCounter::new("aergia_codec_frame_bytes_encoded_total");
static FRAME_BYTES_DECODED: LazyCounter =
    LazyCounter::new("aergia_codec_frame_bytes_decoded_total");

fn section_cell(
    table: &'static PerSection,
    codec: CodecId,
    kind: SectionKind,
) -> &'static LazyCounter {
    &table[codec as usize][kind as usize]
}

/// Records one encoded section payload.
pub(crate) fn record_section_encoded(codec: CodecId, kind: SectionKind, payload_bytes: usize) {
    section_cell(&ENCODED_BYTES, codec, kind).add(payload_bytes as u64);
}

/// Records one decoded (received and validated) section payload.
pub(crate) fn record_section_decoded(codec: CodecId, kind: SectionKind, payload_bytes: usize) {
    section_cell(&DECODED_BYTES, codec, kind).add(payload_bytes as u64);
}

/// Records one assembled frame and its total wire length.
pub(crate) fn record_frame_encoded(wire_len: usize) {
    FRAMES_ENCODED.add(1);
    FRAME_BYTES_ENCODED.add(wire_len as u64);
}

/// Records one adopted (received and validated) frame.
pub(crate) fn record_frame_decoded(wire_len: usize) {
    FRAMES_DECODED.add(1);
    FRAME_BYTES_DECODED.add(wire_len as u64);
}

/// Records the dense-equivalent size of a payload an encoder produced.
pub(crate) fn record_dense_equiv(codec: CodecId, dense_bytes: usize) {
    DENSE_EQUIV_BYTES[codec as usize].add(dense_bytes as u64);
}
