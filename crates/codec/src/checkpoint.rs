//! The chunked checkpoint container: tagged binary records for resumable
//! run state.
//!
//! A checkpoint is a flat sequence of `(tag, length, bytes)` chunks
//! behind a magic/version header. Weight-bearing chunks hold whole
//! [`crate::Frame`]s (the same encoding that travels the wire), while
//! small state chunks (RNG states, cursors, round records) use plain
//! little-endian fields. Unknown tags are skipped on read, so the format
//! can grow without breaking old checkpoints:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"AERGCKPT"
//!      8     2  version (little-endian, currently 1)
//!     10     2  reserved (0)
//!     12     4  chunk count
//!     16     …  chunks: tag [u8;4] · len u32 · bytes
//! ```

use crate::io::{put_u16, put_u32, Reader};
use crate::{CodecError, Frame};

/// Checkpoint magic bytes.
pub const MAGIC: [u8; 8] = *b"AERGCKPT";

/// Checkpoint container version.
pub const VERSION: u16 = 1;

/// Serializes chunks into one checkpoint buffer.
#[derive(Debug, Default)]
pub struct ChunkWriter {
    chunks: Vec<([u8; 4], Vec<u8>)>,
}

impl ChunkWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ChunkWriter::default()
    }

    /// Appends a chunk with the given 4-byte tag.
    pub fn chunk(&mut self, tag: [u8; 4], body: Vec<u8>) -> &mut Self {
        self.chunks.push((tag, body));
        self
    }

    /// Appends a chunk holding one encoded [`Frame`].
    pub fn frame_chunk(&mut self, tag: [u8; 4], frame: &Frame) -> &mut Self {
        self.chunk(tag, frame.as_bytes().to_vec())
    }

    /// Assembles the checkpoint buffer.
    ///
    /// # Panics
    ///
    /// Panics if a chunk body exceeds `u32::MAX` bytes.
    pub fn finish(self) -> Vec<u8> {
        let total: usize = self.chunks.iter().map(|(_, b)| 8 + b.len()).sum();
        let mut out = Vec::with_capacity(16 + total);
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, VERSION);
        put_u16(&mut out, 0);
        put_u32(&mut out, self.chunks.len() as u32);
        for (tag, body) in &self.chunks {
            assert!(body.len() <= u32::MAX as usize, "chunk body overflows u32");
            out.extend_from_slice(tag);
            put_u32(&mut out, body.len() as u32);
            out.extend_from_slice(body);
        }
        out
    }
}

/// Parses a checkpoint buffer into its chunks.
#[derive(Debug)]
pub struct ChunkReader<'a> {
    chunks: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> ChunkReader<'a> {
    /// Validates the header and indexes every chunk.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on bad magic, unknown version or truncation.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        if r.take(8)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let _reserved = r.u16()?;
        let count = r.u32()? as usize;
        let mut chunks = Vec::with_capacity(count);
        for _ in 0..count {
            let tag_bytes = r.take(4)?;
            let tag = [tag_bytes[0], tag_bytes[1], tag_bytes[2], tag_bytes[3]];
            let len = r.u32()? as usize;
            chunks.push((tag, r.take(len)?));
        }
        if r.remaining() != 0 {
            return Err(CodecError::Corrupt("trailing bytes after chunks"));
        }
        Ok(ChunkReader { chunks })
    }

    /// The first chunk with the given tag, if present.
    pub fn get(&self, tag: [u8; 4]) -> Option<&'a [u8]> {
        self.chunks.iter().find(|(t, _)| *t == tag).map(|(_, b)| *b)
    }

    /// Every chunk with the given tag, in order.
    pub fn get_all(&self, tag: [u8; 4]) -> Vec<&'a [u8]> {
        self.chunks.iter().filter(|(t, _)| *t == tag).map(|(_, b)| *b).collect()
    }

    /// The first chunk with the given tag, decoded as a [`Frame`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] if the tag is absent and any frame
    /// decoding error otherwise.
    pub fn frame(&self, tag: [u8; 4]) -> Result<Frame, CodecError> {
        let body = self.get(tag).ok_or(CodecError::Corrupt("missing required chunk"))?;
        Frame::from_bytes(body.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dense, CodecId, FrameBuilder, SectionKind};
    use aergia_tensor::Tensor;

    #[test]
    fn chunks_round_trip_in_order() {
        let mut w = ChunkWriter::new();
        w.chunk(*b"META", vec![1, 2, 3]);
        w.chunk(*b"BTCH", vec![4]);
        w.chunk(*b"BTCH", vec![5, 6]);
        let bytes = w.finish();
        let r = ChunkReader::parse(&bytes).unwrap();
        assert_eq!(r.get(*b"META"), Some(&[1u8, 2, 3][..]));
        assert_eq!(r.get_all(*b"BTCH"), vec![&[4u8][..], &[5u8, 6][..]]);
        assert_eq!(r.get(*b"NONE"), None);
    }

    #[test]
    fn frames_embed_and_decode() {
        let weights = vec![Tensor::full(&[2, 2], 0.25)];
        let mut b = FrameBuilder::new();
        b.push_section(SectionKind::Features, CodecId::DenseF32, weights.len(), |out| {
            dense::encode_payload_into(&weights, out);
        });
        let mut w = ChunkWriter::new();
        w.frame_chunk(*b"GLOB", &b.finish());
        let bytes = w.finish();
        let frame = ChunkReader::parse(&bytes).unwrap().frame(*b"GLOB").unwrap();
        let section = frame.sections().unwrap()[0];
        assert_eq!(dense::decode_payload(section.payload, 1).unwrap(), weights);
    }

    #[test]
    fn malformed_containers_are_rejected() {
        assert_eq!(ChunkReader::parse(b"not a checkpoint").unwrap_err(), CodecError::BadMagic);
        let mut bytes = ChunkWriter::new().finish();
        bytes[8] = 42;
        assert_eq!(ChunkReader::parse(&bytes).unwrap_err(), CodecError::UnsupportedVersion(42));
        let mut w = ChunkWriter::new();
        w.chunk(*b"META", vec![0; 16]);
        let bytes = w.finish();
        assert_eq!(
            ChunkReader::parse(&bytes[..bytes.len() - 4]).unwrap_err(),
            CodecError::Truncated
        );
    }
}
