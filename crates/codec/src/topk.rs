//! `TopKDelta`: sparse round-over-round weight deltas with client-side
//! error feedback.
//!
//! The sender and receiver share a *base* snapshot (the last
//! reconstruction both ends agree on). Each frame carries, per tensor,
//! only the `k` largest-magnitude entries of
//! `delta = current − base + residual`, where `residual` is the sender's
//! accumulated unsent mass (error feedback: what is not transmitted now
//! is retried next round instead of being lost). The receiver
//! reconstructs `base + sent`.
//!
//! Payload layout, per tensor: `u32 rank`, `u32 dims[rank]`, `u32 k`,
//! then `k` pairs of `u32 index`, `f32 value`, indices strictly
//! ascending. `k` is fixed by shape and [`keep_count`] — never by the
//! values — so encoded lengths stay timing-simulation friendly.
//!
//! Selection is deterministic: entries are ranked by `|delta|` under
//! `f32::total_cmp` (NaNs rank highest, so a diverged run keeps shipping
//! its poison honestly) with ties broken toward the lower index.

use aergia_tensor::Tensor;

use crate::dense::decode_shape;
use crate::io::{put_f32, put_u32, Reader};
use crate::CodecError;

#[cfg(test)]
use crate::sizing::ShapeSpec;

/// Elements kept for a tensor of `numel` elements at `keep_permille`:
/// `⌊numel·keep_permille/1000⌋`, at least 1 (unless the tensor is empty),
/// at most `numel`.
pub fn keep_count(numel: usize, keep_permille: u16) -> usize {
    if numel == 0 {
        return 0;
    }
    (numel * keep_permille as usize / 1000).clamp(1, numel)
}

/// Appends the sparse encoding of `current − base + residual` to `out`,
/// updating `residual` (when provided) to the unsent remainder.
///
/// `residual` tensors are zero-initialised on first use by the caller;
/// pass `None` for one-shot deltas that carry no error feedback.
///
/// # Panics
///
/// Panics if `current`, `base` and `residual` disagree in structure —
/// these all derive from one model template, so a mismatch is a bug.
pub fn encode_payload_into(
    current: &[Tensor],
    base: &[Tensor],
    keep_permille: u16,
    mut residual: Option<&mut [Tensor]>,
    out: &mut Vec<u8>,
) {
    assert_eq!(current.len(), base.len(), "topk: current/base tensor count");
    if let Some(res) = residual.as_ref() {
        assert_eq!(res.len(), current.len(), "topk: residual tensor count");
    }
    if aergia_telemetry::enabled() {
        crate::telemetry_hooks::record_dense_equiv(
            crate::CodecId::TopKDelta,
            crate::sizing::ShapeSpec::of(current).dense_payload_len(),
        );
    }
    let mut delta: Vec<f32> = Vec::new();
    let mut order: Vec<u32> = Vec::new();
    for (i, (cur, bas)) in current.iter().zip(base).enumerate() {
        assert_eq!(cur.dims(), bas.dims(), "topk: current/base shape");
        let numel = cur.numel();
        delta.clear();
        delta.extend(cur.data().iter().zip(bas.data()).map(|(c, b)| c - b));
        if let Some(res) = residual.as_ref() {
            for (d, r) in delta.iter_mut().zip(res[i].data()) {
                *d += r;
            }
        }

        put_u32(out, cur.dims().len() as u32);
        for &d in cur.dims() {
            put_u32(out, d as u32);
        }
        let k = keep_count(numel, keep_permille);
        put_u32(out, k as u32);

        // Rank by (|delta| descending, index ascending) — a total order,
        // so the kept set is unique and selection order cannot leak in.
        order.clear();
        order.extend(0..numel as u32);
        let rank = |&j: &u32| delta[j as usize].abs();
        if k < numel {
            order.select_nth_unstable_by(k, |a, b| rank(b).total_cmp(&rank(a)).then(a.cmp(b)));
            order.truncate(k);
        }
        order.sort_unstable();
        for &j in &order {
            put_u32(out, j);
            put_f32(out, delta[j as usize]);
        }
        if let Some(res) = residual.as_mut() {
            // Error feedback: the residual becomes the unsent remainder —
            // the exact delta with the transmitted entries zeroed.
            let r = res[i].data_mut();
            r.copy_from_slice(&delta);
            for &j in &order {
                r[j as usize] = 0.0;
            }
        }
    }
}

/// Reconstructs `base + sent` from a sparse payload of `tensor_count`
/// tensors.
///
/// # Errors
///
/// Returns [`CodecError::BaseMismatch`] if the payload's shapes disagree
/// with `base`, and [`CodecError`] on structural corruption.
pub fn decode_payload(
    payload: &[u8],
    tensor_count: usize,
    base: &[Tensor],
) -> Result<Vec<Tensor>, CodecError> {
    if tensor_count != base.len() {
        return Err(CodecError::BaseMismatch("tensor count"));
    }
    let mut r = Reader::new(payload);
    let mut out = Vec::with_capacity(tensor_count);
    for bas in base {
        let (dims, numel) = decode_shape(&mut r)?;
        if dims != bas.dims() {
            return Err(CodecError::BaseMismatch("tensor shape"));
        }
        let k = r.u32()? as usize;
        if k > numel {
            return Err(CodecError::Corrupt("sparse count exceeds element count"));
        }
        let mut t = bas.clone();
        let data = t.data_mut();
        let mut prev: Option<u32> = None;
        for _ in 0..k {
            let idx = r.u32()?;
            let val = r.f32()?;
            if idx as usize >= numel {
                return Err(CodecError::Corrupt("sparse index out of range"));
            }
            if prev.is_some_and(|p| idx <= p) {
                return Err(CodecError::Corrupt("sparse indices not ascending"));
            }
            prev = Some(idx);
            data[idx as usize] += val;
        }
        out.push(t);
    }
    if r.remaining() != 0 {
        return Err(CodecError::Corrupt("trailing bytes in topk payload"));
    }
    Ok(out)
}

/// Zero tensors matching `template`'s structure — a fresh error-feedback
/// residual.
pub fn zero_residual(template: &[Tensor]) -> Vec<Tensor> {
    template.iter().map(|t| Tensor::zeros(t.dims())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[f32]) -> Tensor {
        Tensor::from_vec(vals.to_vec(), &[vals.len()]).unwrap()
    }

    #[test]
    fn keep_count_floors_and_clamps() {
        assert_eq!(keep_count(1000, 50), 50);
        assert_eq!(keep_count(10, 50), 1, "floor would be 0; at least one element ships");
        assert_eq!(keep_count(10, 1000), 10);
        assert_eq!(keep_count(0, 50), 0);
    }

    #[test]
    fn largest_magnitude_entries_ship_and_reconstruct_exactly() {
        let base = vec![t(&[1.0, 1.0, 1.0, 1.0])];
        let current = vec![t(&[1.5, 9.0, 1.0, -7.0])];
        let mut payload = Vec::new();
        // 500‰ of 4 → keep 2: indices 1 (+8) and 3 (−8).
        encode_payload_into(&current, &base, 500, None, &mut payload);
        assert_eq!(payload.len(), ShapeSpec::of(&base).topk_payload_len(500));
        let decoded = decode_payload(&payload, 1, &base).unwrap();
        assert_eq!(decoded[0].data(), &[1.0, 9.0, 1.0, -7.0]);
    }

    #[test]
    fn error_feedback_residual_holds_the_unsent_remainder() {
        let base = vec![t(&[0.0, 0.0, 0.0, 0.0])];
        let current = vec![t(&[0.1, 4.0, -0.2, 0.3])];
        let mut residual = zero_residual(&base);
        let mut payload = Vec::new();
        encode_payload_into(&current, &base, 250, Some(&mut residual[..]), &mut payload); // keep 1
        let decoded = decode_payload(&payload, 1, &base).unwrap();
        assert_eq!(decoded[0].data(), &[0.0, 4.0, 0.0, 0.0]);
        assert_eq!(residual[0].data(), &[0.1, 0.0, -0.2, 0.3]);

        // Next round, the residual pushes the starved entries forward:
        // sent = delta + residual at the top entry.
        let mut payload2 = Vec::new();
        encode_payload_into(&decoded, &decoded, 250, Some(&mut residual[..]), &mut payload2);
        let decoded2 = decode_payload(&payload2, 1, &decoded).unwrap();
        assert_eq!(decoded2[0].data(), &[0.0, 4.0, 0.0, 0.3]);
        assert_eq!(residual[0].data(), &[0.1, 0.0, -0.2, 0.0]);
    }

    #[test]
    fn ties_break_toward_the_lower_index() {
        let base = vec![t(&[0.0, 0.0, 0.0])];
        let current = vec![t(&[2.0, -2.0, 2.0])];
        let mut payload = Vec::new();
        encode_payload_into(&current, &base, 334, None, &mut payload); // keep 1
        let decoded = decode_payload(&payload, 1, &base).unwrap();
        assert_eq!(decoded[0].data(), &[2.0, 0.0, 0.0]);
    }

    #[test]
    fn mismatched_base_is_rejected() {
        let base = vec![t(&[0.0, 0.0])];
        let current = vec![t(&[1.0, 2.0])];
        let mut payload = Vec::new();
        encode_payload_into(&current, &base, 1000, None, &mut payload);
        let wrong_shape = vec![t(&[0.0, 0.0, 0.0])];
        assert!(matches!(
            decode_payload(&payload, 1, &wrong_shape),
            Err(CodecError::BaseMismatch(_))
        ));
        assert!(matches!(decode_payload(&payload, 2, &base), Err(CodecError::BaseMismatch(_))));
    }

    #[test]
    fn corrupt_sparse_structure_is_rejected() {
        let base = vec![t(&[0.0, 0.0])];
        let current = vec![t(&[1.0, 2.0])];
        let mut payload = Vec::new();
        encode_payload_into(&current, &base, 1000, None, &mut payload);
        // Swap the two entries' indices so they are no longer ascending.
        let mut bad = payload.clone();
        bad[12..16].copy_from_slice(&1u32.to_le_bytes());
        bad[20..24].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(decode_payload(&bad, 1, &base), Err(CodecError::Corrupt(_))));
    }
}
