//! Property tests for the wire codecs: round-trip guarantees, stated
//! error bounds, error-feedback reconstruction and the shape-only sizing
//! invariant every codec must honour.

use aergia_codec::sizing::{frame_len, ShapeSpec};
use aergia_codec::{
    dense, envelope, quant, topk, CodecError, CodecId, Frame, FrameBuilder, SectionKind,
};
use aergia_tensor::Tensor;
use proptest::prelude::*;

/// Tensors with arbitrary bit patterns — including NaNs with payloads,
/// ±infinity, −0.0 and subnormals.
fn raw_bits_tensor(max_elems: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(any::<u32>(), 1..max_elems).prop_map(|bits| {
        let data: Vec<f32> = bits.into_iter().map(f32::from_bits).collect();
        let n = data.len();
        Tensor::from_vec(data, &[n]).expect("sized vec")
    })
}

/// Tensors with finite values in a modest range (what weights look like).
fn finite_tensor(max_elems: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-8.0f32..8.0, 1..max_elems).prop_map(|data| {
        let n = data.len();
        Tensor::from_vec(data, &[n]).expect("sized vec")
    })
}

fn bits(ts: &[Tensor]) -> Vec<u32> {
    ts.iter().flat_map(|t| t.data().iter().map(|v| v.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_round_trip_is_bit_exact_for_any_bit_pattern(
        tensors in proptest::collection::vec(raw_bits_tensor(40), 1..5),
    ) {
        let mut payload = Vec::new();
        dense::encode_payload_into(&tensors, &mut payload);
        prop_assert_eq!(payload.len(), ShapeSpec::of(&tensors).dense_payload_len());
        let decoded = dense::decode_payload(&payload, tensors.len()).unwrap();
        prop_assert_eq!(bits(&tensors), bits(&decoded));
    }

    #[test]
    fn quant_round_trip_stays_within_the_stated_bound(
        tensors in proptest::collection::vec(finite_tensor(60), 1..4),
    ) {
        let mut payload = Vec::new();
        quant::encode_payload_into(&tensors, &mut payload);
        prop_assert_eq!(payload.len(), ShapeSpec::of(&tensors).quant_payload_len());
        let decoded = quant::decode_payload(&payload, tensors.len()).unwrap();
        for (t, d) in tensors.iter().zip(&decoded) {
            let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
            for &v in t.data() {
                min = min.min(v);
                max = max.max(v);
            }
            let scale = if max > min { (max - min) / 252.0 } else { 0.0 };
            let bound = quant::max_abs_error(scale);
            for (x, y) in t.data().iter().zip(d.data()) {
                prop_assert!((x - y).abs() <= bound, "{} -> {} exceeds bound {}", x, y, bound);
            }
        }
    }

    #[test]
    fn quant_preserves_non_finite_values_exactly(
        finite in finite_tensor(30),
        specials in proptest::collection::vec(0usize..3, 1..8),
    ) {
        // Splice non-finite values into a finite tensor at pseudo-random
        // spots and require every one to survive the round trip as-is.
        let mut data = finite.data().to_vec();
        let n = data.len();
        for (i, kind) in specials.iter().enumerate() {
            let at = (i * 7 + kind) % n;
            data[at] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY][*kind];
        }
        let t = vec![Tensor::from_vec(data.clone(), &[n]).unwrap()];
        let mut payload = Vec::new();
        quant::encode_payload_into(&t, &mut payload);
        let decoded = quant::decode_payload(&payload, 1).unwrap();
        for (x, y) in data.iter().zip(decoded[0].data()) {
            if x.is_nan() {
                prop_assert!(y.is_nan());
            } else if !x.is_finite() {
                prop_assert_eq!(*x, *y);
            }
        }
    }

    #[test]
    fn topk_partitions_delta_between_wire_and_residual(
        current in proptest::collection::vec(finite_tensor(50), 1..4),
        base_seed in -4.0f32..4.0,
        permille in 1u16..1000,
    ) {
        let base: Vec<Tensor> =
            current.iter().map(|t| Tensor::full(t.dims(), base_seed)).collect();
        let mut residual = topk::zero_residual(&base);
        let mut payload = Vec::new();
        topk::encode_payload_into(
            &current, &base, permille, Some(&mut residual[..]), &mut payload,
        );
        prop_assert_eq!(payload.len(), ShapeSpec::of(&base).topk_payload_len(permille));
        let decoded = topk::decode_payload(&payload, current.len(), &base).unwrap();
        // Every element is either transmitted (residual 0, decoded moves by
        // exactly the delta) or held back (decoded stays at base, residual
        // holds exactly the delta) — the error-feedback partition.
        for ((cur, bas), (dec, res)) in
            current.iter().zip(&base).zip(decoded.iter().zip(&residual))
        {
            let k = topk::keep_count(cur.numel(), permille);
            let mut sent = 0usize;
            for i in 0..cur.numel() {
                let delta = cur.data()[i] - bas.data()[i];
                if res.data()[i] == 0.0 {
                    // Transmitted (or delta was exactly zero).
                    let expect = bas.data()[i] + delta;
                    prop_assert_eq!(dec.data()[i].to_bits(), expect.to_bits());
                    if dec.data()[i].to_bits() != bas.data()[i].to_bits() {
                        sent += 1;
                    }
                } else {
                    prop_assert_eq!(res.data()[i].to_bits(), delta.to_bits());
                    prop_assert_eq!(dec.data()[i].to_bits(), bas.data()[i].to_bits());
                }
            }
            prop_assert!(sent <= k, "transmitted {} of budget {}", sent, k);
        }
    }

    #[test]
    fn topk_stream_converges_against_an_accumulating_base(
        target in finite_tensor(40),
    ) {
        // A delta stream whose base is the receiver's reconstruction needs
        // no explicit residual: `target − base` automatically re-carries
        // everything not yet sent, so repeatedly shipping one element per
        // frame reconstructs the target exactly.
        let targets = vec![target];
        let mut state: Vec<Tensor> = topk::zero_residual(&targets);
        for _ in 0..targets[0].numel() {
            let mut payload = Vec::new();
            topk::encode_payload_into(&targets, &state, 1, None, &mut payload);
            state = topk::decode_payload(&payload, 1, &state).unwrap();
        }
        for (x, y) in targets[0].data().iter().zip(state[0].data()) {
            prop_assert!((x - y).abs() <= 1e-5, "{} vs {}", x, y);
        }
    }

    #[test]
    fn frame_round_trip_preserves_sections_and_sizes(
        feat in proptest::collection::vec(finite_tensor(30), 1..3),
        clf in proptest::collection::vec(finite_tensor(30), 1..3),
    ) {
        let mut builder = FrameBuilder::new();
        builder.push_section(SectionKind::Features, CodecId::DenseF32, feat.len(), |out| {
            dense::encode_payload_into(&feat, out);
        });
        builder.push_section(SectionKind::Classifier, CodecId::QuantI8, clf.len(), |out| {
            quant::encode_payload_into(&clf, out);
        });
        let frame = builder.finish();
        let feat_spec = ShapeSpec::of(&feat);
        let clf_spec = ShapeSpec::of(&clf);
        prop_assert_eq!(
            frame.wire_len(),
            aergia_codec::frame::HEADER_LEN
                + feat_spec.dense_payload_len()
                + clf_spec.quant_payload_len()
        );
        // Mixed-codec frame lengths are NOT what frame_len (single codec)
        // predicts unless the codecs agree — sanity-check the dense case.
        prop_assert_eq!(
            frame_len(CodecId::DenseF32, 1000, &[&feat_spec]),
            aergia_codec::frame::HEADER_LEN + feat_spec.dense_payload_len()
        );

        let reparsed = Frame::from_bytes(frame.as_bytes().to_vec()).unwrap();
        let sections = reparsed.sections().unwrap();
        prop_assert_eq!(sections.len(), 2);
        let back_feat =
            dense::decode_payload(sections[0].payload, sections[0].tensor_count).unwrap();
        prop_assert_eq!(bits(&feat), bits(&back_feat));
        prop_assert_eq!(sections[1].kind, SectionKind::Classifier);
        prop_assert_eq!(sections[1].codec, CodecId::QuantI8);
    }

    #[test]
    fn truncated_frames_never_decode(
        feat in proptest::collection::vec(finite_tensor(20), 1..3),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut builder = FrameBuilder::new();
        builder.push_section(SectionKind::Features, CodecId::DenseF32, feat.len(), |out| {
            dense::encode_payload_into(&feat, out);
        });
        let frame = builder.finish();
        let cut = ((frame.wire_len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(Frame::from_bytes(frame.as_bytes()[..cut].to_vec()).is_err());
    }
}

/// One of the seven protocol message kinds, uniformly.
fn msg_kind() -> impl Strategy<Value = envelope::MsgKind> {
    use envelope::MsgKind;
    const KINDS: [MsgKind; 7] = [
        MsgKind::Hello,
        MsgKind::Welcome,
        MsgKind::TrainOrder,
        MsgKind::TrainReply,
        MsgKind::OffloadOrder,
        MsgKind::OffloadReply,
        MsgKind::Finish,
    ];
    (0usize..KINDS.len()).prop_map(|i| KINDS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn envelopes_round_trip_any_body(
        kind in msg_kind(),
        body in proptest::collection::vec(any::<u8>(), 0..512),
        trailer in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut bytes = envelope::encode(kind, &body);
        let total = bytes.len();
        bytes.extend_from_slice(&trailer); // parse must not read past the envelope
        let (k, b, consumed) = envelope::parse(&bytes).unwrap();
        prop_assert_eq!(k, kind);
        prop_assert_eq!(b, &body[..]);
        prop_assert_eq!(consumed, total);
        let (k, b) = envelope::read_from(&mut &bytes[..]).unwrap();
        prop_assert_eq!(k, kind);
        prop_assert_eq!(b, body);
    }

    #[test]
    fn truncated_envelopes_error_at_every_cut(
        kind in msg_kind(),
        body in proptest::collection::vec(any::<u8>(), 0..64),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = envelope::encode(kind, &body);
        let cut = ((bytes.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert_eq!(envelope::parse(&bytes[..cut]).unwrap_err(), CodecError::Truncated);
        prop_assert!(envelope::read_from(&mut &bytes[..cut]).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_envelope_parser(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Must return (never panic), and on success stay inside the input.
        if let Ok((_, body, consumed)) = envelope::parse(&bytes) {
            prop_assert!(consumed <= bytes.len());
            prop_assert!(body.len() <= consumed);
        }
        let _ = envelope::read_from(&mut &bytes[..]);
    }

    #[test]
    fn corrupted_headers_never_panic_and_magic_damage_is_detected(
        kind in msg_kind(),
        body in proptest::collection::vec(any::<u8>(), 0..64),
        at in 0usize..envelope::HEADER_LEN,
        flip in 1u8..=255,
    ) {
        let mut bytes = envelope::encode(kind, &body);
        bytes[at] ^= flip;
        // Any single-byte header corruption must be handled without
        // panicking; damage to the magic specifically must be detected.
        let outcome = envelope::parse(&bytes);
        if at < 4 {
            prop_assert_eq!(outcome.unwrap_err(), CodecError::BadMagic);
        }
        let _ = envelope::read_from(&mut &bytes[..]);
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_not_allocated(
        kind in msg_kind(),
        over in (envelope::MAX_BODY_LEN as u32 + 1)..=u32::MAX,
    ) {
        // A hostile length prefix: header only, no body behind it. Both
        // entry points must reject from the 12 header bytes alone —
        // read_from checks the cap before reserving the body buffer.
        let mut bytes = envelope::encode(kind, &[]);
        bytes[8..12].copy_from_slice(&over.to_le_bytes());
        prop_assert!(matches!(envelope::parse(&bytes), Err(CodecError::Corrupt(_))));
        prop_assert!(matches!(
            envelope::read_from(&mut &bytes[..]),
            Err(envelope::EnvelopeError::Codec(CodecError::Corrupt(_)))
        ));
    }
}
