//! Work-stealing scoped thread pool for the Aergia workspace.
//!
//! The build containers are offline, so this crate is the vendored stand-in
//! for [rayon](https://docs.rs/rayon): it implements the small API subset the
//! workspace needs — [`scope`]/[`Scope::spawn`], [`join`] and the slice
//! helpers [`ThreadPool::par_chunks_mut`] / [`ThreadPool::par_for_each_mut`]
//! — with compatible semantics, so `[workspace.dependencies]` stays the swap
//! point for the real crate.
//!
//! # Design
//!
//! Each worker owns a deque: it pushes and pops its own work LIFO (hot
//! caches for nested spawns) and steals FIFO from the shared injector or
//! from other workers when its deque runs dry. Threads that *wait* on a
//! scope — including pool workers executing a task that opened a nested
//! scope, e.g. a parallel matmul inside a parallel client round — do not
//! block: they keep executing queued jobs until their own latch opens, so
//! nested parallelism cannot deadlock the pool.
//!
//! # Determinism
//!
//! The pool schedules *where* and *when* independent jobs run, never *what*
//! they compute: every helper hands each job a disjoint slice of the data
//! with an index derived from the input order. Callers that keep jobs free
//! of shared mutable state (all workspace callers do) therefore get results
//! that are bit-identical across pool sizes, including the single-threaded
//! inline pool.
//!
//! # Sizing
//!
//! [`ThreadPool::global`] sizes itself from `AERGIA_THREADS` when set and
//! from [`std::thread::available_parallelism`] otherwise. A size of 1 spawns
//! no workers at all: every operation degenerates to an inline loop on the
//! calling thread.
//!
//! # Examples
//!
//! Chunk boundaries depend only on `chunk_len`, never on the pool size,
//! so the result below is identical on a 1-thread and a 16-thread pool:
//!
//! ```
//! use aergia_runtime::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let mut data = vec![1.0f32; 1000];
//! pool.par_chunks_mut(&mut data, 256, |chunk_index, chunk| {
//!     for value in chunk {
//!         *value += chunk_index as f32;
//!     }
//! });
//! assert_eq!(data[0], 1.0); // chunk 0
//! assert_eq!(data[999], 4.0); // chunk 3
//!
//! let (a, b) = aergia_runtime::join(|| 2 + 2, || "concurrently");
//! assert_eq!((a, b), (4, "concurrently"));
//! ```

#![warn(missing_docs)]

pub mod alloc_count;

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::mem;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn Any + Send + 'static>;

thread_local! {
    /// `(pool identity, worker index)` when this thread is a pool worker.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Queues shared between the workers, the spawners and the helpers.
struct Shared {
    /// Jobs pushed from threads outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker: owner pops LIFO, thieves steal FIFO.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Guards the sleep/wake protocol (never held while running a job).
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// The current thread's worker index *in this pool*, if any.
    fn own_index(self: &Arc<Self>) -> Option<usize> {
        WORKER.with(Cell::get).filter(|&(pool, _)| pool == self.id()).map(|(_, i)| i)
    }

    fn push(self: &Arc<Self>, job: Job) {
        match self.own_index() {
            Some(i) => self.locals[i].lock().expect("local deque").push_back(job),
            None => self.injector.lock().expect("injector").push_back(job),
        }
        // Serialise with a sleeper's "scan, then wait" sequence: acquiring
        // the sleep lock here means any worker that scanned before this
        // push is either already waiting (the notify lands) or will re-scan
        // under the lock and see the job.
        drop(self.sleep.lock().expect("sleep lock"));
        self.wake.notify_one();
    }

    /// Pops the next job: own deque first (LIFO), then the injector, then a
    /// steal sweep over the other workers (FIFO).
    fn find_job(&self, own: Option<usize>) -> Option<Job> {
        if let Some(i) = own {
            if let Some(job) = self.locals[i].lock().expect("local deque").pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().expect("injector").pop_front() {
            return Some(job);
        }
        let n = self.locals.len();
        let start = own.map_or(0, |i| i + 1);
        for offset in 0..n {
            let victim = (start + offset) % n;
            if Some(victim) == own {
                continue;
            }
            if let Some(job) = self.locals[victim].lock().expect("victim deque").pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        !self.injector.lock().expect("injector").is_empty()
            || self.locals.iter().any(|q| !q.lock().expect("local deque").is_empty())
    }
}

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((shared.id(), index))));
    loop {
        if let Some(job) = shared.find_job(Some(index)) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.sleep.lock().expect("sleep lock");
        if shared.has_work() || shared.shutdown.load(Ordering::Acquire) {
            continue;
        }
        // The timeout is a belt-and-braces liveness backstop; the paired
        // lock in `push` already prevents the classic missed wake-up.
        let _ = shared.wake.wait_timeout(guard, Duration::from_millis(50));
    }
}

/// Counts outstanding jobs of one scope and wakes its waiter.
struct Latch {
    count: Mutex<usize>,
    open: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch { count: Mutex::new(0), open: Condvar::new() })
    }

    fn add_one(&self) {
        *self.count.lock().expect("latch") += 1;
    }

    fn done_one(&self) {
        let mut count = self.count.lock().expect("latch");
        *count -= 1;
        if *count == 0 {
            self.open.notify_all();
        }
    }

    fn is_open(&self) -> bool {
        *self.count.lock().expect("latch") == 0
    }

    fn wait_briefly(&self) {
        let count = self.count.lock().expect("latch");
        if *count > 0 {
            let _ = self.open.wait_timeout(count, Duration::from_millis(1));
        }
    }
}

/// A work-stealing thread pool.
///
/// Construct explicitly with [`ThreadPool::new`] (tests, custom sizing) or
/// use the process-wide [`ThreadPool::global`].
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads).finish()
    }
}

impl ThreadPool {
    /// Creates a pool of `threads` workers. `threads <= 1` creates an
    /// *inline* pool: no threads are spawned and every spawn runs
    /// immediately on the caller.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let worker_count = if threads <= 1 { 0 } else { threads };
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..worker_count).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..worker_count)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aergia-rt-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers, threads: threads.max(1) }
    }

    /// The process-wide pool, created on first use. Sized by the
    /// `AERGIA_THREADS` environment variable when set (and ≥ 1), otherwise
    /// by [`std::thread::available_parallelism`].
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
    }

    /// The pool's parallelism (1 for an inline pool).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn is_inline(&self) -> bool {
        self.workers.is_empty()
    }

    /// Runs `op` with a [`Scope`] on which tasks borrowing local state can
    /// be spawned; returns only after every spawned task has completed.
    ///
    /// # Panics
    ///
    /// If `op` or any spawned task panics, the panic is resumed on the
    /// caller after all tasks have finished (the first task payload wins).
    pub fn scope<'scope, R>(&'scope self, op: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let scope = Scope {
            pool: self,
            latch: Latch::new(),
            panic: Arc::new(Mutex::new(None)),
            _marker: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // Wait (helping with queued work) even when `op` panicked: spawned
        // jobs hold borrows into the caller's stack and must finish first.
        self.wait_help(&scope.latch);
        if let Some(payload) = scope.panic.lock().expect("panic slot").take() {
            panic::resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Executes queued jobs until `latch` opens: waiters are extra workers,
    /// which is what makes nested scopes deadlock-free.
    fn wait_help(&self, latch: &Arc<Latch>) {
        if self.is_inline() {
            return;
        }
        let own = self.shared.own_index();
        while !latch.is_open() {
            match self.shared.find_job(own) {
                Some(job) => job(),
                None => latch.wait_briefly(),
            }
        }
    }

    /// Splits `data` into chunks of `chunk_len` elements and runs
    /// `f(chunk_index, chunk)` for each, in parallel. Chunk boundaries
    /// depend only on `chunk_len`, never on the pool size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero, or propagates the first panic raised
    /// inside `f`.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
        if self.is_inline() || data.len() <= chunk_len {
            for (index, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(index, chunk);
            }
            return;
        }
        let f = &f;
        self.scope(|s| {
            for (index, chunk) in data.chunks_mut(chunk_len).enumerate() {
                s.spawn(move || f(index, chunk));
            }
        });
    }

    /// Runs `f` on every item, in parallel, using at most `max_tasks`
    /// concurrent tasks (`0` = one task per item). Items are grouped into
    /// contiguous runs, so outputs are independent of the pool size.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f`.
    pub fn par_for_each_mut<T, F>(&self, items: &mut [T], max_tasks: usize, f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        let tasks = if max_tasks == 0 { items.len() } else { max_tasks.min(items.len()) };
        if tasks <= 1 || self.is_inline() {
            for item in items {
                f(item);
            }
            return;
        }
        let group = items.len().div_ceil(tasks);
        let f = &f;
        self.scope(|s| {
            for chunk in items.chunks_mut(group) {
                s.spawn(move || {
                    for item in chunk {
                        f(item);
                    }
                });
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        drop(self.shared.sleep.lock().expect("sleep lock"));
        self.wake_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl ThreadPool {
    fn wake_all(&self) {
        self.shared.wake.notify_all();
    }
}

/// A spawn handle tied to one [`ThreadPool::scope`] invocation.
///
/// Mirrors `rayon::Scope`: tasks may borrow anything that outlives the
/// `scope` call.
pub struct Scope<'scope> {
    pool: &'scope ThreadPool,
    latch: Arc<Latch>,
    panic: Arc<Mutex<Option<PanicPayload>>>,
    /// Invariant over `'scope` and `!Sync`, like `std::thread::Scope`.
    _marker: PhantomData<Cell<&'scope mut &'scope ()>>,
}

impl<'scope> Scope<'scope> {
    /// Queues `f` on the pool. On an inline pool, runs it immediately.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.pool.is_inline() {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                self.panic.lock().expect("panic slot").get_or_insert(payload);
            }
            return;
        }
        self.latch.add_one();
        let latch = Arc::clone(&self.latch);
        let panic_slot = Arc::clone(&self.panic);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = panic_slot.lock().expect("panic slot");
                slot.get_or_insert(payload);
            }
            latch.done_one();
        });
        // SAFETY: `ThreadPool::scope` blocks on the latch until this job has
        // run to completion, so every `'scope` borrow captured by the job
        // strictly outlives its execution; erasing the lifetime is sound.
        let job: Job = unsafe {
            mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send + 'static>>(
                job,
            )
        };
        self.pool.shared.push(job);
    }
}

fn default_threads() -> usize {
    match std::env::var("AERGIA_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// [`ThreadPool::scope`] on the global pool.
pub fn scope<'scope, R>(op: impl FnOnce(&Scope<'scope>) -> R) -> R {
    ThreadPool::global().scope(op)
}

/// The global pool's parallelism (1 when parallelism is unavailable or
/// disabled via `AERGIA_THREADS=1`).
#[must_use]
pub fn parallelism() -> usize {
    ThreadPool::global().threads()
}

/// [`ThreadPool::par_chunks_mut`] on the global pool.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    ThreadPool::global().par_chunks_mut(data, chunk_len, f);
}

/// [`ThreadPool::par_for_each_mut`] on the global pool.
pub fn par_for_each_mut<T, F>(items: &mut [T], max_tasks: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    ThreadPool::global().par_for_each_mut(items, max_tasks, f);
}

/// Runs both closures, potentially in parallel, and returns both results
/// (`a` runs on the caller, `b` may be stolen) — rayon's `join`.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    let mut result_a = None;
    let mut result_b = None;
    ThreadPool::global().scope(|s| {
        let slot_b = &mut result_b;
        s.spawn(move || *slot_b = Some(b()));
        result_a = Some(a());
    });
    (result_a.expect("join: a ran"), result_b.expect("join: b ran"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scoped_tasks_borrow_and_mutate_local_state() {
        let pool = ThreadPool::new(4);
        let mut values = vec![0u64; 100];
        pool.scope(|s| {
            for (i, v) in values.iter_mut().enumerate() {
                s.spawn(move || *v = (i as u64) * 3);
            }
        });
        assert!(values.iter().enumerate().all(|(i, &v)| v == (i as u64) * 3));
    }

    #[test]
    fn inline_pool_produces_identical_results() {
        let compute = |pool: &ThreadPool| {
            let mut out = vec![0.0f32; 257];
            pool.par_chunks_mut(&mut out, 16, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = ((ci * 16 + j) as f32).sqrt();
                }
            });
            out
        };
        assert_eq!(compute(&ThreadPool::new(1)), compute(&ThreadPool::new(4)));
    }

    #[test]
    fn work_actually_distributes_across_threads() {
        let pool = ThreadPool::new(4);
        let ids = Mutex::new(HashSet::new());
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    std::thread::sleep(Duration::from_millis(20));
                    ids.lock().unwrap().insert(std::thread::current().id());
                });
            }
        });
        assert!(ids.lock().unwrap().len() >= 2, "all 16 sleeps ran on one thread");
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // The engine's shape: parallel clients, each running parallel
        // matmul tiles. More outer tasks than workers forces helping.
        let pool = ThreadPool::new(2);
        let mut totals = vec![0usize; 8];
        pool.par_for_each_mut(&mut totals, 0, |slot| {
            let mut inner = vec![1usize; 64];
            pool.par_chunks_mut(&mut inner, 8, |ci, chunk| {
                for x in chunk {
                    *x += ci;
                }
            });
            *slot = inner.iter().sum();
        });
        let expected: usize = (0..8).map(|ci| 8 * (1 + ci)).sum();
        assert!(totals.iter().all(|&t| t == expected));
    }

    #[test]
    fn panics_propagate_to_the_scope_caller() {
        let pool = ThreadPool::new(2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom in task"));
                s.spawn(|| std::thread::sleep(Duration::from_millis(5)));
            });
        }));
        let payload = caught.expect_err("scope must re-raise the task panic");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "boom in task");
    }

    #[test]
    fn par_for_each_mut_respects_the_task_cap() {
        let pool = ThreadPool::new(4);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let mut items = vec![0u8; 12];
        pool.par_for_each_mut(&mut items, 2, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(5));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "cap of 2 concurrent tasks exceeded");
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 6 * 7, || "right".len());
        assert_eq!((a, b), (42, 5));
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool = ThreadPool::new(3);
        let mut hits = [false; 32];
        pool.scope(|s| {
            for hit in hits.iter_mut() {
                s.spawn(move || *hit = true);
            }
        });
        drop(pool);
        assert!(hits.iter().all(|&h| h));
    }
}
