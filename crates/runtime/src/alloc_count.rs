//! A counting global allocator for allocation-budget tests and benches.
//!
//! The zero-allocation contract of the training hot path (workspace-backed
//! `forward_into`/`backward_into`, see `aergia-tensor`'s `Workspace`) is
//! enforced empirically: a test binary installs [`CountingAllocator`] as its
//! `#[global_allocator]`, warms the workspace up, then asserts that further
//! steady-state batches leave the counter untouched. The `bench_smoke`
//! regression gate uses the same hook to record `allocs_per_round` in
//! `BENCH_smoke.json`.
//!
//! The counter itself is a relaxed atomic bump in `alloc`/`realloc`, cheap
//! enough to leave in measurement binaries; the hook is only ever *installed*
//! by `#[cfg(test)]` binaries and the bench driver, never by library code,
//! so production builds keep the system allocator untouched.
//!
//! # Examples
//!
//! ```
//! use aergia_runtime::alloc_count::CountingAllocator;
//!
//! // In a test or bench binary:
//! // #[global_allocator]
//! // static ALLOC: CountingAllocator = CountingAllocator::new();
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//! let before = ALLOC.allocations();
//! // ... code under measurement ...
//! assert_eq!(ALLOC.allocations() - before, 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

std::thread_local! {
    // Const-initialized and `!Drop`, so touching it from inside the
    // allocator can never itself allocate or hit a torn-down TLS slot.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// A [`System`]-backed allocator that counts every `alloc`/`realloc` call
/// (deallocations are not counted — freeing is not the churn the hot-path
/// budget polices).
#[derive(Debug)]
pub struct CountingAllocator {
    allocations: AtomicU64,
}

impl CountingAllocator {
    /// Creates an allocator with a zeroed counter (`const`, so it can be a
    /// `#[global_allocator]` static).
    pub const fn new() -> Self {
        CountingAllocator { allocations: AtomicU64::new(0) }
    }

    /// Number of allocation events (`alloc` + `realloc`) since process
    /// start.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Number of allocation events performed by the *calling thread* since
    /// it started.
    ///
    /// The process-global [`allocations`](Self::allocations) counter also
    /// sees other threads — notably the libtest harness thread, whose
    /// blocking channel `recv` lazily allocates its parking context the
    /// first time it actually has to wait, which can land anywhere relative
    /// to a test's measured window. Single-threaded allocation-budget tests
    /// should diff this counter instead so harness noise cannot leak in.
    pub fn thread_allocations(&self) -> u64 {
        THREAD_ALLOCATIONS.get()
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        CountingAllocator::new()
    }
}

// SAFETY: delegates every operation unchanged to `System`; the only added
// behaviour is a relaxed atomic counter bump, which cannot violate the
// `GlobalAlloc` contract.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        THREAD_ALLOCATIONS.set(THREAD_ALLOCATIONS.get() + 1);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        THREAD_ALLOCATIONS.set(THREAD_ALLOCATIONS.get() + 1);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        THREAD_ALLOCATIONS.set(THREAD_ALLOCATIONS.get() + 1);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_starts_at_zero_and_counts_allocs() {
        let counter = CountingAllocator::new();
        assert_eq!(counter.allocations(), 0);
        // Exercise the GlobalAlloc impl directly (not installed globally).
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = counter.alloc(layout);
            assert!(!p.is_null());
            let p = counter.realloc(p, layout, 128);
            assert!(!p.is_null());
            counter.dealloc(p, Layout::from_size_align(128, 8).unwrap());
        }
        assert_eq!(counter.allocations(), 2, "alloc + realloc count, dealloc does not");
    }

    #[test]
    fn thread_counter_ignores_other_threads() {
        let counter = CountingAllocator::new();
        let layout = Layout::from_size_align(16, 8).unwrap();
        let mine = counter.thread_allocations();
        std::thread::scope(|s| {
            s.spawn(|| unsafe {
                let p = counter.alloc(layout);
                assert!(!p.is_null());
                counter.dealloc(p, layout);
            });
        });
        assert_eq!(counter.thread_allocations(), mine, "other threads' allocs are invisible");
        unsafe {
            let p = counter.alloc(layout);
            assert!(!p.is_null());
            counter.dealloc(p, layout);
        }
        assert_eq!(counter.thread_allocations(), mine + 1, "this thread's allocs count");
    }

    #[test]
    fn zeroed_alloc_counts_and_zeroes() {
        let counter = CountingAllocator::default();
        let layout = Layout::from_size_align(32, 8).unwrap();
        unsafe {
            let p = counter.alloc_zeroed(layout);
            assert!(!p.is_null());
            assert!((0..32).all(|i| *p.add(i) == 0));
            counter.dealloc(p, layout);
        }
        assert_eq!(counter.allocations(), 1);
    }
}
